# Smoke check for the documented quickstart: it must exit 0 (so sanitizer
# failures are not masked) AND report a non-zero CU mark count.
# Invoked as: cmake -D QUICKSTART_EXE=<path> -P quickstart_smoke.cmake
execute_process(
    COMMAND ${QUICKSTART_EXE}
    OUTPUT_VARIABLE out
    ECHO_OUTPUT_VARIABLE
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "quickstart exited with ${rc}")
endif()
if(NOT out MATCHES "CU marks: [1-9][0-9]*")
    message(FATAL_ERROR "quickstart did not report a non-zero CU mark count")
endif()
