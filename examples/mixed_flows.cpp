// Mixed-flow example: a low-end phone whose single data radio bearer
// carries both an L4S flow (Prague) and a classic flow (CUBIC) — the
// §4.2.3 scenario. Compares the four shared-DRB marking policies and shows
// why L4Span couples the probabilities (p_l4s = (2/K)·sqrt(p_classic)).
//
//   $ ./mixed_flows
#include <cstdio>

#include "scenario/cell_scenario.h"
#include "stats/table.h"

using namespace l4span;

int main()
{
    stats::table out({"marking policy", "prague Mbit/s", "cubic Mbit/s",
                      "prague RTT (ms)", "cubic RTT (ms)"});

    struct row {
        const char* label;
        core::shared_drb_policy policy;
    };
    for (const row r : {row{"original (ignore sharing)", core::shared_drb_policy::original},
                        row{"L4S strategy for all", core::shared_drb_policy::l4s_all},
                        row{"classic strategy for all", core::shared_drb_policy::classic_all},
                        row{"L4Span coupled", core::shared_drb_policy::coupled}}) {
        scenario::cell_spec cell;
        cell.num_ues = 1;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.separate_drbs_per_class = false;  // the low-end single-DRB UE
        cell.l4s.shared_policy = r.policy;
        cell.seed = 23;
        scenario::cell_scenario sim(cell);

        scenario::flow_spec prague;
        prague.cca = "prague";
        const int hp = sim.add_flow(prague);
        scenario::flow_spec cubic;
        cubic.cca = "cubic";
        const int hc = sim.add_flow(cubic);
        sim.run(sim::from_sec(12));

        out.add_row({r.label, stats::table::num(sim.goodput_mbps(hp), 2),
                     stats::table::num(sim.goodput_mbps(hc), 2),
                     stats::table::num(sim.rtt_ms(hp).median(), 1),
                     stats::table::num(sim.rtt_ms(hc).median(), 1)});
    }

    std::puts("Shared-DRB marking: Prague + CUBIC on one bearer (low-end UE)\n");
    out.print();
    std::puts("\nOnly the coupled strategy gives both flows a fair share: it marks the");
    std::puts("L4S flow at (2/K)*sqrt(p_classic), equalizing the two senders'");
    std::puts("response functions at equal RTT (paper §4.2.3, Fig. 16).");
    return 0;
}
