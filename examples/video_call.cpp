// Video-conferencing example: eight users on one cell running SCReAM
// (WebRTC-style self-clocked congestion control) while a neighbour runs a
// bulk CUBIC download. Shows how L4Span keeps interactive RTT low without
// starving the download — the paper's motivating workload.
//
//   $ ./video_call
#include <cstdio>

#include "scenario/cell_scenario.h"
#include "stats/table.h"

using namespace l4span;

int main()
{
    stats::table out({"CU mode", "video RTT p50 (ms)", "video RTT p95 (ms)",
                      "video rate (Mbit/s)", "download (Mbit/s)"});

    for (const bool with_l4span : {false, true}) {
        scenario::cell_spec cell;
        cell.num_ues = 9;
        cell.channel = "pedestrian";  // walking users
        cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;
        cell.seed = 7;
        scenario::cell_scenario sim(cell);

        // Eight video calls (UDP, L4S-capable via SCReAM).
        std::vector<int> calls;
        for (int u = 0; u < 8; ++u) {
            scenario::flow_spec call;
            call.cca = "scream";
            call.ue = u;
            call.wired_owd_ms = 10.0;
            call.media_max_bps = 8e6;  // 1080p ceiling
            calls.push_back(sim.add_flow(call));
        }
        // One neighbour saturating the cell with a classic download.
        scenario::flow_spec dl;
        dl.cca = "cubic";
        dl.ue = 8;
        const int hd = sim.add_flow(dl);

        sim.run(sim::from_sec(12));

        stats::sample_set rtt, rate;
        for (int h : calls) {
            for (double v : sim.rtt_ms(h).raw()) rtt.add(v);
            rate.add(sim.goodput_mbps(h));
        }
        out.add_row({with_l4span ? "with L4Span" : "vanilla RAN",
                     stats::table::num(rtt.median(), 1),
                     stats::table::num(rtt.percentile(95), 1),
                     stats::table::num(rate.median(), 2),
                     stats::table::num(sim.goodput_mbps(hd), 2)});
    }

    std::puts("Video conferencing: 8 SCReAM calls + 1 CUBIC download, walking users\n");
    out.print();
    std::puts("\nWith L4Span the calls keep conversational latency even while the");
    std::puts("classic download uses the remaining capacity of the cell.");
    return 0;
}
