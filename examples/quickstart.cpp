// Quickstart: one 5G UE downloading with TCP Prague, with and without
// L4Span in the CU. Prints the median one-way delay and goodput of both
// runs — the paper's headline comparison in one minute of code.
//
//   $ ./quickstart
#include <cstdio>

#include "scenario/cell_scenario.h"
#include "stats/table.h"

using namespace l4span;

int main()
{
    stats::table out({"CU mode", "Median OWD (ms)", "P90 OWD (ms)", "Goodput (Mbit/s)"});

    std::uint64_t cu_marks = 0;
    for (const bool with_l4span : {false, true}) {
        scenario::cell_spec cell;
        cell.num_ues = 1;
        cell.channel = "static";
        cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;

        scenario::cell_scenario sim(cell);

        scenario::flow_spec flow;
        flow.cca = "prague";        // the L4S reference sender
        flow.wired_owd_ms = 19.0;   // ~38 ms base RTT ("east" server)
        const int h = sim.add_flow(flow);

        sim.run(sim::from_sec(10));
        if (with_l4span) cu_marks = sim.l4span_layer()->marks();

        out.add_row({with_l4span ? "srsRAN + L4Span" : "srsRAN (vanilla)",
                     stats::table::num(sim.owd_ms(h).median(), 1),
                     stats::table::num(sim.owd_ms(h).percentile(90), 1),
                     stats::table::num(sim.goodput_mbps(h), 2)});
    }

    std::puts("L4Span quickstart: 1 UE, static channel, TCP Prague, 10 s download\n");
    out.print();
    std::printf("\nCU marks: %llu (congestion signals: downlink CE or short-circuited ACK rewrites)\n",
                static_cast<unsigned long long>(cu_marks));
    std::puts("\nL4Span keeps the RLC queue short by ECN-marking at the CU, so the");
    std::puts("sender's congestion window tracks the radio link's real capacity.");
    return 0;
}
