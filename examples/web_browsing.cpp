// Web-browsing example: a long-lived video-on-demand stream plus a train of
// short page-load transfers on the same phone. Without L4Span, every page
// load queues behind the stream's bytes in the deep RLC buffer; with
// L4Span, the buffer stays shallow and page loads finish ~4x faster
// (Fig. 11's workload as an application story).
//
//   $ ./web_browsing
#include <cstdio>

#include "scenario/cell_scenario.h"
#include "stats/table.h"

using namespace l4span;

int main()
{
    stats::table out({"CU mode", "page load p50 (ms)", "page load p90 (ms)",
                      "stream rate (Mbit/s)"});

    for (const bool with_l4span : {false, true}) {
        scenario::cell_spec cell;
        cell.num_ues = 1;
        cell.channel = "static";
        cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;
        cell.seed = 15;
        scenario::cell_scenario sim(cell);

        scenario::flow_spec stream;
        stream.cca = "cubic";  // classic video-on-demand CDN flow
        const int hs = sim.add_flow(stream);

        // Page clicks every 1.5 s: 48 kB of page assets each.
        std::vector<int> pages;
        for (int k = 0; k < 10; ++k) {
            scenario::flow_spec page;
            page.cca = "cubic";
            page.flow_bytes = 48 * 1024;
            page.start_time = sim::from_sec(3) + k * sim::from_ms(1500);
            pages.push_back(sim.add_flow(page));
        }
        sim.run(sim::from_sec(20));

        stats::sample_set fct;
        for (int h : pages)
            if (sim.fct_ms(h) >= 0) fct.add(sim.fct_ms(h));
        out.add_row({with_l4span ? "with L4Span" : "vanilla RAN",
                     fct.empty() ? "unfinished" : stats::table::num(fct.median(), 0),
                     fct.empty() ? "unfinished" : stats::table::num(fct.percentile(90), 0),
                     stats::table::num(sim.goodput_mbps(hs), 2)});
    }

    std::puts("Web browsing: page loads competing with a video stream on one phone\n");
    out.print();
    std::puts("\nShort flows no longer sit behind megabytes of streaming data in the");
    std::puts("RLC queue, so interactions complete in a fraction of the time.");
    return 0;
}
