// Trace-driven channel grid: DCI trace x congestion controller x transport,
// each point a 2-cell L4Span topology whose UEs replay NR-Scope-style
// per-slot (MCS, PRB) records instead of the synthetic fading model — the
// paper's Fig. 18 methodology applied to the full end-to-end stack, with an
// X2/Xn handover mid-run to exercise trace-cursor migration.
//
// Like bench_mc_handover, --jobs selects the *sharded* execution of each
// point (one event loop per cell); points run sequentially and stdout/JSON
// are byte-identical for any --jobs value. By default the traces come from
// the deterministic built-in generator (chan::synth_trace); pass
// `--trace-dir traces` to replay the committed NR-Scope-style files (or any
// directory holding the same file names).
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "chan/trace_channel.h"
#include "chan/trace_io.h"
#include "scenario/grid_runner.h"
#include "scenario/topology.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct trace_source {
    std::string label;
    std::shared_ptr<const chan::trace_data> data;
};

std::vector<trace_source> make_traces(const std::string& trace_dir)
{
    std::vector<trace_source> out;
    if (!trace_dir.empty()) {
        for (const char* file : {"nr_scope_fdd600_downtown.csv",
                                 "nr_scope_tdd2500_driving.csv",
                                 "synthetic_squarewave.csv"}) {
            auto t = chan::load_trace_file(trace_dir + "/" + file);
            out.push_back({t->name, std::move(t)});
        }
        return out;
    }
    // Built-in equivalents of the committed files: same cells, same knobs,
    // generated in-process so the bench is self-contained.
    chan::synth_trace_spec fdd;
    fdd.name = "synth-fdd600";
    fdd.seed = 0x600f;
    fdd.slots = 4000;
    fdd.slot = sim::from_ms(1);
    fdd.coherence = sim::from_ms(140);
    chan::synth_trace_spec tdd = fdd;
    tdd.name = "synth-tdd2500";
    tdd.seed = 0x25d0;
    tdd.coherence = sim::from_ms(34);
    chan::synth_trace_spec calm = fdd;
    calm.name = "synth-static";
    calm.seed = 0x57a7;
    calm.sigma_db = 0.8;
    calm.coherence = sim::from_ms(500);
    for (const auto& spec : {fdd, tdd, calm})
        out.push_back({spec.name,
                       std::make_shared<const chan::trace_data>(chan::synth_trace(spec))});
    return out;
}

struct point_result {
    stats::sample_set owd_ms;     // pooled over all flows
    stats::sample_set tput_mbps;  // one sample per flow
    std::uint64_t handovers = 0;
    std::uint64_t marks = 0;
    std::uint64_t events = 0;
    double wall_sec = 0.0;  // stderr only
};

point_result run_point(const trace_source& trace, const std::string& cca,
                       sim::tick duration, int jobs)
{
    const auto wall_start = std::chrono::steady_clock::now();
    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 2;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "trace";
    spec.cell.seed = 31;
    spec.jobs = jobs;
    // Both UEs of a cell replay the same trace, offset by 1 s so their
    // capacity dips do not line up (the multi-UE NR-Scope methodology).
    chan::trace_config a;
    a.data = trace.data;
    chan::trace_config b = a;
    b.offset = sim::from_sec(1);
    spec.cell.ue_traces = {a, b};

    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = cca;
        f.ue = ue;
        f.max_cwnd = 1536 * 1024;
        handles.push_back(topo.add_flow(f));
    }
    // One handover each way, mid-run: the trace cursors migrate with them.
    topo.schedule_handover(duration / 3, 0, 1);
    topo.schedule_handover(duration / 2, 2, 0);
    topo.run(duration);

    point_result r;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) r.owd_ms.add(v);
        r.tput_mbps.add(topo.goodput_mbps(h));
    }
    r.handovers = topo.handovers_completed();
    for (int c = 0; c < topo.num_cells(); ++c)
        if (const core::l4span* l4s = topo.cell_at(c).l4span_layer())
            r.marks += l4s->marks();
    r.events = topo.processed_events();
    r.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               wall_start)
                     .count();
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Trace-driven channel replay grid (DCI trace x CCA)",
                      "Fig. 18 methodology end-to-end: L4Span marking driven by "
                      "replayed NR-Scope-style DCI traces, OWD staying in the "
                      "~10 ms regime across capacity swings and handover");
    const auto traces = make_traces(args.trace_dir);
    std::vector<std::string> ccas{"prague", "cubic", "quic-prague"};
    sim::tick duration = sim::from_sec(4);

    std::vector<std::pair<std::size_t, std::size_t>> grid;  // (trace, cca)
    for (std::size_t t = 0; t < traces.size(); ++t)
        for (std::size_t c = 0; c < ccas.size(); ++c) grid.emplace_back(t, c);
    if (args.quick) {
        grid = {{0, 0}, {1, 2}};
        duration = sim::from_sec(3);
    }
    const int jobs = args.jobs > 0 ? args.jobs : scenario::default_jobs();
    std::fprintf(stderr, "trace_replay: %zu points, sharded over up to %d worker(s)\n",
                 grid.size(), jobs);

    auto summary = stats::json::object();
    summary.set("figure", "trace_replay").set("quick", args.quick);
    summary.set("source", args.trace_dir.empty() ? "synthetic" : "trace-dir");
    auto json_points = stats::json::array();

    stats::table t({"trace", "cca", "handovers", "OWD ms p10/p25/p50/p75/p90",
                    "per-UE Mbit/s p50", "CU marks", "sim events"});
    for (const auto& [ti, ci] : grid) {
        const auto r = run_point(traces[ti], ccas[ci], duration, jobs);
        std::fprintf(stderr, "  %s x %s: %.1f s wall, %llu events\n",
                     traces[ti].label.c_str(), ccas[ci].c_str(), r.wall_sec,
                     static_cast<unsigned long long>(r.events));
        t.add_row({traces[ti].label, ccas[ci], std::to_string(r.handovers),
                   benchutil::box(r.owd_ms), stats::table::num(r.tput_mbps.median(), 2),
                   std::to_string(r.marks), std::to_string(r.events)});
        auto jp = stats::json::object();
        jp.set("trace", traces[ti].label)
            .set("cca", ccas[ci])
            .set("handovers", r.handovers)
            .set("owd_ms", benchutil::box_json(r.owd_ms))
            .set("tput_mbps", benchutil::box_json(r.tput_mbps))
            .set("cu_marks", r.marks)
            .set("sim_events", r.events);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
