// Fig. 21 — Wall-clock processing time of L4Span's three event handlers,
// measured with google-benchmark against a busy entity (64 UEs' state, deep
// profile tables). The paper reports <2 us for uplink/feedback and <4 us
// worst-case for downlink packets.
#include <benchmark/benchmark.h>

#include "core/l4span.h"

using namespace l4span;

namespace {

constexpr int k_ues = 64;

// Builds an entity with 64 UEs of warmed-up state.
core::l4span make_busy_entity()
{
    core::l4span l(core::l4span_config{});
    for (int u = 1; u <= k_ues; ++u) {
        for (int i = 0; i < 256; ++i) {
            net::packet p;
            p.ft = {0x0a000000u + static_cast<std::uint32_t>(u), 0xc0a80001u, 443,
                    static_cast<std::uint16_t>(50000 + u), net::ip_proto::tcp};
            p.ecn_field = net::ecn::ect1;
            p.tcp = net::tcp_header{};
            p.payload_bytes = 1400;
            const sim::tick t = i * sim::from_us(500);
            l.on_dl_packet(p, static_cast<ran::rnti_t>(u), 1,
                           static_cast<ran::pdcp_sn_t>(i + 1), t);
            if (i % 2 == 0) {
                ran::dl_delivery_status st;
                st.ue = static_cast<ran::rnti_t>(u);
                st.drb = 1;
                st.highest_transmitted_sn = static_cast<ran::pdcp_sn_t>(i);
                st.has_transmitted = true;
                st.timestamp = t;
                l.on_delivery_status(st, t);
            }
        }
    }
    return l;
}

void bm_dl_packet(benchmark::State& state)
{
    auto l = make_busy_entity();
    ran::pdcp_sn_t sn = 1000;
    sim::tick t = sim::from_sec(1);
    int u = 1;
    for (auto _ : state) {
        net::packet p;
        p.ft = {0x0a000000u + static_cast<std::uint32_t>(u), 0xc0a80001u, 443,
                static_cast<std::uint16_t>(50000 + u), net::ip_proto::tcp};
        p.ecn_field = net::ecn::ect1;
        p.tcp = net::tcp_header{};
        p.payload_bytes = 1400;
        t += sim::from_us(10);
        benchmark::DoNotOptimize(
            l.on_dl_packet(p, static_cast<ran::rnti_t>(u), 1, ++sn, t));
        u = u % k_ues + 1;
    }
    state.SetLabel("on_dl_packet, busy 64-UE state");
}

void bm_ul_ack(benchmark::State& state)
{
    auto l = make_busy_entity();
    sim::tick t = sim::from_sec(1);
    int u = 1;
    for (auto _ : state) {
        net::packet ack;
        ack.ft = net::five_tuple{0x0a000000u + static_cast<std::uint32_t>(u), 0xc0a80001u,
                                 443, static_cast<std::uint16_t>(50000 + u),
                                 net::ip_proto::tcp}
                     .reversed();
        ack.tcp = net::tcp_header{};
        ack.tcp->flags.ack = true;
        ack.tcp->accecn.present = true;
        t += sim::from_us(10);
        benchmark::DoNotOptimize(l.on_ul_packet(ack, static_cast<ran::rnti_t>(u), t));
        u = u % k_ues + 1;
    }
    state.SetLabel("on_ul_packet (AccECN rewrite), busy 64-UE state");
}

void bm_ran_feedback(benchmark::State& state)
{
    auto l = make_busy_entity();
    sim::tick t = sim::from_sec(1);
    ran::pdcp_sn_t sn = 256;
    int u = 1;
    for (auto _ : state) {
        ran::dl_delivery_status st;
        st.ue = static_cast<ran::rnti_t>(u);
        st.drb = 1;
        st.highest_transmitted_sn = sn;
        st.has_transmitted = true;
        st.highest_delivered_sn = sn > 4 ? sn - 4 : 0;
        st.has_delivered = sn > 4;
        t += sim::from_us(10);
        st.timestamp = t;
        l.on_delivery_status(st, t);
        u = u % k_ues + 1;
        if (u == 1) ++sn;
    }
    state.SetLabel("on_ran_feedback, busy 64-UE state");
}

BENCHMARK(bm_dl_packet);
BENCHMARK(bm_ul_ack);
BENCHMARK(bm_ran_feedback);

}  // namespace

BENCHMARK_MAIN();
