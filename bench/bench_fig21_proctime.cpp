// Fig. 21 — Wall-clock processing time of L4Span's three event handlers
// against a busy entity (64 UEs' state, deep profile tables), plus a
// per-stage breakdown of the simulator's own hot path (RLC / MAC / AQM /
// L4Span) so hot-path PRs start from data rather than a fresh profile.
// The paper reports <2 us for uplink/feedback and <4 us worst-case for
// downlink packets.
//
// Measurement is plain std::chrono (steady_clock around a tight loop,
// one discarded warmup rep, median of three): no google-benchmark
// dependency, so the binary builds everywhere the simulator does and the
// JSON it emits can be gated in CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "aqm/dualpi2.h"
#include "bench_util.h"
#include "core/l4span.h"
#include "net/packet_pool.h"
#include "ran/mac.h"
#include "ran/rlc.h"
#include "stats/json.h"
#include "stats/table.h"

using namespace l4span;

namespace {

constexpr int k_ues = 64;

// Median-of-3 ns/op around `body(n)`; one discarded warmup rep.
template <typename Body>
double ns_per_op(Body&& body, int n)
{
    body(n / 10 + 1);  // warmup, discarded
    std::vector<double> samples;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        body(n);
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count() /
                          n);
    }
    std::sort(samples.begin(), samples.end());
    return samples[1];
}

net::packet make_dl_packet(int u)
{
    net::packet p;
    p.ft = {0x0a000000u + static_cast<std::uint32_t>(u), 0xc0a80001u, 443,
            static_cast<std::uint16_t>(50000 + u), net::ip_proto::tcp};
    p.ecn_field = net::ecn::ect1;
    p.tcp = net::tcp_header{};
    p.payload_bytes = 1400;
    return p;
}

// Builds an entity with 64 UEs of warmed-up state.
core::l4span make_busy_entity()
{
    core::l4span l(core::l4span_config{});
    for (int u = 1; u <= k_ues; ++u) {
        for (int i = 0; i < 256; ++i) {
            net::packet p = make_dl_packet(u);
            const sim::tick t = i * sim::from_us(500);
            l.on_dl_packet(p, static_cast<ran::rnti_t>(u), 1,
                           static_cast<ran::pdcp_sn_t>(i + 1), t);
            if (i % 2 == 0) {
                ran::dl_delivery_status st;
                st.ue = static_cast<ran::rnti_t>(u);
                st.drb = 1;
                st.highest_transmitted_sn = static_cast<ran::pdcp_sn_t>(i);
                st.has_transmitted = true;
                st.timestamp = t;
                l.on_delivery_status(st, t);
            }
        }
    }
    return l;
}

// --- L4Span handlers (the paper's Fig. 21 measurement) ----------------------

double bench_dl_packet(int n_ops)
{
    auto l = make_busy_entity();
    return ns_per_op(
        [&, sn = ran::pdcp_sn_t{1000}, t = sim::from_sec(1), u = 1](int n) mutable {
            for (int i = 0; i < n; ++i) {
                net::packet p = make_dl_packet(u);
                t += sim::from_us(10);
                l.on_dl_packet(p, static_cast<ran::rnti_t>(u), 1, ++sn, t);
                u = u % k_ues + 1;
            }
        },
        n_ops);
}

double bench_ul_ack(int n_ops)
{
    auto l = make_busy_entity();
    return ns_per_op(
        [&, t = sim::from_sec(1), u = 1](int n) mutable {
            for (int i = 0; i < n; ++i) {
                net::packet ack;
                ack.ft = net::five_tuple{0x0a000000u + static_cast<std::uint32_t>(u),
                                         0xc0a80001u, 443,
                                         static_cast<std::uint16_t>(50000 + u),
                                         net::ip_proto::tcp}
                             .reversed();
                ack.tcp = net::tcp_header{};
                ack.tcp->flags.ack = true;
                ack.tcp->accecn.present = true;
                t += sim::from_us(10);
                l.on_ul_packet(ack, static_cast<ran::rnti_t>(u), t);
                u = u % k_ues + 1;
            }
        },
        n_ops);
}

double bench_ran_feedback(int n_ops)
{
    auto l = make_busy_entity();
    return ns_per_op(
        [&, t = sim::from_sec(1), sn = ran::pdcp_sn_t{256}, u = 1](int n) mutable {
            for (int i = 0; i < n; ++i) {
                ran::dl_delivery_status st;
                st.ue = static_cast<ran::rnti_t>(u);
                st.drb = 1;
                st.highest_transmitted_sn = sn;
                st.has_transmitted = true;
                st.highest_delivered_sn = sn > 4 ? sn - 4 : 0;
                st.has_delivered = sn > 4;
                t += sim::from_us(10);
                st.timestamp = t;
                l.on_delivery_status(st, t);
                u = u % k_ues + 1;
                if (u == 1) ++sn;
            }
        },
        n_ops);
}

// --- simulator hot-path stages ----------------------------------------------

// RLC: one enqueue + one grant-sized pull per op (the DU-side per-SDU work:
// queue, SN-ring bookkeeping, transmit-status emission, pool references).
double bench_rlc_stage(int n_ops)
{
    net::packet_pool pool;
    ran::rlc_tx tx(1, 1, ran::rlc_config{}, pool);
    std::vector<ran::tb_chunk> chunks;
    return ns_per_op(
        [&, t = sim::tick{0}, sn = ran::pdcp_sn_t{1}](int n) mutable {
            for (int i = 0; i < n; ++i) {
                t += sim::from_us(10);
                ran::pdcp_sdu sdu;
                sdu.sn = sn++;
                sdu.pkt = make_dl_packet(1);
                sdu.size = 1400;
                sdu.ingress_time = t;
                tx.enqueue(std::move(sdu), t);
                chunks.clear();
                tx.pull(1500, t, chunks);
                for (auto& c : chunks)
                    if (c.pkt) pool.release(c.pkt);
            }
        },
        n_ops);
}

// MAC: one full 64-UE PRB allocation per op (the per-DL-slot scheduler run).
double bench_mac_stage(int n_ops)
{
    ran::mac_config cfg;
    ran::prb_allocator alloc(cfg);
    std::vector<ran::sched_input> inputs;
    for (int u = 0; u < k_ues; ++u) {
        alloc.add_ue();
        ran::sched_input si;
        si.ue_index = static_cast<std::uint32_t>(u);
        si.backlog_bytes = 200'000;
        si.bytes_per_prb = 80.0 + u;
        inputs.push_back(si);
    }
    std::vector<int> grants;
    return ns_per_op(
        [&](int n) {
            for (int i = 0; i < n; ++i) alloc.allocate(inputs, cfg.n_prb, grants);
        },
        n_ops);
}

// AQM: one DualPI2 enqueue + dequeue per op (sojourn sampling, PI update,
// step marking).
double bench_aqm_stage(int n_ops)
{
    aqm::dualpi2_queue q;
    return ns_per_op(
        [&, t = sim::tick{0}](int n) mutable {
            for (int i = 0; i < n; ++i) {
                t += sim::from_us(10);
                q.enqueue(make_dl_packet(1), t);
                (void)q.dequeue(t + sim::from_us(5));
            }
        },
        n_ops);
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const int n_handler = args.quick ? 50'000 : 500'000;
    const int n_stage = args.quick ? 50'000 : 500'000;
    const int n_mac = args.quick ? 5'000 : 50'000;  // a full 64-UE slot per op

    benchutil::header("Fig. 21: per-packet processing time",
                      "paper: <2 us uplink/feedback, <4 us worst-case downlink");

    auto summary = stats::json::object();
    summary.set("figure", "fig21").set("quick", args.quick);

    std::printf("\nL4Span handlers (busy 64-UE entity):\n");
    stats::table handlers({"handler", "ns/op"});
    auto handlers_json = stats::json::object();
    const struct {
        const char* name;
        double ns;
    } handler_rows[] = {
        {"on_dl_packet", bench_dl_packet(n_handler)},
        {"on_ul_packet (AccECN rewrite)", bench_ul_ack(n_handler)},
        {"on_ran_feedback", bench_ran_feedback(n_handler)},
    };
    for (const auto& r : handler_rows) {
        handlers.add_row({r.name, stats::table::num(r.ns, 1)});
        handlers_json.set(r.name, r.ns);
    }
    handlers.print();
    summary.set("l4span_handlers_ns", std::move(handlers_json));

    std::printf("\nSimulator hot-path stages (per-op cost the busy-cell rows"
                " are made of):\n");
    stats::table stages({"stage", "unit of work", "ns/op"});
    auto stages_json = stats::json::object();
    const struct {
        const char* key;
        const char* unit;
        double ns;
    } stage_rows[] = {
        {"rlc", "enqueue + grant pull (1 SDU)", bench_rlc_stage(n_stage)},
        {"mac", "64-UE PRB allocation (1 slot)", bench_mac_stage(n_mac)},
        {"aqm", "DualPI2 enqueue + dequeue", bench_aqm_stage(n_stage)},
        {"l4span", "DL mark decision (= on_dl_packet)", handler_rows[0].ns},
    };
    for (const auto& r : stage_rows) {
        stages.add_row({r.key, r.unit, stats::table::num(r.ns, 1)});
        stages_json.set(r.key, r.ns);
    }
    stages.print();
    summary.set("stage_ns", std::move(stages_json));

    return benchutil::finish(args, summary);
}
