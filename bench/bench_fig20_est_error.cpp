// Fig. 20 — Egress-rate estimation error: L4Span's estimate vs the ground-
// truth RLC dequeue rate (from the MAC transmission log), 16 UEs, three
// channel conditions. The paper reports errors centered near 0%.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 20: egress-rate estimation error",
                      "error distribution centered near 0% in all channels");
    stats::table t({"channel", "error %% p10/p25/p50/p75/p90", "|error| p50 %%"});
    for (const std::string chan : {"static", "pedestrian", "vehicular"}) {
        scenario::cell_spec cell;
        cell.num_ues = 16;
        cell.channel = chan;
        cell.cu = scenario::cu_mode::l4span;
        cell.seed = 101;
        cell.record_tx_log = true;  // ground truth for the error distribution
        scenario::cell_scenario s(cell);
        for (int u = 0; u < 16; ++u) {
            scenario::flow_spec f;
            // Classic senders keep the working buffer the paper's Fig. 17
            // shows: the queue is continuously backlogged, so the RLC log
            // rate and the estimate measure the same quantity.
            f.cca = "cubic";
            f.ue = u;
            s.add_flow(f);
        }

        // Sample the estimate every 10 ms during the run and compare with
        // the ground-truth rate over the same trailing window.
        struct probe {
            sim::tick t;
            int ue;
            double est_Bps;
        };
        std::vector<probe> probes;
        const sim::tick window = cell.l4s.coherence_time / 2;
        std::function<void()> sample = [&] {
            for (int u = 0; u < 16; ++u) {
                const auto v = s.l4span_layer()->view(static_cast<ran::rnti_t>(u + 1), 1);
                // Probe while the queue is genuinely backlogged: the
                // estimate and the RLC service log then measure the same
                // quantity (an idle bearer has no meaningful dequeue rate).
                if (v.rate_hat_Bps > 0 && v.standing_bytes >= 8000)
                    probes.push_back({s.loop().now(), u, v.rate_hat_Bps});
            }
            s.loop().schedule_after(sim::from_ms(10), sample);
        };
        s.loop().schedule_after(sim::from_sec(1), sample);
        s.run(sim::from_sec(6));

        stats::sample_set err, abs_err;
        for (const auto& p : probes) {
            // Ground truth: the RLC's service rate over the same window,
            // from the MAC transmission log. Gaps longer than one TDD
            // period mean the queue stood empty (application-limited), so
            // they are excluded from the denominator — the same busy-period
            // semantics the estimator uses.
            // Anchor the window at the last service instant (the estimator
            // anchors Eq. (3) at the last transmit feedback, not wall time).
            sim::tick end = -1;
            for (const auto& [ts, b] : s.tx_log(p.ue))
                if (ts <= p.t && ts > end) end = ts;
            if (end < 0) continue;
            std::uint64_t bytes = 0;
            sim::tick idle = 0, prev = end - window;
            const sim::tick max_gap = sim::from_ms(3);
            for (const auto& [ts, b] : s.tx_log(p.ue)) {
                if (ts <= end - window || ts > end) continue;
                if (ts - prev > max_gap) idle += (ts - prev) - max_gap;
                prev = ts;
                bytes += b;
            }
            if (bytes == 0) continue;  // no service in the window
            const sim::tick busy = std::max<sim::tick>(window - idle, window / 16);
            const double truth = static_cast<double>(bytes) / sim::to_sec(busy);
            const double e = 100.0 * (p.est_Bps - truth) / truth;
            err.add(e);
            abs_err.add(std::abs(e));
        }
        t.add_row({chan, benchutil::box(err), stats::table::num(abs_err.median(), 1)});
    }
    t.print();
    return 0;
}
