// Fig. 24 (appendix B) — BBR (v1) and Reno under the Fig. 9 grid. Reno's
// RTT drops >97% under L4Span; BBR largely ignores ECN, so medians barely
// move while variance grows.
//
// Grid points run in parallel via scenario::grid_runner (--jobs N); the
// table prints in fixed grid order regardless of worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct grid_point {
    std::size_t queue;
    int ues;
    std::string cca;
    std::string chan;
    bool on;
};

benchutil::tcp_grid_result run_cell(const grid_point& p, sim::tick duration)
{
    // Fig. 24 keeps the default 19 ms one-way wired delay (~38 ms base RTT).
    return benchutil::run_tcp_grid_cell(p.cca, p.ues, p.queue, 19.0, p.chan, p.on,
                                        2000, duration);
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 24: BBR and Reno grid",
                      "Reno OWD -97%; BBR roughly unchanged medians (no ECN react)");
    const sim::tick duration = sim::from_sec(6);
    std::vector<std::size_t> queues{16384, 256};
    std::vector<int> ue_counts{16, 64};
    std::vector<std::string> ccas{"bbr", "reno"};
    std::vector<std::string> chans{"static", "mobile"};
    if (args.quick) {
        queues = {256};
        ue_counts = {16};
        ccas = {"reno"};
        chans = {"static"};
    }

    std::vector<grid_point> points;
    for (const std::size_t queue : queues)
        for (const int ues : ue_counts)
            for (const auto& cca : ccas)
                for (const auto& chan : chans)
                    for (const bool on : {false, true})
                        points.push_back({queue, ues, cca, chan, on});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig24: %zu grid points on %d worker(s)\n", points.size(),
                 pool.jobs());
    const auto results = pool.map(
        points.size(), [&](std::size_t i) { return run_cell(points[i], duration); });

    auto summary = stats::json::object();
    summary.set("figure", "fig24").set("quick", args.quick);
    auto json_points = stats::json::array();

    std::size_t idx = 0;
    for (const std::size_t queue : queues) {
        for (const int ues : ue_counts) {
            std::printf("\n--- %d UEs, RLC queue %zu SDUs, base RTT 38 ms ---\n", ues,
                        queue);
            stats::table t({"cca", "chan", "L4Span", "OWD ms p10/p25/p50/p75/p90",
                            "per-UE Mbit/s p10..p90"});
            for (const auto& cca : ccas) {
                for (const auto& chan : chans) {
                    for (const bool on : {false, true}) {
                        const auto& r = results[idx];
                        const auto& p = points[idx];
                        ++idx;
                        t.add_row({cca, chan, on ? "+" : "-", benchutil::box(r.owd_ms),
                                   benchutil::box(r.tput_mbps, 2)});
                        auto jp = stats::json::object();
                        jp.set("cca", p.cca)
                            .set("chan", p.chan)
                            .set("l4span", p.on)
                            .set("ues", p.ues)
                            .set("rlc_queue_sdus", p.queue)
                            .set("owd_ms", benchutil::box_json(r.owd_ms))
                            .set("tput_mbps", benchutil::box_json(r.tput_mbps));
                        json_points.push(std::move(jp));
                    }
                }
            }
            t.print();
        }
    }
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
