// Fig. 24 (appendix B) — BBR (v1) and Reno under the Fig. 9 grid. Reno's
// RTT drops >97% under L4Span; BBR largely ignores ECN, so medians barely
// move while variance grows.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 24: BBR and Reno grid",
                      "Reno OWD -97%; BBR roughly unchanged medians (no ECN react)");
    const sim::tick duration = sim::from_sec(6);
    for (const std::size_t queue : {std::size_t{16384}, std::size_t{256}}) {
        for (const int ues : {16, 64}) {
            std::printf("\n--- %d UEs, RLC queue %zu SDUs, base RTT 38 ms ---\n", ues,
                        queue);
            stats::table t({"cca", "chan", "L4Span", "OWD ms p10/p25/p50/p75/p90",
                            "per-UE Mbit/s p10..p90"});
            for (const std::string cca : {"bbr", "reno"}) {
                for (const std::string chan : {"static", "mobile"}) {
                    for (const bool on : {false, true}) {
                        scenario::cell_spec cell;
                        cell.num_ues = ues;
                        cell.channel = chan;
                        cell.rlc_queue_sdus = queue;
                        cell.cu = on ? scenario::cu_mode::l4span
                                     : scenario::cu_mode::none;
                        cell.seed = 2000 + static_cast<std::uint64_t>(ues) + queue;
                        scenario::cell_scenario s(cell);
                        std::vector<int> handles;
                        for (int u = 0; u < ues; ++u) {
                            scenario::flow_spec f;
                            f.cca = cca;
                            f.ue = u;
                            f.max_cwnd = 1536 * 1024;
                            handles.push_back(s.add_flow(f));
                        }
                        s.run(duration);
                        stats::sample_set owd, tput;
                        for (int h : handles) {
                            for (double v : s.owd_ms(h).raw()) owd.add(v);
                            tput.add(s.goodput_mbps(h));
                        }
                        t.add_row({cca, chan, on ? "+" : "-", benchutil::box(owd),
                                   benchutil::box(tput, 2)});
                    }
                }
            }
            t.print();
        }
    }
    return 0;
}
