// Fig. 9 — One-way delay vs per-UE throughput for Prague, BBRv2 and CUBIC
// under a severely congested RAN: {16, 64} UEs x RLC queue {16384, 256
// SDUs} x base RTT {38, 106} ms x channel {static, mobile} x {vanilla,
// +L4Span}. Box statistics match the paper's plots (p10/p25/p50/p75/p90).
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

namespace {

struct cell_result {
    stats::sample_set owd_ms;      // pooled over all UEs
    stats::sample_set tput_mbps;   // one sample per UE
};

cell_result run_cell(const std::string& cca, int ues, std::size_t queue, double owd_ms,
                     const std::string& channel, bool l4span_on, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = ues;
    cell.channel = channel;
    cell.rlc_queue_sdus = queue;
    cell.cu = l4span_on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = 1000 + static_cast<std::uint64_t>(ues) + queue;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < ues; ++u) {
        scenario::flow_spec f;
        f.cca = cca;
        f.ue = u;
        f.wired_owd_ms = owd_ms;
        f.max_cwnd = 1536 * 1024;  // Linux default-autotuned receive window
        handles.push_back(s.add_flow(f));
    }
    s.run(duration);

    cell_result r;
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) r.owd_ms.add(v);
        r.tput_mbps.add(s.goodput_mbps(h));
    }
    return r;
}

}  // namespace

int main()
{
    benchutil::header("Fig. 9: TCP one-way delay vs per-UE throughput grid",
                      "L4Span cuts Prague/CUBIC median OWD by ~98% (static), ~97% "
                      "(mobile), BBRv2 by ~52%, at <10% median throughput cost");
    const sim::tick duration = sim::from_sec(6);
    for (const double rtt : {19.0, 53.0}) {          // one-way; ~38 / ~106 ms RTT
        for (const std::size_t queue : {std::size_t{16384}, std::size_t{256}}) {
            for (const int ues : {16, 64}) {
                std::printf("\n--- %d UEs, RLC queue %zu SDUs, base RTT %.0f ms ---\n",
                            ues, queue, 2 * rtt);
                stats::table t({"cca", "chan", "L4Span", "OWD ms p10/p25/p50/p75/p90",
                                "per-UE Mbit/s p10..p90", "OWD reduction"});
                for (const std::string cca : {"prague", "bbr2", "cubic"}) {
                    for (const std::string chan : {"static", "mobile"}) {
                        double base_median = 0.0;
                        for (const bool on : {false, true}) {
                            const auto r =
                                run_cell(cca, ues, queue, rtt, chan, on, duration);
                            std::string reduction = "-";
                            if (!on) {
                                base_median = r.owd_ms.median();
                            } else if (base_median > 0.0) {
                                reduction = stats::table::num(
                                    100.0 * (1.0 - r.owd_ms.median() / base_median), 1) +
                                    "%";
                            }
                            t.add_row({cca, chan, on ? "+" : "-",
                                       benchutil::box(r.owd_ms),
                                       benchutil::box(r.tput_mbps, 2), reduction});
                        }
                    }
                }
                t.print();
            }
        }
    }
    return 0;
}
