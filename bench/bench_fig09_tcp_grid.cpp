// Fig. 9 — One-way delay vs per-UE throughput for Prague, BBRv2 and CUBIC
// under a severely congested RAN: {16, 64} UEs x RLC queue {16384, 256
// SDUs} x base RTT {38, 106} ms x channel {static, mobile} x {vanilla,
// +L4Span}. Box statistics match the paper's plots (p10/p25/p50/p75/p90).
//
// The grid lives in the scenario engine as the "fig09" builtin (family
// tcp_grid): this binary is parse-args + run_scenario, so `l4span_run` on
// the exported JSON prints the exact same bytes. The 96 grid points fan out
// over scenario::grid_runner (--jobs N, default all cores) and print in
// fixed grid order, so stdout is byte-identical for any worker count.
// --export-scenario PATH dumps the (possibly --quick) grid as JSON.
#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"

using namespace l4span;

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const auto spec = scenario::builtin_scenario("fig09", args.quick);
    if (!args.export_scenario.empty())
        return scenario::write_scenario_file(args.export_scenario, spec);
    return scenario::run_scenario(spec, args);
}
