// Fig. 9 — One-way delay vs per-UE throughput for Prague, BBRv2 and CUBIC
// under a severely congested RAN: {16, 64} UEs x RLC queue {16384, 256
// SDUs} x base RTT {38, 106} ms x channel {static, mobile} x {vanilla,
// +L4Span}. Box statistics match the paper's plots (p10/p25/p50/p75/p90).
//
// The 96 grid points are independent cells; they fan out over
// scenario::grid_runner (--jobs N, default all cores) and print in fixed
// grid order, so stdout is byte-identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct grid_point {
    double rtt;
    std::size_t queue;
    int ues;
    std::string cca;
    std::string chan;
    bool on;
};

benchutil::tcp_grid_result run_cell(const grid_point& p, sim::tick duration,
                                    bool impair_noop, const std::string& obs_out)
{
    return benchutil::run_tcp_grid_cell(p.cca, p.ues, p.queue, p.rtt, p.chan, p.on,
                                        1000, duration, impair_noop, obs_out);
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 9: TCP one-way delay vs per-UE throughput grid",
                      "L4Span cuts Prague/CUBIC median OWD by ~98% (static), ~97% "
                      "(mobile), BBRv2 by ~52%, at <10% median throughput cost");
    const sim::tick duration = sim::from_sec(6);
    std::vector<double> rtts{19.0, 53.0};  // one-way; ~38 / ~106 ms RTT
    std::vector<std::size_t> queues{16384, 256};
    std::vector<int> ue_counts{16, 64};
    std::vector<std::string> ccas{"prague", "bbr2", "cubic"};
    std::vector<std::string> chans{"static", "mobile"};
    if (args.quick) {  // 2-point CI slice: one cell, with and without L4Span
        rtts = {19.0};
        queues = {256};
        ue_counts = {16};
        ccas = {"prague"};
        chans = {"static"};
    }

    std::vector<grid_point> points;
    for (const double rtt : rtts)
        for (const std::size_t queue : queues)
            for (const int ues : ue_counts)
                for (const auto& cca : ccas)
                    for (const auto& chan : chans)
                        for (const bool on : {false, true})
                            points.push_back({rtt, queue, ues, cca, chan, on});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig09: %zu grid points on %d worker(s)\n", points.size(),
                 pool.jobs());
    const auto results =
        pool.map(points.size(), [&](std::size_t i) {
            // One artifact prefix per grid point, so parallel points never
            // write over each other's JSONL files.
            const std::string obs = args.obs_out.empty()
                                        ? std::string()
                                        : args.obs_out + "-" + std::to_string(i);
            return run_cell(points[i], duration, args.impair_noop, obs);
        });

    auto summary = stats::json::object();
    summary.set("figure", "fig09").set("quick", args.quick);
    auto json_points = stats::json::array();

    std::size_t idx = 0;
    for (const double rtt : rtts) {
        for (const std::size_t queue : queues) {
            for (const int ues : ue_counts) {
                std::printf("\n--- %d UEs, RLC queue %zu SDUs, base RTT %.0f ms ---\n",
                            ues, queue, 2 * rtt);
                stats::table t({"cca", "chan", "L4Span", "OWD ms p10/p25/p50/p75/p90",
                                "per-UE Mbit/s p10..p90", "OWD reduction"});
                for (const auto& cca : ccas) {
                    for (const auto& chan : chans) {
                        double base_median = 0.0;
                        for (const bool on : {false, true}) {
                            const auto& r = results[idx];
                            const auto& p = points[idx];
                            ++idx;
                            std::string reduction = "-";
                            double reduction_pct = 0.0;
                            if (!on) {
                                base_median = r.owd_ms.median();
                            } else if (base_median > 0.0) {
                                reduction_pct =
                                    100.0 * (1.0 - r.owd_ms.median() / base_median);
                                reduction = stats::table::num(reduction_pct, 1) + "%";
                            }
                            t.add_row({cca, chan, on ? "+" : "-",
                                       benchutil::box(r.owd_ms),
                                       benchutil::box(r.tput_mbps, 2), reduction});
                            auto jp = stats::json::object();
                            jp.set("cca", p.cca)
                                .set("chan", p.chan)
                                .set("l4span", p.on)
                                .set("ues", p.ues)
                                .set("rlc_queue_sdus", p.queue)
                                .set("base_rtt_ms", 2 * p.rtt)
                                .set("owd_ms", benchutil::box_json(r.owd_ms))
                                .set("tput_mbps", benchutil::box_json(r.tput_mbps));
                            if (on) jp.set("owd_reduction_pct", reduction_pct);
                            json_points.push(std::move(jp));
                        }
                    }
                }
                t.print();
            }
        }
    }
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
