// Fig. 16 — One DRB shared by an L4S (Prague) and a classic (CUBIC) flow:
// the four marking strategies of §6.2.6. The y-axis metric is the L4S
// flow's share: r_l4s/(r_l4s+r_classic) and RTT_l4s/(RTT_l4s+RTT_classic);
// 50% on both axes is the fair outcome.
//
// The four strategies are independent cells fanned out over
// scenario::grid_runner; stdout stays byte-identical for any worker count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct strategy {
    const char* label;
    core::shared_drb_policy policy;
};

struct share_result {
    double prague_mbps = 0.0;
    double cubic_mbps = 0.0;
    double prague_rtt_ms = 0.0;
    double cubic_rtt_ms = 0.0;
};

share_result run_cell(const strategy& st, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.separate_drbs_per_class = false;  // the low-end single-DRB UE
    cell.l4s.shared_policy = st.policy;
    cell.seed = 71;
    scenario::cell_scenario s(cell);
    scenario::flow_spec prague;
    prague.cca = "prague";
    const int hp = s.add_flow(prague);
    scenario::flow_spec cubic;
    cubic.cca = "cubic";
    const int hc = s.add_flow(cubic);
    s.run(duration);

    share_result r;
    r.prague_mbps = s.goodput_mbps(hp);
    r.cubic_mbps = s.goodput_mbps(hc);
    r.prague_rtt_ms = s.rtt_ms(hp).median();
    r.cubic_rtt_ms = s.rtt_ms(hc).median();
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 16: shared-DRB marking strategies",
                      "'original' starves L4S, 'L4S-for-all' starves classic "
                      "(~25%), 'classic-for-all' is noisy; L4Span's coupling "
                      "lands near 50/50 with the least variance");
    std::vector<strategy> strategies{
        {"original", core::shared_drb_policy::original},
        {"L4S-for-all", core::shared_drb_policy::l4s_all},
        {"classic-for-all", core::shared_drb_policy::classic_all},
        {"L4Span (coupled)", core::shared_drb_policy::coupled},
    };
    if (args.quick)  // CI slice: the strawman vs the paper's design
        strategies = {strategies.front(), strategies.back()};
    const sim::tick duration = sim::from_sec(15);

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig16: %zu strategies on %d worker(s)\n", strategies.size(),
                 pool.jobs());
    const auto results = pool.map(strategies.size(), [&](std::size_t i) {
        return run_cell(strategies[i], duration);
    });

    auto summary = stats::json::object();
    summary.set("figure", "fig16").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"strategy", "L4S tput share (%)", "L4S RTT share (%)",
                    "prague Mbit/s", "cubic Mbit/s"});
    for (std::size_t i = 0; i < strategies.size(); ++i) {
        const auto& r = results[i];
        const double rp = r.prague_mbps, rc = r.cubic_mbps;
        const double tp = r.prague_rtt_ms, tc = r.cubic_rtt_ms;
        const double tput_share = rp + rc > 0 ? 100.0 * rp / (rp + rc) : 0;
        const double rtt_share = tp + tc > 0 ? 100.0 * tp / (tp + tc) : 0;
        t.add_row({strategies[i].label, stats::table::num(tput_share, 1),
                   stats::table::num(rtt_share, 1), stats::table::num(rp, 2),
                   stats::table::num(rc, 2)});
        auto jp = stats::json::object();
        jp.set("strategy", strategies[i].label)
            .set("l4s_tput_share_pct", tput_share)
            .set("l4s_rtt_share_pct", rtt_share)
            .set("prague_mbps", rp)
            .set("cubic_mbps", rc);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
