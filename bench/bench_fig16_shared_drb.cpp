// Fig. 16 — One DRB shared by an L4S (Prague) and a classic (CUBIC) flow:
// the four marking strategies of §6.2.6. The y-axis metric is the L4S
// flow's share: r_l4s/(r_l4s+r_classic) and RTT_l4s/(RTT_l4s+RTT_classic);
// 50% on both axes is the fair outcome.
//
// The grid lives in the scenario engine as the "fig16" builtin (family
// shared_drb); the four strategies are independent cells fanned out over
// scenario::grid_runner, byte-identical for any worker count.
// --export-scenario PATH dumps the (possibly --quick) grid as JSON.
#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"

using namespace l4span;

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const auto spec = scenario::builtin_scenario("fig16", args.quick);
    if (!args.export_scenario.empty())
        return scenario::write_scenario_file(args.export_scenario, spec);
    return scenario::run_scenario(spec, args);
}
