// Fig. 16 — One DRB shared by an L4S (Prague) and a classic (CUBIC) flow:
// the four marking strategies of §6.2.6. The y-axis metric is the L4S
// flow's share: r_l4s/(r_l4s+r_classic) and RTT_l4s/(RTT_l4s+RTT_classic);
// 50% on both axes is the fair outcome.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 16: shared-DRB marking strategies",
                      "'original' starves L4S, 'L4S-for-all' starves classic "
                      "(~25%), 'classic-for-all' is noisy; L4Span's coupling "
                      "lands near 50/50 with the least variance");
    stats::table t({"strategy", "L4S tput share (%)", "L4S RTT share (%)",
                    "prague Mbit/s", "cubic Mbit/s"});
    struct row {
        const char* label;
        core::shared_drb_policy policy;
    };
    for (const row r : {row{"original", core::shared_drb_policy::original},
                        row{"L4S-for-all", core::shared_drb_policy::l4s_all},
                        row{"classic-for-all", core::shared_drb_policy::classic_all},
                        row{"L4Span (coupled)", core::shared_drb_policy::coupled}}) {
        scenario::cell_spec cell;
        cell.num_ues = 1;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.separate_drbs_per_class = false;  // the low-end single-DRB UE
        cell.l4s.shared_policy = r.policy;
        cell.seed = 71;
        scenario::cell_scenario s(cell);
        scenario::flow_spec prague;
        prague.cca = "prague";
        const int hp = s.add_flow(prague);
        scenario::flow_spec cubic;
        cubic.cca = "cubic";
        const int hc = s.add_flow(cubic);
        s.run(sim::from_sec(15));

        const double rp = s.goodput_mbps(hp), rc = s.goodput_mbps(hc);
        const double tp = s.rtt_ms(hp).median(), tc = s.rtt_ms(hc).median();
        t.add_row({r.label,
                   stats::table::num(rp + rc > 0 ? 100.0 * rp / (rp + rc) : 0, 1),
                   stats::table::num(tp + tc > 0 ? 100.0 * tp / (tp + tc) : 0, 1),
                   stats::table::num(rp, 2), stats::table::num(rc, 2)});
    }
    t.print();
    return 0;
}
