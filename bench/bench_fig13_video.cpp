// Fig. 13 — Interactive-video congestion control (SCReAM and UDP Prague)
// over 8 concurrent UEs under static / pedestrian / vehicular channels,
// with and without L4Span. These UDP flows use the downlink-marking
// fallback (no short-circuiting), as in the paper.
//
// The 12 grid points are independent cells; they fan out over
// scenario::grid_runner and print in fixed grid order, so stdout is
// byte-identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct grid_point {
    std::string algo;
    std::string chan;
    bool on;
};

struct point_result {
    stats::sample_set rtt_ms;
    stats::sample_set tput_mbps;
};

point_result run_cell(const grid_point& p, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = 8;
    cell.channel = p.chan;
    cell.cu = p.on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = 53;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < 8; ++u) {
        scenario::flow_spec f;
        f.cca = p.algo;
        f.ue = u;
        f.wired_owd_ms = 5.0;  // local media server
        handles.push_back(s.add_flow(f));
    }
    s.run(duration);

    point_result r;
    for (int h : handles) {
        for (double v : s.rtt_ms(h).raw()) r.rtt_ms.add(v);
        r.tput_mbps.add(s.goodput_mbps(h));
    }
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 13: SCReAM and UDP Prague with L4Span",
                      "RTT reductions: UDP Prague 76/38/45%, SCReAM 13/11/38% "
                      "(static/pedestrian/vehicular) at modest throughput cost");
    std::vector<std::string> algos{"udp-prague", "scream"};
    std::vector<std::string> chans{"static", "pedestrian", "vehicular"};
    if (args.quick) {  // 2-point CI slice: one cell, with and without L4Span
        algos = {"udp-prague"};
        chans = {"static"};
    }
    const sim::tick duration = sim::from_sec(10);

    std::vector<grid_point> points;
    for (const auto& algo : algos)
        for (const auto& chan : chans)
            for (const bool on : {false, true}) points.push_back({algo, chan, on});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig13: %zu grid points on %d worker(s)\n", points.size(),
                 pool.jobs());
    const auto results = pool.map(
        points.size(), [&](std::size_t i) { return run_cell(points[i], duration); });

    auto summary = stats::json::object();
    summary.set("figure", "fig13").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"algo", "channel", "L4Span", "RTT ms p10/p25/p50/p75/p90",
                    "per-UE Mbit/s p50", "RTT reduction"});
    std::size_t idx = 0;
    for (const auto& algo : algos) {
        for (const auto& chan : chans) {
            double base_rtt = 0.0;
            for (const bool on : {false, true}) {
                const auto& r = results[idx];
                ++idx;
                std::string reduction = "-";
                double reduction_pct = 0.0;
                if (!on) {
                    base_rtt = r.rtt_ms.median();
                } else if (base_rtt > 0) {
                    reduction_pct = 100.0 * (1.0 - r.rtt_ms.median() / base_rtt);
                    reduction = stats::table::num(reduction_pct, 1) + "%";
                }
                t.add_row({algo, chan, on ? "+" : "-", benchutil::box(r.rtt_ms),
                           stats::table::num(r.tput_mbps.median(), 2), reduction});
                auto jp = stats::json::object();
                jp.set("algo", algo)
                    .set("chan", chan)
                    .set("l4span", on)
                    .set("rtt_ms", benchutil::box_json(r.rtt_ms))
                    .set("tput_mbps_p50", r.tput_mbps.median());
                if (on) jp.set("rtt_reduction_pct", reduction_pct);
                json_points.push(std::move(jp));
            }
        }
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
