// Fig. 13 — Interactive-video congestion control (SCReAM and UDP Prague)
// over 8 concurrent UEs under static / pedestrian / vehicular channels,
// with and without L4Span. These UDP flows use the downlink-marking
// fallback (no short-circuiting), as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 13: SCReAM and UDP Prague with L4Span",
                      "RTT reductions: UDP Prague 76/38/45%, SCReAM 13/11/38% "
                      "(static/pedestrian/vehicular) at modest throughput cost");
    stats::table t({"algo", "channel", "L4Span", "RTT ms p10/p25/p50/p75/p90",
                    "per-UE Mbit/s p50", "RTT reduction"});
    for (const std::string algo : {"udp-prague", "scream"}) {
        for (const std::string chan : {"static", "pedestrian", "vehicular"}) {
            double base_rtt = 0.0;
            for (const bool on : {false, true}) {
                scenario::cell_spec cell;
                cell.num_ues = 8;
                cell.channel = chan;
                cell.cu = on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
                cell.seed = 53;
                scenario::cell_scenario s(cell);
                std::vector<int> handles;
                for (int u = 0; u < 8; ++u) {
                    scenario::flow_spec f;
                    f.cca = algo;
                    f.ue = u;
                    f.wired_owd_ms = 5.0;  // local media server
                    handles.push_back(s.add_flow(f));
                }
                s.run(sim::from_sec(10));

                stats::sample_set rtt, tput;
                for (int h : handles) {
                    for (double v : s.rtt_ms(h).raw()) rtt.add(v);
                    tput.add(s.goodput_mbps(h));
                }
                std::string reduction = "-";
                if (!on) base_rtt = rtt.median();
                else if (base_rtt > 0)
                    reduction =
                        stats::table::num(100.0 * (1.0 - rtt.median() / base_rtt), 1) + "%";
                t.add_row({algo, chan, on ? "+" : "-", benchutil::box(rtt),
                           stats::table::num(tput.median(), 2), reduction});
            }
        }
    }
    t.print();
    return 0;
}
