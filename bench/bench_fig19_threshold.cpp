// Fig. 19 — Impact of the sojourn-time threshold tau_s on Prague's RTT and
// the cell rate sum, across UE counts. The paper picks 10 ms: the MAC
// scheduler needs an adequately filled buffer, so tighter thresholds cost
// throughput while looser ones only add delay.
//
// The tau_s x UE-count sweep runs in parallel via scenario::grid_runner.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct sweep_point {
    double tau_ms;
    int ues;
};

struct sweep_result {
    double mean_rtt_ms;
    double rate_sum_mbps;
};

sweep_result run_point(const sweep_point& p)
{
    scenario::cell_spec cell;
    cell.num_ues = p.ues;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.l4s.sojourn_threshold = sim::from_ms(p.tau_ms);
    cell.seed = 89;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < p.ues; ++u) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = u;
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(6));
    double rtt_sum = 0.0, rate_sum = 0.0;
    std::size_t n = 0;
    for (int h : handles) {
        rtt_sum += s.rtt_ms(h).mean() * static_cast<double>(s.rtt_ms(h).count());
        n += s.rtt_ms(h).count();
        rate_sum += s.goodput_mbps(h);
    }
    return {n ? rtt_sum / static_cast<double>(n) : 0.0, rate_sum};
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 19: sojourn threshold tau_s sweep",
                      "throughput saturates around tau_s = 10 ms while RTT keeps "
                      "growing with the threshold");
    std::vector<double> taus{1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
    std::vector<int> ue_counts{1, 4, 16, 64};
    if (args.quick) {
        taus = {10.0};
        ue_counts = {1, 4};
    }

    std::vector<sweep_point> points;
    for (const double tau_ms : taus)
        for (const int ues : ue_counts) points.push_back({tau_ms, ues});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig19: %zu sweep points on %d worker(s)\n", points.size(),
                 pool.jobs());
    const auto results =
        pool.map(points.size(), [&](std::size_t i) { return run_point(points[i]); });

    stats::table t({"tau_s (ms)", "UEs", "mean RTT (ms)", "rate sum (Mbit/s)"});
    auto summary = stats::json::object();
    summary.set("figure", "fig19").set("quick", args.quick);
    auto json_points = stats::json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        const auto& r = results[i];
        t.add_row({stats::table::num(p.tau_ms, 0), std::to_string(p.ues),
                   stats::table::num(r.mean_rtt_ms, 1),
                   stats::table::num(r.rate_sum_mbps, 1)});
        auto jp = stats::json::object();
        jp.set("tau_ms", p.tau_ms)
            .set("ues", p.ues)
            .set("mean_rtt_ms", r.mean_rtt_ms)
            .set("rate_sum_mbps", r.rate_sum_mbps);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
