// Fig. 19 — Impact of the sojourn-time threshold tau_s on Prague's RTT and
// the cell rate sum, across UE counts. The paper picks 10 ms: the MAC
// scheduler needs an adequately filled buffer, so tighter thresholds cost
// throughput while looser ones only add delay.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 19: sojourn threshold tau_s sweep",
                      "throughput saturates around tau_s = 10 ms while RTT keeps "
                      "growing with the threshold");
    stats::table t({"tau_s (ms)", "UEs", "mean RTT (ms)", "rate sum (Mbit/s)"});
    for (const double tau_ms : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
        for (const int ues : {1, 4, 16, 64}) {
            scenario::cell_spec cell;
            cell.num_ues = ues;
            cell.channel = "static";
            cell.cu = scenario::cu_mode::l4span;
            cell.l4s.sojourn_threshold = sim::from_ms(tau_ms);
            cell.seed = 89;
            scenario::cell_scenario s(cell);
            std::vector<int> handles;
            for (int u = 0; u < ues; ++u) {
                scenario::flow_spec f;
                f.cca = "prague";
                f.ue = u;
                handles.push_back(s.add_flow(f));
            }
            s.run(sim::from_sec(6));
            double rtt_sum = 0.0, rate_sum = 0.0;
            std::size_t n = 0;
            for (int h : handles) {
                rtt_sum += s.rtt_ms(h).mean() * static_cast<double>(s.rtt_ms(h).count());
                n += s.rtt_ms(h).count();
                rate_sum += s.goodput_mbps(h);
            }
            t.add_row({stats::table::num(tau_ms, 0), std::to_string(ues),
                       stats::table::num(n ? rtt_sum / static_cast<double>(n) : 0, 1),
                       stats::table::num(rate_sum, 1)});
        }
    }
    t.print();
    return 0;
}
