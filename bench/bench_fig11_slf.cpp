// Fig. 11 — Short-lived flow (14 kB) finish time while a long-lived flow
// occupies the same UE, for Prague / BBRv2 / CUBIC, with and without
// L4Span. The paper reports ~4x (up to 94%) SLF finish-time reduction at
// ~10% LLF throughput cost.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 11: short-flow finish time vs long-flow rate",
                      "SLF finish time drops ~4x under L4Span; LLF keeps its rate");
    stats::table t({"cca", "L4Span", "LLF rate (Mbit/s)", "SLF FCT ms p10/p25/p50/p75/p90"});
    for (const std::string cca : {"prague", "bbr2", "cubic"}) {
        for (const bool on : {false, true}) {
            scenario::cell_spec cell;
            cell.num_ues = 1;
            cell.channel = "static";
            cell.cu = on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
            cell.seed = 31;
            scenario::cell_scenario s(cell);

            scenario::flow_spec llf;
            llf.cca = cca;
            const int hl = s.add_flow(llf);

            // A train of 14 kB short flows (web interactions) once the LLF
            // has filled the queue.
            std::vector<int> slfs;
            for (int k = 0; k < 8; ++k) {
                scenario::flow_spec slf;
                slf.cca = cca;
                slf.flow_bytes = 14 * 1024;
                slf.start_time = sim::from_sec(3) + k * sim::from_ms(1500);
                slfs.push_back(s.add_flow(slf));
            }
            s.run(sim::from_sec(16));

            stats::sample_set fct;
            for (int h : slfs) {
                const double v = s.fct_ms(h);
                if (v >= 0) fct.add(v);
            }
            t.add_row({cca, on ? "+" : "-", stats::table::num(s.goodput_mbps(hl), 2),
                       fct.empty() ? "unfinished" : benchutil::box(fct, 0)});
        }
    }
    t.print();
    return 0;
}
