// Fig. 18 — Channel stable period. The paper measures DCIs of two
// commercial cells (600 MHz FDD, 2.5 GHz TDD) with NR-Scope and counts
// periods where the MCS deviation stays within 5. We generate MCS traces
// from the fading substrate for equivalent low- and high-Doppler cells and
// apply the same statistic. The estimation window (half of 24.9 ms) should
// fall below >90% of stable periods.
//
// `--trace-dir DIR` switches to the paper's actual methodology: the MCS
// stream is replayed from DCI trace files (DIR/nr_scope_*.csv — see
// traces/ and scripts/gen_traces.py) through chan::trace_channel instead
// of being sampled from the fading model. Default output is unchanged.
//
// The two cells trace independently; they run via scenario::grid_runner.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "chan/fading.h"
#include "chan/mcs.h"
#include "chan/trace_channel.h"
#include "chan/trace_io.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"
#include "stats/sample_set.h"
#include "stats/table.h"

using namespace l4span;

namespace {

// `mcs_at` is the per-millisecond MCS source: a fading channel's link
// adaptation or a replayed DCI trace.
stats::sample_set stable_periods(const std::function<int(sim::tick)>& mcs_at,
                                 sim::tick trace_len)
{
    stats::sample_set periods;
    const sim::tick step = sim::from_ms(1);
    int mcs_min = 99, mcs_max = -1;
    sim::tick period_start = 0;
    for (sim::tick t = 0; t < trace_len; t += step) {
        const int m = mcs_at(t);
        mcs_min = std::min(mcs_min, m);
        mcs_max = std::max(mcs_max, m);
        if (mcs_max - mcs_min > 5) {
            const double period_ms = sim::to_ms(t - period_start);
            if (period_ms <= 1000.0) periods.add(period_ms);  // paper: periods < 1 s
            period_start = t;
            mcs_min = mcs_max = m;
        }
    }
    return periods;
}

struct cell_source {
    std::string name;
    chan::channel_profile profile;                      // fading mode
    std::shared_ptr<const chan::trace_data> trace;      // trace mode
};

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 18: channel stable period (MCS deviation <= 5)",
                      ">90% of stable periods exceed the estimation window (12.45 ms)");
    // FDD 600 MHz: Doppler ~4x lower than the 2.5 GHz TDD cell at the same
    // speed -> ~4x the coherence time.
    std::vector<cell_source> cells{
        {"fdd-600MHz", {"fdd-600MHz", 13.0, 4.0, sim::from_ms(140)}, nullptr},
        {"tdd-2.5GHz", {"tdd-2.5GHz", 13.0, 4.0, sim::from_ms(34)}, nullptr}};
    if (!args.trace_dir.empty()) {
        cells[0].trace =
            chan::load_trace_file(args.trace_dir + "/nr_scope_fdd600_downtown.csv");
        cells[1].trace =
            chan::load_trace_file(args.trace_dir + "/nr_scope_tdd2500_driving.csv");
        for (auto& c : cells) c.name = c.trace->name;
    }
    const sim::tick trace_len = sim::from_sec(args.quick ? 10 : 120);

    scenario::grid_runner pool(args.jobs);
    const auto results = pool.map(cells.size(), [&](std::size_t i) {
        if (cells[i].trace) {
            chan::trace_config cfg;
            cfg.data = cells[i].trace;  // loops past the trace end
            chan::trace_channel ch(cfg);
            return stable_periods([&ch](sim::tick t) { return ch.mcs(t); }, trace_len);
        }
        chan::fading_channel ch(cells[i].profile, sim::rng(97));
        return stable_periods(
            [&ch](sim::tick t) { return chan::mcs_from_snr(ch.snr_db(t)); }, trace_len);
    });

    stats::table t({"cell", "stable ms p10/p25/p50/p75/p90", "frac > 12.45 ms window"});
    auto summary = stats::json::object();
    summary.set("figure", "fig18").set("quick", args.quick);
    if (!args.trace_dir.empty()) summary.set("source", "trace");
    auto json_points = stats::json::array();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& periods = results[i];
        const double frac_above = 1.0 - periods.fraction_below(12.45);
        t.add_row({cells[i].name, benchutil::box(periods),
                   stats::table::num(frac_above, 3)});
        auto jp = stats::json::object();
        jp.set("cell", cells[i].name)
            .set("stable_ms", benchutil::box_json(periods))
            .set("frac_above_window", frac_above);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
