// Fig. 18 — Channel stable period. The paper measures DCIs of two
// commercial cells (600 MHz FDD, 2.5 GHz TDD) with NR-Scope and counts
// periods where the MCS deviation stays within 5. We generate MCS traces
// from the fading substrate for equivalent low- and high-Doppler cells and
// apply the same statistic. The estimation window (half of 24.9 ms) should
// fall below >90% of stable periods.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "chan/fading.h"
#include "chan/mcs.h"
#include "stats/sample_set.h"
#include "stats/table.h"

using namespace l4span;

namespace {

stats::sample_set stable_periods(chan::channel_profile profile, std::uint64_t seed)
{
    chan::fading_channel ch(std::move(profile), sim::rng(seed));
    stats::sample_set periods;
    const sim::tick step = sim::from_ms(1);
    int mcs_min = 99, mcs_max = -1;
    sim::tick period_start = 0;
    for (sim::tick t = 0; t < sim::from_sec(120); t += step) {
        const int m = chan::mcs_from_snr(ch.snr_db(t));
        mcs_min = std::min(mcs_min, m);
        mcs_max = std::max(mcs_max, m);
        if (mcs_max - mcs_min > 5) {
            const double period_ms = sim::to_ms(t - period_start);
            if (period_ms <= 1000.0) periods.add(period_ms);  // paper: periods < 1 s
            period_start = t;
            mcs_min = mcs_max = m;
        }
    }
    return periods;
}

}  // namespace

int main()
{
    benchutil::header("Fig. 18: channel stable period (MCS deviation <= 5)",
                      ">90% of stable periods exceed the estimation window (12.45 ms)");
    // FDD 600 MHz: Doppler ~4x lower than the 2.5 GHz TDD cell at the same
    // speed -> ~4x the coherence time.
    chan::channel_profile fdd{"fdd-600MHz", 13.0, 4.0, sim::from_ms(140)};
    chan::channel_profile tdd{"tdd-2.5GHz", 13.0, 4.0, sim::from_ms(34)};

    stats::table t({"cell", "stable ms p10/p25/p50/p75/p90", "frac > 12.45 ms window"});
    for (const auto& profile : {fdd, tdd}) {
        const auto periods = stable_periods(profile, 97);
        t.add_row({profile.name, benchutil::box(periods),
                   stats::table::num(1.0 - periods.fraction_below(12.45), 3)});
    }
    t.print();
    return 0;
}
