// Fig. 12 — L4Span vs TC-RAN (CoDel / ECN-CoDel between SDAP and PDCP) for
// Prague and CUBIC, static and mobile channels, east (38 ms) and west
// (106 ms) servers.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 12: L4Span vs TC-RAN",
                      "similar delay, but L4Span utilizes more of the cell "
                      "(paper: +148% static / +6% mobile for Prague)");
    stats::table t({"cca", "chan", "server", "system", "OWD p50 (ms)", "OWD p90 (ms)",
                    "tput (Mbit/s)"});
    for (const std::string cca : {"prague", "cubic"}) {
        for (const std::string chan : {"static", "mobile"}) {
            for (const double owd : {19.0, 53.0}) {
                for (const bool tcran : {false, true}) {
                    scenario::cell_spec cell;
                    cell.num_ues = 1;
                    cell.channel = chan;
                    cell.cu = tcran ? scenario::cu_mode::tcran : scenario::cu_mode::l4span;
                    // TC-RAN deploys ECN-CoDel for L4S traffic and plain
                    // (dropping) CoDel for classic traffic.
                    cell.tcran.codel.ecn_mode = (cca == "prague");
                    cell.seed = 47;
                    scenario::cell_scenario s(cell);
                    scenario::flow_spec f;
                    f.cca = cca;
                    f.wired_owd_ms = owd;
                    const int h = s.add_flow(f);
                    s.run(sim::from_sec(10));
                    t.add_row({cca, chan, owd < 30 ? "east" : "west",
                               tcran ? "TC-RAN" : "L4Span",
                               stats::table::num(s.owd_ms(h).median(), 1),
                               stats::table::num(s.owd_ms(h).percentile(90), 1),
                               stats::table::num(s.goodput_mbps(h), 2)});
                }
            }
        }
    }
    t.print();
    return 0;
}
