// Fig. 15 — Feedback short-circuiting: RTT and throughput CDFs for Prague
// and CUBIC with the signal injected into uplink ACKs at the CU (SC) versus
// marked on downlink packets that must traverse the RLC queue first.
// Local server (minimal wired delay), as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 15: feedback short-circuiting",
                      "SC lowers mean RTT (28.5 vs 33.9 ms Prague; 75 vs 85 ms CUBIC) "
                      "and slashes the p99.9 tail; throughput unchanged");
    stats::table t({"cca", "SC", "mean RTT (ms)", "p50", "p90", "p99.9", "tput (Mbit/s)"});
    for (const std::string cca : {"prague", "cubic"}) {
        for (const bool sc : {true, false}) {
            scenario::cell_spec cell;
            cell.num_ues = 1;
            cell.channel = "static";
            cell.cu = scenario::cu_mode::l4span;
            cell.l4s.short_circuit = sc;
            cell.seed = 67;
            scenario::cell_scenario s(cell);
            scenario::flow_spec f;
            f.cca = cca;
            f.wired_owd_ms = 2.0;  // local server
            const int h = s.add_flow(f);
            s.run(sim::from_sec(20));
            const auto& rtt = s.rtt_ms(h);
            t.add_row({cca, sc ? "on" : "off", stats::table::num(rtt.mean(), 2),
                       stats::table::num(rtt.median(), 2),
                       stats::table::num(rtt.percentile(90), 2),
                       stats::table::num(rtt.percentile(99.9), 2),
                       stats::table::num(s.goodput_mbps(h), 2)});
        }
    }
    t.print();
    return 0;
}
