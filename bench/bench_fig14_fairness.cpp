// Fig. 14 — Throughput fairness among staggered flows under L4Span:
//  (a) three Prague flows, similar RTT;
//  (b) three Prague flows, distinct RTTs (25/82/57 ms);
//  (c) two Prague + one CUBIC;
//  (d) two Prague + one BBRv2.
// Flows start at 0/10/20 s and stop at 60/50/40 s.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

namespace {

void run_case(const char* title, const std::vector<std::string>& ccas,
              const std::vector<double>& owd_ms)
{
    std::printf("\n--- %s ---\n", title);
    scenario::cell_spec cell;
    cell.num_ues = 3;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 61;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int i = 0; i < 3; ++i) {
        scenario::flow_spec f;
        f.cca = ccas[static_cast<std::size_t>(i)];
        f.ue = i;
        f.wired_owd_ms = owd_ms[static_cast<std::size_t>(i)];
        f.start_time = sim::from_sec(10 * i);
        f.stop_time = sim::from_sec(60 - 10 * i);
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(60));

    stats::table t({"t (s)", "flow1 Mbit/s", "flow2 Mbit/s", "flow3 Mbit/s"});
    for (int sec = 2; sec < 60; sec += 4) {
        std::vector<std::string> row{std::to_string(sec)};
        for (int h : handles) {
            double m = 0;
            for (int k = 0; k < 20; ++k)
                m += s.goodput_series(h).mbps_at(sim::from_sec(sec) + k * sim::from_ms(100)) /
                     20.0;
            row.push_back(stats::table::num(m, 1));
        }
        t.add_row(std::move(row));
    }
    t.print();
    // Fair-share check over the fully shared window (t in [20, 40) s).
    double sum = 0.0;
    std::vector<double> shares;
    for (int h : handles) {
        double m = 0;
        for (int k = 0; k < 200; ++k)
            m += s.goodput_series(h).mbps_at(sim::from_sec(20) + k * sim::from_ms(100)) / 200.0;
        shares.push_back(m);
        sum += m;
    }
    double jain_num = sum * sum, jain_den = 0.0;
    for (double v : shares) jain_den += v * v;
    std::printf("shared window [20,40)s: %.1f / %.1f / %.1f Mbit/s, Jain index %.3f\n",
                shares[0], shares[1], shares[2],
                jain_den > 0 ? jain_num / (3.0 * jain_den) : 0.0);
}

}  // namespace

int main()
{
    benchutil::header("Fig. 14: fairness among staggered flows",
                      "equal shares in the fully-shared window; higher-RTT Prague "
                      "converges more slowly; CUBIC/BBRv2 coexist via MAC fairness");
    run_case("(a) 3x Prague, similar RTT", {"prague", "prague", "prague"},
             {19.0, 19.0, 19.0});
    run_case("(b) 3x Prague, distinct RTT (25/82/57 ms)", {"prague", "prague", "prague"},
             {12.5, 41.0, 28.5});
    run_case("(c) 2x Prague + CUBIC", {"prague", "cubic", "prague"}, {19.0, 19.0, 19.0});
    run_case("(d) 2x Prague + BBRv2", {"prague", "bbr2", "prague"}, {19.0, 19.0, 19.0});
    return 0;
}
