// Fig. 14 — Throughput fairness among staggered flows under L4Span:
//  (a) three Prague flows, similar RTT;
//  (b) three Prague flows, distinct RTTs (25/82/57 ms);
//  (c) two Prague + one CUBIC;
//  (d) two Prague + one BBRv2.
// Flows start at 0/10/20 s and stop at 60/50/40 s.
//
// The four cases are independent cells; they run in parallel via
// scenario::grid_runner and print in the paper's (a)-(d) order.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct fairness_case {
    const char* title;
    std::vector<std::string> ccas;
    std::vector<double> owd_ms;
};

struct fairness_result {
    // Time-averaged goodput per flow at each sampled second (t = 2, 6, ...).
    std::vector<std::array<double, 3>> rows;
    std::array<double, 3> shares;  // fully shared window [20, 40) s
    double jain;
};

fairness_result run_case(const fairness_case& c, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = 3;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 61;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int i = 0; i < 3; ++i) {
        scenario::flow_spec f;
        f.cca = c.ccas[static_cast<std::size_t>(i)];
        f.ue = i;
        f.wired_owd_ms = c.owd_ms[static_cast<std::size_t>(i)];
        f.start_time = sim::from_sec(10 * i);
        f.stop_time = sim::from_sec(60 - 10 * i);
        handles.push_back(s.add_flow(f));
    }
    s.run(duration);

    fairness_result r{};
    for (int sec = 2; sec < 60; sec += 4) {
        std::array<double, 3> row{};
        for (std::size_t fi = 0; fi < handles.size(); ++fi) {
            double m = 0;
            for (int k = 0; k < 20; ++k)
                m += s.goodput_series(handles[fi])
                         .mbps_at(sim::from_sec(sec) + k * sim::from_ms(100)) /
                     20.0;
            row[fi] = m;
        }
        r.rows.push_back(row);
    }
    double sum = 0.0;
    for (std::size_t fi = 0; fi < handles.size(); ++fi) {
        double m = 0;
        for (int k = 0; k < 200; ++k)
            m += s.goodput_series(handles[fi])
                     .mbps_at(sim::from_sec(20) + k * sim::from_ms(100)) /
                 200.0;
        r.shares[fi] = m;
        sum += m;
    }
    double jain_den = 0.0;
    for (double v : r.shares) jain_den += v * v;
    r.jain = jain_den > 0 ? sum * sum / (3.0 * jain_den) : 0.0;
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 14: fairness among staggered flows",
                      "equal shares in the fully-shared window; higher-RTT Prague "
                      "converges more slowly; CUBIC/BBRv2 coexist via MAC fairness");
    std::vector<fairness_case> cases{
        {"(a) 3x Prague, similar RTT", {"prague", "prague", "prague"},
         {19.0, 19.0, 19.0}},
        {"(b) 3x Prague, distinct RTT (25/82/57 ms)", {"prague", "prague", "prague"},
         {12.5, 41.0, 28.5}},
        {"(c) 2x Prague + CUBIC", {"prague", "cubic", "prague"}, {19.0, 19.0, 19.0}},
        {"(d) 2x Prague + BBRv2", {"prague", "bbr2", "prague"}, {19.0, 19.0, 19.0}},
    };
    if (args.quick) cases.resize(1);
    const sim::tick duration = sim::from_sec(60);

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig14: %zu cases on %d worker(s)\n", cases.size(),
                 pool.jobs());
    const auto results = pool.map(
        cases.size(), [&](std::size_t i) { return run_case(cases[i], duration); });

    auto summary = stats::json::object();
    summary.set("figure", "fig14").set("quick", args.quick);
    auto json_points = stats::json::array();
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        const auto& r = results[ci];
        std::printf("\n--- %s ---\n", cases[ci].title);
        stats::table t({"t (s)", "flow1 Mbit/s", "flow2 Mbit/s", "flow3 Mbit/s"});
        std::size_t row = 0;
        for (int sec = 2; sec < 60; sec += 4, ++row) {
            t.add_row({std::to_string(sec), stats::table::num(r.rows[row][0], 1),
                       stats::table::num(r.rows[row][1], 1),
                       stats::table::num(r.rows[row][2], 1)});
        }
        t.print();
        std::printf(
            "shared window [20,40)s: %.1f / %.1f / %.1f Mbit/s, Jain index %.3f\n",
            r.shares[0], r.shares[1], r.shares[2], r.jain);
        auto jp = stats::json::object();
        auto shares = stats::json::array();
        for (double v : r.shares) shares.push(v);
        jp.set("case", cases[ci].title)
            .set("shares_mbps", std::move(shares))
            .set("jain_index", r.jain);
        json_points.push(std::move(jp));
    }
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
