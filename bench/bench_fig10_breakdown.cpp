// Fig. 10 — Average one-way delay breakdown (propagation / queuing /
// scheduling / other) for round-robin vs proportional-fair scheduling with
// 16 and 64 UEs, with and without L4Span.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 10: delay breakdown by scheduler",
                      "queuing dominates without L4Span; with L4Span the total "
                      "falls to ~tens of ms under both RR and PF");
    stats::table t({"sched", "UEs", "L4Span", "propagation", "queuing", "scheduling",
                    "other", "total OWD (ms)"});
    const double wired_owd = 19.0;
    for (const auto sched :
         {ran::sched_policy::round_robin, ran::sched_policy::proportional_fair}) {
        for (const int ues : {16, 64}) {
            for (const bool on : {false, true}) {
                scenario::cell_spec cell;
                cell.num_ues = ues;
                cell.channel = "static";
                cell.sched = sched;
                cell.cu = on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
                cell.seed = 77;
                scenario::cell_scenario s(cell);
                std::vector<int> handles;
                for (int u = 0; u < ues; ++u) {
                    scenario::flow_spec f;
                    f.cca = "prague";
                    f.ue = u;
                    f.wired_owd_ms = wired_owd;
                    f.max_cwnd = 1536 * 1024;
                    handles.push_back(s.add_flow(f));
                }
                s.run(sim::from_sec(6));

                double owd_sum = 0.0;
                std::size_t n = 0;
                for (int h : handles) {
                    owd_sum += s.owd_ms(h).mean() * static_cast<double>(s.owd_ms(h).count());
                    n += s.owd_ms(h).count();
                }
                const double owd = n ? owd_sum / static_cast<double>(n) : 0.0;
                const double prop = wired_owd + 1.0;  // wired + 5G core hop
                const double queuing = s.mean_queuing_ms();
                const double sched_ms = s.mean_scheduling_ms();
                const double other = std::max(0.0, owd - prop - queuing - sched_ms);
                t.add_row({sched == ran::sched_policy::round_robin ? "RR" : "PF",
                           std::to_string(ues), on ? "+" : "-",
                           stats::table::num(prop, 1), stats::table::num(queuing, 1),
                           stats::table::num(sched_ms, 1), stats::table::num(other, 1),
                           stats::table::num(owd, 1)});
            }
        }
    }
    t.print();
    return 0;
}
