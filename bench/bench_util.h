// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "stats/sample_set.h"
#include "stats/table.h"

namespace l4span::benchutil {

// "p10/p25/p50/p75/p90" summary the paper's box plots report.
inline std::string box(const stats::sample_set& s, int precision = 1)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.*f/%.*f/%.*f/%.*f/%.*f", precision,
                  s.percentile(10), precision, s.percentile(25), precision, s.median(),
                  precision, s.percentile(75), precision, s.percentile(90));
    return buf;
}

inline void header(const char* title, const char* paper_ref)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n  reproduces: %s\n", title, paper_ref);
    std::printf("================================================================\n");
}

}  // namespace l4span::benchutil
