// The bench helpers moved into the library (scenario/bench_format.h) so the
// scenario engine's family runners and the conformance tests share the exact
// formatting code the benches print through. This forwarder keeps the
// historical include path for the bench sources.
#pragma once

#include "scenario/bench_format.h"
