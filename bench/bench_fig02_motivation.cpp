// Fig. 2 — Performance of L4S (Prague) and CUBIC in three networks:
//  (a) a wired path with a DualPi2 L4S router,
//  (b) a vanilla 5G RAN (deep RLC queue, no signaling),
//  (c) the 5G RAN with L4Span.
// In (b) and (c), a wired middlebox bottleneck dips below the RAN's rate
// during t in [10, 20) s, shifting the bottleneck out of the RAN and back.
#include <cstdio>

#include "aqm/dualpi2.h"
#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "topo/wired_link.h"
#include "transport/tcp.h"

using namespace l4span;

namespace {

// Fig. 2(a): server -> DualPi2 router (40 Mbit/s) -> client, no RAN.
void wired_l4s_router()
{
    benchutil::header("Fig. 2(a): wired network with a DualPi2 L4S router",
                      "Prague ~sub-ms queue + line rate; CUBIC ~15-25 ms (PI target)");
    sim::event_loop loop;
    topo::wired_link link(loop, 40e6, sim::from_ms(9),
                          std::make_unique<aqm::dualpi2_queue>());
    struct endpoint {
        std::unique_ptr<transport::tcp_sender> snd;
        std::unique_ptr<transport::tcp_receiver> rcv;
        stats::sample_set rtt_by_sec[31];
        stats::rate_series tput{sim::from_sec(1)};
    };
    endpoint eps[2];
    const char* names[2] = {"prague", "cubic"};
    for (int i = 0; i < 2; ++i) {
        transport::tcp_config cfg;
        cfg.ft.src_port = static_cast<std::uint16_t>(100 + i);
        cfg.ft.dst_port = static_cast<std::uint16_t>(200 + i);
        cfg.flow_id = static_cast<std::uint64_t>(i);
        auto cc = transport::make_cc(names[i], cfg.mss);
        const bool accecn = cc->uses_accecn();
        auto* ep = &eps[i];
        ep->snd = std::make_unique<transport::tcp_sender>(
            loop, cfg, std::move(cc), [&link](net::packet p) { link.send(std::move(p)); });
        ep->rcv = std::make_unique<transport::tcp_receiver>(
            loop, cfg, accecn, [&loop, ep](net::packet p) {
                // Reverse path: pure 9 ms propagation (ACKs uncongested).
                loop.schedule_after(sim::from_ms(9), [ep, p = std::move(p)] {
                    ep->snd->on_packet(p);
                });
            });
    }
    link.set_deliver([&](net::packet p) {
        auto* ep = &eps[p.flow_id];
        ep->tput.add(loop.now(), p.payload_bytes);
        ep->rcv->on_packet(p);
    });
    eps[0].snd->start();
    eps[1].snd->start();
    loop.run_until(sim::from_sec(30));

    stats::table t({"flow", "median RTT (ms)", "p90 RTT (ms)", "avg tput (Mbit/s)"});
    for (int i = 0; i < 2; ++i)
        t.add_row({names[i], stats::table::num(eps[i].snd->rtt_samples().median(), 1),
                   stats::table::num(eps[i].snd->rtt_samples().percentile(90), 1),
                   stats::table::num(eps[i].tput.total_mbps(sim::from_sec(30)), 2)});
    t.print();
}

// Fig. 2(b)/(c): the 5G path with the mid-run wired bottleneck dip.
void ran_case(bool with_l4span)
{
    benchutil::header(with_l4span ? "Fig. 2(c): 5G RAN + L4Span"
                                  : "Fig. 2(b): vanilla 5G RAN",
                      with_l4span
                          ? "both flows' RTT ~tens of ms; RLC queue stays shallow"
                          : "RTT ~10^3 ms from the deep RLC queue");
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = "static";
    cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.separate_drbs_per_class = true;
    cell.seed = 21;
    cell.bottleneck_bps = 100e6;
    cell.bottleneck_schedule = {{sim::from_sec(10), 20e6}, {sim::from_sec(20), 100e6}};
    scenario::cell_scenario s(cell);

    scenario::flow_spec prague;
    prague.cca = "prague";
    const int hp = s.add_flow(prague);
    scenario::flow_spec cubic;
    cubic.cca = "cubic";
    const int hc = s.add_flow(cubic);
    s.run(sim::from_sec(30));

    stats::table t({"t (s)", "prague Mbit/s", "cubic Mbit/s", "RLC queue (SDUs)"});
    const auto& gp = s.goodput_series(hp);
    const auto& gc = s.goodput_series(hc);
    const auto rq = s.rlc_queue_series(0).means();
    for (int sec = 1; sec < 30; sec += 2) {
        double p = 0, c = 0;
        for (int k = 0; k < 10; ++k) {
            p += gp.mbps_at(sim::from_sec(sec) + k * sim::from_ms(100)) / 10.0;
            c += gc.mbps_at(sim::from_sec(sec) + k * sim::from_ms(100)) / 10.0;
        }
        const std::size_t bin = static_cast<std::size_t>(sec * 10);
        t.add_row({std::to_string(sec), stats::table::num(p, 1), stats::table::num(c, 1),
                   stats::table::num(bin < rq.size() ? rq[bin] : 0.0, 0)});
    }
    t.print();
    std::printf("prague RTT p50/p90: %.1f/%.1f ms   cubic RTT p50/p90: %.1f/%.1f ms\n",
                s.rtt_ms(hp).median(), s.rtt_ms(hp).percentile(90), s.rtt_ms(hc).median(),
                s.rtt_ms(hc).percentile(90));
}

}  // namespace

int main()
{
    wired_l4s_router();
    ran_case(false);
    ran_case(true);
    return 0;
}
