// Adversarial-path grid: does L4S signaling survive a wired path that lies?
//
// "A Fresh Look at ECN Traversal in the Wild" (PAPERS.md) measured real
// Internet paths bleaching CE, stripping ECT and re-marking ECT(1) — failure
// modes the L4Span paper never evaluates. This bench grids CCA
// {tcp-prague, quic-prague, tcp-cubic, tcp-bbr2} x impairment profile
// {clean, bleach, remark, strip, loss, reorder, liar} x wired cross-traffic
// {off, poisson} through a DualPi2 core bottleneck + L4Span RAN, reporting
// per-profile OWD percentiles, goodput, retransmits, the CE-delivery ratio
// and how many senders' ECN validation fell back to Not-ECT.
//
// Placement matters: the impairment stage sits between the core bottleneck
// and the RAN, so bleaching erases the AQM's CE marks but can never touch
// L4Span's own CU marks (which are applied after the wired path) — the
// mechanism behind L4Span's graceful degradation under bleaching, while
// ECT-stripping demotes Prague flows to non-ECN treatment end-to-end.
//
// The grid lives in the scenario engine as the "ecn_impairment" builtin
// (family ecn_impairment): points fan out over scenario::grid_runner and
// print in fixed grid order, byte-identical for any --jobs value.
// --export-scenario PATH dumps the (possibly --quick) grid as JSON.
#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"

using namespace l4span;

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const auto spec = scenario::builtin_scenario("ecn_impairment", args.quick);
    if (!args.export_scenario.empty())
        return scenario::write_scenario_file(args.export_scenario, spec);
    return scenario::run_scenario(spec, args);
}
