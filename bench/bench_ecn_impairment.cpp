// Adversarial-path grid: does L4S signaling survive a wired path that lies?
//
// "A Fresh Look at ECN Traversal in the Wild" (PAPERS.md) measured real
// Internet paths bleaching CE, stripping ECT and re-marking ECT(1) — failure
// modes the L4Span paper never evaluates. This bench grids CCA
// {tcp-prague, quic-prague, tcp-cubic, tcp-bbr2} x impairment profile
// {clean, bleach, remark, strip, loss, reorder, liar} x wired cross-traffic
// {off, poisson} through a DualPi2 core bottleneck + L4Span RAN, reporting
// per-profile OWD percentiles, goodput, retransmits, the CE-delivery ratio
// (receiver-observed CE / CE applied by the bottleneck AQM + the CU) and how
// many senders' ECN validation fell back to Not-ECT.
//
// Placement matters: the impairment stage sits between the core bottleneck
// and the RAN, so bleaching erases the AQM's CE marks but can never touch
// L4Span's own CU marks (which are applied after the wired path) — the
// mechanism behind L4Span's graceful degradation under bleaching, while
// ECT-stripping demotes Prague flows to non-ECN treatment end-to-end.
//
// Points fan out over scenario::grid_runner and print in fixed grid order:
// stdout and the JSON summary are byte-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct impair_profile {
    std::string name;
    topo::impairment_spec dl;
    // Arm L4Span's drop-based fallback (§4.4): the only congestion signal
    // left for flows the path stripped to Not-ECT.
    bool drop_non_ecn = false;
};

std::vector<impair_profile> make_profiles()
{
    std::vector<impair_profile> out;
    out.push_back({"clean", {}});
    {
        topo::impairment_spec s;
        s.bleach_ce = 1.0;  // congestion signal erased, ECT restored
        out.push_back({"bleach", s});
    }
    {
        topo::impairment_spec s;
        s.remark_ect1 = 1.0;  // L4S identifier erased -> classic treatment
        out.push_back({"remark", s});
    }
    {
        topo::impairment_spec s;
        s.strip_ect = 1.0;  // path declares the flow non-ECN-capable
        out.push_back({"strip", s});
    }
    {
        // Same stripped path, but the CU sheds queue instead of letting the
        // demoted flow sit in a seconds-deep RLC backlog — the strip rows'
        // OWD collapse is the deployability argument for the knob.
        topo::impairment_spec s;
        s.strip_ect = 1.0;
        out.push_back({"strip+drop", s, /*drop_non_ecn=*/true});
    }
    {
        topo::impairment_spec s;
        s.loss = 0.01;
        s.loss_burst = 4.0;  // Gilbert bursts, ~1% stationary loss
        out.push_back({"loss", s});
    }
    {
        topo::impairment_spec s;
        s.reorder = 0.02;
        s.reorder_gap = 5;
        out.push_back({"reorder", s});
    }
    {
        // Everything at once: the worst path the traversal study observed.
        topo::impairment_spec s;
        s.bleach_ce = 1.0;
        s.remark_ect1 = 1.0;
        s.loss = 0.005;
        s.loss_burst = 2.0;
        s.reorder = 0.01;
        s.duplicate = 0.005;
        out.push_back({"liar", s});
    }
    return out;
}

struct grid_point {
    std::string cca;  // flow_spec CCA names: prague, quic-prague, cubic, bbr2
    std::string label;
    const impair_profile* profile;
    bool cross;
};

struct point_result {
    stats::sample_set owd_ms;  // pooled over all flows
    double goodput_mbps = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t ce_applied = 0;    // bottleneck AQM + CU marks
    std::uint64_t ce_delivered = 0;  // receiver-observed CE packets
    int fallbacks = 0;               // senders that reverted to Not-ECT
    std::uint64_t cross_packets = 0;
};

point_result run_point(const grid_point& p, int ues, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = ues;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 71;
    cell.bottleneck_bps = 80e6;
    cell.bottleneck_aqm = "dualpi2";  // a core router whose CE can be bleached
    cell.impair_dl = p.profile->dl;
    cell.impair_dl.force_stage = true;  // "clean" exercises the pass-through
    cell.l4s.drop_non_ecn = p.profile->drop_non_ecn;
    if (p.cross) {
        topo::cross_traffic_spec bg;
        bg.model = "poisson";
        bg.rate_bps = 30e6;  // ~3/8 of the bottleneck as background load
        cell.cross_traffic.push_back(bg);
    }

    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < ues; ++u) {
        scenario::flow_spec f;
        f.cca = p.cca;
        f.ue = u;
        f.max_cwnd = 1536 * 1024;
        handles.push_back(s.add_flow(f));
    }
    s.run(duration);

    point_result r;
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) r.owd_ms.add(v);
        r.goodput_mbps += s.goodput_mbps(h);
        r.retransmits += s.flow_retransmits(h);
        r.ce_delivered += s.flow_ce_packets(h);
        if (s.flow_ecn_fallback(h)) ++r.fallbacks;
    }
    r.ce_applied = s.bottleneck_ce_marks();
    if (const core::l4span* l4s = s.l4span_layer()) r.ce_applied += l4s->marks();
    r.cross_packets = s.cross_traffic_packets();
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header(
        "ECN path-impairment grid (bleach/strip/remark/loss/reorder)",
        "robustness item: L4Span + Prague/CUBIC/BBRv2 when the wired path "
        "bleaches or strips ECN (cf. \"A Fresh Look at ECN Traversal\")");

    const auto profiles = make_profiles();
    std::vector<std::pair<std::string, std::string>> ccas{
        {"prague", "tcp-prague"},
        {"quic-prague", "quic-prague"},
        {"cubic", "tcp-cubic"},
        {"bbr2", "tcp-bbr2"},
    };
    std::vector<const impair_profile*> selected;
    for (const auto& pr : profiles) selected.push_back(&pr);
    std::vector<bool> cross_opts{false, true};
    int ues = 4;
    sim::tick duration = sim::from_sec(5);
    if (args.quick) {  // CI slice: 2 transports x 3 profiles, cross on
        ccas = {{"prague", "tcp-prague"}, {"quic-prague", "quic-prague"}};
        selected = {&profiles[0], &profiles[3], &profiles[4]};  // clean/strip/strip+drop
        cross_opts = {true};
        ues = 2;
        duration = sim::from_sec(2);
    }

    std::vector<grid_point> points;
    for (const auto& [cca, label] : ccas)
        for (const impair_profile* pr : selected)
            for (const bool cross : cross_opts)
                points.push_back({cca, label, pr, cross});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "ecn_impairment: %zu grid points on %d worker(s)\n",
                 points.size(), pool.jobs());
    const auto results = pool.map(points.size(), [&](std::size_t i) {
        return run_point(points[i], ues, duration);
    });

    auto summary = stats::json::object();
    summary.set("figure", "ecn_impairment").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"cca", "impairment", "cross", "OWD ms p50/p90/p99",
                    "sum Mbit/s", "retx", "CE deliv/applied", "fallback"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const grid_point& p = points[i];
        const point_result& r = results[i];
        char owd[96];
        std::snprintf(owd, sizeof(owd), "%.1f/%.1f/%.1f", r.owd_ms.median(),
                      r.owd_ms.percentile(90), r.owd_ms.percentile(99));
        char ce[64];
        std::snprintf(ce, sizeof(ce), "%llu/%llu",
                      static_cast<unsigned long long>(r.ce_delivered),
                      static_cast<unsigned long long>(r.ce_applied));
        t.add_row({p.label, p.profile->name, p.cross ? "poisson" : "-", owd,
                   stats::table::num(r.goodput_mbps, 1),
                   std::to_string(r.retransmits), ce,
                   std::to_string(r.fallbacks)});

        const double ce_ratio =
            r.ce_applied > 0
                ? static_cast<double>(r.ce_delivered) /
                      static_cast<double>(r.ce_applied)
                : 1.0;
        auto jp = stats::json::object();
        jp.set("cca", p.label)
            .set("impairment", p.profile->name)
            .set("cross_traffic", p.cross)
            .set("owd_ms", benchutil::box_json(r.owd_ms))
            .set("owd_p99_ms", r.owd_ms.percentile(99))
            .set("goodput_mbps", r.goodput_mbps)
            .set("retransmits", r.retransmits)
            .set("ce_applied", r.ce_applied)
            .set("ce_delivered", r.ce_delivered)
            .set("ce_delivery_ratio", ce_ratio)
            .set("ecn_fallbacks", r.fallbacks)
            .set("cross_packets", r.cross_packets);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
