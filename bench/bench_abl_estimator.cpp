// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out:
//  (1) error-aware marking (Eq. 1's Gaussian edge) vs error-blind (e_hat=0,
//      i.e., a DualPi2-style step at the same threshold);
//  (2) the estimation-window choice around tau_c = 12.45 ms;
//  (3) short-circuiting's interaction with the base RTT.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

namespace {

struct outcome {
    double tput;
    double owd_p50;
    double owd_p90;
};

outcome run(const std::string& chan, sim::tick coherence, bool short_circuit,
            double wired_owd_ms, bool error_aware = true)
{
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = chan;
    cell.cu = scenario::cu_mode::l4span;
    cell.l4s.coherence_time = coherence;
    cell.l4s.short_circuit = short_circuit;
    cell.l4s.error_aware = error_aware;
    cell.seed = 109;
    scenario::cell_scenario s(cell);
    scenario::flow_spec f;
    f.cca = "prague";
    f.wired_owd_ms = wired_owd_ms;
    const int h = s.add_flow(f);
    s.run(sim::from_sec(10));
    return {s.goodput_mbps(h), s.owd_ms(h).median(), s.owd_ms(h).percentile(90)};
}

}  // namespace

int main()
{
    benchutil::header("Ablation 1: estimation window (tau_c) sweep",
                      "too-short windows are noisy, too-long windows straddle "
                      "coherence changes; 12.45 ms balances both");
    {
        stats::table t({"window (ms)", "channel", "tput (Mbit/s)", "OWD p50", "OWD p90"});
        for (const double win_ms : {3.0, 6.0, 12.45, 25.0, 50.0, 100.0}) {
            for (const std::string chan : {"static", "vehicular"}) {
                const auto o = run(chan, sim::from_ms(2 * win_ms), true, 19.0);
                t.add_row({stats::table::num(win_ms, 2), chan,
                           stats::table::num(o.tput, 2), stats::table::num(o.owd_p50, 1),
                           stats::table::num(o.owd_p90, 1)});
            }
        }
        t.print();
    }

    benchutil::header("Ablation 2: error-aware (Eq. 1) vs error-blind marking",
                      "with e_hat forced to 0 the marker becomes a step; on "
                      "volatile channels the Gaussian edge preserves throughput");
    {
        stats::table t({"marking", "channel", "tput (Mbit/s)", "OWD p50", "OWD p90"});
        for (const std::string chan : {"static", "pedestrian", "vehicular"}) {
            for (const bool aware : {true, false}) {
                const auto o = run(chan, sim::from_ms(24.9), true, 19.0, aware);
                t.add_row({aware ? "error-aware" : "error-blind (step)", chan,
                           stats::table::num(o.tput, 2), stats::table::num(o.owd_p50, 1),
                           stats::table::num(o.owd_p90, 1)});
            }
        }
        t.print();
    }

    benchutil::header("Ablation 3: short-circuiting x base RTT",
                      "SC's benefit grows as the RAN's share of the control loop "
                      "grows (short base RTTs)");
    {
        stats::table t({"base RTT (ms)", "SC", "tput (Mbit/s)", "OWD p50", "OWD p90"});
        for (const double owd : {2.0, 19.0, 53.0}) {
            for (const bool sc : {true, false}) {
                const auto o = run("static", sim::from_ms(24.9), sc, owd);
                t.add_row({stats::table::num(2 * owd, 0), sc ? "on" : "off",
                           stats::table::num(o.tput, 2), stats::table::num(o.owd_p50, 1),
                           stats::table::num(o.owd_p90, 1)});
            }
        }
        t.print();
    }
    return 0;
}
