// Interactive media over QUIC vs TCP in an L4Span multi-cell deployment:
// the workload 5G-Advanced L4S work targets (XR / cloud gaming frame-paced
// traffic) that the byte-stream benches cannot express.
//
// Grid: transport {quic-prague, tcp-prague, tcp-cubic} x background load
// {off, 2 bulk CUBIC UEs} x mobility {none, X2/Xn handover}. Each point
// runs a 2-cell scenario::topology with a 60 fps / 8 Mb/s frame source
// (periodic keyframe bursts) on UE 0 and reports what the application
// feels: per-frame completion OWD (p50/p90/p99), the stall fraction
// (frames over a 50 ms delivery budget), and transport-level re-sends —
// QUIC's CID path switch vs TCP riding the forwarded RLC state.
//
// Points fan out across the grid_runner thread pool; each point runs its
// topology serially (jobs=1), so stdout and the JSON summary are
// byte-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/grid_runner.h"
#include "scenario/topology.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct grid_point {
    std::string transport;  // quic-prague | tcp-prague | tcp-cubic
    bool background;
    bool handover;
};

// "tcp-prague" -> flow_spec CCA "prague"; quic-* names pass through.
std::string cca_of(const std::string& transport)
{
    if (transport.rfind("tcp-", 0) == 0) return transport.substr(4);
    return transport;
}

struct point_result {
    stats::sample_set frame_owd_ms;
    double stall_fraction = 0.0;
    std::uint64_t frames_completed = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t handovers = 0;
    double background_mbps = 0.0;
};

point_result run_point(const grid_point& p, sim::tick duration, bool impair_noop)
{
    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 3;  // UE 0 interactive; UEs 1-2 optional background
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "mobile";
    spec.cell.seed = 61;
    // Pass-through fast-path check: all-off stages must not change results.
    spec.cell.impair_dl.force_stage = impair_noop;
    spec.cell.impair_ul.force_stage = impair_noop;
    spec.jobs = 1;  // grid-level parallelism only: points stay byte-identical
    scenario::topology topo(spec);

    scenario::flow_spec game;
    game.cca = cca_of(p.transport);
    game.ue = 0;
    game.fps = 60.0;
    game.frame_bitrate_bps = 8e6;
    game.keyframe_interval_s = 2.0;
    game.keyframe_scale = 4.0;
    game.frame_deadline_ms = 50.0;
    const int h = topo.add_flow(game);

    std::vector<int> bg;
    if (p.background) {
        for (int ue = 1; ue <= 2; ++ue) {
            scenario::flow_spec f;
            f.cca = "cubic";
            f.ue = ue;
            f.max_cwnd = 1536 * 1024;
            bg.push_back(topo.add_flow(f));
        }
    }
    if (p.handover) {
        // Out and back: the interactive UE crosses cells twice mid-session.
        topo.schedule_handover(duration / 3, 0, 1);
        topo.schedule_handover(2 * duration / 3, 0, 0);
    }
    topo.run(duration);

    point_result r;
    const media::frame_source* fr = topo.frame_stats(h);
    for (double v : fr->frame_owd_ms().raw()) r.frame_owd_ms.add(v);
    r.stall_fraction = fr->stall_fraction();
    r.frames_completed = fr->frames_completed();
    r.frames_sent = fr->frames_sent();
    r.retransmits = topo.flow_retransmits(h);
    r.handovers = topo.handovers_completed();
    for (const int b : bg) r.background_mbps += topo.goodput_mbps(b);
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Interactive media over QUIC vs TCP (frame OWD / stalls)",
                      "scenario-diversity item: Prague-over-QUIC frame-paced "
                      "traffic with L4Span marking, background load and "
                      "X2/Xn handover (cf. Fig. 13 methodology)");

    std::vector<grid_point> points;
    const std::vector<std::string> transports{"quic-prague", "tcp-prague", "tcp-cubic"};
    if (args.quick) {
        for (const auto& t : transports) points.push_back({t, true, true});
    } else {
        for (const auto& t : transports)
            for (const bool load : {false, true})
                for (const bool ho : {false, true}) points.push_back({t, load, ho});
    }
    const sim::tick duration = args.quick ? sim::from_ms(2500) : sim::from_sec(6);

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "quic_interactive: %zu points over %d worker(s)\n",
                 points.size(), pool.jobs());
    const auto results = pool.map(points.size(), [&](std::size_t i) {
        return run_point(points[i], duration, args.impair_noop);
    });

    auto summary = stats::json::object();
    summary.set("figure", "quic_interactive").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"transport", "bg load", "HO", "frames", "frame OWD ms p50/p90/p99",
                    "stall %", "retx", "bg Mbit/s"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const grid_point& p = points[i];
        const point_result& r = results[i];
        char owd[96];
        std::snprintf(owd, sizeof(owd), "%.1f/%.1f/%.1f", r.frame_owd_ms.median(),
                      r.frame_owd_ms.percentile(90), r.frame_owd_ms.percentile(99));
        t.add_row({p.transport, p.background ? "2x cubic" : "-",
                   p.handover ? std::to_string(r.handovers) : "-",
                   std::to_string(r.frames_completed), owd,
                   stats::table::num(100.0 * r.stall_fraction, 1),
                   std::to_string(r.retransmits),
                   p.background ? stats::table::num(r.background_mbps, 1) : "-"});

        auto jp = stats::json::object();
        jp.set("transport", p.transport)
            .set("background", p.background)
            .set("handover", p.handover)
            .set("frames_sent", r.frames_sent)
            .set("frames_completed", r.frames_completed)
            .set("frame_owd_ms", benchutil::box_json(r.frame_owd_ms))
            .set("frame_owd_p99_ms", r.frame_owd_ms.percentile(99))
            .set("stall_fraction", r.stall_fraction)
            .set("retransmits", r.retransmits)
            .set("handovers", r.handovers)
            .set("background_mbps", r.background_mbps);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
