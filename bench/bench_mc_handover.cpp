// Multi-cell handover grid: cells x UEs-per-cell x handover rate, the
// NextG deployment workload the paper's per-cell design targets — UEs
// moving between L4Span cells under load, marking state migrating with
// them, and cells far beyond 64 UEs.
//
// Unlike the figure benches, --jobs here controls the *sharded* execution
// of each point (one sim::event_loop per cell, synchronized at slot
// boundaries): grid points run one after another, each using up to
// min(jobs, cells) worker threads. The JSON summary is byte-identical for
// any --jobs value; wall-clock per point goes to stderr so serial vs
// sharded runs can be compared without perturbing the artifact.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/grid_runner.h"
#include "scenario/topology.h"
#include "stats/json.h"
#include "topo/mobility_model.h"

using namespace l4span;

namespace {

struct grid_point {
    int cells;
    int ues_per_cell;
    double ho_per_ue_per_sec;
};

struct point_result {
    stats::sample_set owd_ms;     // pooled over all flows
    stats::sample_set tput_mbps;  // one sample per flow
    std::uint64_t ho_started = 0;
    std::uint64_t ho_completed = 0;
    std::uint64_t events = 0;
    double wall_sec = 0.0;  // stderr only: not part of the JSON artifact
};

point_result run_point(const grid_point& p, sim::tick duration, int jobs)
{
    const auto wall_start = std::chrono::steady_clock::now();
    scenario::topology_spec spec;
    spec.num_cells = p.cells;
    spec.ues_per_cell = p.ues_per_cell;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "mobile";
    spec.cell.seed = 97;
    spec.jobs = jobs;
    scenario::topology topo(spec);

    std::vector<int> handles;
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = ue;
        f.max_cwnd = 1536 * 1024;
        handles.push_back(topo.add_flow(f));
    }

    topo::mobility_config mob;
    mob.num_cells = p.cells;
    mob.ues_per_cell = p.ues_per_cell;
    mob.handovers_per_ue_per_sec = p.ho_per_ue_per_sec;
    mob.start = sim::from_ms(500);
    mob.end = duration;
    mob.seed = 29;
    topo.apply(topo::mobility_model(mob).schedule());

    topo.run(duration);

    point_result r;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) r.owd_ms.add(v);
        r.tput_mbps.add(topo.goodput_mbps(h));
    }
    r.ho_started = topo.handovers_started();
    r.ho_completed = topo.handovers_completed();
    r.events = topo.processed_events();
    r.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               wall_start)
                     .count();
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Multi-cell handover grid (topology layer)",
                      "L4Span marking state survives X2/Xn handover: per-UE "
                      "OWD stays in the ~10 ms regime under mobility; up to "
                      "8 cells / 256-UE cells run sharded across threads");
    std::vector<grid_point> points{
        {2, 16, 0.0},   // no mobility: the multi-cell baseline
        {2, 16, 0.5},
        {4, 16, 0.5},
        {4, 64, 0.2},   // beyond the paper's largest cell
        {4, 256, 0.1},  // the many-UE sharding showcase
        {8, 64, 0.2},   // 8-cell deployment: one more notch up the scale axis
    };
    sim::tick duration = sim::from_sec(6);
    if (args.quick) {
        points = {{2, 4, 1.0}};
        duration = sim::from_sec(3);
    }
    const int jobs = args.jobs > 0 ? args.jobs : scenario::default_jobs();
    std::fprintf(stderr, "mc_handover: %zu points, sharded over up to %d worker(s)\n",
                 points.size(), jobs);

    auto summary = stats::json::object();
    summary.set("figure", "mc_handover").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"cells", "UEs/cell", "HO/UE/s", "handovers",
                    "OWD ms p10/p25/p50/p75/p90", "per-UE Mbit/s p50", "sim events"});
    for (const auto& p : points) {
        const auto r = run_point(p, duration, jobs);
        std::fprintf(stderr, "  %d cells x %d UEs (rate %.1f): %.1f s wall, %llu events\n",
                     p.cells, p.ues_per_cell, p.ho_per_ue_per_sec, r.wall_sec,
                     static_cast<unsigned long long>(r.events));
        t.add_row({std::to_string(p.cells), std::to_string(p.ues_per_cell),
                   stats::table::num(p.ho_per_ue_per_sec, 1),
                   std::to_string(r.ho_completed), benchutil::box(r.owd_ms),
                   stats::table::num(r.tput_mbps.median(), 2),
                   std::to_string(r.events)});
        auto jp = stats::json::object();
        jp.set("cells", p.cells)
            .set("ues_per_cell", p.ues_per_cell)
            .set("ho_per_ue_per_sec", p.ho_per_ue_per_sec)
            .set("handovers_started", r.ho_started)
            .set("handovers_completed", r.ho_completed)
            .set("owd_ms", benchutil::box_json(r.owd_ms))
            .set("tput_mbps", benchutil::box_json(r.tput_mbps))
            .set("sim_events", r.events);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
