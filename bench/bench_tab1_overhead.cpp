// Table 1 — L4Span's CPU and memory overhead relative to the RAN it embeds
// in, in idle (no traffic) and busy (64 concurrent downloads) states.
// Substitution: the paper compares srsRAN process CPU%/RSS on an i7-13700K;
// we compare the wall-clock cost of simulating the identical cell and the
// resident state of the DU queues, with and without the L4Span layer.
//
// A preliminary section microbenchmarks the event loop itself — the
// per-event scheduling overhead everything else multiplies (the pooled-slab
// rewrite's 2x-improvement criterion is measured here).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "sim/event_loop.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct run_cost {
    double wall_seconds;
    std::uint64_t events;
    std::size_t ran_state;
    std::size_t l4span_state;
};

run_cost measure(bool busy, bool with_l4span, int ues, double sim_seconds,
                 bool traced = false)
{
    scenario::cell_spec cell;
    cell.num_ues = ues;
    cell.channel = "static";
    cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = 103;
    // In-memory telemetry only (no out_prefix): the traced row pays the
    // ring writes and metric sampling but no file IO.
    cell.obs.enabled = traced;
    scenario::cell_scenario s(cell);
    if (busy) {
        for (int u = 0; u < ues; ++u) {
            scenario::flow_spec f;
            f.cca = "prague";
            f.ue = u;
            s.add_flow(f);
        }
    }
    const auto t0 = std::chrono::steady_clock::now();
    s.run(sim::from_sec(sim_seconds));
    const auto t1 = std::chrono::steady_clock::now();
    run_cost c;
    c.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    c.events = s.loop().processed();
    c.ran_state = s.gnb().resident_state_bytes();
    c.l4span_state = s.l4span_layer() ? s.l4span_layer()->resident_state_bytes() : 0;
    return c;
}

double median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

// Robust off/on comparison. One discarded warmup per config (page-cache /
// allocator / branch-predictor settling), then `reps` *interleaved*
// off,on,off,on,... runs: a single sample routinely swings tens of percent
// on a shared machine — enough to fabricate CPU "overheads" (or savings)
// on the idle row, where the real difference is near zero — and sequential
// blocks of runs additionally alias slow load drift into the comparison.
// Wall times are the per-config medians; the overhead is the median of the
// per-rep ratios, so both sides of each ratio saw the same machine.
// The simulation itself is deterministic, so events and state sizes are
// taken from the last run of each config.
struct paired_cost {
    run_cost off;
    run_cost on;
    double cpu_overhead_pct = 0.0;
    // Noise-floor wall times: the workload is deterministic, so every rep
    // does identical work and the fastest rep is the one the machine
    // disturbed least — the standard estimator for per-event cost.
    double off_min_wall = 0.0;
    double on_min_wall = 0.0;
};

template <typename OffFn, typename OnFn>
paired_cost measure_paired_fns(OffFn off_fn, OnFn on_fn, int reps)
{
    (void)off_fn();  // warmups, discarded
    (void)on_fn();
    std::vector<double> walls_off, walls_on, ratios;
    paired_cost pc;
    for (int i = 0; i < reps; ++i) {
        pc.off = off_fn();
        pc.on = on_fn();
        walls_off.push_back(pc.off.wall_seconds);
        walls_on.push_back(pc.on.wall_seconds);
        const double off_pe = pc.off.wall_seconds / static_cast<double>(pc.off.events);
        const double on_pe = pc.on.wall_seconds / static_cast<double>(pc.on.events);
        ratios.push_back(on_pe / off_pe);
    }
    pc.off_min_wall = *std::min_element(walls_off.begin(), walls_off.end());
    pc.on_min_wall = *std::min_element(walls_on.begin(), walls_on.end());
    pc.off.wall_seconds = median(walls_off);
    pc.on.wall_seconds = median(walls_on);
    pc.cpu_overhead_pct = 100.0 * (median(ratios) - 1.0);
    return pc;
}

paired_cost measure_paired(bool busy, int ues, double sim_seconds, int reps)
{
    return measure_paired_fns(
        [=] { return measure(busy, false, ues, sim_seconds); },
        [=] { return measure(busy, true, ues, sim_seconds); }, reps);
}

// obs:: tracing cost on the busy L4Span cell: the disabled side still pays
// the null-tracer branch at every trace site, the enabled side also writes
// the 32-byte ring events and samples the metric registry.
paired_cost measure_obs_paired(int ues, double sim_seconds, int reps)
{
    return measure_paired_fns(
        [=] { return measure(true, true, ues, sim_seconds, false); },
        [=] { return measure(true, true, ues, sim_seconds, true); }, reps);
}

// --- event-loop scheduling overhead (pure hot path, no RAN work) ------------

double ns_per_event(void (*body)(sim::event_loop&, int), int n)
{
    sim::event_loop loop;
    const auto t0 = std::chrono::steady_clock::now();
    body(loop, n);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() / n;
}

// Handler work is a single add through a captured pointer, so the numbers
// below are scheduling overhead, not handler cost.
std::uint64_t g_acc = 0;

void schedule_fire(sim::event_loop& loop, int n)
{
    std::uint64_t* p = &g_acc;
    for (int i = 0; i < n; ++i) {
        loop.schedule_at(i, [p, i] { *p += static_cast<std::uint64_t>(i); });
        loop.run_one();
    }
}

void schedule_cancel(sim::event_loop& loop, int n)
{
    std::uint64_t* p = &g_acc;
    for (int i = 0; i < n; ++i) {
        const auto id = loop.schedule_at(i + 1000, [p] { *p += 1; });
        loop.cancel(id);
    }
    loop.run();
}

void churn_deep(sim::event_loop& loop, int n)
{
    std::uint64_t* p = &g_acc;
    for (int i = 0; i < 1024; ++i) loop.schedule_at(i, [p] { *p += 1; });
    for (int i = 0; i < n; ++i) {
        loop.schedule_at(loop.now() + 1024, [p] { *p += 1; });
        loop.run_one();
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const int ues = args.quick ? 16 : 64;
    const double sim_seconds = args.quick ? 2.0 : 5.0;
    const int micro_n = args.quick ? 200'000 : 2'000'000;

    benchutil::header("Table 1: CPU and memory overhead",
                      "paper: +<2% CPU and +<0.02% memory over vanilla srsRAN");

    auto summary = stats::json::object();
    summary.set("figure", "tab1").set("quick", args.quick);

    std::printf("\nEvent-loop scheduling overhead (pooled slab + SBO callbacks;"
                " baseline\nshared_ptr/std::function design: 84/510/88 ns):\n");
    stats::table micro({"micro", "ns/event"});
    auto micro_json = stats::json::object();
    const struct {
        const char* name;
        void (*body)(sim::event_loop&, int);
    } micros[] = {{"schedule+fire", schedule_fire},
                  {"schedule+cancel", schedule_cancel},
                  {"churn @1024 pending", churn_deep}};
    for (const auto& m : micros) {
        (void)ns_per_event(m.body, micro_n / 10);  // warmup, discarded
        std::vector<double> samples;
        for (int i = 0; i < 3; ++i) samples.push_back(ns_per_event(m.body, micro_n));
        std::sort(samples.begin(), samples.end());
        const double ns = samples[1];
        micro.add_row({m.name, stats::table::num(ns, 1)});
        micro_json.set(m.name, ns);
    }
    micro.print();
    summary.set("event_loop_ns", std::move(micro_json));

    stats::table t({"state", "L4Span", "wall (s)", "sim events", "ns/event",
                    "RAN state (kB)", "L4Span state (kB)", "CPU overhead", "mem overhead"});
    auto rows_json = stats::json::array();
    for (const bool busy : {false, true}) {
        const auto pc = measure_paired(busy, ues, sim_seconds, args.quick ? 3 : 5);
        for (const bool on : {false, true}) {
            const run_cost& c = on ? pc.on : pc.off;
            // ns/event from the min wall (see paired_cost); the wall column
            // stays the median, which is what a rerun will typically see.
            const double min_wall = on ? pc.on_min_wall : pc.off_min_wall;
            const double per_event =
                c.events ? min_wall * 1e9 / static_cast<double>(c.events) : 0.0;
            std::string cpu = "-", mem = "-";
            double cpu_pct = 0.0, mem_pct = 0.0;
            if (on) {
                // CPU: per-event processing cost ratio over the interleaved
                // pairs (with L4Span the shallow queues also shrink the
                // event count itself, which only helps). Memory: L4Span's
                // state over the RAN's.
                cpu_pct = pc.cpu_overhead_pct;
                mem_pct = pc.off.ran_state > 0
                              ? 100.0 * static_cast<double>(c.l4span_state) /
                                    static_cast<double>(pc.off.ran_state)
                              : 0.0;
                cpu = stats::table::num(cpu_pct, 1) + "%";
                mem = stats::table::num(mem_pct, 2) + "%";
            }
            t.add_row({busy ? "busy (" + std::to_string(ues) + " UE DL)" : "idle",
                       on ? "+" : "-",
                       stats::table::num(c.wall_seconds, 3), std::to_string(c.events),
                       stats::table::num(per_event, 0),
                       std::to_string(c.ran_state / 1024),
                       std::to_string(c.l4span_state / 1024), cpu, mem});
            auto jr = stats::json::object();
            jr.set("state", busy ? "busy" : "idle")
                .set("l4span", on)
                .set("wall_seconds", c.wall_seconds)
                .set("sim_events", c.events)
                .set("ns_per_event", per_event)
                .set("ran_state_bytes", c.ran_state)
                .set("l4span_state_bytes", c.l4span_state);
            if (on) jr.set("cpu_overhead_pct", cpu_pct).set("mem_overhead_pct", mem_pct);
            rows_json.push(std::move(jr));
        }
    }
    t.print();
    summary.set("rows", std::move(rows_json));

    // obs:: telemetry overhead on the same busy cell: tracing off (every
    // trace site pays one null-pointer branch) vs tracing on (ring writes
    // + periodic metric snapshots, in memory only).
    const auto oc = measure_obs_paired(ues, sim_seconds, args.quick ? 3 : 5);
    const double obs_off_pe = oc.off.events
        ? oc.off_min_wall * 1e9 / static_cast<double>(oc.off.events) : 0.0;
    const double obs_on_pe = oc.on.events
        ? oc.on_min_wall * 1e9 / static_cast<double>(oc.on.events) : 0.0;
    std::printf("\nobs:: tracing overhead (busy L4Span cell, %d UE DL):\n", ues);
    stats::table ot({"tracing", "wall (s)", "sim events", "ns/event", "overhead"});
    ot.add_row({"-", stats::table::num(oc.off.wall_seconds, 3),
                std::to_string(oc.off.events), stats::table::num(obs_off_pe, 0), "-"});
    ot.add_row({"+", stats::table::num(oc.on.wall_seconds, 3),
                std::to_string(oc.on.events), stats::table::num(obs_on_pe, 0),
                stats::table::num(oc.cpu_overhead_pct, 1) + "%"});
    ot.print();
    auto obs_json = stats::json::object();
    obs_json.set("ns_per_event_off", obs_off_pe)
        .set("ns_per_event_on", obs_on_pe)
        .set("overhead_pct", oc.cpu_overhead_pct);
    summary.set("obs_overhead", std::move(obs_json));

    std::puts("\nNote: with L4Span the busy RAN holds far less queued state — the");
    std::puts("shallow RLC queues are themselves a memory win for the DU.");
    return benchutil::finish(args, summary);
}
