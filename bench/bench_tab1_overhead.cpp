// Table 1 — L4Span's CPU and memory overhead relative to the RAN it embeds
// in, in idle (no traffic) and busy (64 concurrent downloads) states.
// Substitution: the paper compares srsRAN process CPU%/RSS on an i7-13700K;
// we compare the wall-clock cost of simulating the identical cell and the
// resident state of the DU queues, with and without the L4Span layer.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

namespace {

struct run_cost {
    double wall_seconds;
    std::uint64_t events;
    std::size_t ran_state;
    std::size_t l4span_state;
};

run_cost measure(bool busy, bool with_l4span)
{
    scenario::cell_spec cell;
    cell.num_ues = 64;
    cell.channel = "static";
    cell.cu = with_l4span ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = 103;
    scenario::cell_scenario s(cell);
    if (busy) {
        for (int u = 0; u < 64; ++u) {
            scenario::flow_spec f;
            f.cca = "prague";
            f.ue = u;
            s.add_flow(f);
        }
    }
    const auto t0 = std::chrono::steady_clock::now();
    s.run(sim::from_sec(5));
    const auto t1 = std::chrono::steady_clock::now();
    run_cost c;
    c.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    c.events = s.loop().processed();
    c.ran_state = s.gnb().resident_state_bytes();
    c.l4span_state = s.l4span_layer() ? s.l4span_layer()->resident_state_bytes() : 0;
    return c;
}

}  // namespace

int main()
{
    benchutil::header("Table 1: CPU and memory overhead",
                      "paper: +<2% CPU and +<0.02% memory over vanilla srsRAN");
    stats::table t({"state", "L4Span", "wall (s)", "sim events", "ns/event",
                    "RAN state (kB)", "L4Span state (kB)", "CPU overhead", "mem overhead"});
    for (const bool busy : {false, true}) {
        double base_per_event = 0.0;
        std::size_t base_state = 0;
        for (const bool on : {false, true}) {
            const auto c = measure(busy, on);
            const double per_event =
                c.events ? c.wall_seconds * 1e9 / static_cast<double>(c.events) : 0.0;
            std::string cpu = "-", mem = "-";
            if (!on) {
                base_per_event = per_event;
                base_state = c.ran_state;
            } else {
                // CPU: per-event processing cost ratio (with L4Span the
                // shallow queues also shrink the event count itself, which
                // only helps). Memory: L4Span's state over the RAN's.
                cpu = stats::table::num(base_per_event > 0
                                            ? 100.0 * (per_event - base_per_event) /
                                                  base_per_event
                                            : 0.0, 1) + "%";
                mem = stats::table::num(
                          base_state > 0 ? 100.0 * static_cast<double>(c.l4span_state) /
                                               static_cast<double>(base_state)
                                         : 0.0, 2) + "%";
            }
            t.add_row({busy ? "busy (64 UE DL)" : "idle", on ? "+" : "-",
                       stats::table::num(c.wall_seconds, 3), std::to_string(c.events),
                       stats::table::num(per_event, 0),
                       std::to_string(c.ran_state / 1024),
                       std::to_string(c.l4span_state / 1024), cpu, mem});
        }
    }
    t.print();
    std::puts("\nNote: with L4Span the busy RAN holds far less queued state — the");
    std::puts("shallow RLC queues are themselves a memory win for the DU.");
    return 0;
}
