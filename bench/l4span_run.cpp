// l4span_run — the generic scenario driver: loads a JSON scenario file
// (schema "l4span-scenario-v1", see docs/SCENARIOS.md), fans its grid out
// through scenario::grid_runner and prints the same banner/table/JSON
// output as the bench binary the family grew out of. Running a bench's
// --export-scenario dump through this driver reproduces the bench's stdout
// and JSON summary byte-for-byte, for any --jobs value (pinned by
// tests/test_scenario_spec.cpp and the CI perf-smoke slice).
//
//   l4span_run SCENARIO.json [--jobs N] [--json PATH] [--obs-out PREFIX]
//              [--impair-noop] [--export PATH]
//
// There is deliberately no --quick: quickness is a property of the
// scenario document (the grid axes it lists), not of the run. --export
// re-exports the parsed document (normalized key order/format) and exits.
#include <cstdio>
#include <string>

#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"
#include "scenario/scenario_spec.h"

using namespace l4span;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& bad)
{
    std::fprintf(stderr,
                 "usage: %s SCENARIO.json [--jobs N] [--json PATH] "
                 "[--obs-out PREFIX] [--impair-noop] [--export PATH]\n",
                 argv0);
    if (!bad.empty()) std::fprintf(stderr, "%s\n", bad.c_str());
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv)
{
    scenario::bench_args args;
    std::string scenario_path;
    std::string export_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            args.jobs = std::atoi(argv[++i]);
        } else if (a.rfind("--jobs=", 0) == 0) {
            args.jobs = std::atoi(a.c_str() + 7);
        } else if (a.rfind("-j", 0) == 0 && a.size() > 2) {
            args.jobs = std::atoi(a.c_str() + 2);
        } else if (a == "--json" && i + 1 < argc) {
            args.json_path = argv[++i];
        } else if (a.rfind("--json=", 0) == 0) {
            args.json_path = a.substr(7);
        } else if (a == "--obs-out" && i + 1 < argc) {
            args.obs_out = argv[++i];
        } else if (a.rfind("--obs-out=", 0) == 0) {
            args.obs_out = a.substr(10);
        } else if (a == "--impair-noop") {
            args.impair_noop = true;
        } else if (a == "--export" && i + 1 < argc) {
            export_path = argv[++i];
        } else if (a.rfind("--export=", 0) == 0) {
            export_path = a.substr(9);
        } else if (a == "--quick") {
            usage(argv[0],
                  "--quick is not a driver flag: a scenario file already names "
                  "its grid slice (export one with bench_* --quick "
                  "--export-scenario PATH)");
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0], "unknown argument: " + a);
        } else if (scenario_path.empty()) {
            scenario_path = a;
        } else {
            usage(argv[0], "more than one scenario file: " + a);
        }
    }
    if (args.jobs < 0) args.jobs = 1;
    if (scenario_path.empty()) usage(argv[0], "missing scenario file");

    try {
        const auto spec = scenario::load_scenario_file(scenario_path);
        args.quick = spec.quick;  // summary "quick" tag follows the document
        if (!export_path.empty())
            return scenario::write_scenario_file(export_path, spec);
        return scenario::run_scenario(spec, args);
    } catch (const scenario::scenario_error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
