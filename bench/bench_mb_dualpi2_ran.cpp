// §6.3.1 microbenchmark — the wired DualPi2 marking rule transplanted into
// the RAN (1 ms and 10 ms step thresholds) vs L4Span. The paper reports 73%
// and 28% throughput loss respectively: a fixed sojourn threshold cannot
// track a volatile wireless egress rate.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("§6.3.1: DualPi2-in-the-RAN vs L4Span",
                      "DualPi2@1ms loses ~73% throughput, @10ms ~28%; L4Span holds "
                      "near line rate at comparable delay");
    stats::table t({"marker", "channel", "cca", "tput (Mbit/s)", "OWD p50 (ms)",
                    "vs L4Span tput"});
    for (const std::string chan : {"static", "vehicular"}) {
        for (const std::string cca : {"prague", "bbr2"}) {
            double l4span_tput = 0.0;
            struct mode {
                const char* label;
                scenario::cu_mode cu;
                double step_ms;
            };
            for (const mode m : {mode{"L4Span", scenario::cu_mode::l4span, 0.0},
                                 mode{"DualPi2@1ms", scenario::cu_mode::dualpi2_ran, 1.0},
                                 mode{"DualPi2@10ms", scenario::cu_mode::dualpi2_ran, 10.0}}) {
                scenario::cell_spec cell;
                cell.num_ues = 1;
                cell.channel = chan;
                cell.cu = m.cu;
                cell.dualpi2.l4s_step = sim::from_ms(m.step_ms);
                cell.seed = 107;
                scenario::cell_scenario s(cell);
                scenario::flow_spec f;
                f.cca = cca;
                const int h = s.add_flow(f);
                s.run(sim::from_sec(10));
                const double tput = s.goodput_mbps(h);
                if (m.cu == scenario::cu_mode::l4span) l4span_tput = tput;
                t.add_row({m.label, chan, cca, stats::table::num(tput, 2),
                           stats::table::num(s.owd_ms(h).median(), 1),
                           l4span_tput > 0
                               ? stats::table::num(100.0 * tput / l4span_tput, 1) + "%"
                               : "-"});
            }
        }
    }
    t.print();
    return 0;
}
