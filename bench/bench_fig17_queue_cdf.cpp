// Fig. 17 — RLC queue length CDFs under L4Span for Prague and CUBIC in 16-
// and 64-UE cells, static and mobile channels. The paper's point: the
// classic queue never drains to zero (no under-utilization) while the L4S
// queue stays low.
#include <cstdio>

#include "bench_util.h"
#include "scenario/cell_scenario.h"

using namespace l4span;

int main()
{
    benchutil::header("Fig. 17: RLC queue CDFs under L4Span",
                      "L4S queues stay in the ~10 SDU range; classic queues keep "
                      "a working buffer and rarely reach zero");
    stats::table t({"UEs", "cca", "chan", "queue SDUs p10/p25/p50/p75/p90",
                    "fraction at 0"});
    for (const int ues : {16, 64}) {
        for (const std::string cca : {"prague", "cubic"}) {
            for (const std::string chan : {"static", "mobile"}) {
                scenario::cell_spec cell;
                cell.num_ues = ues;
                cell.channel = chan;
                cell.cu = scenario::cu_mode::l4span;
                cell.seed = 83;
                scenario::cell_scenario s(cell);
                for (int u = 0; u < ues; ++u) {
                    scenario::flow_spec f;
                    f.cca = cca;
                    f.ue = u;
                    f.max_cwnd = 1536 * 1024;
                    s.add_flow(f);
                }
                s.run(sim::from_sec(6));

                stats::sample_set q;
                double zero = 0.0;
                std::size_t n = 0;
                for (int u = 0; u < ues; ++u) {
                    for (double v : s.rlc_queue_sdus(u).raw()) {
                        q.add(v);
                        if (v < 0.5) zero += 1.0;
                        ++n;
                    }
                }
                t.add_row({std::to_string(ues), cca, chan, benchutil::box(q, 0),
                           stats::table::num(n ? zero / static_cast<double>(n) : 0, 3)});
            }
        }
    }
    t.print();
    return 0;
}
