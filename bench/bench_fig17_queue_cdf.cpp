// Fig. 17 — RLC queue length CDFs under L4Span for Prague and CUBIC in 16-
// and 64-UE cells, static and mobile channels. The paper's point: the
// classic queue never drains to zero (no under-utilization) while the L4S
// queue stays low.
//
// The 8 grid points are independent cells fanned out over
// scenario::grid_runner; stdout stays byte-identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"

using namespace l4span;

namespace {

struct grid_point {
    int ues;
    std::string cca;
    std::string chan;
};

struct cdf_result {
    stats::sample_set queue_sdus;
    double frac_at_zero = 0.0;
};

cdf_result run_cell(const grid_point& p, sim::tick duration)
{
    scenario::cell_spec cell;
    cell.num_ues = p.ues;
    cell.channel = p.chan;
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 83;
    scenario::cell_scenario s(cell);
    for (int u = 0; u < p.ues; ++u) {
        scenario::flow_spec f;
        f.cca = p.cca;
        f.ue = u;
        f.max_cwnd = 1536 * 1024;
        s.add_flow(f);
    }
    s.run(duration);

    cdf_result r;
    double zero = 0.0;
    std::size_t n = 0;
    for (int u = 0; u < p.ues; ++u) {
        for (double v : s.rlc_queue_sdus(u).raw()) {
            r.queue_sdus.add(v);
            if (v < 0.5) zero += 1.0;
            ++n;
        }
    }
    r.frac_at_zero = n ? zero / static_cast<double>(n) : 0.0;
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fig. 17: RLC queue CDFs under L4Span",
                      "L4S queues stay in the ~10 SDU range; classic queues keep "
                      "a working buffer and rarely reach zero");
    std::vector<int> ue_counts{16, 64};
    std::vector<std::string> ccas{"prague", "cubic"};
    std::vector<std::string> chans{"static", "mobile"};
    if (args.quick) {  // 2-point CI slice: both classes, one small cell
        ue_counts = {16};
        chans = {"static"};
    }
    const sim::tick duration = sim::from_sec(6);

    std::vector<grid_point> points;
    for (const int ues : ue_counts)
        for (const auto& cca : ccas)
            for (const auto& chan : chans) points.push_back({ues, cca, chan});

    scenario::grid_runner pool(args.jobs);
    std::fprintf(stderr, "fig17: %zu grid points on %d worker(s)\n", points.size(),
                 pool.jobs());
    const auto results = pool.map(
        points.size(), [&](std::size_t i) { return run_cell(points[i], duration); });

    auto summary = stats::json::object();
    summary.set("figure", "fig17").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"UEs", "cca", "chan", "queue SDUs p10/p25/p50/p75/p90",
                    "fraction at 0"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        const auto& r = results[i];
        t.add_row({std::to_string(p.ues), p.cca, p.chan,
                   benchutil::box(r.queue_sdus, 0),
                   stats::table::num(r.frac_at_zero, 3)});
        auto jp = stats::json::object();
        jp.set("ues", p.ues)
            .set("cca", p.cca)
            .set("chan", p.chan)
            .set("queue_sdus", benchutil::box_json(r.queue_sdus))
            .set("frac_at_zero", r.frac_at_zero);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
