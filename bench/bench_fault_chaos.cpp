// Fault-injection chaos grid: fault class x transport under a multi-cell
// topology, measuring how far L4Span degrades when the RAN fails underneath
// it — RLF re-establishment latency, handover-failure recovery, cell
// outages, wired-link flaps, and the full chaos mix.
//
// The deployability claim this quantifies: faults invalidate hook state and
// stall transports, but nothing wedges — recovery is bounded (re-establish
// backoff + signalling), interactive media resumes, and the no-fault
// baseline rows show the fault machinery costs nothing when armed but idle.
//
// The grid lives in the scenario engine as the "fault_chaos" builtin
// (family fault_chaos). Schedules come from topo::fault_plan, so every row
// is byte-identical for any --jobs value. --export-scenario PATH dumps the
// (possibly --quick) grid as JSON.
#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"

using namespace l4span;

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    const auto spec = scenario::builtin_scenario("fault_chaos", args.quick);
    if (!args.export_scenario.empty())
        return scenario::write_scenario_file(args.export_scenario, spec);
    return scenario::run_scenario(spec, args);
}
