// Fault-injection chaos grid: fault class x transport under a multi-cell
// topology, measuring how far L4Span degrades when the RAN fails underneath
// it — RLF re-establishment latency, handover-failure recovery, cell
// outages, wired-link flaps, and the full chaos mix.
//
// The deployability claim this quantifies: faults invalidate hook state and
// stall transports, but nothing wedges — recovery is bounded (re-establish
// backoff + signalling), interactive media resumes, and the no-fault
// baseline rows show the fault machinery costs nothing when armed but idle.
// Schedules come from topo::fault_plan, so every row is byte-identical for
// any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/grid_runner.h"
#include "scenario/topology.h"
#include "stats/json.h"
#include "topo/fault_plan.h"

using namespace l4span;

namespace {

struct fault_profile {
    std::string name;
    double rlf = 0.0;       // per UE per second
    double ho_fail = 0.0;   // per UE per second
    double outage = 0.0;    // per cell per second
    double flap = 0.0;      // per cell per second
};

struct chaos_point {
    fault_profile profile;
    std::string cca;
    bool media;  // frame-paced interactive source on the transport
};

struct point_result {
    stats::sample_set owd_ms;       // pooled over all flows
    stats::sample_set tput_mbps;    // one sample per flow
    stats::sample_set recovery_ms;  // per recovered fault
    double stall_fraction = -1.0;   // media rows only
    std::uint64_t retransmits = 0;
    std::uint64_t injected = 0;
    std::uint64_t rlf_detected = 0;
    std::uint64_t reestablishments = 0;
    std::uint64_t ho_failures = 0;
    std::uint64_t ho_rollbacks = 0;
    std::uint64_t events = 0;
};

point_result run_point(const chaos_point& p, sim::tick duration, int jobs,
                       const std::string& obs_out)
{
    scenario::topology_spec spec;
    spec.num_cells = 3;
    spec.ues_per_cell = 3;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "static";
    spec.cell.seed = 41;
    spec.wired_bps = 100e6;  // gives link flaps a hop to cut
    spec.jobs = jobs;
    if (!obs_out.empty()) {
        // Flight recorder on: every injected fault dumps the firing shard's
        // last-N trace events to <prefix>.incident-*.jsonl, and run() writes
        // the end-of-run metrics + merged trace. Measured results must be
        // byte-identical with or without this.
        spec.cell.obs.enabled = true;
        spec.cell.obs.out_prefix = obs_out;
    }
    scenario::topology topo(spec);

    std::vector<int> handles;
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = p.cca;
        f.ue = ue;
        f.max_cwnd = 1536 * 1024;
        if (p.media) {
            f.fps = 30.0;
            f.frame_bitrate_bps = 6e6;
        }
        handles.push_back(topo.add_flow(f));
    }

    topo::fault_plan_config fc;
    fc.num_cells = spec.num_cells;
    fc.ues_per_cell = spec.ues_per_cell;
    fc.start = sim::from_ms(800);
    fc.end = duration - sim::from_ms(500);  // leave room to observe recovery
    fc.seed = 23;
    fc.rlf_per_ue_per_sec = p.profile.rlf;
    fc.ho_failure_per_ue_per_sec = p.profile.ho_fail;
    fc.outages_per_cell_per_sec = p.profile.outage;
    fc.flaps_per_cell_per_sec = p.profile.flap;
    if (fc.any_enabled()) topo.apply_faults(topo::fault_plan(fc));

    topo.run(duration);

    point_result r;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) r.owd_ms.add(v);
        r.tput_mbps.add(topo.goodput_mbps(h));
        r.retransmits += topo.flow_retransmits(h);
        if (const auto* fs = topo.frame_stats(h)) {
            if (r.stall_fraction < 0.0) r.stall_fraction = 0.0;
            r.stall_fraction += fs->stall_fraction() /
                                static_cast<double>(handles.size());
        }
    }
    for (double v : topo.recovery_ms()) r.recovery_ms.add(v);
    for (auto cls : {topo::fault_class::rlf, topo::fault_class::handover_failure,
                     topo::fault_class::cell_outage, topo::fault_class::link_flap})
        r.injected += topo.faults_injected(cls);
    r.rlf_detected = topo.rlf_detected();
    r.reestablishments = topo.reestablishments();
    r.ho_failures = topo.ho_failures();
    r.ho_rollbacks = topo.ho_rollbacks();
    r.events = topo.processed_events();
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const auto args = scenario::parse_bench_args(argc, argv);
    benchutil::header("Fault-injection chaos grid (fault class x transport)",
                      "graceful degradation under RLF / handover failure / "
                      "cell outage / link flaps: bounded recovery, no wedged "
                      "flows, interactive media resumes after blackouts");

    std::vector<fault_profile> profiles{
        {"baseline", 0.0, 0.0, 0.0, 0.0},
        {"rlf", 0.6, 0.0, 0.0, 0.0},
        {"ho-failure", 0.0, 0.6, 0.0, 0.0},
        {"cell-outage", 0.0, 0.0, 0.3, 0.0},
        {"link-flap", 0.0, 0.0, 0.0, 0.5},
        {"chaos-mix", 0.4, 0.3, 0.15, 0.25},
    };
    struct transport_row {
        std::string cca;
        bool media;
    };
    std::vector<transport_row> transports{
        {"prague", false}, {"cubic", false}, {"quic-prague", true}};
    sim::tick duration = sim::from_sec(6);
    if (args.quick) {
        profiles = {{"baseline", 0, 0, 0, 0}, {"chaos-mix", 0.4, 0.3, 0.15, 0.25}};
        transports = {{"prague", false}};
        duration = sim::from_sec(3);
    }
    const int jobs = args.jobs > 0 ? args.jobs : scenario::default_jobs();

    auto summary = stats::json::object();
    summary.set("figure", "fault_chaos").set("quick", args.quick);
    auto json_points = stats::json::array();

    stats::table t({"faults", "transport", "injected", "recov ms p50/p90",
                    "OWD ms p10/p25/p50/p75/p90", "Mbit/s p50", "retx",
                    "stall frac"});
    for (const auto& profile : profiles) {
        for (const auto& tr : transports) {
            const chaos_point p{profile, tr.cca, tr.media};
            const std::string obs =
                args.obs_out.empty()
                    ? std::string()
                    : args.obs_out + "-" + profile.name + "-" + tr.cca +
                          (tr.media ? "-media" : "");
            const auto r = run_point(p, duration, jobs, obs);
            char recov[64];
            std::snprintf(recov, sizeof(recov), "%.0f/%.0f",
                          r.recovery_ms.median(), r.recovery_ms.percentile(90));
            char stall[32];
            if (r.stall_fraction >= 0.0)
                std::snprintf(stall, sizeof(stall), "%.3f", r.stall_fraction);
            else
                std::snprintf(stall, sizeof(stall), "-");
            t.add_row({profile.name, tr.cca + (tr.media ? " (media)" : ""),
                       std::to_string(r.injected),
                       r.recovery_ms.count() ? recov : "-",
                       benchutil::box(r.owd_ms),
                       stats::table::num(r.tput_mbps.median(), 2),
                       std::to_string(r.retransmits), stall});
            auto jp = stats::json::object();
            jp.set("faults", profile.name)
                .set("cca", tr.cca)
                .set("media", tr.media)
                .set("faults_injected", r.injected)
                .set("rlf_detected", r.rlf_detected)
                .set("reestablishments", r.reestablishments)
                .set("ho_failures", r.ho_failures)
                .set("ho_rollbacks", r.ho_rollbacks)
                .set("recovery_ms", benchutil::box_json(r.recovery_ms))
                .set("owd_ms", benchutil::box_json(r.owd_ms))
                .set("tput_mbps", benchutil::box_json(r.tput_mbps))
                .set("retransmits", r.retransmits)
                .set("stall_fraction", r.stall_fraction)
                .set("sim_events", r.events);
            json_points.push(std::move(jp));
        }
    }
    t.print();
    summary.set("points", std::move(json_points));
    return benchutil::finish(args, summary);
}
