#!/usr/bin/env python3
"""Render obs:: telemetry artifacts into human-readable summaries.

Input is the JSONL artifact set a traced run writes under one prefix:
  <prefix>.metrics.jsonl        periodic metric snapshots (one line each)
  <prefix>.trace.jsonl          merged trace-ring dump, (t, shard, seq) order
  <prefix>.incident-*.jsonl     flight-recorder dumps (one per fault/invariant)

Sections reported:
  * final metric snapshot per shard (counters, gauges, sojourn histogram)
  * per-layer latency, joined from the trace events themselves:
      - RLC queueing: rlc_enqueue -> first mac_tx of the same (shard,
        bearer, SN)
      - gNB transit:  rlc_enqueue -> rlc_deliver of the same (shard,
        flow, packet) — queueing + HARQ + over-the-air + reassembly
  * mark/drop/reaction rates: event counts grouped by (point, reason) for
    the AQM, L4Span, impairment and transport trace points
  * flight-recorder incidents: trigger and the events leading up to it

Timestamps are simulation ticks (1 tick = 1 ns).

Usage: scripts/obs_report.py PREFIX [PREFIX...]
       scripts/obs_report.py --selftest
"""

import glob
import json
import sys

TICKS_PER_MS = 1_000_000.0

# Points whose (point, reason) counts form the mark/reaction summary.
RATE_POINTS = (
    "aqm_mark", "aqm_drop", "l4span_dl", "l4span_ul", "impair",
    "transport_ce", "transport_loss", "transport_rto", "ecn_fallback",
    "rlc_discard", "harq_conclude", "fault_fire", "rlf_declared",
    "ho_start", "ho_complete", "cell_outage", "cell_restore",
)


def read_jsonl(path):
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]


def percentiles(values, points=(50, 90, 99)):
    if not values:
        return {p: float("nan") for p in points}
    vs = sorted(values)
    out = {}
    for p in points:
        idx = min(len(vs) - 1, int(round(p / 100.0 * (len(vs) - 1))))
        out[p] = vs[idx]
    return out


def layer_latencies(events):
    """Joins trace events into per-layer latency sample lists (ms)."""
    queueing, transit = [], []
    enq_by_sn = {}    # (shard, bearer, sn) -> enqueue tick
    enq_by_pkt = {}   # (shard, flow<<32|pkt) -> enqueue tick
    for ev in events:
        p = ev.get("p")
        if p == "rlc_enqueue":
            enq_by_sn[(ev["s"], ev["a"], ev["b"])] = ev["t"]
            enq_by_pkt[(ev["s"], ev["c"])] = ev["t"]
        elif p == "mac_tx":
            key = (ev["s"], ev["a"], ev["b"])
            t0 = enq_by_sn.pop(key, None)  # first transmission only
            if t0 is not None:
                queueing.append((ev["t"] - t0) / TICKS_PER_MS)
        elif p == "rlc_deliver":
            t0 = enq_by_pkt.pop((ev["s"], ev["b"]), None)
            if t0 is not None:
                transit.append((ev["t"] - t0) / TICKS_PER_MS)
    return queueing, transit


def rate_summary(events):
    counts = {}
    for ev in events:
        p = ev.get("p")
        if p in RATE_POINTS:
            key = (p, ev.get("r", "none"))
            counts[key] = counts.get(key, 0) + 1
    return counts


def span_ms(events):
    if not events:
        return 0.0
    return (events[-1]["t"] - events[0]["t"]) / TICKS_PER_MS


def print_latency_section(events):
    queueing, transit = layer_latencies(events)
    print("\nper-layer latency (joined from the trace ring; ms):")
    for name, samples in (("RLC queueing (enqueue->mac_tx)", queueing),
                          ("gNB transit (enqueue->deliver)", transit)):
        if not samples:
            print(f"  {name:<34} no joined pairs in the retained window")
            continue
        pct = percentiles(samples)
        print(f"  {name:<34} n={len(samples):<7} "
              f"p50={pct[50]:.2f}  p90={pct[90]:.2f}  p99={pct[99]:.2f}")


def print_rate_section(events):
    counts = rate_summary(events)
    if not counts:
        print("\nno mark/reaction events in the retained window")
        return
    window = span_ms(events)
    print(f"\nmark/drop/reaction events (trace window {window:.0f} ms):")
    for (p, r), n in sorted(counts.items()):
        rate = n / (window / 1000.0) if window > 0 else 0.0
        print(f"  {p:<16} {r:<16} {n:>8}  ({rate:,.1f}/s)")


def print_metrics_section(lines):
    if not lines:
        print("\nno metric snapshots")
        return
    # Final snapshot per shard.
    final = {}
    for snap in lines:
        final[snap["s"]] = snap
    print(f"\nmetrics: {len(lines)} snapshots, {len(final)} shard(s); "
          "final values:")
    for s in sorted(final):
        snap = final[s]
        print(f"  shard {s} @ {snap['t'] / TICKS_PER_MS:.0f} ms:")
        for name, v in snap["m"].items():
            if isinstance(v, dict):  # histogram
                n, total = v.get("n", 0), v.get("sum", 0.0)
                mean = total / n if n else 0.0
                print(f"    {name:<28} n={n} mean={mean:.3f} "
                      f"buckets={v.get('counts')}")
            else:
                print(f"    {name:<28} {v}")


def print_incident(path):
    lines = read_jsonl(path)
    if not lines:
        print(f"  {path}: empty")
        return
    meta, events = lines[0], lines[1:]
    t_ms = meta.get("t", 0) / TICKS_PER_MS
    print(f"  {path}")
    print(f"    trigger '{meta.get('incident')}' on shard {meta.get('s')} "
          f"@ {t_ms:.1f} ms — {meta.get('events')} events "
          f"(ring lifetime {meta.get('ring_total')})")
    for ev in events[-3:]:
        print(f"    ... {ev['t'] / TICKS_PER_MS:10.3f} ms  {ev['p']}"
              f"  {ev.get('r', 'none')}")


def report(prefix):
    print(f"=== obs report: {prefix} ===")
    try:
        metrics = read_jsonl(f"{prefix}.metrics.jsonl")
    except FileNotFoundError:
        metrics = []
    try:
        events = read_jsonl(f"{prefix}.trace.jsonl")
    except FileNotFoundError:
        events = []
    print_metrics_section(metrics)
    if events:
        print(f"\ntrace: {len(events)} retained events "
              f"({span_ms(events):.0f} ms window)")
        print_latency_section(events)
        print_rate_section(events)
    else:
        print("\nno trace dump")
    incidents = sorted(glob.glob(f"{prefix}.incident-*.jsonl"))
    print(f"\nflight-recorder incidents: {len(incidents)}")
    for path in incidents:
        print_incident(path)
    if not metrics and not events and not incidents:
        print("error: no artifacts found for this prefix", file=sys.stderr)
        return 1
    return 0


def selftest():
    """Checks the joins and summaries against synthetic events."""
    ms = int(TICKS_PER_MS)
    ev = lambda t, p, s=0, a=0, b=0, c=0, r="none": {
        "t": t, "p": p, "r": r, "s": s, "a": a, "b": b, "c": c}
    flowpkt = (3 << 32) | 7
    events = [
        ev(0 * ms, "rlc_enqueue", a=0x101, b=5, c=flowpkt),
        ev(2 * ms, "mac_tx", a=0x101, b=5, c=1440),
        ev(3 * ms, "mac_tx", a=0x101, b=5, c=1440, r="harq_retx"),  # no rejoin
        ev(6 * ms, "rlc_deliver", a=0x101, b=flowpkt, c=1440),
        ev(7 * ms, "aqm_mark", r="l4s_mark"),
        ev(8 * ms, "aqm_mark", r="l4s_mark"),
        ev(9 * ms, "l4span_dl", r="ce_mark"),
        # unmatched enqueue: deliver was overwritten in the ring
        ev(9 * ms, "rlc_enqueue", a=0x102, b=9, c=(4 << 32) | 1),
    ]
    queueing, transit = layer_latencies(events)
    checks = [
        ("queueing join count", len(queueing) == 1),
        ("queueing value", queueing and abs(queueing[0] - 2.0) < 1e-9),
        ("transit join count", len(transit) == 1),
        ("transit value", transit and abs(transit[0] - 6.0) < 1e-9),
        ("retx does not rejoin", len(queueing) == 1),
        ("rate counts", rate_summary(events).get(("aqm_mark", "l4s_mark")) == 2),
        ("l4span counted", rate_summary(events).get(("l4span_dl", "ce_mark")) == 1),
        ("window", abs(span_ms(events) - 9.0) < 1e-9),
        ("percentile of singleton", percentiles([4.0])[99] == 4.0),
    ]
    failed = 0
    for name, ok in checks:
        failed += not ok
        print(f"{'ok   ' if ok else 'FAIL '} selftest: {name}")
    print(f"selftest: {len(checks)} checks, {failed} failures")
    return 1 if failed else 0


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    if argv[1] == "--selftest":
        return selftest()
    status = 0
    for prefix in argv[1:]:
        status = max(status, report(prefix))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
