#!/usr/bin/env sh
# Run every figure benchmark in a build directory and save each one's stdout
# under <outdir>/<bench>.txt. Grid-shaped benches additionally emit a
# machine-readable summary, collected as BENCH_<fig>.json at the repo root —
# the per-figure trajectories the ROADMAP tracks.
#
#   usage: scripts/run_benches.sh [--jobs N] [--quick] [--profile] [--obs] [build-dir] [outdir]
#
#   --jobs N   worker threads for the grid benches (default: all cores,
#              also settable via L4SPAN_BENCH_JOBS; 1 = historical serial run)
#   --quick    tiny grid slices (the CI perf-smoke configuration)
#   --profile  run only bench_fig21_proctime and emit the per-stage
#              (RLC/MAC/AQM/L4Span) ns breakdown as BENCH_fig21.json --
#              the starting data for the next hot-path PR
#   --obs      run bench_fault_chaos with the obs:: telemetry hub enabled:
#              metric snapshots, trace dumps and flight-recorder incident
#              files land under <outdir>/obs/, with a rendered summary in
#              <outdir>/obs_report.txt (results are byte-identical either way)
set -eu

jobs=${L4SPAN_BENCH_JOBS:-0}
quick=""
profile=""
obs=""
build_dir=""
out_dir=""
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)
            jobs=$2
            shift 2
            ;;
        --jobs=*)
            jobs=${1#--jobs=}
            shift
            ;;
        --quick)
            quick="--quick"
            shift
            ;;
        --profile)
            profile=1
            shift
            ;;
        --obs)
            obs=1
            shift
            ;;
        -*)
            echo "usage: $0 [--jobs N] [--quick] [--profile] [--obs] [build-dir] [outdir]" >&2
            exit 2
            ;;
        *)
            if [ -z "$build_dir" ]; then
                build_dir=$1
            elif [ -z "$out_dir" ]; then
                out_dir=$1
            else
                echo "unexpected argument: $1" >&2
                exit 2
            fi
            shift
            ;;
    esac
done
build_dir=${build_dir:-build}
out_dir=${out_dir:-bench-results}
repo_root=$(dirname "$0")/..

if [ ! -d "$build_dir" ]; then
    echo "error: build dir '$build_dir' not found (run the tier-1 build first)" >&2
    exit 1
fi

# --profile: just the per-stage hot-path breakdown, nothing else.
if [ -n "$profile" ]; then
    bin=$build_dir/bench_fig21_proctime
    if [ ! -x "$bin" ]; then
        echo "error: $bin not found (build the bench targets first)" >&2
        exit 1
    fi
    mkdir -p "$out_dir"
    echo "== bench_fig21_proctime (per-stage hot-path breakdown)"
    "$bin" $quick --json "$out_dir/BENCH_fig21.json" > "$out_dir/bench_fig21_proctime.txt" 2>&1
    tail -n 8 "$out_dir/bench_fig21_proctime.txt"
    cp "$out_dir/BENCH_fig21.json" "$repo_root/BENCH_fig21.json"
    echo "   wrote $out_dir/BENCH_fig21.json (and repo-root copy)"
    exit 0
fi

# Benches that understand --jobs/--quick/--json (grid_runner- or
# topology-sharded).
grid_benches="bench_ecn_impairment bench_fault_chaos bench_fig09_tcp_grid \
bench_fig13_video bench_fig14_fairness bench_fig16_shared_drb \
bench_fig17_queue_cdf bench_fig18_coherence bench_fig19_threshold \
bench_fig21_proctime bench_fig24_bbr_reno bench_mc_handover \
bench_quic_interactive bench_tab1_overhead bench_trace_replay"

is_grid_bench() {
    for g in $grid_benches; do
        [ "$1" = "$g" ] && return 0
    done
    return 1
}

mkdir -p "$out_dir"
status=0
ran=0
for bin in "$build_dir"/bench_*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    ran=$((ran + 1))
    echo "== $name"
    if is_grid_bench "$name"; then
        # bench_fig09_tcp_grid -> fig09; bench_tab1_overhead -> tab1
        case "$name" in
            bench_ecn_impairment) fig=ecn_impairment ;;
            bench_fault_chaos) fig=fault_chaos ;;
            bench_mc_handover) fig=mc_handover ;;
            bench_quic_interactive) fig=quic_interactive ;;
            bench_trace_replay) fig=trace_replay ;;
            *) fig=$(echo "$name" | cut -d_ -f2) ;;
        esac
        set -- $quick --json "$out_dir/BENCH_$fig.json"
        # The replay grid runs from the committed NR-Scope-style traces.
        if [ "$name" = "bench_trace_replay" ]; then
            set -- "$@" --trace-dir "$repo_root/traces"
        fi
        # --obs: the chaos bench doubles as the flight-recorder exercise.
        if [ -n "$obs" ] && [ "$name" = "bench_fault_chaos" ]; then
            mkdir -p "$out_dir/obs"
            set -- "$@" --obs-out "$out_dir/obs/chaos"
        fi
        if [ "$jobs" -gt 0 ] 2>/dev/null; then
            set -- "$@" --jobs "$jobs"
        fi
        if "$bin" "$@" > "$out_dir/$name.txt" 2>&1; then
            tail -n 3 "$out_dir/$name.txt"
            cp "$out_dir/BENCH_$fig.json" "$repo_root/BENCH_$fig.json"
        else
            echo "   FAILED (see $out_dir/$name.txt)" >&2
            status=1
        fi
    elif "$bin" > "$out_dir/$name.txt" 2>&1; then
        tail -n 3 "$out_dir/$name.txt"
    else
        echo "   FAILED (see $out_dir/$name.txt)" >&2
        status=1
    fi
done
if [ "$ran" -eq 0 ]; then
    echo "error: no bench_* binaries in '$build_dir' (built with -DL4SPAN_BUILD_BENCH=ON?)" >&2
    exit 1
fi
if [ -n "$obs" ] && [ -d "$out_dir/obs" ]; then
    echo "== obs_report (telemetry summaries for the chaos run)"
    prefixes=$(ls "$out_dir"/obs/*.trace.jsonl 2>/dev/null \
        | sed 's/\.trace\.jsonl$//' || true)
    if [ -n "$prefixes" ]; then
        # shellcheck disable=SC2086
        python3 "$repo_root/scripts/obs_report.py" $prefixes \
            > "$out_dir/obs_report.txt" 2>&1 || status=1
        tail -n 5 "$out_dir/obs_report.txt"
    fi
fi
exit $status
