#!/usr/bin/env sh
# Run every figure benchmark in a build directory and save each one's stdout
# under <outdir>/<bench>.txt — the raw material future PRs will distill into
# BENCH_*.json trajectories.
#
#   usage: scripts/run_benches.sh [build-dir] [outdir]
set -eu

build_dir=${1:-build}
out_dir=${2:-bench-results}

if [ ! -d "$build_dir" ]; then
    echo "error: build dir '$build_dir' not found (run the tier-1 build first)" >&2
    exit 1
fi

mkdir -p "$out_dir"
status=0
ran=0
for bin in "$build_dir"/bench_*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    ran=$((ran + 1))
    echo "== $name"
    if "$bin" > "$out_dir/$name.txt" 2>&1; then
        tail -n 3 "$out_dir/$name.txt"
    else
        echo "   FAILED (see $out_dir/$name.txt)" >&2
        status=1
    fi
done
if [ "$ran" -eq 0 ]; then
    echo "error: no bench_* binaries in '$build_dir' (built with -DL4SPAN_BUILD_BENCH=ON?)" >&2
    exit 1
fi
exit $status
