#!/usr/bin/env python3
"""Perf-regression gate: compare a freshly-run BENCH_tab1.json against the
committed baseline and fail CI when the hot path regresses.

Gated metrics (the ones the hot-path campaign optimized):
  * every event-loop micro under "event_loop_ns" (schedule+fire,
    schedule+cancel, churn @1024 pending)
  * ns_per_event of each busy row (L4Span off and on)
  * the obs:: overhead rows: busy ns/event with tracing off (the
    disabled-telemetry cost every run pays — a regression here means the
    null-tracer branches stopped being free) and with tracing on

Only regressions gate — a fresh run that is *faster* than the baseline
prints as an improvement and exits 0 (commit the new JSON to ratchet).
Thresholds default to warn at +10% and fail at +25%: CI runners are noisy
and share tenants, so the fail bar is deliberately far above run-to-run
jitter while still catching the class of regression that motivated the
gate (an accidental map/allocation reintroduction is a 2x hit, not 25%).
The bench itself reports ns/event from the min-of-reps wall time, which
squeezes most machine noise out of both sides of the comparison.

Usage: scripts/perf_gate.py [--baseline PATH] [--fresh PATH]
                            [--warn-pct N] [--fail-pct N] [--selftest]
"""

import argparse
import json
import pathlib
import sys

WARN_PCT = 10.0
FAIL_PCT = 25.0


def gated_metrics(doc):
    """Extracts {name: value} for every gated metric in a BENCH_tab1 doc."""
    out = {}
    for name, ns in (doc.get("event_loop_ns") or {}).items():
        out[f"event-loop {name}"] = ns
    for row in doc.get("rows", []):
        if row.get("state") != "busy":
            continue
        mode = "on" if row.get("l4span") else "off"
        out[f"busy ns/event (L4Span {mode})"] = row.get("ns_per_event")
    obs = doc.get("obs_overhead") or {}
    if "ns_per_event_off" in obs:
        out["busy ns/event (tracing off)"] = obs["ns_per_event_off"]
    if "ns_per_event_on" in obs:
        out["busy ns/event (tracing on)"] = obs["ns_per_event_on"]
    return out


def compare(baseline, fresh, warn_pct, fail_pct):
    """Compares two BENCH_tab1 docs. Returns (results, status) where
    results is a list of (name, base, new, delta_pct, verdict) and status
    is the worst verdict seen ('ok', 'warn' or 'FAIL')."""
    base_m = gated_metrics(baseline)
    fresh_m = gated_metrics(fresh)
    results = []
    worst = "ok"
    for name, base in base_m.items():
        new = fresh_m.get(name)
        if base is None or new is None or base <= 0:
            results.append((name, base, new, None, "skip"))
            continue
        delta = 100.0 * (new - base) / base
        if delta > fail_pct:
            verdict = "FAIL"
        elif delta > warn_pct:
            verdict = "warn"
        else:
            verdict = "ok"
        if verdict == "FAIL" or (verdict == "warn" and worst == "ok"):
            worst = verdict
        results.append((name, base, new, delta, verdict))
    return results, worst


def run_gate(baseline_doc, fresh_doc, warn_pct, fail_pct):
    if fresh_doc.get("quick") or baseline_doc.get("quick"):
        print("skip: --quick documents carry truncated workloads; gate on "
              "full runs only")
        return 0
    results, worst = compare(baseline_doc, fresh_doc, warn_pct, fail_pct)
    for name, base, new, delta, verdict in results:
        if delta is None:
            print(f"skip  {name}: metric missing on one side")
            continue
        print(f"{verdict:<5} {name}: {base:.1f} -> {new:.1f} ns "
              f"({delta:+.1f}%, warn +{warn_pct:.0f}%, fail +{fail_pct:.0f}%)")
    if not any(d is not None for _, _, _, d, _ in results):
        print("FAIL: no gated metrics found in either document")
        return 1
    print(f"perf gate: {worst}")
    return 1 if worst == "FAIL" else 0


def selftest():
    """Validates the gate against embedded fixtures."""
    mk = lambda fire, busy_off, quick=False, obs_off=210.0: {
        "quick": quick,
        "event_loop_ns": {"schedule+fire": fire},
        "rows": [
            {"state": "idle", "l4span": False, "ns_per_event": 300.0},
            {"state": "busy", "l4span": False, "ns_per_event": busy_off},
            {"state": "busy", "l4span": True, "ns_per_event": busy_off * 1.05},
        ],
        "obs_overhead": {"ns_per_event_off": obs_off,
                         "ns_per_event_on": obs_off * 1.03},
    }
    base = mk(20.0, 200.0)
    cases = [
        # (fresh doc, expected exit code, label)
        (mk(20.0, 200.0), 0, "identical"),
        (mk(21.0, 210.0), 0, "+5% ok"),
        (mk(23.0, 200.0), 0, "+15% warns but passes"),
        (mk(30.0, 200.0), 1, "+50% event loop fails"),
        (mk(20.0, 300.0), 1, "+50% busy row fails"),
        (mk(10.0, 100.0), 0, "improvement passes"),
        (mk(20.0, 200.0, obs_off=280.0), 1, "+33% tracing-off row fails"),
        (mk(20.0, 200.0, quick=True), 0, "quick doc skipped"),
        ({"rows": []}, 1, "empty doc fails"),
    ]
    failed = 0
    for i, (fresh, want, label) in enumerate(cases):
        got = run_gate(base, fresh, WARN_PCT, FAIL_PCT)
        ok = got == want
        failed += not ok
        print(f"{'ok   ' if ok else 'FAIL '} selftest[{i}] ({label}): "
              f"want exit {want}, got {got}")
    print(f"selftest: {len(cases)} cases, {failed} failures")
    return 1 if failed else 0


def main():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=str(repo_root / "BENCH_tab1.json"),
                    help="committed baseline JSON (default: repo root)")
    ap.add_argument("--fresh", default="bench-json/BENCH_tab1.json",
                    help="freshly-generated JSON to gate")
    ap.add_argument("--warn-pct", type=float, default=WARN_PCT)
    ap.add_argument("--fail-pct", type=float, default=FAIL_PCT)
    ap.add_argument("--selftest", action="store_true",
                    help="run the gate against embedded fixtures and exit")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    baseline_path = pathlib.Path(args.baseline)
    fresh_path = pathlib.Path(args.fresh)
    if not baseline_path.exists():
        print(f"skip: no committed baseline at {baseline_path}")
        return 0
    if not fresh_path.exists():
        print(f"FAIL: fresh run not found at {fresh_path}")
        return 1
    return run_gate(json.loads(baseline_path.read_text()),
                    json.loads(fresh_path.read_text()),
                    args.warn_pct, args.fail_pct)


if __name__ == "__main__":
    sys.exit(main())
