#!/usr/bin/env python3
"""Reproduction-fidelity check: compare committed BENCH_*.json trajectories
against the paper's published anchor numbers and warn on drift.

Wiring for the ROADMAP fidelity item: the ANCHORS table covers the Fig. 9
headline OWD reductions, the Fig. 14 fairness indices and the Fig. 24
BBR/Reno coexistence medians — extend it as more figures get
published-number extractions. Warn-only by default so CI stays green while
the reproduction converges; --strict turns drift into a nonzero exit (the
CI workflow exposes this as a manual-dispatch input for later flipping).

Usage: scripts/check_fidelity.py [--strict] [--tolerance PCT] [repo_root]
"""

import argparse
import json
import pathlib
import sys

TOLERANCE_PCT = 10.0

# Paper-published anchors. Each entry: JSON file, a point selector
# (key -> required value), the metric path inside the point, and the
# published value. Fig. 9 reductions are the §6.2.1 headline numbers;
# Fig. 24 shares are the §6.2.5 coexistence medians.
ANCHORS = [
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "prague", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 98.0,
        "note": "Fig. 9: L4Span median OWD reduction, Prague/static",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "prague", "chan": "mobile", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 97.0,
        "note": "Fig. 9: L4Span median OWD reduction, Prague/mobile",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "cubic", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 98.0,
        "note": "Fig. 9: L4Span median OWD reduction, CUBIC/static",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "bbr2", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 52.0,
        "note": "Fig. 9: L4Span median OWD reduction, BBRv2/static",
    },
    # Fig. 14 (§6.2.4): staggered flows converge to equal shares — the paper
    # reports near-perfect fairness (Jain index ~1) in every case.
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(a) 3x Prague, similar RTT"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14a: Jain index, 3x Prague similar RTT",
    },
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(b) 3x Prague, distinct RTT (25/82/57 ms)"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14b: Jain index, 3x Prague distinct RTT",
    },
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(c) 2x Prague + CUBIC"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14c: Jain index, 2x Prague + CUBIC",
    },
    # Fig. 18 (§6.3.2): the fraction of channel stable periods (MCS deviation
    # <= 5) longer than the 12.45 ms estimation window. The paper reports the
    # window below >90% of stable periods — essentially all of them for the
    # low-Doppler 600 MHz FDD cell, ~90% for the 2.5 GHz TDD driving cell.
    {
        "figure": "fig18",
        "file": "BENCH_fig18.json",
        "select": {"cell": "fdd-600MHz"},
        "metric": ["frac_above_window"],
        "paper": 1.0,
        "note": "Fig. 18: stable periods above estimation window, FDD 600 MHz",
    },
    {
        "figure": "fig18",
        "file": "BENCH_fig18.json",
        "select": {"cell": "tdd-2.5GHz"},
        "metric": ["frac_above_window"],
        "paper": 0.9,
        "note": "Fig. 18: stable periods above estimation window, TDD 2.5 GHz",
    },
    # Fig. 24 (Appendix B): Reno's OWD collapses to tens of ms under L4Span
    # while (non-ECN-responsive) BBRv1 sits unchanged near its ~70 ms BDP.
    {
        "figure": "fig24",
        "file": "BENCH_fig24.json",
        "select": {"cca": "reno", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384},
        "metric": ["owd_ms", "p50"],
        "paper": 40.0,
        "note": "Fig. 24: Reno median OWD with L4Span, static",
    },
    {
        "figure": "fig24",
        "file": "BENCH_fig24.json",
        "select": {"cca": "bbr", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384},
        "metric": ["owd_ms", "p50"],
        "paper": 70.0,
        "note": "Fig. 24: BBRv1 median OWD (L4Span cannot help), static",
    },
]


def select_point(points, want):
    for p in points:
        if all(p.get(k) == v for k, v in want.items()):
            return p
    return None


def dig(obj, path):
    for key in path:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on drift (default: warn only)")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE_PCT,
                    help="allowed relative drift in percent (default 10)")
    ap.add_argument("repo_root", nargs="?",
                    default=pathlib.Path(__file__).resolve().parent.parent)
    args = ap.parse_args()
    root = pathlib.Path(args.repo_root)

    drifted = 0
    checked = 0
    for anchor in ANCHORS:
        path = root / anchor["file"]
        if not path.exists():
            print(f"skip  {anchor['note']}: {anchor['file']} not found")
            continue
        data = json.loads(path.read_text())
        if data.get("quick"):
            print(f"skip  {anchor['note']}: {anchor['file']} is a --quick slice")
            continue
        point = select_point(data.get("points", []), anchor["select"])
        if point is None:
            print(f"skip  {anchor['note']}: no matching grid point")
            continue
        value = dig(point, anchor["metric"])
        if value is None:
            print(f"skip  {anchor['note']}: metric {anchor['metric']} missing")
            continue
        checked += 1
        paper = anchor["paper"]
        drift = 100.0 * abs(value - paper) / abs(paper)
        status = "ok   " if drift <= args.tolerance else "DRIFT"
        if drift > args.tolerance:
            drifted += 1
        print(f"{status} {anchor['note']}: repo {value:.1f} vs paper {paper:.1f} "
              f"({drift:.1f}% drift, tolerance {args.tolerance:.0f}%)")

    print(f"checked {checked} anchors, {drifted} drifted")
    if drifted and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
