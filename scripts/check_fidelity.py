#!/usr/bin/env python3
"""Reproduction-fidelity check: compare committed BENCH_*.json trajectories
against the paper's published anchor numbers and warn on drift.

Wiring for the ROADMAP fidelity item: the ANCHORS table covers the Fig. 9
headline OWD reductions, the Fig. 14 fairness indices and the Fig. 24
BBR/Reno coexistence medians — extend it as more figures get
published-number extractions. Warn-only by default so CI stays green while
the reproduction converges; --strict turns drift into a nonzero exit (the
CI workflow exposes this as a manual-dispatch input for later flipping).

An anchor may carry "known_drift_pct": a tracked, understood divergence
(e.g. the BBRv2 OWD model drifting ~13% from Fig. 9) that is reported as
`known` instead of `DRIFT` as long as the measured drift stays within the
tracked value plus the tolerance — so CI flags regressions beyond the
understood gap without crying wolf about the gap itself.

Strictness comes in two tiers. --strict turns ANY drift into a nonzero
exit. --strict-pinned (the CI default) only fails on drift of *pinned*
anchors — those without a "known_drift_pct" entry, i.e. numbers the
reproduction has already converged on and must not regress — while
tracked-divergence anchors keep warn-only semantics until their gap is
closed.

Usage: scripts/check_fidelity.py [--strict] [--strict-pinned]
                                 [--tolerance PCT] [--selftest] [repo_root]
"""

import argparse
import json
import pathlib
import sys

TOLERANCE_PCT = 10.0

# Paper-published anchors. Each entry: JSON file, a point selector
# (key -> required value), the metric path inside the point, and the
# published value. Fig. 9 reductions are the §6.2.1 headline numbers;
# Fig. 24 shares are the §6.2.5 coexistence medians.
ANCHORS = [
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "prague", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 98.0,
        "note": "Fig. 9: L4Span median OWD reduction, Prague/static",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "prague", "chan": "mobile", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 97.0,
        "note": "Fig. 9: L4Span median OWD reduction, Prague/mobile",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "cubic", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 98.0,
        "note": "Fig. 9: L4Span median OWD reduction, CUBIC/static",
    },
    {
        "figure": "fig09",
        "file": "BENCH_fig09.json",
        "select": {"cca": "bbr2", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384, "base_rtt_ms": 38},
        "metric": ["owd_reduction_pct"],
        "paper": 52.0,
        # Tracked divergence, root-caused with obs:: tracing on this exact
        # grid point (16 UE / static / 16384 SDU / 38 ms): L4Span marks
        # 13.8% of BBRv2's downlink packets (all predicted-sojourn
        # "tentative" marks), and the repo's BBRv2 applies its ECN inflight
        # cut on *every* CE-carrying ACK — the traced gap between successive
        # transport_ce reactions has a 9.7 ms median, i.e. ~4 cuts per 38 ms
        # round, where kernel BBRv2 bounds the ECN response to one cut per
        # round trip. The repeated within-round cuts hold cwnd nearer the
        # BDP (median 19 kB at reaction vs the ~10.5 kB BDP), so the OWD
        # reduction lands at ~59% vs the paper's 52% — a ~13% relative
        # overshoot. A once-per-round cap would move every pinned benchmark;
        # tracked here instead. Reproduce: docs/OBSERVABILITY.md §fidelity.
        "known_drift_pct": 13.0,
        "note": "Fig. 9: L4Span median OWD reduction, BBRv2/static",
    },
    # Fig. 13 (§6.2.3): interactive media flows under L4Span hold their RTT
    # near the propagation floor on the static channel — ~20 ms for the
    # UDP-Prague video call, ~16 ms for SCReAM.
    {
        "figure": "fig13",
        "file": "BENCH_fig13.json",
        "select": {"algo": "udp-prague", "chan": "static", "l4span": True},
        "metric": ["rtt_ms", "p50"],
        "paper": 20.0,
        "note": "Fig. 13: UDP-Prague media RTT with L4Span, static",
    },
    {
        "figure": "fig13",
        "file": "BENCH_fig13.json",
        "select": {"algo": "scream", "chan": "static", "l4span": True},
        "metric": ["rtt_ms", "p50"],
        "paper": 16.0,
        "note": "Fig. 13: SCReAM media RTT with L4Span, static",
    },
    # Fig. 16 (§6.2.6): on a shared DRB the coupled marking strategy lands
    # Prague near a 60% throughput share at an even RTT split.
    {
        "figure": "fig16",
        "file": "BENCH_fig16.json",
        "select": {"strategy": "L4Span (coupled)"},
        "metric": ["l4s_tput_share_pct"],
        "paper": 60.0,
        "note": "Fig. 16: L4S throughput share, coupled marking",
    },
    {
        "figure": "fig16",
        "file": "BENCH_fig16.json",
        "select": {"strategy": "L4Span (coupled)"},
        "metric": ["l4s_rtt_share_pct"],
        "paper": 50.0,
        "note": "Fig. 16: L4S RTT share, coupled marking",
    },
    # Fig. 17 (§6.3.1): RLC queue occupancy stays at a handful of SDUs.
    {
        "figure": "fig17",
        "file": "BENCH_fig17.json",
        "select": {"cca": "prague", "chan": "static", "ues": 16},
        "metric": ["queue_sdus", "p50"],
        "paper": 3.0,
        "note": "Fig. 17: median RLC queue, Prague/16 SDU limit, static",
    },
    {
        "figure": "fig17",
        "file": "BENCH_fig17.json",
        "select": {"cca": "cubic", "chan": "static", "ues": 64},
        "metric": ["queue_sdus", "p50"],
        "paper": 2.0,
        "note": "Fig. 17: median RLC queue, CUBIC/64 SDU limit, static",
    },
    # Fig. 19 (§6.3.3): with 16 UEs and a 10 ms marking threshold the cell
    # sustains ~35 Mbps aggregate at ~65 ms mean RTT.
    {
        "figure": "fig19",
        "file": "BENCH_fig19.json",
        "select": {"ues": 16, "tau_ms": 10},
        "metric": ["rate_sum_mbps"],
        "paper": 35.0,
        "note": "Fig. 19: aggregate rate, 16 UEs / tau 10 ms",
    },
    {
        "figure": "fig19",
        "file": "BENCH_fig19.json",
        "select": {"ues": 16, "tau_ms": 10},
        "metric": ["mean_rtt_ms"],
        "paper": 65.0,
        "note": "Fig. 19: mean RTT, 16 UEs / tau 10 ms",
    },
    # Fig. 14 (§6.2.4): staggered flows converge to equal shares — the paper
    # reports near-perfect fairness (Jain index ~1) in every case.
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(a) 3x Prague, similar RTT"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14a: Jain index, 3x Prague similar RTT",
    },
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(b) 3x Prague, distinct RTT (25/82/57 ms)"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14b: Jain index, 3x Prague distinct RTT",
    },
    {
        "figure": "fig14",
        "file": "BENCH_fig14.json",
        "select": {"case": "(c) 2x Prague + CUBIC"},
        "metric": ["jain_index"],
        "paper": 1.0,
        "note": "Fig. 14c: Jain index, 2x Prague + CUBIC",
    },
    # Fig. 18 (§6.3.2): the fraction of channel stable periods (MCS deviation
    # <= 5) longer than the 12.45 ms estimation window. The paper reports the
    # window below >90% of stable periods — essentially all of them for the
    # low-Doppler 600 MHz FDD cell, ~90% for the 2.5 GHz TDD driving cell.
    {
        "figure": "fig18",
        "file": "BENCH_fig18.json",
        "select": {"cell": "fdd-600MHz"},
        "metric": ["frac_above_window"],
        "paper": 1.0,
        "note": "Fig. 18: stable periods above estimation window, FDD 600 MHz",
    },
    {
        "figure": "fig18",
        "file": "BENCH_fig18.json",
        "select": {"cell": "tdd-2.5GHz"},
        "metric": ["frac_above_window"],
        "paper": 0.9,
        "note": "Fig. 18: stable periods above estimation window, TDD 2.5 GHz",
    },
    # Fig. 24 (Appendix B): Reno's OWD collapses to tens of ms under L4Span
    # while (non-ECN-responsive) BBRv1 sits unchanged near its ~70 ms BDP.
    {
        "figure": "fig24",
        "file": "BENCH_fig24.json",
        "select": {"cca": "reno", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384},
        "metric": ["owd_ms", "p50"],
        "paper": 40.0,
        "note": "Fig. 24: Reno median OWD with L4Span, static",
    },
    {
        "figure": "fig24",
        "file": "BENCH_fig24.json",
        "select": {"cca": "bbr", "chan": "static", "l4span": True,
                   "ues": 16, "rlc_queue_sdus": 16384},
        "metric": ["owd_ms", "p50"],
        "paper": 70.0,
        "note": "Fig. 24: BBRv1 median OWD (L4Span cannot help), static",
    },
    # Tab. 1 (§6.4): L4Span's busy-cell overhead on the srsRAN CU, ~0.25%
    # CPU and ~4% memory. The CPU anchor's tracked divergence is the
    # hot-path campaign's acceptance bound (<8% measured overhead, i.e.
    # 3100% drift vs the paper's 0.25%): post-campaign the measured
    # overhead sits at paper scale (~0.2-2%), but the paired measurement is
    # noisy on shared runners, so the band stays wide enough to absorb
    # jitter while a regression back to the pre-campaign ~20% (7900%
    # drift) trips DRIFT.
    {
        "figure": "tab1",
        "file": "BENCH_tab1.json",
        "list_key": "rows",
        "select": {"state": "busy", "l4span": True},
        "metric": ["cpu_overhead_pct"],
        "paper": 0.25,
        "known_drift_pct": 3100.0,
        "note": "Tab. 1: L4Span CPU overhead, busy cell",
    },
    {
        "figure": "tab1",
        "file": "BENCH_tab1.json",
        "list_key": "rows",
        "select": {"state": "busy", "l4span": True},
        "metric": ["mem_overhead_pct"],
        "paper": 4.0,
        "note": "Tab. 1: L4Span memory overhead, busy cell",
    },
]


def select_point(points, want):
    for p in points:
        if all(p.get(k) == v for k, v in want.items()):
            return p
    return None


def dig(obj, path):
    for key in path:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj


def classify(value, anchor, tolerance):
    """Returns (status, drift_pct). Status is 'ok', 'known' (within a
    tracked divergence) or 'DRIFT'."""
    paper = anchor["paper"]
    drift = 100.0 * abs(value - paper) / abs(paper)
    if drift <= tolerance:
        return "ok", drift
    known = anchor.get("known_drift_pct")
    if known is not None and drift <= known + tolerance:
        return "known", drift
    return "DRIFT", drift


def check_anchor(anchor, data, tolerance):
    """Checks one anchor against a parsed BENCH document. Returns
    (status, message); status in {'skip', 'ok', 'known', 'DRIFT'}."""
    if data.get("quick"):
        return "skip", f"{anchor['file']} is a --quick slice"
    # Grid benches emit "points"; table-shaped ones (Tab. 1) emit "rows".
    list_key = anchor.get("list_key", "points")
    point = select_point(data.get(list_key, []), anchor["select"])
    if point is None:
        return "skip", "no matching grid point"
    value = dig(point, anchor["metric"])
    if value is None:
        return "skip", f"metric {anchor['metric']} missing"
    status, drift = classify(value, anchor, tolerance)
    msg = (f"repo {value:.1f} vs paper {anchor['paper']:.1f} "
           f"({drift:.1f}% drift, tolerance {tolerance:.0f}%)")
    if status == "known":
        msg += f" [tracked divergence {anchor['known_drift_pct']:.0f}%]"
    return status, msg


def exit_code(results, strict, strict_pinned):
    """Exit policy over per-anchor outcomes. `results` is a list of
    (status, pinned) pairs, pinned = the anchor has no known_drift_pct.
    --strict fails on any DRIFT; --strict-pinned only on pinned DRIFT."""
    any_drift = any(s == "DRIFT" for s, _ in results)
    pinned_drift = any(s == "DRIFT" and pinned for s, pinned in results)
    if strict and any_drift:
        return 1
    if strict_pinned and pinned_drift:
        return 1
    return 0


def selftest():
    """Validates the checker against embedded fixtures so CI can catch a
    broken selector/classifier without any BENCH file present."""
    doc = {"quick": False, "points": [
        {"cca": "x", "chan": "static", "m": {"p50": 100.0}},
        {"cca": "y", "chan": "static", "m": {"p50": 80.0}},
    ]}
    mk = lambda sel, paper, **extra: dict(
        {"figure": "t", "file": "t.json", "select": sel,
         "metric": ["m", "p50"], "paper": paper, "note": "t"}, **extra)

    cases = [
        # (anchor, doc, expected status)
        (mk({"cca": "x"}, 100.0), doc, "ok"),
        (mk({"cca": "x"}, 95.0), doc, "ok"),        # 5.3% < 10%
        (mk({"cca": "y"}, 100.0), doc, "DRIFT"),    # 20% > 10%
        (mk({"cca": "y"}, 100.0, known_drift_pct=13.0), doc, "known"),
        (mk({"cca": "y"}, 100.0, known_drift_pct=5.0), doc, "DRIFT"),
        (mk({"cca": "z"}, 1.0), doc, "skip"),       # no matching point
        (mk({"cca": "x"}, 1.0), {"quick": True, "points": []}, "skip"),
        ({"figure": "t", "file": "t.json", "select": {"cca": "x"},
          "metric": ["missing"], "paper": 1.0, "note": "t"}, doc, "skip"),
        # "rows"-shaped documents resolve through list_key.
        (mk({"cca": "x"}, 100.0, list_key="rows"),
         {"quick": False, "rows": doc["points"]}, "ok"),
        (mk({"cca": "x"}, 100.0, list_key="rows"), doc, "skip"),
    ]
    failed = 0
    for i, (anchor, d, want) in enumerate(cases):
        got, msg = check_anchor(anchor, d, TOLERANCE_PCT)
        ok = got == want
        failed += not ok
        print(f"{'ok   ' if ok else 'FAIL '} selftest[{i}]: "
              f"want {want}, got {got} ({msg})")
    # Exit-policy matrix: (results, strict, strict_pinned) -> exit code.
    policy_cases = [
        ([("ok", True), ("known", False)], False, False, 0),
        ([("ok", True), ("known", False)], True, False, 0),
        # A tracked-divergence anchor regressing past its band: DRIFT but
        # not pinned — fails --strict, passes --strict-pinned.
        ([("DRIFT", False)], False, True, 0),
        ([("DRIFT", False)], True, False, 1),
        # A pinned anchor drifting fails both strict tiers, never the
        # warn-only default.
        ([("DRIFT", True)], False, True, 1),
        ([("DRIFT", True)], True, False, 1),
        ([("DRIFT", True)], False, False, 0),
        ([], True, True, 0),
    ]
    for i, (results, strict, pinned, want) in enumerate(policy_cases):
        got = exit_code(results, strict, pinned)
        ok = got == want
        failed += not ok
        print(f"{'ok   ' if ok else 'FAIL '} selftest[policy {i}]: "
              f"strict={strict} strict_pinned={pinned} "
              f"want exit {want}, got {got}")
    # Every committed anchor must be well-formed.
    for anchor in ANCHORS:
        for key in ("figure", "file", "select", "metric", "paper", "note"):
            if key not in anchor:
                print(f"FAIL  anchor {anchor.get('note', '?')}: missing {key}")
                failed += 1
    print(f"selftest: {len(cases) + len(policy_cases)} cases, "
          f"{failed} failures, {len(ANCHORS)} anchors validated")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on any drift (default: warn only)")
    ap.add_argument("--strict-pinned", action="store_true",
                    help="exit nonzero on drift of pinned anchors (those "
                         "without a tracked known_drift_pct); "
                         "tracked-divergence anchors still warn only")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE_PCT,
                    help="allowed relative drift in percent (default 10)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the checker against embedded fixtures and exit")
    ap.add_argument("repo_root", nargs="?",
                    default=pathlib.Path(__file__).resolve().parent.parent)
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    root = pathlib.Path(args.repo_root)

    results = []
    for anchor in ANCHORS:
        path = root / anchor["file"]
        if not path.exists():
            print(f"skip  {anchor['note']}: {anchor['file']} not found")
            continue
        data = json.loads(path.read_text())
        status, msg = check_anchor(anchor, data, args.tolerance)
        if status == "skip":
            print(f"skip  {anchor['note']}: {msg}")
            continue
        pinned = "known_drift_pct" not in anchor
        results.append((status, pinned))
        print(f"{status:<5} {anchor['note']}: {msg}")

    drifted = sum(1 for s, _ in results if s == "DRIFT")
    pinned_drifted = sum(1 for s, p in results if s == "DRIFT" and p)
    print(f"checked {len(results)} anchors, {drifted} drifted "
          f"({pinned_drifted} pinned)")
    return exit_code(results, args.strict, args.strict_pinned)


if __name__ == "__main__":
    sys.exit(main())
