#include "sim/event_loop.h"

namespace l4span::sim {

event_loop::event_id event_loop::schedule_at(tick when, handler fn)
{
    std::uint32_t s;
    if (free_head_ != k_npos) {
        s = free_head_;
        free_head_ = slab_[s].next_free;
    } else {
        s = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    slot& e = slab_[s];
    e.fn = std::move(fn);
    heap_push({when < now_ ? now_ : when, next_seq_++, s, e.gen});
    ++live_;
    return make_id(s, e.gen);
}

void event_loop::cancel(event_id id)
{
    const auto s = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (gen == 0 || s >= slab_.size() || slab_[s].gen != gen) return;
    release_slot(s);  // the stale heap item is skipped on pop (gen mismatch)
    --live_;
}

// Reclaims a slot: drop the handler, invalidate outstanding ids/heap items
// by bumping the generation, and chain onto the free list.
void event_loop::release_slot(std::uint32_t s)
{
    slot& e = slab_[s];
    e.fn.reset();
    if (++e.gen == 0) e.gen = 1;
    e.next_free = free_head_;
    free_head_ = s;
}

bool event_loop::run_one()
{
    while (!heap_.empty()) {
        const heap_item top = heap_.front();
        heap_pop();
        if (slab_[top.slot].gen != top.gen) continue;  // cancelled
        now_ = top.when;
        callback fn = std::move(slab_[top.slot].fn);
        // Free the slot before invoking: a handler that reschedules (the
        // per-slot MAC tick, RTO rearm, ...) reuses its own record.
        release_slot(top.slot);
        --live_;
        ++processed_;
        fn();
        return true;
    }
    return false;
}

void event_loop::run_until(tick until)
{
    while (!heap_.empty()) {
        const heap_item& top = heap_.front();
        if (slab_[top.slot].gen != top.gen) {
            heap_pop();
            continue;
        }
        if (top.when > until) break;
        run_one();
    }
    if (now_ < until) now_ = until;
}

void event_loop::run()
{
    while (run_one()) {
    }
}

// Both sifts move a "hole" through the tree and write the carried item once
// at its final position — half the memory traffic of swap-based sifting.
void event_loop::heap_push(heap_item item)
{
    std::size_t i = heap_.size();
    heap_.push_back(item);  // grows the vector; the slot is overwritten below
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(item, heap_[parent])) break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = item;
}

void event_loop::heap_pop()
{
    const heap_item item = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
        const std::size_t l = 2 * i + 1, r = l + 1;
        std::size_t best = l;
        if (l >= n) break;
        if (r < n && earlier(heap_[r], heap_[l])) best = r;
        if (!earlier(heap_[best], item)) break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = item;
}

}  // namespace l4span::sim
