#include "sim/event_loop.h"

namespace l4span::sim {

void event_loop::run_until(tick until)
{
    while (!bheap_.empty()) {
        bucket& b = buckets_[bheap_[0].bi];
        const entry e = b.q.front();
        if (slab_[e.slot].gen != e.gen) {  // cancelled: drop regardless of when
            b.q.pop_front();
            if (b.q.empty()) retire_top_bucket();
            continue;
        }
        if (b.when > until) break;
        run_one();
    }
    if (now_ < until) now_ = until;
}

void event_loop::run()
{
    while (run_one()) {
    }
}

void event_loop::push_new_bucket(tick when, std::uint32_t s, std::uint32_t gen)
{
    std::uint32_t bi;
    if (!bucket_free_.empty()) {
        bi = bucket_free_.back();  // recycled ring keeps its capacity
        bucket_free_.pop_back();
    } else {
        bi = static_cast<std::uint32_t>(buckets_.size());
        buckets_.emplace_back();
    }
    buckets_[bi].when = when;
    buckets_[bi].q.push_back({s, gen});
    when_map_[when] = bi;
    cached_bucket_ = bi;
    bheap_push({when, bi});
}

void event_loop::retire_top_bucket()
{
    const std::uint32_t bi = bheap_[0].bi;
    when_map_.erase(buckets_[bi].when);
    if (cached_bucket_ == bi) cached_bucket_ = k_npos;
    bucket_free_.push_back(bi);
    bheap_pop();
}

// Both sifts move a "hole" through the tree and write the carried index once
// at its final position — half the memory traffic of swap-based sifting.
//
// The tree is 4-ary: a wider node halves the number of levels a sift-down
// touches and its four 16-byte children land in one cache line. The keys
// (bucket timestamps) are unique among live buckets, so the comparator is a
// strict total order and the pop sequence is fully determined — any heap
// shape yields the same event order bit-for-bit.
void event_loop::bheap_push(bheap_item item)
{
    std::size_t i = bheap_.size();
    bheap_.push_back(item);  // grows the vector; the slot is overwritten below
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (bheap_[parent].when <= item.when) break;
        bheap_[i] = bheap_[parent];
        i = parent;
    }
    bheap_[i] = item;
}

void event_loop::bheap_pop()
{
    const bheap_item item = bheap_.back();
    bheap_.pop_back();
    const std::size_t n = bheap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
            if (bheap_[c].when < bheap_[best].when) best = c;
        if (bheap_[best].when >= item.when) break;
        bheap_[i] = bheap_[best];
        i = best;
    }
    bheap_[i] = item;
}

}  // namespace l4span::sim
