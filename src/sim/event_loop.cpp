#include "sim/event_loop.h"

namespace l4span::sim {

event_loop::event_id event_loop::schedule_at(tick when, handler fn)
{
    auto e = std::make_shared<entry>();
    e->when = when < now_ ? now_ : when;
    e->id = next_id_++;
    e->fn = std::move(fn);
    queue_.push(e);
    if (index_.size() <= e->id) index_.resize(e->id + 64);
    index_[e->id] = e;
    ++live_;
    return e->id;
}

void event_loop::cancel(event_id id)
{
    if (id >= index_.size()) return;
    if (auto e = index_[id].lock(); e && !e->cancelled) {
        e->cancelled = true;
        e->fn = nullptr;
        --live_;
    }
}

bool event_loop::run_one()
{
    while (!queue_.empty()) {
        auto e = queue_.top();
        queue_.pop();
        if (e->cancelled) continue;
        now_ = e->when;
        --live_;
        ++processed_;
        auto fn = std::move(e->fn);
        fn();
        return true;
    }
    return false;
}

void event_loop::run_until(tick until)
{
    while (!queue_.empty()) {
        auto& e = queue_.top();
        if (e->cancelled) {
            queue_.pop();
            continue;
        }
        if (e->when > until) break;
        run_one();
    }
    if (now_ < until) now_ = until;
}

void event_loop::run()
{
    while (run_one()) {
    }
}

}  // namespace l4span::sim
