// Shard-safe fault-event arming and accounting. A fault schedule (e.g.
// topo::fault_plan) is known before the loops run, so every injection point
// can be armed directly on the loop that owns the state it touches — no
// cross-shard messaging is needed to *start* a fault, only for the recovery
// cascades the handlers themselves drive. The injector wraps each handler
// with per-class accounting so soak tests and benches can assert that every
// planned fault actually fired.
//
// The class is deliberately generic (classes are just small integers): sim/
// stays below topo/ in the layering, and any scheduler of chaos — not just
// the fault_plan — can use it.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/event_loop.h"

namespace l4span::sim {

class fault_injector {
public:
    // `num_classes` sizes the accounting lanes; arming an out-of-range
    // class throws.
    explicit fault_injector(std::size_t num_classes);

    fault_injector(const fault_injector&) = delete;
    fault_injector& operator=(const fault_injector&) = delete;

    // Wraps `fire` with injection accounting and schedules it at `when` on
    // `loop`. Arm everything before the loops run; each event then fires on
    // the loop it was armed on, so no state is ever touched cross-shard and
    // sharded runs stay byte-identical for any --jobs.
    //
    // `observe`, when set, runs on the firing shard's thread immediately
    // before `fire` — the hook the observability layer uses to trace the
    // injection and snapshot a flight record without sim/ depending on obs/.
    void arm(event_loop& loop, tick when, std::size_t cls, callback fire,
             callback observe = {});

    std::size_t num_classes() const { return armed_.size(); }
    std::uint64_t armed(std::size_t cls) const;
    std::uint64_t injected(std::size_t cls) const;  // events that have fired
    std::uint64_t armed_total() const;
    std::uint64_t injected_total() const;

private:
    std::vector<std::uint64_t> armed_;  // mutated pre-run only
    // Incremented from whichever shard thread fires the event; relaxed
    // atomics — the totals are read after run_until joins the workers.
    std::vector<std::atomic<std::uint64_t>> injected_;
};

}  // namespace l4span::sim
