// Deterministic discrete-event loop.
//
// Events scheduled at equal times fire in scheduling order (a monotone
// sequence number breaks ties), so runs are reproducible bit-for-bit for a
// given seed set.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace l4span::sim {

class event_loop {
public:
    using handler = std::function<void()>;
    using event_id = std::uint64_t;

    event_loop() = default;
    event_loop(const event_loop&) = delete;
    event_loop& operator=(const event_loop&) = delete;

    tick now() const { return now_; }

    // Schedules `fn` at absolute time `when` (clamped to now()).
    event_id schedule_at(tick when, handler fn);

    // Schedules `fn` after a relative delay (clamped to zero).
    event_id schedule_after(tick delay, handler fn)
    {
        return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
    }

    // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
    void cancel(event_id id);

    // Runs a single event; returns false when the queue is empty.
    bool run_one();

    // Runs all events with time <= `until`; afterwards now() == until.
    void run_until(tick until);

    // Drains the queue completely.
    void run();

    std::size_t pending() const { return live_; }
    std::uint64_t processed() const { return processed_; }

private:
    struct entry {
        tick when = 0;
        event_id id = 0;
        handler fn;
        bool cancelled = false;
    };
    struct later {
        bool operator()(const std::shared_ptr<entry>& a, const std::shared_ptr<entry>& b) const
        {
            if (a->when != b->when) return a->when > b->when;
            return a->id > b->id;
        }
    };

    tick now_ = 0;
    event_id next_id_ = 1;
    std::size_t live_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<std::shared_ptr<entry>, std::vector<std::shared_ptr<entry>>, later> queue_;
    std::vector<std::weak_ptr<entry>> index_;  // id -> entry (sparse, grows with ids)
};

}  // namespace l4span::sim
