// Deterministic discrete-event loop.
//
// Events scheduled at equal times fire in scheduling order (a monotone
// sequence number breaks ties), so runs are reproducible bit-for-bit for a
// given seed set.
//
// The hot path is allocation-free: pending events live in a slab of pooled
// records recycled through a free list, the ready queue is a bucket
// calendar — a small 4-ary min-heap over the *distinct* pending timestamps,
// each bucket a FIFO ring of events — and handlers are stored in a small-
// buffer-optimized `callback` whose inline buffer is sized so the
// simulator's largest common capture (a `this` pointer plus a `net::packet`
// by value) never touches the heap. Steady-state memory is bounded by the
// *peak pending* event count, not by the total number of events ever
// scheduled.
//
// Why a bucket calendar: the RAN schedules in slots, so pending timestamps
// cluster hard — a busy 64-UE cell holds ~50 events per distinct tick
// (HARQ conclusions and MAC ticks all land on slot boundaries). Pushes and
// pops onto an existing bucket are O(1) ring operations; the heap is only
// touched when a timestamp appears or drains, amortizing the sift cost
// over every event sharing that tick.
//
// Thread-safety contract: an event_loop is single-threaded by design — one
// loop per thread, no internal locking. Parallel experiments give every
// scenario its own loop (see scenario::grid_runner).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/flat_table.h"
#include "core/ring.h"
#include "sim/time.h"

namespace l4span::sim {

// Move-only callable with a small-buffer optimization. Captures up to
// `k_inline_bytes` are stored inline; larger ones fall back to a single
// heap allocation. Replaces std::function on the event hot path, where the
// type-erased copyable machinery and its allocation policy cost more than
// the handler bodies themselves.
class callback {
public:
    // Inline capacity: `this` + a by-value net::packet (~120 bytes) with room
    // to spare, so every handler the simulator schedules today stays inline.
    static constexpr std::size_t k_inline_bytes = 152;

    callback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    callback(F&& f)  // NOLINT(google-explicit-constructor): handler sink
    {
        using fn_t = std::decay_t<F>;
        if constexpr (sizeof(fn_t) <= k_inline_bytes &&
                      alignof(fn_t) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) fn_t(std::forward<F>(f));
            vt_ = &inline_vtable<fn_t>;
        } else {
            *reinterpret_cast<fn_t**>(buf_) = new fn_t(std::forward<F>(f));
            vt_ = &heap_vtable<fn_t>;
        }
    }

    callback(callback&& other) noexcept { move_from(other); }
    callback& operator=(callback&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    callback(const callback&) = delete;
    callback& operator=(const callback&) = delete;
    ~callback() { reset(); }

    void operator()() { vt_->invoke(buf_); }
    explicit operator bool() const { return vt_ != nullptr; }

    void reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    // Constructs the handler in place (no temporary callback, no relocate) —
    // the schedule hot path builds handlers directly in their slab slot.
    template <typename F>
    void emplace(F&& f)
    {
        reset();
        using fn_t = std::decay_t<F>;
        if constexpr (sizeof(fn_t) <= k_inline_bytes &&
                      alignof(fn_t) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) fn_t(std::forward<F>(f));
            vt_ = &inline_vtable<fn_t>;
        } else {
            *reinterpret_cast<fn_t**>(buf_) = new fn_t(std::forward<F>(f));
            vt_ = &heap_vtable<fn_t>;
        }
    }

private:
    struct vtable {
        void (*invoke)(void*);
        // Move-constructs into dst and destroys src (pointer steal for the
        // heap case), so relocation is one indirect call.
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename F>
    static constexpr vtable inline_vtable = {
        [](void* p) { (*static_cast<F*>(p))(); },
        [](void* src, void* dst) noexcept {
            ::new (dst) F(std::move(*static_cast<F*>(src)));
            static_cast<F*>(src)->~F();
        },
        [](void* p) noexcept { static_cast<F*>(p)->~F(); },
    };

    template <typename F>
    static constexpr vtable heap_vtable = {
        [](void* p) { (**static_cast<F**>(p))(); },
        [](void* src, void* dst) noexcept {
            *static_cast<F**>(dst) = *static_cast<F**>(src);
        },
        [](void* p) noexcept { delete *static_cast<F**>(p); },
    };

    void move_from(callback& other) noexcept
    {
        vt_ = other.vt_;
        if (vt_) {
            vt_->relocate(other.buf_, buf_);
            other.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[k_inline_bytes];
    const vtable* vt_ = nullptr;
};

class event_loop {
public:
    using handler = callback;
    using event_id = std::uint64_t;

    event_loop() = default;
    event_loop(const event_loop&) = delete;
    event_loop& operator=(const event_loop&) = delete;

    tick now() const { return now_; }

    // Schedules `fn` at absolute time `when` (clamped to now()). The
    // handler is constructed directly in its pooled slab record — the
    // callable is touched exactly once on the way in.
    template <typename F>
    event_id schedule_at(tick when, F&& fn)
    {
        const std::uint32_t s = alloc_slot();
        slot& e = slab_[s];
        e.fn.emplace(std::forward<F>(fn));
        queue_push(when < now_ ? now_ : when, s, e.gen);
        ++live_;
        return make_id(s, e.gen);
    }
    event_id schedule_at(tick when, handler fn)
    {
        const std::uint32_t s = alloc_slot();
        slot& e = slab_[s];
        e.fn = std::move(fn);
        queue_push(when < now_ ? now_ : when, s, e.gen);
        ++live_;
        return make_id(s, e.gen);
    }

    // Schedules `fn` after a relative delay (clamped to zero).
    template <typename F>
    event_id schedule_after(tick delay, F&& fn)
    {
        return schedule_at(now_ + (delay > 0 ? delay : 0), std::forward<F>(fn));
    }

    // Cancels a pending event. Cancelling an already-fired, cancelled, or
    // unknown id is a safe no-op: ids carry the slot's generation counter,
    // which is bumped whenever the slot is reclaimed, so a stale id cannot
    // hit a recycled slot — unless a caller retains an id across ~2^32
    // reuses of one slot (32-bit generation wrap). Callers clear stored ids
    // on fire/cancel (see tcp_sender's RTO), keeping stale ids short-lived.
    void cancel(event_id id)
    {
        const auto s = static_cast<std::uint32_t>(id & 0xffffffffu);
        const auto gen = static_cast<std::uint32_t>(id >> 32);
        if (gen == 0 || s >= slab_.size() || slab_[s].gen != gen) return;
        release_slot(s);  // the stale heap item is skipped on pop (gen mismatch)
        --live_;
    }

    // Runs a single event; returns false when the queue is empty.
    bool run_one()
    {
        while (!bheap_.empty()) {
            bucket& b = buckets_[bheap_[0].bi];
            const tick when = b.when;
            const entry e = b.q.front();
            b.q.pop_front();
            if (b.q.empty()) retire_top_bucket();  // b is dead past this line
            if (slab_[e.slot].gen != e.gen) continue;  // cancelled
            now_ = when;
            callback fn = std::move(slab_[e.slot].fn);
            // Free the slot before invoking: a handler that reschedules (the
            // per-slot MAC tick, RTO rearm, ...) reuses its own record.
            release_slot(e.slot);
            --live_;
            ++processed_;
            fn();
            return true;
        }
        return false;
    }

    // Runs all events with time <= `until`; afterwards now() == until.
    void run_until(tick until);

    // Drains the queue completely.
    void run();

    std::size_t pending() const { return live_; }
    std::uint64_t processed() const { return processed_; }

    // --- slab statistics (memory-boundedness regression tests) ---
    // Pooled records ever created: bounded by peak concurrent pending events.
    std::size_t slab_slots() const { return slab_.size(); }
    // Records currently on the free list, awaiting reuse.
    std::size_t free_slots() const { return slab_.size() - live_; }

private:
    static constexpr std::uint32_t k_npos = 0xffffffffu;

    // One pooled record per pending event. `when` lives in the bucket
    // (hot during sifts); the slot only holds what fire/cancel need.
    struct slot {
        callback fn;
        std::uint32_t gen = 1;  // parity with the id; never 0, so id 0 is invalid
        std::uint32_t next_free = k_npos;
    };
    // A queued event: 8 bytes, POD, lives in its timestamp's FIFO ring.
    struct entry {
        std::uint32_t slot;
        std::uint32_t gen;
    };
    // All pending events sharing one timestamp. Ordering within a bucket is
    // insertion order, and events are only ever appended — which *is* the
    // old (when, seq) strict total order: the sequence counter was globally
    // monotone, so arrival order at any given bucket equals seq order. The
    // FIFO encodes the tie-break structurally and the counter is gone.
    struct bucket {
        tick when = 0;
        core::ring<entry> q;
    };
    // Heap node: the key is copied in so sift comparisons walk only the
    // contiguous heap array and never chase buckets_.
    struct bheap_item {
        tick when;
        std::uint32_t bi;
    };

    static event_id make_id(std::uint32_t s, std::uint32_t gen)
    {
        return (static_cast<event_id>(gen) << 32) | s;
    }

    // Grabs a free pooled record (or grows the slab).
    std::uint32_t alloc_slot()
    {
        if (free_head_ != k_npos) {
            const std::uint32_t s = free_head_;
            free_head_ = slab_[s].next_free;
            return s;
        }
        const auto s = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
        return s;
    }

    // Reclaims a slot: drop the handler, invalidate outstanding ids/heap
    // items by bumping the generation, and chain onto the free list.
    void release_slot(std::uint32_t s)
    {
        slot& e = slab_[s];
        e.fn.reset();
        if (++e.gen == 0) e.gen = 1;
        e.next_free = free_head_;
        free_head_ = s;
    }

    // Enqueues (slot, gen) at `when`. Fast path: the target bucket already
    // exists (almost always the one the previous push hit — the RAN emits
    // bursts of same-slot events), so the common cost is one ring append.
    void queue_push(tick when, std::uint32_t s, std::uint32_t gen)
    {
        if (cached_bucket_ != k_npos && buckets_[cached_bucket_].when == when) {
            buckets_[cached_bucket_].q.push_back({s, gen});
            return;
        }
        if (const std::uint32_t* bi = when_map_.find(when)) {
            cached_bucket_ = *bi;
            buckets_[*bi].q.push_back({s, gen});
            return;
        }
        push_new_bucket(when, s, gen);
    }

    void push_new_bucket(tick when, std::uint32_t s, std::uint32_t gen);
    // Removes the (drained) earliest bucket from the heap and the when map
    // and recycles it. Invalidates the push cache if it pointed here — a
    // cache hit on a retired bucket would strand events in a dead ring.
    void retire_top_bucket();
    void bheap_push(bheap_item item);
    void bheap_pop();

    tick now_ = 0;
    std::size_t live_ = 0;
    std::uint64_t processed_ = 0;
    std::vector<slot> slab_;
    std::uint32_t free_head_ = k_npos;

    // Ready queue: bheap_ is a 4-ary min-heap keyed on the bucket
    // timestamp; live buckets have unique timestamps (the map guarantees
    // it), so `when` alone is a strict order and no tie-break is needed.
    std::vector<bucket> buckets_;
    std::vector<bheap_item> bheap_;
    std::vector<std::uint32_t> bucket_free_;
    core::flat_table<tick, std::uint32_t, core::u64_mix_hash> when_map_;
    std::uint32_t cached_bucket_ = k_npos;
};

}  // namespace l4span::sim
