// Deterministic discrete-event loop.
//
// Events scheduled at equal times fire in scheduling order (a monotone
// sequence number breaks ties), so runs are reproducible bit-for-bit for a
// given seed set.
//
// The hot path is allocation-free: pending events live in a slab of pooled
// records recycled through a free list, the ready queue is an index-based
// binary heap over that slab, and handlers are stored in a small-buffer-
// optimized `callback` whose inline buffer is sized so the simulator's
// largest common capture (a `this` pointer plus a `net::packet` by value)
// never touches the heap. Steady-state memory is bounded by the *peak
// pending* event count, not by the total number of events ever scheduled.
//
// Thread-safety contract: an event_loop is single-threaded by design — one
// loop per thread, no internal locking. Parallel experiments give every
// scenario its own loop (see scenario::grid_runner).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace l4span::sim {

// Move-only callable with a small-buffer optimization. Captures up to
// `k_inline_bytes` are stored inline; larger ones fall back to a single
// heap allocation. Replaces std::function on the event hot path, where the
// type-erased copyable machinery and its allocation policy cost more than
// the handler bodies themselves.
class callback {
public:
    // Inline capacity: `this` + a by-value net::packet (~120 bytes) with room
    // to spare, so every handler the simulator schedules today stays inline.
    static constexpr std::size_t k_inline_bytes = 152;

    callback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    callback(F&& f)  // NOLINT(google-explicit-constructor): handler sink
    {
        using fn_t = std::decay_t<F>;
        if constexpr (sizeof(fn_t) <= k_inline_bytes &&
                      alignof(fn_t) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) fn_t(std::forward<F>(f));
            vt_ = &inline_vtable<fn_t>;
        } else {
            *reinterpret_cast<fn_t**>(buf_) = new fn_t(std::forward<F>(f));
            vt_ = &heap_vtable<fn_t>;
        }
    }

    callback(callback&& other) noexcept { move_from(other); }
    callback& operator=(callback&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    callback(const callback&) = delete;
    callback& operator=(const callback&) = delete;
    ~callback() { reset(); }

    void operator()() { vt_->invoke(buf_); }
    explicit operator bool() const { return vt_ != nullptr; }

    void reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

private:
    struct vtable {
        void (*invoke)(void*);
        // Move-constructs into dst and destroys src (pointer steal for the
        // heap case), so relocation is one indirect call.
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename F>
    static constexpr vtable inline_vtable = {
        [](void* p) { (*static_cast<F*>(p))(); },
        [](void* src, void* dst) noexcept {
            ::new (dst) F(std::move(*static_cast<F*>(src)));
            static_cast<F*>(src)->~F();
        },
        [](void* p) noexcept { static_cast<F*>(p)->~F(); },
    };

    template <typename F>
    static constexpr vtable heap_vtable = {
        [](void* p) { (**static_cast<F**>(p))(); },
        [](void* src, void* dst) noexcept {
            *static_cast<F**>(dst) = *static_cast<F**>(src);
        },
        [](void* p) noexcept { delete *static_cast<F**>(p); },
    };

    void move_from(callback& other) noexcept
    {
        vt_ = other.vt_;
        if (vt_) {
            vt_->relocate(other.buf_, buf_);
            other.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[k_inline_bytes];
    const vtable* vt_ = nullptr;
};

class event_loop {
public:
    using handler = callback;
    using event_id = std::uint64_t;

    event_loop() = default;
    event_loop(const event_loop&) = delete;
    event_loop& operator=(const event_loop&) = delete;

    tick now() const { return now_; }

    // Schedules `fn` at absolute time `when` (clamped to now()).
    event_id schedule_at(tick when, handler fn);

    // Schedules `fn` after a relative delay (clamped to zero).
    event_id schedule_after(tick delay, handler fn)
    {
        return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
    }

    // Cancels a pending event. Cancelling an already-fired, cancelled, or
    // unknown id is a safe no-op: ids carry the slot's generation counter,
    // which is bumped whenever the slot is reclaimed, so a stale id cannot
    // hit a recycled slot — unless a caller retains an id across ~2^32
    // reuses of one slot (32-bit generation wrap). Callers clear stored ids
    // on fire/cancel (see tcp_sender's RTO), keeping stale ids short-lived.
    void cancel(event_id id);

    // Runs a single event; returns false when the queue is empty.
    bool run_one();

    // Runs all events with time <= `until`; afterwards now() == until.
    void run_until(tick until);

    // Drains the queue completely.
    void run();

    std::size_t pending() const { return live_; }
    std::uint64_t processed() const { return processed_; }

    // --- slab statistics (memory-boundedness regression tests) ---
    // Pooled records ever created: bounded by peak concurrent pending events.
    std::size_t slab_slots() const { return slab_.size(); }
    // Records currently on the free list, awaiting reuse.
    std::size_t free_slots() const { return slab_.size() - live_; }

private:
    static constexpr std::uint32_t k_npos = 0xffffffffu;

    // One pooled record per pending event. `when` lives in the heap item
    // (hot during sifts); the slot only holds what fire/cancel need.
    struct slot {
        callback fn;
        std::uint32_t gen = 1;  // parity with the id; never 0, so id 0 is invalid
        std::uint32_t next_free = k_npos;
    };
    // Heap items are self-contained (when/seq copied in) so sift compares
    // never chase the slab.
    struct heap_item {
        tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    static event_id make_id(std::uint32_t s, std::uint32_t gen)
    {
        return (static_cast<event_id>(gen) << 32) | s;
    }
    static bool earlier(const heap_item& a, const heap_item& b)
    {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
    }

    void heap_push(heap_item item);
    void heap_pop();
    void release_slot(std::uint32_t s);

    tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
    std::uint64_t processed_ = 0;
    std::vector<heap_item> heap_;
    std::vector<slot> slab_;
    std::uint32_t free_head_ = k_npos;
};

}  // namespace l4span::sim
