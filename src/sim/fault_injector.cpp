#include "sim/fault_injector.h"

#include <stdexcept>

namespace l4span::sim {

fault_injector::fault_injector(std::size_t num_classes)
    : armed_(num_classes, 0), injected_(num_classes)
{
    if (num_classes == 0)
        throw std::invalid_argument("fault_injector: need >= 1 fault class");
    for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
}

void fault_injector::arm(event_loop& loop, tick when, std::size_t cls,
                         callback fire, callback observe)
{
    if (cls >= armed_.size())
        throw std::out_of_range("fault_injector: fault class out of range");
    ++armed_[cls];
    auto* counter = &injected_[cls];
    loop.schedule_at(when, [counter, fire = std::move(fire),
                            observe = std::move(observe)]() mutable {
        counter->fetch_add(1, std::memory_order_relaxed);
        if (observe) observe();
        fire();
    });
}

std::uint64_t fault_injector::armed(std::size_t cls) const
{
    return armed_.at(cls);
}

std::uint64_t fault_injector::injected(std::size_t cls) const
{
    if (cls >= injected_.size())
        throw std::out_of_range("fault_injector: fault class out of range");
    return injected_[cls].load(std::memory_order_relaxed);
}

std::uint64_t fault_injector::armed_total() const
{
    std::uint64_t total = 0;
    for (const auto v : armed_) total += v;
    return total;
}

std::uint64_t fault_injector::injected_total() const
{
    std::uint64_t total = 0;
    for (const auto& v : injected_) total += v.load(std::memory_order_relaxed);
    return total;
}

}  // namespace l4span::sim
