// Simulated time. One tick is one nanosecond; all module clocks share it.
#pragma once

#include <cstdint>

namespace l4span::sim {

using tick = std::int64_t;

inline constexpr tick k_nanosecond = 1;
inline constexpr tick k_microsecond = 1'000;
inline constexpr tick k_millisecond = 1'000'000;
inline constexpr tick k_second = 1'000'000'000;

constexpr tick from_us(double us) { return static_cast<tick>(us * k_microsecond); }
constexpr tick from_ms(double ms) { return static_cast<tick>(ms * k_millisecond); }
constexpr tick from_sec(double s) { return static_cast<tick>(s * k_second); }

constexpr double to_us(tick t) { return static_cast<double>(t) / k_microsecond; }
constexpr double to_ms(tick t) { return static_cast<double>(t) / k_millisecond; }
constexpr double to_sec(tick t) { return static_cast<double>(t) / k_second; }

// Transmission (serialization) time of `bytes` at `rate_bps` bits per second.
constexpr tick tx_time(std::int64_t bytes, double rate_bps)
{
    if (rate_bps <= 0.0) return k_second * 3600;  // effectively "never"
    return static_cast<tick>(static_cast<double>(bytes) * 8.0 / rate_bps * k_second);
}

}  // namespace l4span::sim
