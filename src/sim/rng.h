// Seeded random source. Every stochastic component owns one, derived from a
// scenario master seed, so experiments are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace l4span::sim {

class rng {
public:
    explicit rng(std::uint64_t seed = 1) : engine_(seed) {}

    // Uniform in [0, 1).
    double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

    double uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    double normal(double mean, double stddev)
    {
        if (stddev <= 0.0) return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    double exponential(double mean)
    {
        if (mean <= 0.0) return 0.0;
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    bool bernoulli(double p)
    {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform() < p;
    }

    // Derives an independent child stream (for per-UE / per-flow components).
    rng fork() { return rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace l4span::sim
