// Partitioned-clock multi-loop executor: N event loops ("shards") advance
// in lockstep time windows of one quantum, exchanging work only at window
// barriers.
//
// This is the conservative-lookahead pattern of parallel discrete-event
// simulation: as long as every cross-shard interaction carries a latency of
// at least one quantum, a message produced in window k is delivered before
// its target executes window k+1, so no shard ever sees an event "from the
// past". Within that constraint, shards run concurrently on a worker pool —
// grid_runner's one-loop-per-thread model, applied inside a single
// scenario — and the result streams are byte-identical for any worker
// count:
//
//  * the shard structure is fixed (it never depends on `jobs`);
//  * each (target, source) mailbox lane has exactly one writer, and lanes
//    are drained in fixed source order at the barrier, so the schedule
//    order (and thus the event loop's equal-time tie-break) is
//    deterministic;
//  * `jobs == 1` executes the identical window/drain sequence inline.
//
// scenario::topology builds a multi-cell simulation on top of this, one
// cell per shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace l4span::sim {

class shard_group {
public:
    // `quantum` is the window length; every cross-shard message must be
    // posted at least one quantum into the sender's future. `jobs` caps the
    // worker threads (1 = fully serial; values above the shard count are
    // clamped).
    shard_group(std::size_t shards, tick quantum, int jobs = 1);

    std::size_t size() const { return shards_.size(); }
    tick quantum() const { return quantum_; }
    int jobs() const { return jobs_; }

    // The shard's private loop. Safe to use directly from events running on
    // that shard, and from the owning thread while the group is not running
    // (setup/teardown).
    event_loop& loop(std::size_t shard) { return shards_[shard]->loop; }

    // Delivers `fn` on shard `target` at absolute time `when`. Callable from
    // an event running on any shard or from outside run_until. Posts to the
    // executing shard schedule directly; cross-shard posts go through the
    // mailbox and must satisfy when >= sender_now + quantum (violations
    // throw from the barrier drain).
    void post(std::size_t target, tick when, callback fn);

    // Advances every shard to `until` in lockstep windows.
    void run_until(tick until);

    // Events processed across all shards (deterministic).
    std::uint64_t processed() const;

private:
    struct message {
        tick when;
        callback fn;
    };
    struct shard {
        event_loop loop;
        // One lane per source shard plus one for external (pre-run) posts;
        // single writer per lane, drained only at barriers.
        std::vector<std::vector<message>> inbox;
    };

    void drain(std::size_t s);

    tick quantum_;
    int jobs_;
    tick horizon_ = 0;  // end of the last completed window
    std::vector<std::unique_ptr<shard>> shards_;
};

}  // namespace l4span::sim
