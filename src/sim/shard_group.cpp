#include "sim/shard_group.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace l4span::sim {

namespace {
constexpr std::size_t k_external = static_cast<std::size_t>(-1);
// Which shard the current thread is executing (lane selection for post()).
thread_local std::size_t t_current_shard = k_external;

// Sense-reversing spin barrier. The windows are sub-millisecond, so a
// lockstep run crosses a barrier thousands of times per simulated second —
// futex-based std::barrier wakeups cost more than the windows themselves
// and made the sharded mode slower than serial. Workers here are
// compute-saturated peers, so spin (with a yield fallback for oversubscribed
// hosts) is the right trade.
class spin_barrier {
public:
    explicit spin_barrier(int n) : n_(n), remaining_(n) {}

    void arrive_and_wait()
    {
        const unsigned my_sense = sense_.load(std::memory_order_relaxed);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            remaining_.store(n_, std::memory_order_relaxed);
            sense_.store(my_sense + 1, std::memory_order_release);
            return;
        }
        int spins = 0;
        while (sense_.load(std::memory_order_acquire) == my_sense) {
            if (++spins > 4096) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

private:
    const int n_;
    std::atomic<int> remaining_;
    std::atomic<unsigned> sense_{0};
};
}  // namespace

shard_group::shard_group(std::size_t shards, tick quantum, int jobs)
    : quantum_(quantum), jobs_(jobs > 0 ? jobs : 1)
{
    if (shards == 0) throw std::invalid_argument("shard_group: need at least one shard");
    if (quantum <= 0) throw std::invalid_argument("shard_group: quantum must be positive");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        auto sh = std::make_unique<shard>();
        sh->inbox.resize(shards + 1);
        shards_.push_back(std::move(sh));
    }
}

void shard_group::post(std::size_t target, tick when, callback fn)
{
    if (target == t_current_shard) {
        // Same shard: plain scheduling, no mailbox latency constraint.
        shards_[target]->loop.schedule_at(when, std::move(fn));
        return;
    }
    const std::size_t lane = t_current_shard == k_external ? size() : t_current_shard;
    shards_[target]->inbox[lane].push_back({when, std::move(fn)});
}

void shard_group::drain(std::size_t s)
{
    shard& sh = *shards_[s];
    for (auto& lane : sh.inbox) {
        if (lane.empty()) continue;
        // Take the lane before scheduling so a throw mid-lane cannot leave
        // already-moved callbacks behind for a later re-drain.
        auto msgs = std::move(lane);
        lane.clear();
        for (auto& m : msgs) {
            // `when == now` is fine (the loop has not run past now); earlier
            // means a cross-shard latency below the quantum.
            if (m.when < sh.loop.now())
                throw std::logic_error(
                    "shard_group: cross-shard message arrived late "
                    "(latency below the sync quantum?)");
            sh.loop.schedule_at(m.when, std::move(m.fn));
        }
    }
}

void shard_group::run_until(tick until)
{
    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), size());

    if (workers <= 1) {
        while (horizon_ < until) {
            const tick window_end = std::min(until, horizon_ + quantum_);
            // Drain-all then run-all, exactly the parallel phase structure:
            // messages posted while running window k surface in window k+1.
            for (std::size_t s = 0; s < size(); ++s) drain(s);
            for (std::size_t s = 0; s < size(); ++s) {
                t_current_shard = s;
                shards_[s]->loop.run_until(window_end);
            }
            t_current_shard = k_external;
            horizon_ = window_end;
        }
        return;
    }

    spin_barrier bar(static_cast<int>(workers));
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<bool> stop{false};
    const tick start = horizon_;

    auto record_error = [&] {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_release);
    };
    // After an error, every worker still finishes the current window's two
    // barriers (so nobody deadlocks), then all observe `stop` at the same
    // loop-top — the barrier's release/acquire ordering makes the decision
    // unanimous — and the error is rethrown without executing further
    // windows in a corrupted state.
    auto work = [&](std::size_t w) {
        for (tick h = start; h < until && !stop.load(std::memory_order_acquire);) {
            const tick window_end = std::min(until, h + quantum_);
            try {
                for (std::size_t s = w; s < size(); s += workers) drain(s);
            } catch (...) {
                record_error();
            }
            bar.arrive_and_wait();  // all mailboxes drained before anyone runs
            try {
                for (std::size_t s = w; s < size(); s += workers) {
                    t_current_shard = s;
                    shards_[s]->loop.run_until(window_end);
                }
            } catch (...) {
                record_error();
            }
            t_current_shard = k_external;
            bar.arrive_and_wait();  // all ran before anyone drains the next window
            h = window_end;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    horizon_ = until;
}

std::uint64_t shard_group::processed() const
{
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->loop.processed();
    return total;
}

}  // namespace l4span::sim
