// Queue discipline interface shared by wired-router queues and the CU-side
// baselines (TC-RAN's CoDel/ECN-CoDel, the DualPi2 microbenchmark).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "net/packet.h"
#include "sim/time.h"

namespace l4span::aqm {

class queue_discipline {
public:
    virtual ~queue_discipline() = default;

    // Returns false when the packet is dropped at enqueue.
    virtual bool enqueue(net::packet p, sim::tick now) = 0;

    // Next packet to transmit, or nullopt when empty. AQM drop/mark
    // decisions happen here (sojourn-time based).
    virtual std::optional<net::packet> dequeue(sim::tick now) = 0;

    virtual std::size_t byte_count() const = 0;
    virtual std::size_t packet_count() const = 0;
    bool empty() const { return packet_count() == 0; }

    std::uint64_t drops() const { return drops_; }
    std::uint64_t marks() const { return marks_; }

protected:
    std::uint64_t drops_ = 0;
    std::uint64_t marks_ = 0;
};

}  // namespace l4span::aqm
