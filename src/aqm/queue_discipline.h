// Queue discipline interface shared by wired-router queues and the CU-side
// baselines (TC-RAN's CoDel/ECN-CoDel, the DualPi2 microbenchmark).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "net/packet.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace l4span::aqm {

class queue_discipline {
public:
    virtual ~queue_discipline() = default;

    // Reason-coded aqm_mark / aqm_drop trace events at every mark and drop
    // site. `id` labels this queue instance in the merged trace (scenarios
    // use the cell index; standalone benches 0).
    void set_tracer(obs::tracer* t, std::uint32_t id)
    {
        tracer_ = t;
        aqm_id_ = id;
    }

    // Returns false when the packet is dropped at enqueue.
    virtual bool enqueue(net::packet p, sim::tick now) = 0;

    // Next packet to transmit, or nullopt when empty. AQM drop/mark
    // decisions happen here (sojourn-time based).
    virtual std::optional<net::packet> dequeue(sim::tick now) = 0;

    virtual std::size_t byte_count() const = 0;
    virtual std::size_t packet_count() const = 0;
    bool empty() const { return packet_count() == 0; }

    std::uint64_t drops() const { return drops_; }
    std::uint64_t marks() const { return marks_; }

protected:
    void trace(sim::tick now, obs::point pt, obs::reason r, const net::packet& p)
    {
        if (tracer_)
            tracer_->emit(now, pt, r, aqm_id_,
                          (p.flow_id << 32) | (p.pkt_id & 0xffffffffull),
                          p.payload_bytes);
    }

    std::uint64_t drops_ = 0;
    std::uint64_t marks_ = 0;
    obs::tracer* tracer_ = nullptr;
    std::uint32_t aqm_id_ = 0;
};

}  // namespace l4span::aqm
