// CoDel (Controlling Queue Delay, Nichols & Jacobson) and its ECN-marking
// variant. This is the TC-RAN baseline the paper compares against (§6.2.2):
// TC-RAN installs CoDel / ECN-CoDel between the SDAP and PDCP layers with a
// fixed sojourn target.
#pragma once

#include <cstdint>
#include <deque>

#include "aqm/queue_discipline.h"

namespace l4span::aqm {

struct codel_config {
    sim::tick target = sim::from_ms(5);
    sim::tick interval = sim::from_ms(100);
    bool ecn_mode = false;          // true: mark ECT packets instead of dropping
    std::size_t max_bytes = 1 << 24;
};

class codel_queue : public queue_discipline {
public:
    explicit codel_queue(codel_config cfg = {}) : cfg_(cfg) {}

    bool enqueue(net::packet p, sim::tick now) override;
    std::optional<net::packet> dequeue(sim::tick now) override;

    std::size_t byte_count() const override { return bytes_; }
    std::size_t packet_count() const override { return q_.size(); }

private:
    struct item {
        net::packet pkt;
        sim::tick enq_time;
    };

    bool should_act(sim::tick sojourn, sim::tick now);
    sim::tick control_law(sim::tick t) const;
    // Applies CoDel's action to the head packet: returns true when the
    // packet was consumed (dropped); false when it was marked (or ECN-incapable
    // in drop mode resolves to drop).
    bool act_on(net::packet& p, sim::tick now);

    codel_config cfg_;
    std::deque<item> q_;
    std::size_t bytes_ = 0;

    sim::tick first_above_time_ = 0;
    sim::tick drop_next_ = 0;
    std::uint32_t count_ = 0;
    std::uint32_t last_count_ = 0;
    bool dropping_ = false;
};

}  // namespace l4span::aqm
