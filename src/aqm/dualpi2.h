// DualPi2 coupled dual-queue AQM (RFC 9332).
//
// Used for (a) the wired L4S router in the Fig. 2(a) motivation experiment
// and (b) the §6.3.1 microbenchmark where DualPi2 replaces L4Span inside the
// RAN to show that a fixed sojourn-time marker under-utilizes a volatile
// wireless link.
#pragma once

#include <deque>

#include "aqm/queue_discipline.h"
#include "sim/rng.h"

namespace l4span::aqm {

struct dualpi2_config {
    sim::tick target = sim::from_ms(15);       // classic queue delay target
    sim::tick l4s_step = sim::from_ms(1);      // L4S step-marking threshold
    sim::tick t_update = sim::from_ms(16);     // PI update period
    double alpha = 0.16;                       // PI integral gain (per update, /s units)
    double beta = 3.2;                         // PI proportional gain
    double coupling = 2.0;                     // k: p_CL = k * p'
    std::size_t max_bytes = 1 << 24;
    std::uint64_t seed = 42;
};

class dualpi2_queue : public queue_discipline {
public:
    explicit dualpi2_queue(dualpi2_config cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

    bool enqueue(net::packet p, sim::tick now) override;
    std::optional<net::packet> dequeue(sim::tick now) override;

    std::size_t byte_count() const override { return bytes_l_ + bytes_c_; }
    std::size_t packet_count() const override { return lq_.size() + cq_.size(); }

    double base_probability() const { return p_prime_; }
    sim::tick classic_sojourn(sim::tick now) const
    {
        return cq_.empty() ? 0 : now - cq_.front().enq_time;
    }

private:
    struct item {
        net::packet pkt;
        sim::tick enq_time;
    };

    void maybe_update(sim::tick now);

    dualpi2_config cfg_;
    sim::rng rng_;
    std::deque<item> lq_, cq_;
    std::size_t bytes_l_ = 0, bytes_c_ = 0;
    double p_prime_ = 0.0;
    sim::tick last_update_ = 0;
    sim::tick prev_sojourn_ = 0;
    int wrr_credit_ = 0;  // weighted scheduling between L and C queues
};

}  // namespace l4span::aqm
