#include "aqm/codel.h"

#include <cmath>

namespace l4span::aqm {

bool codel_queue::enqueue(net::packet p, sim::tick now)
{
    if (bytes_ + p.size_bytes() > cfg_.max_bytes) {
        ++drops_;
        trace(now, obs::point::aqm_drop, obs::reason::queue_overflow, p);
        return false;
    }
    bytes_ += p.size_bytes();
    q_.push_back({std::move(p), now});
    return true;
}

sim::tick codel_queue::control_law(sim::tick t) const
{
    return t + static_cast<sim::tick>(static_cast<double>(cfg_.interval) /
                                      std::sqrt(static_cast<double>(count_)));
}

bool codel_queue::act_on(net::packet& p, sim::tick now)
{
    if (cfg_.ecn_mode && net::is_ect(p.ecn_field)) {
        p.ecn_field = net::ecn::ce;
        ++marks_;
        trace(now, obs::point::aqm_mark, obs::reason::codel_mark, p);
        return false;
    }
    ++drops_;
    trace(now, obs::point::aqm_drop, obs::reason::codel_drop, p);
    return true;
}

bool codel_queue::should_act(sim::tick sojourn, sim::tick now)
{
    if (sojourn < cfg_.target || bytes_ <= 5 * 1500) {
        first_above_time_ = 0;
        return false;
    }
    if (first_above_time_ == 0) {
        first_above_time_ = now + cfg_.interval;
        return false;
    }
    return now >= first_above_time_;
}

std::optional<net::packet> codel_queue::dequeue(sim::tick now)
{
    while (!q_.empty()) {
        item it = std::move(q_.front());
        q_.pop_front();
        bytes_ -= it.pkt.size_bytes();
        const sim::tick sojourn = now - it.enq_time;

        if (cfg_.ecn_mode) {
            // ECN-CoDel as TC-RAN deploys it: a fixed sojourn threshold —
            // every packet above target is marked. On a bursty RLC drain the
            // sojourn crosses the fixed threshold constantly, which is the
            // under-utilization the L4Span paper measures (§6.2.2).
            if (sojourn >= cfg_.target && net::is_ect(it.pkt.ecn_field)) {
                it.pkt.ecn_field = net::ecn::ce;
                ++marks_;
                trace(now, obs::point::aqm_mark, obs::reason::codel_mark, it.pkt);
            }
            return it.pkt;
        }

        if (dropping_) {
            if (sojourn < cfg_.target) {
                dropping_ = false;
                return it.pkt;
            }
            if (now >= drop_next_) {
                ++count_;
                drop_next_ = control_law(drop_next_);
                if (act_on(it.pkt, now)) continue;  // dropped: take the next packet
            }
            return it.pkt;
        }

        if (should_act(sojourn, now)) {
            dropping_ = true;
            // Resume at a higher rate if we were recently dropping.
            count_ = (count_ > 2 && now - drop_next_ < 8 * cfg_.interval) ? count_ - 2 : 1;
            last_count_ = count_;
            drop_next_ = control_law(now);
            if (act_on(it.pkt, now)) continue;
        }
        return it.pkt;
    }
    first_above_time_ = 0;
    return std::nullopt;
}

}  // namespace l4span::aqm
