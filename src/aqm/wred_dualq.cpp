#include "aqm/wred_dualq.h"

#include <stdexcept>

#include "net/ecn.h"

namespace l4span::aqm {

namespace {

void validate_profile(const wred_profile& p, const std::string& where)
{
    if (p.max_bytes < p.min_bytes)
        throw std::invalid_argument(where + ": max_bytes (" +
                                    std::to_string(p.max_bytes) +
                                    ") must be >= min_bytes (" +
                                    std::to_string(p.min_bytes) + ")");
    if (p.max_p < 0.0 || p.max_p > 1.0)
        throw std::invalid_argument(where + ": max_p must be in [0, 1], got " +
                                    std::to_string(p.max_p));
}

}  // namespace

void wred_dualq_config::validate(const std::string& where) const
{
    validate_profile(l4s, where + ".l4s");
    validate_profile(classic, where + ".classic");
    if (l4s_weight < 1)
        throw std::invalid_argument(where + ".l4s_weight must be >= 1, got " +
                                    std::to_string(l4s_weight));
    if (max_bytes == 0)
        throw std::invalid_argument(where + ".max_bytes must be > 0");
    if (ecn_drop_bytes > max_bytes)
        throw std::invalid_argument(where + ".ecn_drop_bytes (" +
                                    std::to_string(ecn_drop_bytes) +
                                    ") must be <= max_bytes (" +
                                    std::to_string(max_bytes) + ")");
}

wred_dualq_queue::wred_dualq_queue(wred_dualq_config cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    cfg_.validate("wred_dualq_config");
}

double wred_dualq_queue::ramp(const wred_profile& prof, std::size_t bytes)
{
    if (bytes < prof.min_bytes) return 0.0;
    if (bytes >= prof.max_bytes) return prof.max_p;
    const double span = static_cast<double>(prof.max_bytes - prof.min_bytes);
    return prof.max_p * static_cast<double>(bytes - prof.min_bytes) / span;
}

bool wred_dualq_queue::enqueue(net::packet p, sim::tick now)
{
    const std::size_t total = bytes_l_ + bytes_c_;
    if (total + p.size_bytes() > cfg_.max_bytes) {
        ++drops_;
        trace(now, obs::point::aqm_drop, obs::reason::queue_overflow, p);
        return false;
    }
    // RFC 9331 classifier, same as DualPi2: ECT(1) and CE ride the L queue.
    const bool l4s = p.ecn_field == net::ecn::ect1 || p.ecn_field == net::ecn::ce;
    // Past the ECN drop point marking is no longer trusted: drop regardless
    // of codepoint (the SST WRED tables' ecn_drop_point semantics).
    if (cfg_.ecn_drop_bytes > 0 && total >= cfg_.ecn_drop_bytes) {
        ++drops_;
        trace(now, obs::point::aqm_drop,
              l4s ? obs::reason::l4s_mark : obs::reason::classic_drop, p);
        return false;
    }
    // Enqueue-time WRED decision on the target queue's occupancy.
    const double prob = ramp(l4s ? cfg_.l4s : cfg_.classic, l4s ? bytes_l_ : bytes_c_);
    if (rng_.bernoulli(prob)) {
        if (net::is_ect(p.ecn_field)) {
            p.ecn_field = net::ecn::ce;
            ++marks_;
            trace(now, obs::point::aqm_mark,
                  l4s ? obs::reason::l4s_mark : obs::reason::classic_mark, p);
        } else if (!net::is_ce(p.ecn_field)) {
            ++drops_;
            trace(now, obs::point::aqm_drop, obs::reason::classic_drop, p);
            return false;
        }
        // CE already set upstream: nothing to add, the signal stands.
    }
    if (l4s) {
        bytes_l_ += p.size_bytes();
        lq_.push_back(std::move(p));
    } else {
        bytes_c_ += p.size_bytes();
        cq_.push_back(std::move(p));
    }
    return true;
}

std::optional<net::packet> wred_dualq_queue::dequeue(sim::tick)
{
    // Weighted round-robin with L-queue preference, same shape as DualPi2's
    // scheduler: serve L while it has packets, but let C through every
    // l4s_weight packets so classic traffic cannot starve.
    const bool serve_l = !lq_.empty() && (cq_.empty() || wrr_credit_ < cfg_.l4s_weight);
    if (serve_l) {
        ++wrr_credit_;
        net::packet p = std::move(lq_.front());
        lq_.pop_front();
        bytes_l_ -= p.size_bytes();
        return p;
    }
    wrr_credit_ = 0;
    if (cq_.empty()) return std::nullopt;
    net::packet p = std::move(cq_.front());
    cq_.pop_front();
    bytes_c_ -= p.size_bytes();
    return p;
}

}  // namespace l4span::aqm
