#include "aqm/dualpi2.h"

#include <algorithm>

namespace l4span::aqm {

bool dualpi2_queue::enqueue(net::packet p, sim::tick now)
{
    maybe_update(now);
    if (bytes_l_ + bytes_c_ + p.size_bytes() > cfg_.max_bytes) {
        ++drops_;
        trace(now, obs::point::aqm_drop, obs::reason::queue_overflow, p);
        return false;
    }
    // RFC 9331 classifier: ECT(1) and CE go to the L queue.
    const bool l4s = p.ecn_field == net::ecn::ect1 || p.ecn_field == net::ecn::ce;
    if (l4s) {
        bytes_l_ += p.size_bytes();
        lq_.push_back({std::move(p), now});
    } else {
        bytes_c_ += p.size_bytes();
        cq_.push_back({std::move(p), now});
    }
    return true;
}

void dualpi2_queue::maybe_update(sim::tick now)
{
    while (now - last_update_ >= cfg_.t_update) {
        last_update_ += cfg_.t_update;
        // PI control on the classic queue sojourn (estimated from head age).
        // Gains follow RFC 9332: applied once per t_update against the
        // sojourn error in seconds.
        const sim::tick sojourn = cq_.empty() ? 0 : (last_update_ - cq_.front().enq_time);
        const double err_s = sim::to_sec(sojourn - cfg_.target);
        const double delta_s = sim::to_sec(sojourn - prev_sojourn_);
        p_prime_ += cfg_.alpha * err_s + cfg_.beta * delta_s;
        p_prime_ = std::clamp(p_prime_, 0.0, 1.0);
        prev_sojourn_ = sojourn;
    }
}

std::optional<net::packet> dualpi2_queue::dequeue(sim::tick now)
{
    maybe_update(now);
    // Weighted round-robin with L-queue priority: serve L while it has
    // packets, but let C through every few packets to avoid starvation.
    for (;;) {
        const bool serve_l = !lq_.empty() && (cq_.empty() || wrr_credit_ < 4);
        if (!serve_l && cq_.empty() && lq_.empty()) return std::nullopt;

        if (serve_l) {
            ++wrr_credit_;
            item it = std::move(lq_.front());
            lq_.pop_front();
            bytes_l_ -= it.pkt.size_bytes();
            const sim::tick sojourn = now - it.enq_time;
            // Native L4S marking: step threshold OR coupled probability.
            const double p_cl = std::min(1.0, cfg_.coupling * p_prime_);
            if (sojourn > cfg_.l4s_step || rng_.bernoulli(p_cl)) {
                if (net::is_ect(it.pkt.ecn_field) || net::is_ce(it.pkt.ecn_field)) {
                    it.pkt.ecn_field = net::ecn::ce;
                    ++marks_;
                    trace(now, obs::point::aqm_mark, obs::reason::l4s_mark, it.pkt);
                }
            }
            return it.pkt;
        }

        wrr_credit_ = 0;
        if (cq_.empty()) continue;
        item it = std::move(cq_.front());
        cq_.pop_front();
        bytes_c_ -= it.pkt.size_bytes();
        // Classic: squared probability (matches 1/sqrt(p) senders).
        const double p_c = p_prime_ * p_prime_;
        if (rng_.bernoulli(p_c)) {
            if (net::is_ect(it.pkt.ecn_field)) {
                it.pkt.ecn_field = net::ecn::ce;
                ++marks_;
                trace(now, obs::point::aqm_mark, obs::reason::classic_mark, it.pkt);
            } else {
                ++drops_;
                trace(now, obs::point::aqm_drop, obs::reason::classic_drop, it.pkt);
                continue;  // non-ECN classic traffic is dropped
            }
        }
        return it.pkt;
    }
}

}  // namespace l4span::aqm
