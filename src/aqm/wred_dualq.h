// WRED-profile dual-queue AQM: an occupancy-ramp middlebox queue in the
// style of switching-ASIC WRED tables (cf. the SST DualQ component's
// JSON-loaded WRED profiles), as opposed to the sojourn-time PI control of
// DualPi2. Two queues — L4S (ECT(1)/CE) and classic — each carry a linear
// marking/dropping ramp over their own byte occupancy:
//
//   p(q) = 0                         for q <  min_bytes
//   p(q) = max_p * (q - min) /
//              (max - min)           for min <= q < max_bytes
//   p(q) = max_p                     for q >= max_bytes
//
// A fired ramp decision marks CE on ECT packets and drops Not-ECT ones; the
// shared `ecn_drop_bytes` point (the SST tables' ecn_drop_point) drops even
// ECT packets once total occupancy passes it, bounding how long marking
// alone is trusted. Decisions happen at enqueue (classic WRED), dequeue is
// weighted round-robin with L-queue preference.
//
// There is intentionally NO compiled-in scenario using this queue: it is
// reachable only through `cell_spec.bottleneck_aqm = "wred"` + the
// `cell_spec.wred` parameters, which the scenario schema (docs/SCENARIOS.md)
// exposes — the "new scenarios are data" proof for the scenario engine.
#pragma once

#include <deque>
#include <string>

#include "aqm/queue_discipline.h"
#include "sim/rng.h"

namespace l4span::aqm {

// One linear WRED ramp over a queue's byte occupancy.
struct wred_profile {
    std::size_t min_bytes = 0;  // ramp start (below: never fire)
    std::size_t max_bytes = 0;  // ramp end (above: fire with max_p)
    double max_p = 1.0;         // probability at/above max_bytes
};

struct wred_dualq_config {
    // Shallow ECN ramp for the latency-sensitive queue (~8..64 full-size
    // packets), saturating at certain marking.
    wred_profile l4s{8 * 1514, 64 * 1514, 1.0};
    // Deeper, gentler ramp for classic traffic (~32..256 packets, 10%).
    wred_profile classic{32 * 1514, 256 * 1514, 0.1};
    // Total occupancy beyond which even ECT packets drop (0 disables).
    std::size_t ecn_drop_bytes = 1 << 21;
    // WRR: L4S packets served per classic packet under contention.
    int l4s_weight = 4;
    // Hard tail-drop limit on total occupancy.
    std::size_t max_bytes = 1 << 24;
    // RNG seed for the ramp draws. Scenario harnesses override this with a
    // stream derived from the cell seed, so grids stay byte-identical for
    // any --jobs value.
    std::uint64_t seed = 9;

    // Throws std::invalid_argument naming `where` with an actionable
    // message on any inconsistent knob.
    void validate(const std::string& where) const;
};

class wred_dualq_queue : public queue_discipline {
public:
    // Validates `cfg` (throws std::invalid_argument, see
    // wred_dualq_config::validate).
    explicit wred_dualq_queue(wred_dualq_config cfg = {});

    bool enqueue(net::packet p, sim::tick now) override;
    std::optional<net::packet> dequeue(sim::tick now) override;

    std::size_t byte_count() const override { return bytes_l_ + bytes_c_; }
    std::size_t packet_count() const override { return lq_.size() + cq_.size(); }

    std::size_t l4s_bytes() const { return bytes_l_; }
    std::size_t classic_bytes() const { return bytes_c_; }
    // Current ramp probability for each queue (test introspection).
    double l4s_probability() const { return ramp(cfg_.l4s, bytes_l_); }
    double classic_probability() const { return ramp(cfg_.classic, bytes_c_); }

private:
    static double ramp(const wred_profile& prof, std::size_t bytes);

    wred_dualq_config cfg_;
    sim::rng rng_;
    std::deque<net::packet> lq_, cq_;
    std::size_t bytes_l_ = 0, bytes_c_ = 0;
    int wrr_credit_ = 0;
};

}  // namespace l4span::aqm
