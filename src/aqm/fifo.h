// Tail-drop FIFO with a byte limit: the classic bloated middlebox queue.
#pragma once

#include <deque>

#include "aqm/queue_discipline.h"

namespace l4span::aqm {

class fifo_queue : public queue_discipline {
public:
    explicit fifo_queue(std::size_t max_bytes = 1 << 22) : max_bytes_(max_bytes) {}

    bool enqueue(net::packet p, sim::tick now) override
    {
        if (bytes_ + p.size_bytes() > max_bytes_) {
            ++drops_;
            trace(now, obs::point::aqm_drop, obs::reason::queue_overflow, p);
            return false;
        }
        bytes_ += p.size_bytes();
        q_.push_back(std::move(p));
        return true;
    }

    std::optional<net::packet> dequeue(sim::tick) override
    {
        if (q_.empty()) return std::nullopt;
        net::packet p = std::move(q_.front());
        q_.pop_front();
        bytes_ -= p.size_bytes();
        return p;
    }

    std::size_t byte_count() const override { return bytes_; }
    std::size_t packet_count() const override { return q_.size(); }

private:
    std::size_t max_bytes_;
    std::size_t bytes_ = 0;
    std::deque<net::packet> q_;
};

}  // namespace l4span::aqm
