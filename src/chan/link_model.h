// Per-UE link-quality source: the one interface the gNB scheduler consults
// each DL slot. Two implementations exist — `chan::fading_channel` (the
// synthetic Gauss-Markov SNR process) and `chan::trace_channel` (NR-Scope
// style DCI replay) — so every scenario knob that selects a channel selects
// a link model, and trace-driven and model-driven runs share the whole
// stack above this line.
#pragma once

#include <string>

#include "chan/mcs.h"
#include "sim/time.h"

namespace l4span::chan {

// The paper's evaluation drives the Amarisoft emulator with static,
// pedestrian and vehicular profiles; we reproduce those knobs. The
// vehicular coherence time (24.9 ms at 3.5 GHz / 70 km/h) matches the
// measurement the paper adopts from Wang et al. [78]; slower motion scales
// coherence inversely with speed.
struct channel_profile {
    std::string name;
    double mean_snr_db = 22.0;
    double sigma_db = 0.0;        // stddev of the SNR process
    sim::tick coherence = 0;      // correlation time of the process (0 = static)

    static channel_profile static_channel(double mean_snr_db = 13.0);
    static channel_profile pedestrian(double mean_snr_db = 12.5);  // 3 km/h
    static channel_profile vehicular(double mean_snr_db = 12.0);   // 70 km/h
    // "Mobile" in Fig. 9 combines pedestrian- and vehicular-speed channels.
    static channel_profile mobile(double mean_snr_db = 12.2);
};

// Measured vehicular coherence time at 3.5 GHz / 70 km/h [78].
inline constexpr sim::tick k_vehicular_coherence = sim::from_ms(24.9);

class link_model {
public:
    virtual ~link_model() = default;

    // SNR at time `t`; advances the model (t must be non-decreasing; an
    // earlier t returns the current value without rewinding).
    virtual double snr_db(sim::tick t) = 0;

    // MCS at time `t`. A fading model derives it from the SNR process; a
    // trace replays the recorded DCI value directly.
    virtual int mcs(sim::tick t) { return mcs_from_snr(snr_db(t)); }

    // Per-slot cap on schedulable new-transmission PRBs (a DCI replay is
    // bounded by the allocation the real cell granted); -1 = no cap.
    virtual int prb_cap(sim::tick) { return -1; }

    virtual const channel_profile& profile() const = 0;

    // True when the model's state must ride the X2/Xn handover context so
    // replay continues where it left off (trace cursor); false means the
    // target cell re-draws a fresh realization from profile().
    virtual bool migrates_on_handover() const { return false; }
};

}  // namespace l4span::chan
