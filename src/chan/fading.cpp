#include "chan/fading.h"

#include <cmath>

namespace l4span::chan {

// Mean SNRs are calibrated so the 51-PRB / DDDSU cell delivers the paper's
// ~40 Mbit/s aggregate downlink capacity on a static channel (MCS ~15).
channel_profile channel_profile::static_channel(double mean_snr_db)
{
    return {"static", mean_snr_db, 0.8, sim::from_ms(500)};
}

channel_profile channel_profile::pedestrian(double mean_snr_db)
{
    // 3 km/h: coherence ~ 24.9 ms * 70/3.
    return {"pedestrian", mean_snr_db, 3.0, sim::from_ms(24.9 * 70.0 / 3.0)};
}

channel_profile channel_profile::vehicular(double mean_snr_db)
{
    return {"vehicular", mean_snr_db, 4.5, k_vehicular_coherence};
}

channel_profile channel_profile::mobile(double mean_snr_db)
{
    // Mixture of pedestrian and vehicular speeds: intermediate coherence,
    // wide swings.
    return {"mobile", mean_snr_db, 4.0, sim::from_ms(24.9 * 70.0 / 30.0)};
}

double fading_channel::snr_db(sim::tick t)
{
    if (t <= last_) return snr_db_;
    if (profile_.coherence <= 0 || profile_.sigma_db <= 0.0) {
        last_ = t;
        snr_db_ = profile_.mean_snr_db;
        return snr_db_;
    }
    // Ornstein-Uhlenbeck (Gauss-Markov) update with correlation
    // rho = exp(-dt / coherence). The channel is sampled once per slot, so
    // dt is the slot period on almost every call: memoize (rho, noise_sigma)
    // per dt — identical inputs give identical doubles, so the memo changes
    // nothing observable, it only skips the exp/sqrt.
    const sim::tick dt_ticks = t - last_;
    if (dt_ticks != memo_dt_) {
        const double dt = static_cast<double>(dt_ticks);
        memo_rho_ = std::exp(-dt / static_cast<double>(profile_.coherence));
        memo_sigma_ = profile_.sigma_db * std::sqrt(1.0 - memo_rho_ * memo_rho_);
        memo_dt_ = dt_ticks;
    }
    const double rho = memo_rho_;
    const double noise_sigma = memo_sigma_;
    snr_db_ = profile_.mean_snr_db + rho * (snr_db_ - profile_.mean_snr_db) +
              rng_.normal(0.0, noise_sigma);
    last_ = t;
    return snr_db_;
}

}  // namespace l4span::chan
