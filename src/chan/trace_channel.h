// Trace-driven channel: replays per-slot DCI-style records (NR-Scope
// measurements of a commercial cell, or a recording of a fading run) as a
// UE's link-quality source. Fig. 18's marking-threshold coherence analysis
// is driven by measured DCI traces in the paper; this layer lets every
// scenario that takes a channel name run from replayed data instead of the
// synthetic fading model.
//
// Replay is a pure function of simulated time: the record in force at time
// t is the one with the largest timestamp <= offset + t * time_scale
// (modulo the trace duration when looping). That makes the cursor
// handover-safe by construction — the channel object migrates with the UE
// through ran::ue_handover_context and keeps answering from global time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chan/link_model.h"
#include "sim/time.h"

namespace l4span::chan {

// One DCI-style observation: the slot's link-adaptation outcome.
struct dci_record {
    sim::tick timestamp = 0;  // trace-relative time of the slot
    int mcs = 0;              // -1 = below MCS0 (no transmission)
    int prbs = 0;             // PRBs allocated in the slot
    std::uint32_t tbs = 0;    // transport-block bytes reported

    bool operator==(const dci_record&) const = default;
};

// Widest NR carrier (FR1, 100 MHz @ 30 kHz SCS) — the PRB clamp ceiling.
inline constexpr int k_max_trace_prbs = 275;

struct trace_data {
    std::string name;
    std::vector<dci_record> records;  // strictly increasing timestamps
    sim::tick duration = 0;           // loop period; 0 = derive from records

    // Loop period actually used: `duration` when set, else the last
    // timestamp plus the first inter-record gap (one slot for a recording).
    sim::tick effective_duration() const;
};

// Per-UE replay knobs (cell_spec.ue_traces).
struct trace_config {
    std::shared_ptr<const trace_data> data;
    bool loop = true;        // wrap at effective_duration(); false = hold last
    sim::tick offset = 0;    // trace time at sim t = 0 (decorrelates UEs)
    double time_scale = 1.0; // 2.0 replays twice as fast, 0.5 half speed
};

// Throws std::invalid_argument with an actionable message (what was wrong
// and what a valid config looks like) on null/zero-length data or a
// non-positive time_scale.
void validate_trace_config(const trace_config& cfg);

class trace_channel final : public link_model {
public:
    explicit trace_channel(trace_config cfg);

    // Representative SNR of the replayed MCS (the table threshold), so
    // mcs_from_snr(snr_db(t)) == mcs(t) and SNR introspection keeps working.
    double snr_db(sim::tick t) override;
    int mcs(sim::tick t) override;
    int prb_cap(sim::tick t) override;
    const channel_profile& profile() const override { return profile_; }
    bool migrates_on_handover() const override { return true; }

    const trace_config& config() const { return cfg_; }
    // The record in force at `t` (advances the cursor; t non-decreasing,
    // earlier times return the current record).
    const dci_record& record_at(sim::tick t);

private:
    trace_config cfg_;
    channel_profile profile_;
    sim::tick last_ = -1;
    std::size_t cursor_ = 0;
    std::int64_t lap_ = 0;  // loop count at the cursor position
};

// Deterministic synthetic DCI-trace generator: samples a fading channel's
// link adaptation once per `slot` — exactly what the recorder would capture
// from an always-backlogged UE. Seeds its own RNG, so equal specs produce
// equal traces on every platform.
struct synth_trace_spec {
    std::string name = "synthetic";
    std::uint64_t seed = 1;
    std::size_t slots = 2000;
    sim::tick slot = sim::from_us(500);
    double mean_snr_db = 13.0;
    double sigma_db = 4.0;
    sim::tick coherence = sim::from_ms(34);
    int prbs = 51;  // the paper's 20 MHz cell
};

trace_data synth_trace(const synth_trace_spec& spec);

}  // namespace l4span::chan
