#include "chan/mcs.h"

#include <array>

namespace l4span::chan {

namespace {

// TS 38.214 Table 5.1.3.1-2 (MCS index table 2, 256-QAM), Qm x R/1024.
// SNR thresholds: AWGN BLER-10% operating points (approx.), ~1 dB apart
// near the bottom and ~1.1 dB near the top.
constexpr std::array<mcs_entry, k_num_mcs> k_table{{
    {0, 0.2344, -6.0},  {1, 0.3770, -4.5},  {2, 0.6016, -3.0},  {3, 0.8770, -1.5},
    {4, 1.1758, 0.0},   {5, 1.4766, 1.5},   {6, 1.6953, 2.7},   {7, 1.9141, 3.8},
    {8, 2.1602, 4.9},   {9, 2.4063, 6.0},   {10, 2.5703, 6.9},  {11, 2.7305, 7.8},
    {12, 3.0293, 9.0},  {13, 3.3223, 10.1}, {14, 3.6094, 11.2}, {15, 3.9023, 12.3},
    {16, 4.2129, 13.4}, {17, 4.5234, 14.5}, {18, 4.8164, 15.6}, {19, 5.1152, 16.7},
    {20, 5.3320, 17.6}, {21, 5.5547, 18.5}, {22, 5.8906, 19.7}, {23, 6.2266, 20.9},
    {24, 6.5703, 22.1}, {25, 6.9141, 23.3}, {26, 7.1602, 24.3}, {27, 7.4063, 25.5},
}};

}  // namespace

int mcs_from_snr(double snr_db)
{
    int best = -1;
    for (const auto& e : k_table) {
        if (snr_db >= e.min_snr_db)
            best = e.index;
        else
            break;
    }
    return best;
}

double spectral_efficiency(int mcs)
{
    if (mcs < 0) return 0.0;
    if (mcs >= k_num_mcs) mcs = k_num_mcs - 1;
    return k_table[static_cast<std::size_t>(mcs)].spectral_efficiency;
}

double min_snr_db(int mcs)
{
    if (mcs < 0) return k_table[0].min_snr_db - 1.5;  // below MCS0: no tx
    if (mcs >= k_num_mcs) mcs = k_num_mcs - 1;
    return k_table[static_cast<std::size_t>(mcs)].min_snr_db;
}

std::uint32_t tbs_bytes(int mcs, int n_prb, double overhead)
{
    if (mcs < 0 || n_prb <= 0) return 0;
    const double res = 168.0 * (1.0 - overhead) * n_prb;
    const double bits = res * spectral_efficiency(mcs);
    return static_cast<std::uint32_t>(bits / 8.0);
}

}  // namespace l4span::chan
