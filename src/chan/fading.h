// Per-UE wireless channel: a Gauss-Markov shadowed SNR process whose
// correlation time equals the channel coherence time. Implements
// chan::link_model (the channel_profile knobs live in link_model.h).
#pragma once

#include "chan/link_model.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace l4span::chan {

class fading_channel final : public link_model {
public:
    fading_channel(channel_profile profile, sim::rng rng)
        : profile_(std::move(profile)), rng_(std::move(rng)), snr_db_(profile_.mean_snr_db)
    {
    }

    // SNR at time `t`; advances the process (t must be non-decreasing).
    double snr_db(sim::tick t) override;

    const channel_profile& profile() const override { return profile_; }

private:
    channel_profile profile_;
    sim::rng rng_;
    double snr_db_;
    sim::tick last_ = 0;
    // Memoized OU step coefficients for the last-seen dt (the slot period
    // in steady state, so the exp/sqrt run once, not once per sample).
    sim::tick memo_dt_ = -1;
    double memo_rho_ = 0.0;
    double memo_sigma_ = 0.0;
};

}  // namespace l4span::chan
