// Per-UE wireless channel: a Gauss-Markov shadowed SNR process whose
// correlation time equals the channel coherence time.
//
// The paper's evaluation drives the Amarisoft emulator with static,
// pedestrian and vehicular profiles; we reproduce those knobs. The
// vehicular coherence time (24.9 ms at 3.5 GHz / 70 km/h) matches the
// measurement the paper adopts from Wang et al. [78]; slower motion scales
// coherence inversely with speed.
#pragma once

#include <string>

#include "sim/rng.h"
#include "sim/time.h"

namespace l4span::chan {

struct channel_profile {
    std::string name;
    double mean_snr_db = 22.0;
    double sigma_db = 0.0;        // stddev of the SNR process
    sim::tick coherence = 0;      // correlation time of the process (0 = static)

    static channel_profile static_channel(double mean_snr_db = 13.0);
    static channel_profile pedestrian(double mean_snr_db = 12.5);  // 3 km/h
    static channel_profile vehicular(double mean_snr_db = 12.0);   // 70 km/h
    // "Mobile" in Fig. 9 combines pedestrian- and vehicular-speed channels.
    static channel_profile mobile(double mean_snr_db = 12.2);
};

// Measured vehicular coherence time at 3.5 GHz / 70 km/h [78].
inline constexpr sim::tick k_vehicular_coherence = sim::from_ms(24.9);

class fading_channel {
public:
    fading_channel(channel_profile profile, sim::rng rng)
        : profile_(std::move(profile)), rng_(std::move(rng)), snr_db_(profile_.mean_snr_db)
    {
    }

    // SNR at time `t`; advances the process (t must be non-decreasing).
    double snr_db(sim::tick t);

    const channel_profile& profile() const { return profile_; }

private:
    channel_profile profile_;
    sim::rng rng_;
    double snr_db_;
    sim::tick last_ = 0;
};

}  // namespace l4span::chan
