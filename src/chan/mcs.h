// 5G NR link adaptation: SNR -> MCS -> transport block size.
//
// Spectral efficiencies follow 3GPP TS 38.214 Table 5.1.3.1-2 (256-QAM).
// SNR thresholds are the standard AWGN switching points with a small
// implementation margin; transport block sizing uses the resource-element
// budget of a PRB-slot with typical control/DMRS overhead.
#pragma once

#include <cstdint>

namespace l4span::chan {

inline constexpr int k_num_mcs = 28;

struct mcs_entry {
    int index;
    double spectral_efficiency;  // information bits per resource element
    double min_snr_db;           // lowest SNR at which this MCS meets ~10% BLER
};

// Highest MCS whose SNR threshold is satisfied; -1 when below MCS0 (no tx).
int mcs_from_snr(double snr_db);

double spectral_efficiency(int mcs);

// Lowest SNR at which `mcs` is selected (the table threshold); for -1 (no
// transmission) a value strictly below the MCS0 threshold. Inverse of
// mcs_from_snr in the sense that mcs_from_snr(min_snr_db(m)) == m.
double min_snr_db(int mcs);

// Bytes carried by `n_prb` PRBs in one slot at `mcs`.
// 12 subcarriers x 14 symbols = 168 REs per PRB-slot, with `overhead`
// (DMRS + control) removed.
std::uint32_t tbs_bytes(int mcs, int n_prb, double overhead = 0.14);

}  // namespace l4span::chan
