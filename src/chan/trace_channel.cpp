#include "chan/trace_channel.h"

#include <algorithm>
#include <stdexcept>

#include "chan/fading.h"
#include "sim/rng.h"

namespace l4span::chan {

sim::tick trace_data::effective_duration() const
{
    if (duration > 0) return duration;
    if (records.empty()) return 0;
    const sim::tick last = records.back().timestamp;
    const sim::tick gap = records.size() > 1
                              ? records[1].timestamp - records.front().timestamp
                              : sim::from_us(500);
    return last + (gap > 0 ? gap : sim::from_us(500));
}

void validate_trace_config(const trace_config& cfg)
{
    if (!cfg.data)
        throw std::invalid_argument(
            "trace_config.data is null — load a trace with "
            "chan::load_trace_file(path) or generate one with chan::synth_trace()");
    if (cfg.data->records.empty())
        throw std::invalid_argument(
            "zero-length trace \"" + cfg.data->name +
            "\" — a trace needs at least one DCI record (timestamp,mcs,prbs,tbs)");
    if (!(cfg.time_scale > 0.0))
        throw std::invalid_argument(
            "trace_config.time_scale must be > 0 (got " +
            std::to_string(cfg.time_scale) +
            "; 1.0 = real time, 2.0 = twice as fast, 0.5 = half speed)");
    if (cfg.data->duration > 0 &&
        cfg.data->duration <= cfg.data->records.back().timestamp)
        throw std::invalid_argument(
            "trace \"" + cfg.data->name +
            "\" declares duration <= its last record timestamp — the loop "
            "period must extend past every record (or be 0 to derive it)");
}

trace_channel::trace_channel(trace_config cfg) : cfg_(std::move(cfg))
{
    validate_trace_config(cfg_);
    double snr_sum = 0.0;
    for (const auto& r : cfg_.data->records) snr_sum += min_snr_db(r.mcs);
    profile_.name = cfg_.data->name;
    profile_.mean_snr_db = snr_sum / static_cast<double>(cfg_.data->records.size());
    profile_.sigma_db = 0.0;
    profile_.coherence = 0;
}

const dci_record& trace_channel::record_at(sim::tick t)
{
    const auto& recs = cfg_.data->records;
    if (t <= last_) return recs[cursor_];
    last_ = t;

    sim::tick pos = cfg_.offset +
                    static_cast<sim::tick>(static_cast<double>(t) * cfg_.time_scale);
    if (pos < 0) pos = 0;
    if (cfg_.loop) {
        const sim::tick dur = cfg_.data->effective_duration();
        const std::int64_t lap = pos / dur;
        pos %= dur;
        if (lap != lap_) {  // wrapped: restart the scan from the trace head
            lap_ = lap;
            cursor_ = 0;
        }
    }
    while (cursor_ + 1 < recs.size() && recs[cursor_ + 1].timestamp <= pos) ++cursor_;
    return recs[cursor_];
}

double trace_channel::snr_db(sim::tick t)
{
    return min_snr_db(mcs(t));
}

int trace_channel::mcs(sim::tick t)
{
    return std::clamp(record_at(t).mcs, -1, k_num_mcs - 1);
}

int trace_channel::prb_cap(sim::tick t)
{
    return std::max(0, record_at(t).prbs);
}

trace_data synth_trace(const synth_trace_spec& spec)
{
    channel_profile p;
    p.name = spec.name;
    p.mean_snr_db = spec.mean_snr_db;
    p.sigma_db = spec.sigma_db;
    p.coherence = spec.coherence;
    fading_channel ch(std::move(p), sim::rng(spec.seed));

    trace_data t;
    t.name = spec.name;
    t.records.reserve(spec.slots);
    for (std::size_t i = 0; i < spec.slots; ++i) {
        const sim::tick when = static_cast<sim::tick>(i) * spec.slot;
        const int m = mcs_from_snr(ch.snr_db(when));
        dci_record r;
        r.timestamp = when;
        r.mcs = m;
        r.prbs = spec.prbs;
        r.tbs = tbs_bytes(m, spec.prbs);
        t.records.push_back(r);
    }
    t.duration = static_cast<sim::tick>(spec.slots) * spec.slot;
    return t;
}

}  // namespace l4span::chan
