// Trace codec + recorder for chan::trace_channel.
//
// CSV (human-editable, what NR-Scope post-processing emits):
//   # comment                         — ignored; `# duration_us=N` sets the
//                                       loop period explicitly
//   timestamp_us,mcs,prbs,tbs_bytes   — optional header line, skipped
//   0,15,51,2800
//   500,14,51,2650
// Timestamps are integer microseconds and must be strictly increasing; MCS
// is clamped into [-1, 27] and PRBs into [0, 275]. Anything else —
// malformed fields, out-of-order timestamps, a truncated record — throws
// trace_parse_error naming the offending line, never crashes or hangs.
//
// Binary (.l4dt, lossless nanosecond timestamps): "L4DT" magic, u32
// version, u64 record count, i64 duration_ns, then 24-byte little-endian
// records {i64 timestamp_ns, i32 mcs, i32 prbs, u32 tbs, u32 reserved}.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "chan/trace_channel.h"

namespace l4span::chan {

class trace_parse_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

trace_data parse_trace_csv(std::string_view text, const std::string& name);
std::string to_trace_csv(const trace_data& t);

trace_data parse_trace_binary(const std::uint8_t* data, std::size_t size,
                              const std::string& name);
std::vector<std::uint8_t> to_trace_binary(const trace_data& t);

// Reads `path` and dispatches on content (the "L4DT" magic selects the
// binary codec, anything else parses as CSV). Throws std::invalid_argument
// with the path and the expected formats when the file cannot be opened;
// parse failures propagate as trace_parse_error.
std::shared_ptr<const trace_data> load_trace_file(const std::string& path);

// False on I/O failure (mirrors stats::write_text_file).
bool save_trace_csv(const std::string& path, const trace_data& t);
bool save_trace_binary(const std::string& path, const trace_data& t);

// Captures a live run into replayable traces: plug `on_link_slot` into
// ran::gnb::set_linklog_handler (or any per-slot DCI source). `ue` is a
// caller-defined stream key — a test stitching a UE across an X2/Xn
// handover maps both RNTIs onto one key. Replaying a recorded trace
// through trace_channel reproduces the recorded run bit-identically (see
// ARCHITECTURE.md, "Trace-driven channels").
class trace_recorder {
public:
    void on_link_slot(std::uint32_t ue, sim::tick now, int mcs, int prbs,
                      std::uint32_t tbs);

    std::vector<std::uint32_t> ues() const;  // sorted
    std::size_t records_of(std::uint32_t ue) const;
    // Snapshot of the UE's stream so far; throws std::out_of_range for a
    // key that never logged.
    trace_data trace_of(std::uint32_t ue, std::string name = "recorded") const;

private:
    std::map<std::uint32_t, std::vector<dci_record>> by_ue_;
};

}  // namespace l4span::chan
