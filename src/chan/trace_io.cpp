#include "chan/trace_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "stats/json.h"  // stats::write_text_file

namespace l4span::chan {

namespace {

// Largest microsecond timestamp that survives the *1000 conversion to ticks.
constexpr std::int64_t k_max_timestamp_us = std::int64_t{1} << 52;

[[noreturn]] void fail_line(const std::string& name, std::size_t line,
                            const std::string& what)
{
    throw trace_parse_error("trace \"" + name + "\" line " + std::to_string(line) +
                            ": " + what);
}

// Strict integer field parse: the whole field must be one decimal number.
bool parse_int(std::string_view field, std::int64_t& out)
{
    // Trim ASCII whitespace (CR from CRLF files lands here too).
    while (!field.empty() && (field.front() == ' ' || field.front() == '\t' ||
                              field.front() == '\r'))
        field.remove_prefix(1);
    while (!field.empty() && (field.back() == ' ' || field.back() == '\t' ||
                              field.back() == '\r'))
        field.remove_suffix(1);
    if (field.empty()) return false;
    char buf[32];
    if (field.size() >= sizeof(buf)) return false;
    std::copy(field.begin(), field.end(), buf);
    buf[field.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(buf, &end, 10);
    if (errno != 0 || end != buf + field.size()) return false;
    out = v;
    return true;
}

int clamp_mcs(std::int64_t v)
{
    return static_cast<int>(std::clamp<std::int64_t>(v, -1, k_num_mcs - 1));
}

int clamp_prbs(std::int64_t v)
{
    return static_cast<int>(std::clamp<std::int64_t>(v, 0, k_max_trace_prbs));
}

std::uint32_t clamp_tbs(std::int64_t v)
{
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(v, 0, std::int64_t{0xffffffff}));
}

void require_records(const trace_data& t)
{
    if (t.records.empty())
        throw trace_parse_error("trace \"" + t.name +
                                "\" has no records — a trace needs at least one "
                                "`timestamp_us,mcs,prbs,tbs_bytes` line");
}

// --- binary helpers (explicit little-endian) --------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

constexpr std::size_t k_bin_header = 24;  // magic + version + count + duration
constexpr std::size_t k_bin_record = 24;

}  // namespace

trace_data parse_trace_csv(std::string_view text, const std::string& name)
{
    trace_data t;
    t.name = name;
    std::size_t line_no = 0;
    sim::tick prev_ts = -1;
    while (!text.empty()) {
        ++line_no;
        const std::size_t nl = text.find('\n');
        std::string_view line = text.substr(0, nl);
        text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);

        // Trim and classify.
        while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
            line.remove_suffix(1);
        while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
            line.remove_prefix(1);
        if (line.empty()) continue;
        if (line.front() == '#') {
            const std::string_view directive = "duration_us=";
            const std::size_t at = line.find(directive);
            if (at != std::string_view::npos) {
                std::int64_t us = 0;
                if (!parse_int(line.substr(at + directive.size()), us) || us <= 0 ||
                    us > k_max_timestamp_us)
                    fail_line(name, line_no, "malformed duration_us directive");
                t.duration = us * sim::k_microsecond;
            }
            continue;
        }
        if (line.rfind("timestamp", 0) == 0) continue;  // header line

        std::int64_t field[4];
        std::size_t pos = 0;
        for (int f = 0; f < 4; ++f) {
            const std::size_t comma = line.find(',', pos);
            const bool last = f == 3;
            if (!last && comma == std::string_view::npos)
                fail_line(name, line_no,
                          "expected 4 comma-separated fields "
                          "(timestamp_us,mcs,prbs,tbs_bytes)");
            std::string_view fv = line.substr(
                pos, (last ? line.size() : comma) - pos);
            if (last && fv.find(',') != std::string_view::npos)
                fail_line(name, line_no, "expected 4 fields, got more");
            if (!parse_int(fv, field[f]))
                fail_line(name, line_no,
                          "field " + std::to_string(f + 1) + " is not an integer: \"" +
                              std::string(fv) + "\"");
            pos = comma + 1;
        }
        if (field[0] < 0) fail_line(name, line_no, "negative timestamp");
        if (field[0] > k_max_timestamp_us)
            fail_line(name, line_no, "timestamp_us too large");
        dci_record r;
        r.timestamp = field[0] * sim::k_microsecond;
        if (r.timestamp <= prev_ts)
            fail_line(name, line_no,
                      "timestamps must be strictly increasing (" +
                          std::to_string(field[0]) + " us after " +
                          std::to_string(prev_ts / sim::k_microsecond) + " us)");
        prev_ts = r.timestamp;
        r.mcs = clamp_mcs(field[1]);
        r.prbs = clamp_prbs(field[2]);
        r.tbs = clamp_tbs(field[3]);
        t.records.push_back(r);
    }
    require_records(t);
    if (t.duration > 0 && t.duration <= t.records.back().timestamp)
        throw trace_parse_error("trace \"" + name +
                                "\": duration_us directive must exceed the last "
                                "record timestamp");
    return t;
}

std::string to_trace_csv(const trace_data& t)
{
    std::string out = "# l4span DCI trace: " + t.name + "\n";
    if (t.duration > 0)
        out += "# duration_us=" + std::to_string(t.duration / sim::k_microsecond) + "\n";
    out += "timestamp_us,mcs,prbs,tbs_bytes\n";
    char buf[96];
    for (const auto& r : t.records) {
        std::snprintf(buf, sizeof(buf), "%lld,%d,%d,%lu\n",
                      static_cast<long long>(r.timestamp / sim::k_microsecond), r.mcs,
                      r.prbs, static_cast<unsigned long>(r.tbs));
        out += buf;
    }
    return out;
}

trace_data parse_trace_binary(const std::uint8_t* data, std::size_t size,
                              const std::string& name)
{
    if (size < k_bin_header)
        throw trace_parse_error("trace \"" + name + "\": truncated binary header (" +
                                std::to_string(size) + " bytes, need 24)");
    if (!(data[0] == 'L' && data[1] == '4' && data[2] == 'D' && data[3] == 'T'))
        throw trace_parse_error("trace \"" + name + "\": bad magic (not an L4DT trace)");
    const std::uint32_t version = get_u32(data + 4);
    if (version != 1)
        throw trace_parse_error("trace \"" + name + "\": unsupported version " +
                                std::to_string(version) + " (have 1)");
    // Divide instead of multiplying so an absurd declared count cannot wrap
    // the size check (and then blow up the reserve below).
    const std::uint64_t count = get_u64(data + 8);
    const std::uint64_t payload = size - k_bin_header;
    if (payload % k_bin_record != 0 || count != payload / k_bin_record)
        throw trace_parse_error(
            "trace \"" + name + "\": size mismatch — header declares " +
            std::to_string(count) + " records but the payload holds " +
            std::to_string(payload / k_bin_record));

    trace_data t;
    t.name = name;
    const auto duration = static_cast<sim::tick>(get_u64(data + 16));
    t.duration = duration > 0 ? duration : 0;
    t.records.reserve(count);
    sim::tick prev_ts = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t* p = data + k_bin_header + i * k_bin_record;
        dci_record r;
        r.timestamp = static_cast<sim::tick>(get_u64(p));
        if (r.timestamp < 0)
            throw trace_parse_error("trace \"" + name + "\" record " +
                                    std::to_string(i) + ": negative timestamp");
        if (r.timestamp <= prev_ts)
            throw trace_parse_error("trace \"" + name + "\" record " +
                                    std::to_string(i) +
                                    ": timestamps must be strictly increasing");
        prev_ts = r.timestamp;
        r.mcs = clamp_mcs(static_cast<std::int32_t>(get_u32(p + 8)));
        r.prbs = clamp_prbs(static_cast<std::int32_t>(get_u32(p + 12)));
        r.tbs = get_u32(p + 16);
        t.records.push_back(r);
    }
    require_records(t);
    if (t.duration > 0 && t.duration <= t.records.back().timestamp)
        throw trace_parse_error("trace \"" + name +
                                "\": duration must exceed the last record timestamp");
    return t;
}

std::vector<std::uint8_t> to_trace_binary(const trace_data& t)
{
    std::vector<std::uint8_t> out;
    out.reserve(k_bin_header + t.records.size() * k_bin_record);
    out.push_back('L');
    out.push_back('4');
    out.push_back('D');
    out.push_back('T');
    put_u32(out, 1);
    put_u64(out, t.records.size());
    put_u64(out, static_cast<std::uint64_t>(t.duration));
    for (const auto& r : t.records) {
        put_u64(out, static_cast<std::uint64_t>(r.timestamp));
        put_u32(out, static_cast<std::uint32_t>(r.mcs));
        put_u32(out, static_cast<std::uint32_t>(r.prbs));
        put_u32(out, r.tbs);
        put_u32(out, 0);  // reserved
    }
    return out;
}

std::shared_ptr<const trace_data> load_trace_file(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::invalid_argument(
            "cannot open trace file \"" + path +
            "\" — expected an existing CSV (timestamp_us,mcs,prbs,tbs_bytes) or "
            ".l4dt binary DCI trace; see traces/ for committed examples and "
            "scripts/gen_traces.py to generate more");
    std::string bytes;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);

    // Basename without extension names the trace.
    std::string name = path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);

    if (bytes.rfind("L4DT", 0) == 0)
        return std::make_shared<trace_data>(parse_trace_binary(
            reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size(), name));
    return std::make_shared<trace_data>(parse_trace_csv(bytes, name));
}

bool save_trace_csv(const std::string& path, const trace_data& t)
{
    return stats::write_text_file(path, to_trace_csv(t));
}

bool save_trace_binary(const std::string& path, const trace_data& t)
{
    const auto bytes = to_trace_binary(t);
    return stats::write_text_file(
        path, std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

void trace_recorder::on_link_slot(std::uint32_t ue, sim::tick now, int mcs, int prbs,
                                  std::uint32_t tbs)
{
    dci_record r;
    r.timestamp = now;
    r.mcs = mcs;
    r.prbs = prbs;
    r.tbs = tbs;
    by_ue_[ue].push_back(r);
}

std::vector<std::uint32_t> trace_recorder::ues() const
{
    std::vector<std::uint32_t> out;
    out.reserve(by_ue_.size());
    for (const auto& [ue, recs] : by_ue_) out.push_back(ue);
    return out;
}

std::size_t trace_recorder::records_of(std::uint32_t ue) const
{
    const auto it = by_ue_.find(ue);
    return it == by_ue_.end() ? 0 : it->second.size();
}

trace_data trace_recorder::trace_of(std::uint32_t ue, std::string name) const
{
    const auto it = by_ue_.find(ue);
    if (it == by_ue_.end())
        throw std::out_of_range("trace_recorder: no records for UE key " +
                                std::to_string(ue));
    trace_data t;
    t.name = std::move(name);
    t.records = it->second;
    return t;
}

}  // namespace l4span::chan
