// F1-U downlink data delivery status (3GPP TS 38.425 §5.4).
//
// L4Span uses only the two mandatory fields — the highest transmitted and
// highest delivered PDCP sequence numbers — so it works in both RLC AM and
// UM (§4.3.1 of the paper).
#pragma once

#include "ran/types.h"
#include "sim/time.h"

namespace l4span::ran {

struct dl_delivery_status {
    rnti_t ue = 0;
    drb_id_t drb = 0;
    // Highest PDCP SN handed to MAC/PHY so far (always present).
    pdcp_sn_t highest_transmitted_sn = 0;
    bool has_transmitted = false;
    // Highest PDCP SN confirmed delivered by RLC ACK (AM only).
    pdcp_sn_t highest_delivered_sn = 0;
    bool has_delivered = false;
    // Desired buffer size field (38.425 mandatory): current free SDU slots.
    std::uint32_t desired_buffer_sdus = 0;
    sim::tick timestamp = 0;
};

}  // namespace l4span::ran
