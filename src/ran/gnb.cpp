#include "ran/gnb.h"

#include <cassert>
#include <stdexcept>

namespace l4span::ran {

gnb::gnb(sim::event_loop& loop, gnb_config cfg, sim::rng rng)
    : loop_(loop), cfg_(cfg), rng_(std::move(rng)), allocator_(cfg.mac)
{
}

rnti_t gnb::add_ue(chan::channel_profile profile)
{
    return add_ue_impl(
        std::make_unique<chan::fading_channel>(std::move(profile), rng_.fork()));
}

rnti_t gnb::add_ue(std::unique_ptr<chan::link_model> link)
{
    // A trace-driven link draws no channel randomness of its own; consume
    // the same single fork the fading path does so the gNB's HARQ/uplink
    // RNG stream stays aligned between a recorded run and its replay.
    (void)rng_.fork();
    return add_ue_impl(std::move(link));
}

rnti_t gnb::add_ue_impl(std::unique_ptr<chan::link_model> link)
{
    auto ue = std::make_unique<ue_ctx>(ue_ctx{
        next_rnti_,
        static_cast<std::uint32_t>(ues_.size()),
        std::move(link),
        sdap_entity{},
        {},
        {},
    });
    allocator_.add_ue();
    rnti_slots_.push_back(ue.get());
    ues_.push_back(std::move(ue));
    return next_rnti_++;
}

drb_id_t gnb::add_drb(rnti_t ue, rlc_config cfg)
{
    ue_ctx& u = find_ue(ue);
    const drb_id_t id = static_cast<drb_id_t>(u.drbs.size() + 1);
    drb_ctx d;
    d.id = id;
    d.tx = std::make_unique<rlc_tx>(ue, id, cfg, pool_);
    d.rx = std::make_unique<rlc_rx>(cfg.mode, pool_);

    rlc_tx* tx = d.tx.get();
    rlc_rx* rx = d.rx.get();
    const rnti_t rnti = ue;

    // Handlers that can fire from deferred events resolve the (RNTI, DRB)
    // pair at fire time instead of capturing entity pointers: a handover may
    // have detached the UE (and destroyed the entities) in between, in which
    // case the straggler is dropped — its data was forwarded in the handover
    // context.

    // F1-U: DU -> CU delivery status, with the configured interface latency.
    tx->set_status_handler([this](const dl_delivery_status& st) {
        if (!hook_) return;
        if (cfg_.f1u_latency <= 0) {
            hook_->on_delivery_status(st, loop_.now());
        } else {
            loop_.schedule_after(cfg_.f1u_latency, [this, st] {
                if (hook_ && has_ue(st.ue)) hook_->on_delivery_status(st, loop_.now());
            });
        }
    });
    if (on_delay_) tx->set_delay_handler(on_delay_);
    tx->set_discard_handler([this, rnti, id](pdcp_sn_t sn, sim::tick now) {
        if (ue_ctx* u = try_ue(rnti))
            if (drb_ctx* dc = try_drb(*u, id)) dc->rx->skip(sn, now);
        if (hook_) hook_->on_dl_discard(rnti, id, sn, now);
        if (tracer_)
            tracer_->emit(now, obs::point::rlc_discard, obs::reason::queue_overflow,
                          (static_cast<std::uint32_t>(rnti) << 8) | id, sn);
    });

    // UE-side in-order delivery up the stack.
    rx->set_deliver_handler([this, rnti, id](net::packet pkt, sim::tick now) {
        if (tracer_) {
            tracer_->emit(now, obs::point::rlc_deliver, obs::reason::none,
                          (static_cast<std::uint32_t>(rnti) << 8) | id,
                          (pkt.flow_id << 32) | (pkt.pkt_id & 0xffffffffull),
                          pkt.payload_bytes);
            if (tracer_->wants_flow(pkt.flow_id))
                tracer_->emit(now, obs::point::lifecycle, obs::reason::none,
                              (static_cast<std::uint32_t>(rnti) << 8) | id,
                              pkt.pkt_id, pkt.payload_bytes);
        }
        if (on_deliver_) on_deliver_(rnti, id, std::move(pkt), now);
    });
    // RLC ACK: UE -> DU status report rides the next UL opportunity.
    rx->set_ack_handler([this, rnti, id](pdcp_sn_t ack_sn, sim::tick) {
        const sim::tick period = cfg_.mac.slot * cfg_.mac.tdd_period_slots;
        const sim::tick wait = period - (loop_.now() % period);  // next UL slot
        loop_.schedule_after(wait, [this, rnti, id, ack_sn] {
            if (ue_ctx* u = try_ue(rnti))
                if (drb_ctx* dc = try_drb(*u, id))
                    dc->tx->on_delivery_confirmed(ack_sn, loop_.now());
        });
    });

    u.drbs.push_back(std::move(d));
    if (u.drbs.size() == 1) u.sdap.set_default_drb(id);
    return id;
}

void gnb::map_qos_flow(rnti_t ue, qfi_t qfi, drb_id_t drb)
{
    find_ue(ue).sdap.map(qfi, drb);
}

ue_handover_context gnb::detach_ue(rnti_t ue)
{
    ue_ctx& u = find_ue(ue);
    ue_handover_context ctx;
    ctx.profile = u.channel->profile();
    // A trace replay's cursor must continue at the target cell; a fading
    // realization is re-drawn there (new cell, new radio link).
    if (u.channel->migrates_on_handover()) ctx.link = std::move(u.channel);
    ctx.qfi_map = u.sdap.export_mappings();
    for (auto& d : u.drbs) {
        ue_handover_context::drb_context dc;
        dc.id = d.id;
        dc.cfg = d.tx->config();
        dc.pdcp_next_sn = d.pdcp.next_sn();
        dc.tx = d.tx->export_context();
        dc.rx = d.rx->export_context();
        ctx.drbs.push_back(std::move(dc));
    }
    // The dense scheduler slot stays (tombstone) so PRB-allocator indexing
    // is stable; the RNTI stops resolving and is never reused.
    u.drbs.clear();
    for (auto& tb : u.pending_retx) release_chunks(tb.chunks);
    u.pending_retx.clear();
    u.active = false;
    u.in_outage = false;
    u.harq_fail_streak = 0;
    u.rlf_declared = false;
    if (u.rlf_timer_id) {
        loop_.cancel(u.rlf_timer_id);
        u.rlf_timer_id = 0;
    }
    rnti_slots_[ue - 1] = nullptr;
    return ctx;
}

rnti_t gnb::attach_ue(ue_handover_context ctx)
{
    const rnti_t rnti = ctx.link ? add_ue(std::move(ctx.link)) : add_ue(ctx.profile);
    ue_ctx& u = find_ue(rnti);
    for (auto& dc : ctx.drbs) {
        const drb_id_t id = add_drb(rnti, dc.cfg);
        // add_drb assigns ids sequentially from 1, exactly how the source
        // cell created them, so the context's ids line up.
        if (id != dc.id) throw std::logic_error("handover context DRB id mismatch");
        drb_ctx& d = *try_drb(u, id);
        d.pdcp.restore(dc.pdcp_next_sn);
        d.tx->restore(std::move(dc.tx), loop_.now());
        d.rx->restore(dc.rx);
    }
    for (const auto& [qfi, drb] : ctx.qfi_map) u.sdap.map(qfi, drb);
    return rnti;
}

void gnb::begin_outage(rnti_t ue)
{
    ue_ctx* up = try_ue(ue);
    if (!up || up->in_outage) return;  // detached meanwhile, or already failing
    ue_ctx& u = *up;
    u.in_outage = true;
    u.harq_fail_streak = 0;
    // Supervision-timer fallback (T310-style): a UE with no downlink
    // backlog produces no HARQ evidence, so radio-link monitoring declares
    // the failure after the timer. HARQ failures usually beat it.
    const rnti_t rnti = u.rnti;
    u.rlf_timer_id = loop_.schedule_after(cfg_.rlf_timer, [this, rnti] {
        if (ue_ctx* uc = try_ue(rnti)) {
            uc->rlf_timer_id = 0;
            declare_rlf(*uc);
        }
    });
}

void gnb::end_outage(rnti_t ue)
{
    ue_ctx* up = try_ue(ue);
    if (!up || !up->in_outage) return;  // RLF detection already detached it
    ue_ctx& u = *up;
    u.in_outage = false;
    u.harq_fail_streak = 0;
    if (u.rlf_timer_id) {
        loop_.cancel(u.rlf_timer_id);
        u.rlf_timer_id = 0;
    }
    // A declared-but-not-yet-detached UE stays declared: the RLF handler's
    // re-establishment is already in flight and owns the recovery.
}

bool gnb::in_outage(rnti_t ue)
{
    ue_ctx* up = try_ue(ue);
    return up && up->in_outage;
}

void gnb::declare_rlf(ue_ctx& u)
{
    if (u.rlf_declared) return;
    u.rlf_declared = true;
    if (tracer_)
        tracer_->emit(loop_.now(), obs::point::rlf_declared, obs::reason::none,
                      static_cast<std::uint32_t>(u.rnti) << 8,
                      static_cast<std::uint64_t>(u.harq_fail_streak));
    if (u.rlf_timer_id) {
        loop_.cancel(u.rlf_timer_id);
        u.rlf_timer_id = 0;
    }
    if (!on_rlf_) return;
    // Fire from a fresh event: the declaration can come from the middle of
    // conclude_tb, and the handler will typically detach the UE (destroying
    // the bearer entities around the caller's feet).
    const rnti_t rnti = u.rnti;
    loop_.schedule_after(0, [this, rnti] {
        if (try_ue(rnti) && on_rlf_) on_rlf_(rnti, loop_.now());
    });
}

std::size_t gnb::active_ues() const
{
    std::size_t n = 0;
    for (const auto& u : ues_)
        if (u->active) ++n;
    return n;
}

std::vector<rnti_t> gnb::active_rntis() const
{
    std::vector<rnti_t> out;
    for (const auto& u : ues_)
        if (u->active) out.push_back(u->rnti);
    return out;
}

void gnb::set_delay_handler(rlc_tx::delay_handler h)
{
    on_delay_ = std::move(h);
    for (auto& u : ues_)
        for (auto& d : u->drbs) d.tx->set_delay_handler(on_delay_);
}

void gnb::start()
{
    if (started_) return;
    started_ = true;
    loop_.schedule_after(cfg_.mac.slot, [this] { on_slot(); });
}

void gnb::deliver_downlink(net::packet pkt, rnti_t ue, qfi_t qfi)
{
    // A packet can race a handover (already in the core hop when the UE was
    // detached): it is lost here, like a late X2 forward in a real deployment.
    ue_ctx* up = try_ue(ue);
    if (!up) return;
    ue_ctx& u = *up;
    const drb_id_t drb_id = u.sdap.lookup(qfi);
    drb_ctx& d = find_drb(u, drb_id);
    const sim::tick now = loop_.now();
    pkt.ran_ingress = now;
    const std::uint32_t bearer = (static_cast<std::uint32_t>(ue) << 8) |
                                 static_cast<std::uint32_t>(drb_id);
    if (tracer_)
        tracer_->emit(now, obs::point::sdap_ingress, obs::reason::none, bearer,
                      pkt.flow_id, pkt.pkt_id);

    // Admission check before PDCP SN assignment keeps the SN space hole-free
    // (mirrors PDCP discarding when the RLC SDU queue is full).
    if (!d.tx->has_room()) {
        if (tracer_)
            tracer_->emit(now, obs::point::rlc_discard, obs::reason::rlc_full,
                          bearer, pkt.flow_id, pkt.pkt_id);
        return;
    }

    const pdcp_sn_t sn = d.pdcp.next_sn();
    if (hook_ && !hook_->on_dl_packet(pkt, ue, drb_id, sn, now)) {  // drop feedback
        if (tracer_)
            tracer_->emit(now, obs::point::rlc_discard, obs::reason::hook_drop,
                          bearer, pkt.flow_id, pkt.pkt_id);
        return;
    }
    if (tracer_) {
        tracer_->emit(now, obs::point::rlc_enqueue, obs::reason::none, bearer, sn,
                      (pkt.flow_id << 32) | (pkt.pkt_id & 0xffffffffull));
        if (tracer_->wants_flow(pkt.flow_id))
            tracer_->emit(now, obs::point::lifecycle, obs::reason::none, bearer,
                          pkt.pkt_id, sn);
    }
    d.tx->enqueue(d.pdcp.wrap(std::move(pkt), now), now);
}

void gnb::send_uplink(rnti_t ue, net::packet pkt)
{
    // Uplink is uncongested in this model: the packet waits for the next UL
    // TDD opportunity plus bounded scheduling jitter, then reaches the CU.
    // Release times are kept monotone per UE (a UL grant carries the ACK
    // stream in order).
    ue_ctx* up = try_ue(ue);
    if (!up) return;  // detached mid-handover: the uplink packet is lost
    ue_ctx& u = *up;
    if (u.in_outage) return;  // radio blackout: the uplink is dead too
    if (tracer_)
        tracer_->emit(loop_.now(), obs::point::ul_ingress, obs::reason::none,
                      static_cast<std::uint32_t>(ue) << 8, pkt.flow_id, pkt.pkt_id);
    const sim::tick period = cfg_.mac.slot * cfg_.mac.tdd_period_slots;
    const sim::tick wait = period - (loop_.now() % period);
    const sim::tick jitter =
        static_cast<sim::tick>(rng_.uniform(0.0, static_cast<double>(cfg_.ul_proc_jitter)));
    sim::tick release = loop_.now() + wait + jitter;
    if (release <= u.last_ul_release) release = u.last_ul_release + sim::k_microsecond;
    u.last_ul_release = release;
    loop_.schedule_at(release, [this, ue, pkt = std::move(pkt)]() mutable {
        if (hook_ && !hook_->on_ul_packet(pkt, ue, loop_.now())) return;
        // CU -> core hop.
        loop_.schedule_after(cfg_.core_latency, [this, ue, pkt = std::move(pkt)]() mutable {
            if (on_uplink_) on_uplink_(ue, std::move(pkt), loop_.now());
        });
    });
}

bool gnb::is_dl_slot(std::uint64_t slot_idx, double& capacity_factor) const
{
    const int pos = static_cast<int>(slot_idx % static_cast<std::uint64_t>(
                                                    cfg_.mac.tdd_period_slots));
    if (pos < cfg_.mac.tdd_dl_slots) {
        capacity_factor = 1.0;
        return true;
    }
    if (pos == cfg_.mac.tdd_dl_slots) {  // special slot
        capacity_factor = cfg_.mac.special_slot_factor;
        return cfg_.mac.special_slot_factor > 0.0;
    }
    return false;  // UL slot
}

void gnb::on_slot()
{
    const sim::tick now = loop_.now();
    ++slot_count_;
    double cap_factor = 0.0;
    const bool dl = is_dl_slot(slot_count_, cap_factor);

    if (dl) {
        int available_prb = cfg_.mac.n_prb;

        // HARQ retransmissions claim the slot first. conclude_tb never
        // pushes into pending_retx synchronously (retransmissions arrive
        // via a scheduled HARQ-RTT event), so iterating in place is safe
        // and keeps the deque's capacity instead of churning it per slot.
        for (auto& u : ues_) {
            if (u->pending_retx.empty()) continue;
            for (auto& tb : u->pending_retx) {
                available_prb -= tb.prbs;
                conclude_tb(std::move(tb));
            }
            u->pending_retx.clear();
        }
        if (available_prb < 0) available_prb = 0;

        // Collect backlogged UEs and their current link quality into
        // per-slot scratch members (no allocation in the steady state).
        std::vector<sched_input>& inputs = sched_inputs_;
        std::vector<ue_ctx*>& who = sched_who_;
        std::vector<int>& mcs_of = sched_mcs_;  // per-`who` entry, for the DCI link log
        inputs.clear();
        who.clear();
        mcs_of.clear();
        const double eff_re = 168.0 * (1.0 - 0.14) * cap_factor;
        for (auto& u : ues_) {
            if (!u->active) continue;  // detached tombstone: no bearers
            std::uint64_t backlog = 0;
            for (auto& d : u->drbs) backlog += d.tx->backlog_bytes();
            if (backlog == 0) continue;
            const int mcs = u->channel->mcs(now);
            if (mcs < 0) {
                // Below MCS0: the query still happened, so a recording must
                // carry it for the replay to consult the trace identically.
                if (on_linklog_) on_linklog_(u->rnti, now, mcs, 0, 0);
                continue;
            }
            sched_input si;
            si.ue_index = u->index;
            si.backlog_bytes = backlog;
            si.bytes_per_prb = eff_re * chan::spectral_efficiency(mcs) / 8.0;
            inputs.push_back(si);
            who.push_back(u.get());
            mcs_of.push_back(mcs);
        }

        allocator_.allocate(inputs, available_prb, sched_grants_);
        const std::vector<int>& grants = sched_grants_;

        for (std::size_t i = 0; i < who.size(); ++i) {
            ue_ctx& u = *who[i];
            int prbs = grants[i];
            // A DCI replay cannot grant more PRBs than the recorded slot
            // carried; fading channels return -1 (no cap).
            const int cap = u.channel->prb_cap(now);
            if (cap >= 0 && prbs > cap) prbs = cap;
            double served = 0.0;
            if (prbs > 0) {
                std::uint32_t grant_bytes =
                    static_cast<std::uint32_t>(inputs[i].bytes_per_prb * prbs);
                // Logical-channel prioritization: split the grant evenly
                // across backlogged DRBs, rotating the order per slot so no
                // bearer is systematically favoured; leftover bytes spill to
                // whichever bearer still has data.
                std::vector<drb_ctx*>& active = drb_active_;
                active.clear();
                for (auto& d : u.drbs)
                    if (d.tx->backlog_bytes() > 0) active.push_back(&d);
                const std::size_t n = active.size();
                for (std::size_t k = 0; k < 2 * n && grant_bytes > 0; ++k) {
                    drb_ctx& d = *active[(slot_count_ + k) % n];
                    if (d.tx->backlog_bytes() == 0) continue;
                    const std::uint32_t share =
                        k < n ? std::max<std::uint32_t>(
                                    1, grant_bytes / static_cast<std::uint32_t>(n - k))
                              : grant_bytes;
                    auto chunks = take_chunk_vec();
                    d.tx->pull(std::min(share, grant_bytes), now, chunks);
                    std::uint32_t used = 0;
                    for (const auto& c : chunks) used += c.bytes;
                    grant_bytes -= used;
                    served += used;
                    if (!chunks.empty()) {
                        if (on_txlog_) on_txlog_(u.rnti, d.id, used, now);
                        transmit_tb(u, d, std::move(chunks), used, prbs, 1);
                    } else {
                        give_chunk_vec(std::move(chunks));
                    }
                }
            }
            allocator_.update_average(u.index, served);
            if (on_linklog_)
                on_linklog_(u.rnti, now, mcs_of[i], prbs,
                            static_cast<std::uint32_t>(served));
        }
        // UEs not considered this slot (no backlog) still age their PF average.
        considered_scratch_.assign(ues_.size(), 0);
        for (const auto* w : who) considered_scratch_[w->index] = 1;
        for (auto& u : ues_)
            if (!considered_scratch_[u->index]) allocator_.update_average(u->index, 0.0);
    }

    loop_.schedule_after(cfg_.mac.slot, [this] { on_slot(); });
}

void gnb::transmit_tb(ue_ctx& ue, drb_ctx& drb, std::vector<tb_chunk> chunks,
                      std::uint32_t bytes, int prbs, int attempt)
{
    if (tracer_) {
        const std::uint32_t bearer = (static_cast<std::uint32_t>(ue.rnti) << 8) |
                                     static_cast<std::uint32_t>(drb.id);
        const sim::tick now = loop_.now();
        for (const auto& c : chunks) {
            tracer_->emit(now, obs::point::mac_tx,
                          c.is_retx ? obs::reason::harq_retx : obs::reason::none,
                          bearer, c.sn, c.bytes);
            // Lifecycle mode: the final chunk carries the SDU's pool handle,
            // the stable identity of the packet across RLC/HARQ hops.
            if (c.pkt && tracer_->wants_flow(pool_.at(c.pkt).flow_id))
                tracer_->emit(now, obs::point::lifecycle, obs::reason::none,
                              bearer, pool_.at(c.pkt).pkt_id, c.pkt.slot);
        }
    }
    harq_tb tb;
    tb.ue = ue.rnti;
    tb.drb = drb.id;
    tb.bytes = bytes;
    tb.prbs = prbs;
    tb.attempt = attempt;
    tb.chunks = std::move(chunks);
    conclude_tb(std::move(tb));
}

void gnb::release_chunks(std::vector<tb_chunk>& chunks)
{
    for (auto& c : chunks)
        if (c.pkt) {
            pool_.release(c.pkt);
            c.pkt = {};
        }
    give_chunk_vec(std::move(chunks));
}

std::vector<tb_chunk> gnb::take_chunk_vec()
{
    if (chunk_vec_pool_.empty()) return {};
    std::vector<tb_chunk> v = std::move(chunk_vec_pool_.back());
    chunk_vec_pool_.pop_back();
    return v;
}

void gnb::give_chunk_vec(std::vector<tb_chunk> v)
{
    if (chunk_vec_pool_.size() >= 64) return;  // cap the recycler
    v.clear();
    chunk_vec_pool_.push_back(std::move(v));
}

void gnb::conclude_tb(harq_tb tb)
{
    // The UE may have been detached (handover) while this TB was in flight;
    // its SDUs were forwarded in the handover context, so drop the straggler
    // (releasing the chunks' packet references).
    ue_ctx* u = try_ue(tb.ue);
    if (!u) {
        release_chunks(tb.chunks);
        return;
    }
    bool decoded;
    if (u->in_outage) {
        // Radio blackout: every TB fails, without consuming an RNG draw so
        // other UEs' HARQ randomness is undisturbed. Consecutive failed
        // conclusions are the out-of-sync evidence RLF detection counts.
        decoded = false;
        if (++u->harq_fail_streak >= cfg_.rlf_consecutive_harq) declare_rlf(*u);
    } else {
        const double bler =
            tb.attempt == 1 ? cfg_.mac.initial_bler : cfg_.mac.retx_bler;
        decoded = !rng_.bernoulli(bler);
        if (decoded) u->harq_fail_streak = 0;
    }
    if (tracer_) {
        obs::reason r = obs::reason::harq_ok;
        if (!decoded)
            r = u->in_outage                     ? obs::reason::outage
                : tb.attempt >= cfg_.mac.max_harq_tx ? obs::reason::harq_fail
                                                     : obs::reason::harq_retx;
        tracer_->emit(loop_.now(), obs::point::harq_conclude, r,
                      (static_cast<std::uint32_t>(tb.ue) << 8) |
                          static_cast<std::uint32_t>(tb.drb),
                      static_cast<std::uint64_t>(tb.attempt), tb.bytes);
    }
    if (decoded) {
        // Decoded: the UE's RLC sees the chunks after the over-the-air delay.
        // The receive entity takes over each chunk's packet reference; if the
        // UE vanished meanwhile the references are released here.
        loop_.schedule_after(
            cfg_.mac.ota_delay,
            [this, rnti = tb.ue, drb = tb.drb, chunks = std::move(tb.chunks)]() mutable {
                ue_ctx* uc = try_ue(rnti);
                drb_ctx* dc = uc ? try_drb(*uc, drb) : nullptr;
                if (!dc) {
                    release_chunks(chunks);
                    return;
                }
                for (auto& c : chunks) dc->rx->on_chunk(c, loop_.now());
                give_chunk_vec(std::move(chunks));
            });
        return;
    }
    if (tb.attempt >= cfg_.mac.max_harq_tx) {
        // HARQ exhausted: RLC AM requeues (from its retention window), UM
        // loses the data; either way the chunks' own references die here.
        find_drb(*u, tb.drb).tx->on_tb_lost(tb.chunks, loop_.now());
        release_chunks(tb.chunks);
        return;
    }
    // Schedule the retransmission one HARQ RTT later; it claims PRBs in the
    // first DL slot at or after that time.
    tb.attempt += 1;
    loop_.schedule_after(cfg_.mac.harq_rtt, [this, tb = std::move(tb)]() mutable {
        if (ue_ctx* uc = try_ue(tb.ue))
            uc->pending_retx.push_back(std::move(tb));
        else
            release_chunks(tb.chunks);
    });
}

rlc_tx& gnb::rlc(rnti_t ue, drb_id_t drb)
{
    return *find_drb(find_ue(ue), drb).tx;
}

const rlc_tx& gnb::rlc(rnti_t ue, drb_id_t drb) const
{
    return *const_cast<gnb*>(this)->find_drb(const_cast<gnb*>(this)->find_ue(ue), drb).tx;
}

double gnb::current_snr_db(rnti_t ue)
{
    return find_ue(ue).channel->snr_db(loop_.now());
}

int gnb::current_mcs(rnti_t ue)
{
    return chan::mcs_from_snr(current_snr_db(ue));
}

std::size_t gnb::resident_state_bytes() const
{
    std::size_t total = 0;
    for (const auto& u : ues_) {
        total += sizeof(ue_ctx);
        for (const auto& d : u->drbs) {
            total += sizeof(drb_ctx);
            total += d.tx->queued_sdus() * (sizeof(pdcp_sdu) + sizeof(net::packet));
        }
    }
    return total;
}

gnb::ue_ctx& gnb::find_ue(rnti_t ue)
{
    ue_ctx* u = try_ue(ue);
    if (!u) throw std::out_of_range("unknown rnti");
    return *u;
}

gnb::ue_ctx* gnb::try_ue(rnti_t ue)
{
    if (ue < 1 || static_cast<std::size_t>(ue) > rnti_slots_.size()) return nullptr;
    return rnti_slots_[ue - 1];
}

gnb::drb_ctx& gnb::find_drb(ue_ctx& ue, drb_id_t id)
{
    drb_ctx* d = try_drb(ue, id);
    if (!d) throw std::out_of_range("unknown drb");
    return *d;
}

gnb::drb_ctx* gnb::try_drb(ue_ctx& ue, drb_id_t id)
{
    for (auto& d : ue.drbs)
        if (d.id == id) return &d;
    return nullptr;
}

}  // namespace l4span::ran
