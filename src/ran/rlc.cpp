#include "ran/rlc.h"

#include <algorithm>

namespace l4span::ran {

bool rlc_tx::enqueue(pdcp_sdu sdu, sim::tick now)
{
    if (!has_room()) {
        ++drops_;
        return false;
    }
    queued_sdu q;
    q.sn = sdu.sn;
    q.size = sdu.size;
    q.ingress_time = sdu.ingress_time;
    q.pkt = pool_.put(std::move(sdu.pkt));
    if (queue_.empty() && retx_queue_.empty()) q.head_time = now;
    fresh_bytes_ += q.size;
    queue_.push_back(q);
    return true;
}

void rlc_tx::pull(std::uint32_t grant_bytes, sim::tick now, std::vector<tb_chunk>& out)
{
    std::uint32_t remaining = grant_bytes;
    bool txed_any = false;

    // Retransmissions first (standard RLC AM behaviour).
    while (remaining > 0 && !retx_queue_.empty()) {
        retx_sdu& r = retx_queue_.front();
        const std::uint32_t left = r.size - r.sent;
        const std::uint32_t take = std::min(left, remaining);
        tb_chunk c;
        c.sn = r.sn;
        c.bytes = take;
        c.sdu_total = r.size;
        c.is_retx = true;
        c.carries_last = (r.sent + take == r.size);
        r.sent += take;
        remaining -= take;
        retx_bytes_ -= take;
        total_txed_bytes_ += take;
        if (c.carries_last) {
            // The chunk and the ARQ retention window share the slot.
            pool_.add_ref(r.pkt);
            c.pkt = r.pkt;
            awaiting_delivery_.get_or_create(r.sn) = {r.pkt, r.retx_count};
            retx_queue_.pop_front();
        }
        out.push_back(c);
        txed_any = true;
    }

    while (remaining > 0 && !queue_.empty()) {
        queued_sdu& q = queue_.front();
        if (q.head_time < 0) q.head_time = now;
        const std::uint32_t left = q.size - q.sent;
        const std::uint32_t take = std::min(left, remaining);
        tb_chunk c;
        c.sn = q.sn;
        c.bytes = take;
        c.sdu_total = q.size;
        c.carries_last = (q.sent + take == q.size);
        q.sent += take;
        remaining -= take;
        fresh_bytes_ -= take;
        total_txed_bytes_ += take;
        if (c.carries_last) {
            if (on_delay_) {
                sdu_delay_report rep;
                rep.sn = q.sn;
                rep.queuing = std::max<sim::tick>(0, q.head_time - q.ingress_time);
                rep.scheduling = std::max<sim::tick>(0, now - q.head_time);
                on_delay_(rep);
            }
            highest_txed_ = q.sn;
            any_txed_ = true;
            c.pkt = q.pkt;
            if (cfg_.mode == rlc_mode::am) {
                // Chunk + retention window share the slot; UM hands the
                // queue's only reference to the chunk.
                pool_.add_ref(q.pkt);
                awaiting_delivery_.get_or_create(q.sn) = {q.pkt, q.retx_count};
            }
            queue_.pop_front();
            if (!queue_.empty()) queue_.front().head_time = now;
        }
        out.push_back(c);
        txed_any = true;
    }

    if (txed_any) emit_status(now);
}

rlc_tx::context rlc_tx::export_context()
{
    context ctx;
    ctx.delivered_watermark = delivered_watermark_;
    ctx.any_delivered = any_delivered_;

    // Unacknowledged SDUs: fully transmitted awaiting RLC ACK, plus pending
    // ARQ retransmissions. Sorted by SN so the target retransmits in order
    // (the awaiting ring iterates in SN order already; retx entries are
    // merged in — a deterministic export order is what keeps sharded runs
    // byte-identical).
    std::vector<pdcp_sdu> unacked;
    unacked.reserve(awaiting_delivery_.size() + retx_queue_.size());
    awaiting_delivery_.for_each([&](pdcp_sn_t sn, awaiting_sdu& entry) {
        pdcp_sdu s;
        s.sn = sn;
        s.pkt = pool_.take(entry.pkt);  // in-flight chunks may still share it
        s.size = s.pkt.size_bytes();
        unacked.push_back(std::move(s));
    });
    for (auto& r : retx_queue_) {
        pdcp_sdu s;
        s.sn = r.sn;
        s.pkt = pool_.take(r.pkt);
        s.size = r.size;
        unacked.push_back(std::move(s));
    }
    std::sort(unacked.begin(), unacked.end(),
              [](const pdcp_sdu& a, const pdcp_sdu& b) { return a.sn < b.sn; });
    ctx.forwarded = std::move(unacked);
    // Fresh queue behind them, already in SN order. A partially pulled head
    // SDU is forwarded whole and re-sent from scratch by the target.
    for (auto& q : queue_) {
        pdcp_sdu s;
        s.sn = q.sn;
        s.pkt = pool_.take(q.pkt);
        s.size = q.size;
        s.ingress_time = q.ingress_time;
        ctx.forwarded.push_back(std::move(s));
    }

    queue_.clear();
    retx_queue_.clear();
    awaiting_delivery_.clear();
    fresh_bytes_ = 0;
    retx_bytes_ = 0;
    return ctx;
}

void rlc_tx::restore(context ctx, sim::tick now)
{
    delivered_watermark_ = ctx.delivered_watermark;
    any_delivered_ = ctx.any_delivered;
    for (auto& s : ctx.forwarded) {
        queued_sdu q;
        q.sn = s.sn;
        q.size = s.size;
        q.ingress_time = now;  // re-enqueued at the target cell
        q.pkt = pool_.put(std::move(s.pkt));
        if (queue_.empty()) q.head_time = now;
        fresh_bytes_ += q.size;
        queue_.push_back(q);
    }
}

void rlc_tx::on_tb_lost(const std::vector<tb_chunk>& chunks, sim::tick now)
{
    if (cfg_.mode == rlc_mode::um) return;  // UM: lost is lost
    for (const auto& c : chunks) {
        // Retransmit the whole SDU (segment-level NACK granularity is below
        // the fidelity the queueing model needs). Only the chunk carrying
        // the last byte maps to a retention-window entry.
        if (!c.carries_last) continue;
        awaiting_sdu* e = awaiting_delivery_.find(c.sn);
        if (!e) continue;  // already confirmed/requeued
        const int prior_retx = e->retx_count;
        if (prior_retx + 1 > cfg_.max_rlc_retx) {
            // Give up: PDCP-level discard. The SN hole is reported so the
            // receive side and L4Span can reconcile.
            if (on_discard_) on_discard_(c.sn, now);
            pool_.release(e->pkt);
            awaiting_delivery_.erase(c.sn);
            continue;
        }
        retx_sdu r;
        r.pkt = e->pkt;  // the retention reference moves to the retx queue
        r.sn = c.sn;
        r.size = c.sdu_total;
        r.retx_count = prior_retx + 1;
        retx_bytes_ += r.size;
        retx_queue_.push_back(r);
        awaiting_delivery_.erase(c.sn);
    }
}

void rlc_tx::on_delivery_confirmed(pdcp_sn_t ack_sn, sim::tick now)
{
    if (cfg_.mode == rlc_mode::um) return;
    if (any_delivered_ && ack_sn <= delivered_watermark_) return;
    // Release retained packets up to the cumulative ACK. SNs below the
    // watermark can never re-enter the window (a lost SN awaiting
    // retransmission blocks the receive-side watermark), so the ring base
    // advances with the ACK.
    const pdcp_sn_t from = any_delivered_ ? delivered_watermark_ + 1 : 1;
    for (pdcp_sn_t sn = from; sn <= ack_sn; ++sn)
        if (awaiting_sdu* e = awaiting_delivery_.find(sn)) {
            pool_.release(e->pkt);
            awaiting_delivery_.erase(sn);
        }
    awaiting_delivery_.advance_to(ack_sn + 1);
    delivered_watermark_ = ack_sn;
    any_delivered_ = true;
    emit_status(now);
}

void rlc_tx::emit_status(sim::tick now)
{
    if (!on_status_) return;
    dl_delivery_status st;
    st.ue = ue_;
    st.drb = drb_;
    st.highest_transmitted_sn = highest_txed_;
    st.has_transmitted = any_txed_;
    st.highest_delivered_sn = delivered_watermark_;
    st.has_delivered = any_delivered_ && cfg_.mode == rlc_mode::am;
    st.desired_buffer_sdus =
        static_cast<std::uint32_t>(cfg_.max_queue_sdus > queue_.size()
                                       ? cfg_.max_queue_sdus - queue_.size()
                                       : 0);
    st.timestamp = now;
    on_status_(st);
}

void rlc_rx::on_chunk(const tb_chunk& chunk, sim::tick now)
{
    if (chunk.sn < next_expected_) {
        // Duplicate / already skipped: drop the chunk's reference.
        if (chunk.pkt) pool_.release(chunk.pkt);
        return;
    }
    pending_sdu& p = window_.get_or_create(chunk.sn);
    p.total = chunk.sdu_total;
    p.received += chunk.bytes;
    if (chunk.carries_last && chunk.pkt) {
        if (p.pkt) pool_.release(p.pkt);  // duplicate final segment
        p.pkt = chunk.pkt;
    }
    drain(now);
}

void rlc_rx::skip(pdcp_sn_t sn, sim::tick now)
{
    if (sn < next_expected_) return;
    pending_sdu& p = window_.get_or_create(sn);
    if (p.pkt) pool_.release(p.pkt);
    p = pending_sdu{};
    p.skipped = true;
    drain(now);
}

rlc_rx::context rlc_rx::export_context()
{
    context ctx;
    ctx.next_expected = next_expected_;
    // for_each visits in SN order, so the skipped list comes out sorted.
    window_.for_each([&](pdcp_sn_t sn, pending_sdu& p) {
        if (p.skipped)
            ctx.skipped.push_back(sn);
        else if (p.pkt)
            pool_.release(p.pkt);  // partial state is flushed at handover
    });
    window_.clear();
    um_gap_deadline_ = -1;
    return ctx;
}

void rlc_rx::restore(const context& ctx)
{
    next_expected_ = ctx.next_expected;
    window_.advance_to(next_expected_);
    for (const pdcp_sn_t sn : ctx.skipped) window_.get_or_create(sn).skipped = true;
    um_gap_deadline_ = -1;
}

void rlc_rx::drain(sim::tick now)
{
    // Deliver in order from next_expected_, hopping over discarded SNs. UM
    // additionally skips a blocking gap once the reassembly timer expires.
    bool advanced = false;
    for (;;) {
        pending_sdu* p = window_.find(next_expected_);
        if (p && p->skipped) {
            if (p->pkt) pool_.release(p->pkt);
            window_.erase(next_expected_);
            ++next_expected_;
            advanced = true;
            continue;
        }
        const bool blocked = !p || p->received < p->total || !p->pkt;
        if (blocked) {
            if (mode_ != rlc_mode::um || window_.empty()) break;
            if (um_gap_deadline_ < 0) {
                um_gap_deadline_ = now + k_t_reassembly;
                break;
            }
            if (now < um_gap_deadline_) break;
            // t-Reassembly expired: the hole is declared lost.
            if (p) {
                if (p->pkt) pool_.release(p->pkt);
                window_.erase(next_expected_);
            }
            ++next_expected_;
            um_gap_deadline_ = -1;
            advanced = true;
            continue;
        }
        net::packet out = pool_.take(p->pkt);
        window_.erase(next_expected_);
        ++next_expected_;
        um_gap_deadline_ = -1;
        advanced = true;
        if (on_deliver_) on_deliver_(std::move(out), now);
    }
    window_.advance_to(next_expected_);
    if (advanced && on_ack_ && mode_ == rlc_mode::am) on_ack_(next_expected_ - 1, now);
}

}  // namespace l4span::ran
