#include "ran/rlc.h"

#include <algorithm>

namespace l4span::ran {

bool rlc_tx::enqueue(pdcp_sdu sdu, sim::tick now)
{
    if (!has_room()) {
        ++drops_;
        return false;
    }
    queued_sdu q;
    q.sdu = std::move(sdu);
    if (queue_.empty() && retx_queue_.empty()) q.head_time = now;
    fresh_bytes_ += q.sdu.size;
    queue_.push_back(std::move(q));
    return true;
}

std::vector<tb_chunk> rlc_tx::pull(std::uint32_t grant_bytes, sim::tick now)
{
    std::vector<tb_chunk> chunks;
    std::uint32_t remaining = grant_bytes;
    bool txed_any = false;

    // Retransmissions first (standard RLC AM behaviour).
    while (remaining > 0 && !retx_queue_.empty()) {
        retx_sdu& r = retx_queue_.front();
        const std::uint32_t left = r.size - r.sent;
        const std::uint32_t take = std::min(left, remaining);
        tb_chunk c;
        c.sn = r.sn;
        c.bytes = take;
        c.sdu_total = r.size;
        c.is_retx = true;
        c.carries_last = (r.sent + take == r.size);
        r.sent += take;
        remaining -= take;
        retx_bytes_ -= take;
        total_txed_bytes_ += take;
        if (c.carries_last) {
            c.pkt = r.pkt;
            awaiting_delivery_[r.sn] = {std::move(r.pkt), r.retx_count};
            retx_queue_.pop_front();
        }
        chunks.push_back(std::move(c));
        txed_any = true;
    }

    while (remaining > 0 && !queue_.empty()) {
        queued_sdu& q = queue_.front();
        if (q.head_time < 0) q.head_time = now;
        const std::uint32_t left = q.sdu.size - q.sent;
        const std::uint32_t take = std::min(left, remaining);
        tb_chunk c;
        c.sn = q.sdu.sn;
        c.bytes = take;
        c.sdu_total = q.sdu.size;
        c.carries_last = (q.sent + take == q.sdu.size);
        q.sent += take;
        remaining -= take;
        fresh_bytes_ -= take;
        total_txed_bytes_ += take;
        if (c.carries_last) {
            if (on_delay_) {
                sdu_delay_report rep;
                rep.sn = q.sdu.sn;
                rep.queuing = std::max<sim::tick>(0, q.head_time - q.sdu.ingress_time);
                rep.scheduling = std::max<sim::tick>(0, now - q.head_time);
                on_delay_(rep);
            }
            highest_txed_ = q.sdu.sn;
            any_txed_ = true;
            c.pkt = q.sdu.pkt;
            if (cfg_.mode == rlc_mode::am)
                awaiting_delivery_[q.sdu.sn] = {std::move(q.sdu.pkt), q.retx_count};
            queue_.pop_front();
            if (!queue_.empty()) queue_.front().head_time = now;
        }
        chunks.push_back(std::move(c));
        txed_any = true;
    }

    if (txed_any) emit_status(now);
    return chunks;
}

void rlc_tx::on_tb_lost(const std::vector<tb_chunk>& chunks, sim::tick now)
{
    if (cfg_.mode == rlc_mode::um) return;  // UM: lost is lost
    for (const auto& c : chunks) {
        // Retransmit the whole SDU (segment-level NACK granularity is below
        // the fidelity the queueing model needs). Only the chunk carrying
        // the last byte still holds the packet.
        if (!c.carries_last) continue;
        auto it = awaiting_delivery_.find(c.sn);
        if (it == awaiting_delivery_.end()) continue;  // already confirmed/requeued
        const int prior_retx = it->second.second;
        if (prior_retx + 1 > cfg_.max_rlc_retx) {
            // Give up: PDCP-level discard. The SN hole is reported so the
            // receive side and L4Span can reconcile.
            if (on_discard_) on_discard_(c.sn, now);
            awaiting_delivery_.erase(it);
            continue;
        }
        retx_sdu r;
        r.pkt = std::move(it->second.first);
        r.sn = c.sn;
        r.size = c.sdu_total;
        r.retx_count = prior_retx + 1;
        retx_bytes_ += r.size;
        retx_queue_.push_back(std::move(r));
        awaiting_delivery_.erase(it);
    }
}

void rlc_tx::on_delivery_confirmed(pdcp_sn_t ack_sn, sim::tick now)
{
    if (cfg_.mode == rlc_mode::um) return;
    if (any_delivered_ && ack_sn <= delivered_watermark_) return;
    // Release retained packets up to the cumulative ACK.
    const pdcp_sn_t from = any_delivered_ ? delivered_watermark_ + 1 : 1;
    for (pdcp_sn_t sn = from; sn <= ack_sn; ++sn) awaiting_delivery_.erase(sn);
    delivered_watermark_ = ack_sn;
    any_delivered_ = true;
    emit_status(now);
}

void rlc_tx::emit_status(sim::tick now)
{
    if (!on_status_) return;
    dl_delivery_status st;
    st.ue = ue_;
    st.drb = drb_;
    st.highest_transmitted_sn = highest_txed_;
    st.has_transmitted = any_txed_;
    st.highest_delivered_sn = delivered_watermark_;
    st.has_delivered = any_delivered_ && cfg_.mode == rlc_mode::am;
    st.desired_buffer_sdus =
        static_cast<std::uint32_t>(cfg_.max_queue_sdus > queue_.size()
                                       ? cfg_.max_queue_sdus - queue_.size()
                                       : 0);
    st.timestamp = now;
    on_status_(st);
}

void rlc_rx::on_chunk(const tb_chunk& chunk, sim::tick now)
{
    if (chunk.sn < next_expected_) return;  // duplicate / already skipped
    partial& p = pending_[chunk.sn];
    p.total = chunk.sdu_total;
    p.received += chunk.bytes;
    if (chunk.carries_last && chunk.pkt) p.pkt = chunk.pkt;
    drain(now);
}

void rlc_rx::skip(pdcp_sn_t sn, sim::tick now)
{
    if (sn < next_expected_) return;
    skipped_[sn] = true;
    pending_.erase(sn);
    drain(now);
}

void rlc_rx::drain(sim::tick now)
{
    // Deliver in order from next_expected_, hopping over discarded SNs. UM
    // additionally skips a blocking gap once the reassembly timer expires.
    bool advanced = false;
    for (;;) {
        if (auto sk = skipped_.find(next_expected_); sk != skipped_.end()) {
            skipped_.erase(sk);
            ++next_expected_;
            advanced = true;
            continue;
        }
        auto it = pending_.find(next_expected_);
        const bool blocked =
            it == pending_.end() || it->second.received < it->second.total ||
            !it->second.pkt;
        if (blocked) {
            if (mode_ != rlc_mode::um || pending_.empty()) break;
            if (um_gap_deadline_ < 0) {
                um_gap_deadline_ = now + k_t_reassembly;
                break;
            }
            if (now < um_gap_deadline_) break;
            // t-Reassembly expired: the hole is declared lost.
            pending_.erase(next_expected_);
            ++next_expected_;
            um_gap_deadline_ = -1;
            advanced = true;
            continue;
        }
        net::packet out = std::move(*it->second.pkt);
        pending_.erase(it);
        ++next_expected_;
        um_gap_deadline_ = -1;
        advanced = true;
        if (on_deliver_) on_deliver_(std::move(out), now);
    }
    if (advanced && on_ack_ && mode_ == rlc_mode::am) on_ack_(next_expected_ - 1, now);
}

}  // namespace l4span::ran
