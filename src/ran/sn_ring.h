// Sequence-number-keyed ring window.
//
// The RLC entities key their in-flight state by PDCP SN, and SNs are
// monotone with a bounded live window (the ARQ / reassembly horizon), so an
// unordered_map is pure overhead: every insert/erase is a malloc/free pair
// and every lookup a hash probe. This ring stores entries in a contiguous
// power-of-two slab indexed by `sn & mask`, valid for keys in
// [base, base + capacity). The caller advances `base` explicitly at the
// points where its protocol guarantees a key can never return (cumulative
// ACK, in-order delivery watermark).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace l4span::ran {

template <class T>
class sn_ring {
public:
    using key_type = std::uint32_t;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    key_type base() const { return base_; }
    std::size_t capacity() const { return cap_; }

    T* find(key_type sn)
    {
        if (sn < base_ || sn >= base_ + cap_ || !used_[idx(sn)]) return nullptr;
        return &vals_[idx(sn)];
    }
    const T* find(key_type sn) const
    {
        return const_cast<sn_ring*>(this)->find(sn);
    }

    // Inserts or returns the existing entry for `sn` (default-constructed on
    // first touch). Grows the window as needed; sn must be >= base.
    T& get_or_create(key_type sn)
    {
        if (sn < base_) throw std::logic_error("sn_ring: key below window base");
        while (sn >= base_ + cap_) grow();
        const std::size_t i = idx(sn);
        if (!used_[i]) {
            used_[i] = 1;
            vals_[i] = T{};
            ++count_;
            if (sn >= high_) high_ = sn + 1;
        }
        return vals_[i];
    }

    bool erase(key_type sn)
    {
        if (sn < base_ || sn >= base_ + cap_ || !used_[idx(sn)]) return false;
        used_[idx(sn)] = 0;
        vals_[idx(sn)] = T{};
        --count_;
        return true;
    }

    // Declares keys below `new_base` dead: they can never be re-inserted.
    // Any entries still present below it are dropped.
    void advance_to(key_type new_base)
    {
        if (new_base <= base_) return;
        for (key_type sn = base_; sn < new_base && count_ > 0; ++sn) erase(sn);
        base_ = new_base;
        if (high_ < base_) high_ = base_;
    }

    // In-key-order visit of present entries (cold paths: export, stats).
    template <class Fn>
    void for_each(Fn&& fn)
    {
        for (key_type sn = base_; sn < high_; ++sn)
            if (cap_ != 0 && used_[idx(sn)]) fn(sn, vals_[idx(sn)]);
    }

    void clear()
    {
        used_.assign(used_.size(), 0);
        for (auto& v : vals_) v = T{};
        count_ = 0;
        high_ = base_;
    }

private:
    std::size_t idx(key_type sn) const { return sn & (cap_ - 1); }

    void grow()
    {
        const std::size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
        std::vector<T> vals(new_cap);
        std::vector<std::uint8_t> used(new_cap, 0);
        for (key_type sn = base_; sn < high_; ++sn) {
            if (cap_ == 0 || !used_[idx(sn)]) continue;
            vals[sn & (new_cap - 1)] = std::move(vals_[idx(sn)]);
            used[sn & (new_cap - 1)] = 1;
        }
        vals_ = std::move(vals);
        used_ = std::move(used);
        cap_ = new_cap;
    }

    std::vector<T> vals_;
    std::vector<std::uint8_t> used_;
    key_type base_ = 1;   // PDCP SNs start at 1
    key_type high_ = 1;   // one past the largest key ever inserted
    std::size_t cap_ = 0;
    std::size_t count_ = 0;
};

}  // namespace l4span::ran
