// The gNB: CU-UP (SDAP/PDCP + CU hook slot for L4Span) and DU (RLC + MAC +
// HARQ) plus the uplink TDD return path. This is the substrate the paper's
// prototype embeds into srsRAN; here it is a faithful discrete-event model.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chan/fading.h"
#include "chan/link_model.h"
#include "chan/mcs.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "obs/trace.h"
#include "ran/cu_hook.h"
#include "ran/mac.h"
#include "ran/pdcp.h"
#include "ran/rlc.h"
#include "ran/sdap.h"
#include "ran/types.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace l4span::ran {

struct gnb_config {
    mac_config mac;
    sim::tick f1u_latency = 0;          // CU and DU co-located by default
    sim::tick core_latency = sim::from_ms(1);  // UPF/GTP-U hop
    sim::tick ul_proc_jitter = sim::from_ms(2);
    // Radio link failure detection during an injected outage: declared after
    // this many consecutive failed TB conclusions (out-of-sync evidence), or
    // after the T310-style supervision timer for a UE with no downlink
    // backlog — whichever comes first.
    int rlf_consecutive_harq = 8;
    sim::tick rlf_timer = sim::from_ms(200);
};

// X2/Xn handover context: everything a target cell needs to resume serving
// a UE — SN status transfer, forwarded downlink data, the QFI map, and the
// CU hook's opaque marking state (filled in by the scenario layer that owns
// the hook; the gNB only carries it).
struct ue_handover_context {
    chan::channel_profile profile;
    // Set when the source UE's link model migrates with it (a trace-driven
    // channel carries its replay cursor); empty for fading channels, whose
    // realization the target cell re-draws from `profile`.
    std::unique_ptr<chan::link_model> link;
    struct drb_context {
        drb_id_t id = 0;
        rlc_config cfg;
        pdcp_sn_t pdcp_next_sn = 1;
        rlc_tx::context tx;
        rlc_rx::context rx;
    };
    std::vector<drb_context> drbs;
    std::vector<std::pair<qfi_t, drb_id_t>> qfi_map;
    std::unique_ptr<cu_hook::ue_state> hook_state;
};

class gnb {
public:
    // (ue, drb, packet, now): SDU delivered to the UE's upper stack.
    using deliver_handler = std::function<void(rnti_t, drb_id_t, net::packet, sim::tick)>;
    // (ue, packet, now): uplink packet heading to the core/server.
    using uplink_handler = std::function<void(rnti_t, net::packet, sim::tick)>;
    // (ue, drb, bytes, now): ground-truth MAC transmission log (Fig. 20).
    using txlog_handler = std::function<void(rnti_t, drb_id_t, std::uint32_t, sim::tick)>;
    // (ue, now, mcs, prbs, tb_bytes): per-slot DCI/link-adaptation log, one
    // call per scheduler channel query — exactly the stream a trace replay
    // must reproduce (mcs is -1 when the UE was below MCS0 and skipped).
    // Plug chan::trace_recorder::on_link_slot here to capture a run.
    using linklog_handler =
        std::function<void(rnti_t, sim::tick, int, int, std::uint32_t)>;
    // (ue, now): the gNB declared radio link failure for the UE (called at
    // most once per outage; the handler is expected to detach the UE).
    using rlf_handler = std::function<void(rnti_t, sim::tick)>;

    gnb(sim::event_loop& loop, gnb_config cfg, sim::rng rng);

    // --- topology construction ---
    // Fading channel drawn from `profile`, or an explicit link model (e.g.
    // a chan::trace_channel). Either way the UE consumes exactly one fork
    // of the gNB RNG, so a fading run and its trace replay draw identical
    // HARQ/uplink randomness — the record→replay bit-identity contract.
    rnti_t add_ue(chan::channel_profile profile);
    rnti_t add_ue(std::unique_ptr<chan::link_model> link);
    drb_id_t add_drb(rnti_t ue, rlc_config cfg);
    void map_qos_flow(rnti_t ue, qfi_t qfi, drb_id_t drb);

    // --- X2/Xn handover ---
    // Exports the UE's bearer state (SN status + forwarded data) and detaches
    // it: the RNTI stops resolving, straggler events for it (in-flight HARQ
    // TBs, OTA deliveries, stale uplink) are dropped, and RNTIs are never
    // reused. The hook_state member is left empty — the caller owns the hook.
    ue_handover_context detach_ue(rnti_t ue);
    // Admits a handed-over UE under a freshly assigned RNTI (the channel
    // realization is re-drawn for the new cell; the profile is carried over).
    rnti_t attach_ue(ue_handover_context ctx);
    bool has_ue(rnti_t ue) const
    {
        return ue >= 1 && static_cast<std::size_t>(ue) <= rnti_slots_.size() &&
               rnti_slots_[ue - 1] != nullptr;
    }

    // --- fault injection: radio outage + RLF detection ---
    // The UE's radio link collapses: every TB concluded while in outage
    // fails (no RNG draw, so the HARQ randomness of other UEs is
    // undisturbed), and the gNB detects RLF via rlf_consecutive_harq failed
    // conclusions or the rlf_timer fallback, then fires the rlf_handler
    // once. Both calls are safe no-ops for unknown/detached RNTIs.
    void begin_outage(rnti_t ue);
    void end_outage(rnti_t ue);
    bool in_outage(rnti_t ue);

    void set_cu_hook(cu_hook* hook) { hook_ = hook; }
    void set_rlf_handler(rlf_handler h) { on_rlf_ = std::move(h); }
    void set_deliver_handler(deliver_handler h) { on_deliver_ = std::move(h); }
    void set_uplink_handler(uplink_handler h) { on_uplink_ = std::move(h); }
    void set_txlog_handler(txlog_handler h) { on_txlog_ = std::move(h); }
    void set_linklog_handler(linklog_handler h) { on_linklog_ = std::move(h); }
    // Layer-boundary trace points (SDAP ingress, RLC enqueue/deliver/discard,
    // MAC TB transmission, HARQ conclusions, RLF). nullptr (the default)
    // disables tracing at the cost of one predictable branch per site.
    void set_tracer(obs::tracer* t) { tracer_ = t; }

    // Starts the slot clock. Call once after all UEs are added.
    void start();

    // --- data path ---
    // Downlink packet arriving from the 5G core for `ue` (QFI selects DRB).
    void deliver_downlink(net::packet pkt, rnti_t ue, qfi_t qfi);
    // UE hands an uplink packet (e.g., a TCP ACK) to its modem.
    void send_uplink(rnti_t ue, net::packet pkt);

    // --- introspection (benchmark instrumentation) ---
    rlc_tx& rlc(rnti_t ue, drb_id_t drb);
    const rlc_tx& rlc(rnti_t ue, drb_id_t drb) const;
    double current_snr_db(rnti_t ue);
    int current_mcs(rnti_t ue);
    std::size_t num_ues() const { return ues_.size(); }
    // Attached (non-tombstone) UEs, in stable scheduler-index order — the
    // chaos-soak "no dangling RNTI" invariant compares this against the
    // scenario layer's view.
    std::size_t active_ues() const;
    std::vector<rnti_t> active_rntis() const;
    const gnb_config& config() const { return cfg_; }
    std::uint64_t slots_elapsed() const { return slot_count_; }

    // Delay-breakdown taps (Fig. 10).
    void set_delay_handler(rlc_tx::delay_handler h);

    // Approximate resident state of the DU queues (Table 1 substitute).
    std::size_t resident_state_bytes() const;

private:
    struct drb_ctx {
        drb_id_t id;
        pdcp_tx pdcp;
        std::unique_ptr<rlc_tx> tx;
        std::unique_ptr<rlc_rx> rx;
    };
    struct harq_tb {
        rnti_t ue;
        drb_id_t drb;
        std::uint32_t bytes;
        int prbs;
        int attempt;
        std::vector<tb_chunk> chunks;
    };
    struct ue_ctx {
        rnti_t rnti;
        std::uint32_t index;  // dense scheduler index
        std::unique_ptr<chan::link_model> channel;
        sdap_entity sdap;
        std::vector<drb_ctx> drbs;
        std::vector<harq_tb> pending_retx;  // due HARQ retransmissions
        sim::tick last_ul_release = 0;      // keeps the uplink FIFO per UE
        // Detached by handover: the slot stays (the PRB allocator's dense
        // index space never shrinks) but carries no bearers or backlog.
        bool active = true;
        // Injected radio outage (fault injection): TBs fail, RLF detection
        // is armed. Cleared by end_outage or detach.
        bool in_outage = false;
        int harq_fail_streak = 0;
        bool rlf_declared = false;
        sim::event_loop::event_id rlf_timer_id = 0;
    };

    rnti_t add_ue_impl(std::unique_ptr<chan::link_model> link);
    void declare_rlf(ue_ctx& u);
    void on_slot();
    void transmit_tb(ue_ctx& ue, drb_ctx& drb, std::vector<tb_chunk> chunks,
                     std::uint32_t bytes, int prbs, int attempt);
    void conclude_tb(harq_tb tb);
    // Every drop path for an in-flight chunk vector funnels here: the pool
    // references are released and the vector's capacity is recycled.
    void release_chunks(std::vector<tb_chunk>& chunks);
    std::vector<tb_chunk> take_chunk_vec();
    void give_chunk_vec(std::vector<tb_chunk> v);
    bool is_dl_slot(std::uint64_t slot_idx, double& capacity_factor) const;
    drb_ctx& find_drb(ue_ctx& ue, drb_id_t id);
    ue_ctx& find_ue(rnti_t ue);
    // nullptr when the RNTI is unknown or detached — the graceful path for
    // events that may race a handover.
    ue_ctx* try_ue(rnti_t ue);
    drb_ctx* try_drb(ue_ctx& ue, drb_id_t id);

    sim::event_loop& loop_;
    gnb_config cfg_;
    sim::rng rng_;
    prb_allocator allocator_;
    // Arena for every packet the DU holds (RLC queues, ARQ retention,
    // in-flight TB chunks) — one pooled slot per live SDU instead of a
    // copy per hop.
    net::packet_pool pool_;
    std::vector<std::unique_ptr<ue_ctx>> ues_;
    // RNTIs are assigned sequentially from 1 and never reused, so the
    // lookup table is a dense vector indexed by rnti-1 (nullptr after
    // detach), not a hash map — try_ue is one bounds check and a load.
    std::vector<ue_ctx*> rnti_slots_;
    cu_hook* hook_ = nullptr;
    obs::tracer* tracer_ = nullptr;
    deliver_handler on_deliver_;
    uplink_handler on_uplink_;
    rlf_handler on_rlf_;
    txlog_handler on_txlog_;
    linklog_handler on_linklog_;
    rlc_tx::delay_handler on_delay_;
    rnti_t next_rnti_ = 1;
    std::uint64_t slot_count_ = 0;
    bool started_ = false;
    // Per-slot scratch: which dense UE indices the scheduler considered.
    // Kept as a member so a 256-UE cell does not churn an allocation per
    // slot (the old code was an O(UEs x backlogged) pointer scan).
    std::vector<std::uint8_t> considered_scratch_;
    // More per-slot scratch (scheduler inputs, grants, the per-UE DRB
    // round-robin list) and a small free list of chunk vectors so the
    // pull -> HARQ -> deliver pipeline reuses capacity instead of
    // allocating a vector per transport block.
    std::vector<sched_input> sched_inputs_;
    std::vector<ue_ctx*> sched_who_;
    std::vector<int> sched_mcs_;
    std::vector<int> sched_grants_;
    std::vector<drb_ctx*> drb_active_;
    std::vector<std::vector<tb_chunk>> chunk_vec_pool_;
};

}  // namespace l4span::ran
