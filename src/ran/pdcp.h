// PDCP transmit entity: assigns per-DRB sequence numbers. Header compression
// and ciphering are out of scope (they don't affect queueing dynamics).
#pragma once

#include "net/packet.h"
#include "ran/types.h"

namespace l4span::ran {

struct pdcp_sdu {
    pdcp_sn_t sn = 0;
    net::packet pkt;
    std::uint32_t size = 0;        // wire bytes (what MAC grants are spent on)
    sim::tick ingress_time = 0;    // arrival at the RLC queue
};

class pdcp_tx {
public:
    // SN that the next SDU will carry (L4Span reads this to key its profile
    // table before the SDU enters the RLC).
    pdcp_sn_t next_sn() const { return next_sn_; }

    // X2/Xn SN status transfer: the target cell continues the source's SN
    // space, so profile tables keyed by SN stay valid across handover.
    void restore(pdcp_sn_t next) { next_sn_ = next; }

    pdcp_sdu wrap(net::packet pkt, sim::tick now)
    {
        pdcp_sdu s;
        s.sn = next_sn_++;
        s.size = pkt.size_bytes();
        s.pkt = std::move(pkt);
        s.ingress_time = now;
        return s;
    }

private:
    pdcp_sn_t next_sn_ = 1;
};

}  // namespace l4span::ran
