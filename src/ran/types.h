// Shared identifiers for the RAN substrate.
#pragma once

#include <cstdint>

namespace l4span::ran {

using rnti_t = std::uint16_t;   // UE identity within the cell
using drb_id_t = std::uint8_t;  // data radio bearer id within a UE
using qfi_t = std::uint8_t;     // QoS flow identifier (SDAP)
using pdcp_sn_t = std::uint32_t;

enum class rlc_mode : std::uint8_t {
    am,  // acknowledged mode: ARQ + delivery feedback
    um,  // unacknowledged mode: transmit feedback only
};

}  // namespace l4span::ran
