// Extension point in the CU user plane, above SDAP/PDCP, where L4Span (or a
// baseline like TC-RAN) observes and rewrites traffic. Mirrors the three
// event classes of §4.1: downlink datagram, RAN feedback, uplink packet.
#pragma once

#include <memory>

#include "net/packet.h"
#include "ran/f1u.h"
#include "ran/types.h"

namespace l4span::ran {

class cu_hook {
public:
    virtual ~cu_hook() = default;

    // Opaque per-UE hook state migrated at X2/Xn handover: the source cell's
    // hook exports it via detach_ue, the target cell's hook re-keys it via
    // attach_ue, so signaling state (e.g. L4Span's profile tables and egress
    // estimates) survives the move instead of being re-learned. The base
    // implementations carry nothing — a stateless or per-cell-only hook needs
    // no changes.
    struct ue_state {
        virtual ~ue_state() = default;
    };
    virtual std::unique_ptr<ue_state> detach_ue(rnti_t /*ue*/) { return nullptr; }
    virtual void attach_ue(rnti_t /*ue*/, std::unique_ptr<ue_state> /*state*/) {}

    // Downlink datagram admitted to DRB `drb`; PDCP will assign `sn`.
    // The hook may rewrite header fields (ECN marking). Return false to drop
    // the packet (drop-based feedback for non-ECN flows).
    virtual bool on_dl_packet(net::packet& pkt, rnti_t ue, drb_id_t drb, pdcp_sn_t sn,
                              sim::tick now) = 0;

    // Uplink packet passing the CU on its way to the core. The hook may
    // rewrite TCP ECN feedback fields (short-circuiting).
    virtual bool on_ul_packet(net::packet& pkt, rnti_t ue, sim::tick now) = 0;

    // F1-U downlink data delivery status from the DU.
    virtual void on_delivery_status(const dl_delivery_status& status, sim::tick now) = 0;

    // A packet admitted earlier was discarded before transmission (RLC
    // retransmission give-up). Lets the hook reconcile its profile table.
    virtual void on_dl_discard(rnti_t /*ue*/, drb_id_t /*drb*/, pdcp_sn_t /*sn*/,
                               sim::tick /*now*/)
    {
    }
};

}  // namespace l4span::ran
