// SDAP: maps QoS flow identifiers onto data radio bearers.
#pragma once

#include <unordered_map>

#include "ran/types.h"

namespace l4span::ran {

class sdap_entity {
public:
    void map(qfi_t qfi, drb_id_t drb) { qfi_to_drb_[qfi] = drb; }

    void set_default_drb(drb_id_t drb) { default_drb_ = drb; }

    drb_id_t lookup(qfi_t qfi) const
    {
        const auto it = qfi_to_drb_.find(qfi);
        return it != qfi_to_drb_.end() ? it->second : default_drb_;
    }

private:
    std::unordered_map<qfi_t, drb_id_t> qfi_to_drb_;
    drb_id_t default_drb_ = 1;
};

}  // namespace l4span::ran
