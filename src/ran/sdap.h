// SDAP: maps QoS flow identifiers onto data radio bearers.
//
// A UE carries a handful of QoS flows at most, so the map is a flat vector
// scanned linearly — one cache line instead of a hash probe per downlink
// packet.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "ran/types.h"

namespace l4span::ran {

class sdap_entity {
public:
    void map(qfi_t qfi, drb_id_t drb)
    {
        for (auto& [q, d] : qfi_to_drb_)
            if (q == qfi) {
                d = drb;
                return;
            }
        qfi_to_drb_.emplace_back(qfi, drb);
    }

    void set_default_drb(drb_id_t drb) { default_drb_ = drb; }

    // X2/Xn handover export, sorted by QFI for deterministic replay.
    std::vector<std::pair<qfi_t, drb_id_t>> export_mappings() const
    {
        std::vector<std::pair<qfi_t, drb_id_t>> out = qfi_to_drb_;
        std::sort(out.begin(), out.end());
        return out;
    }

    drb_id_t lookup(qfi_t qfi) const
    {
        for (const auto& [q, d] : qfi_to_drb_)
            if (q == qfi) return d;
        return default_drb_;
    }

private:
    std::vector<std::pair<qfi_t, drb_id_t>> qfi_to_drb_;
    drb_id_t default_drb_ = 1;
};

}  // namespace l4span::ran
