// SDAP: maps QoS flow identifiers onto data radio bearers.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ran/types.h"

namespace l4span::ran {

class sdap_entity {
public:
    void map(qfi_t qfi, drb_id_t drb) { qfi_to_drb_[qfi] = drb; }

    void set_default_drb(drb_id_t drb) { default_drb_ = drb; }

    // X2/Xn handover export, sorted by QFI for deterministic replay.
    std::vector<std::pair<qfi_t, drb_id_t>> export_mappings() const
    {
        std::vector<std::pair<qfi_t, drb_id_t>> out(qfi_to_drb_.begin(),
                                                    qfi_to_drb_.end());
        std::sort(out.begin(), out.end());
        return out;
    }

    drb_id_t lookup(qfi_t qfi) const
    {
        const auto it = qfi_to_drb_.find(qfi);
        return it != qfi_to_drb_.end() ? it->second : default_drb_;
    }

private:
    std::unordered_map<qfi_t, drb_id_t> qfi_to_drb_;
    drb_id_t default_drb_ = 1;
};

}  // namespace l4span::ran
