// RLC transmit entity (DU side) and receive entity (UE side).
//
// The transmit entity owns the deep SDU queue whose sojourn time L4Span
// predicts. It supports:
//  * AM: ARQ retransmission of SDUs whose HARQ delivery failed, plus
//    delivery confirmations that feed the F1-U "highest delivered SN".
//  * UM: no retransmission, transmit feedback only.
// MAC pulls bytes per grant; SDUs may be segmented across transport blocks.
//
// Packet payloads live in a shared net::packet_pool (owned by the gNB): the
// queue, the ARQ retention window and the in-flight TB chunks all reference
// the same pooled slot instead of carrying packet copies, and the per-SN
// maps are sn_ring windows — no per-SDU heap churn on the hot path.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "net/packet_pool.h"
#include "ran/f1u.h"
#include "ran/pdcp.h"
#include "ran/sn_ring.h"
#include "ran/types.h"
#include "sim/time.h"

namespace l4span::ran {

struct rlc_config {
    rlc_mode mode = rlc_mode::am;
    // srsRAN's default DL SDU queue length; the paper also evaluates 256.
    std::size_t max_queue_sdus = 16384;
    int max_rlc_retx = 8;
};

// One segment of an SDU inside a transport block. The final chunk carries a
// pool reference to the SDU's packet; whoever consumes or drops the chunk
// owns that reference (the gNB releases it on every drop path).
struct tb_chunk {
    pdcp_sn_t sn = 0;
    std::uint32_t bytes = 0;       // bytes of this SDU carried in this TB
    std::uint32_t sdu_total = 0;   // full SDU size (for receive reassembly)
    bool carries_last = false;     // this chunk contains the SDU's final byte
    bool is_retx = false;
    net::packet_pool::handle pkt;  // rides with the final chunk
};

// Per-SDU delay decomposition reported when the SDU completes transmission
// (used for the Fig. 10 delay-breakdown experiment).
struct sdu_delay_report {
    pdcp_sn_t sn = 0;
    sim::tick queuing = 0;     // enqueue -> reached head of queue
    sim::tick scheduling = 0;  // head of queue -> fully handed to MAC
};

class rlc_tx {
public:
    using status_handler = std::function<void(const dl_delivery_status&)>;
    using delay_handler = std::function<void(const sdu_delay_report&)>;
    using discard_handler = std::function<void(pdcp_sn_t, sim::tick)>;

    rlc_tx(rnti_t ue, drb_id_t drb, rlc_config cfg, net::packet_pool& pool)
        : ue_(ue), drb_(drb), cfg_(cfg), pool_(pool)
    {
    }

    const rlc_config& config() const { return cfg_; }

    // --- PDCP side ---
    bool has_room() const { return queue_.size() < cfg_.max_queue_sdus; }
    bool enqueue(pdcp_sdu sdu, sim::tick now);

    // --- MAC side ---
    // Fresh + retransmission bytes awaiting a grant.
    std::uint64_t backlog_bytes() const { return fresh_bytes_ + retx_bytes_; }
    std::size_t queued_sdus() const { return queue_.size(); }
    std::uint64_t queued_bytes() const { return fresh_bytes_; }

    // Pulls up to `grant_bytes` into `out` (appends; retransmissions first).
    // Emits the F1-U transmit-status feedback when SDUs complete transmission.
    void pull(std::uint32_t grant_bytes, sim::tick now, std::vector<tb_chunk>& out);
    std::vector<tb_chunk> pull(std::uint32_t grant_bytes, sim::tick now)
    {
        std::vector<tb_chunk> chunks;
        pull(grant_bytes, now, chunks);
        return chunks;
    }

    // HARQ gave up on these chunks: AM re-queues the SDUs, UM loses them.
    // The chunks' own pool references stay with the caller.
    void on_tb_lost(const std::vector<tb_chunk>& chunks, sim::tick now);

    // UE's RLC ACK advanced the in-order delivered watermark to `ack_sn`.
    void on_delivery_confirmed(pdcp_sn_t ack_sn, sim::tick now);

    void set_status_handler(status_handler h) { on_status_ = std::move(h); }
    void set_delay_handler(delay_handler h) { on_delay_ = std::move(h); }
    void set_discard_handler(discard_handler h) { on_discard_ = std::move(h); }

    // --- X2/Xn handover (gnb::detach_ue / attach_ue) ---
    // Everything the target cell's RLC entity needs to resume the bearer:
    // the SDUs not yet confirmed delivered (the X2 data-forwarding path —
    // unacknowledged SDUs in SN order, then the fresh queue) plus the
    // delivered watermark so F1-U status reports stay monotone.
    struct context {
        std::vector<pdcp_sdu> forwarded;
        pdcp_sn_t delivered_watermark = 0;
        bool any_delivered = false;
    };
    // Drains this entity into a context; it is left empty. Packets are
    // materialized out of the pool (the context crosses cells, and pools).
    context export_context();
    // Only valid on a freshly constructed entity. Forwarded SDUs re-enter
    // the fresh queue whole (segment-level transfer is below the fidelity
    // the queueing model needs) and count against no admission limit: X2
    // forwarding must not drop data the source already admitted.
    void restore(context ctx, sim::tick now);

    pdcp_sn_t highest_transmitted() const { return highest_txed_; }
    pdcp_sn_t highest_delivered() const { return delivered_watermark_; }
    std::uint64_t drops() const { return drops_; }
    std::uint64_t total_txed_bytes() const { return total_txed_bytes_; }

private:
    struct queued_sdu {
        pdcp_sn_t sn = 0;
        std::uint32_t size = 0;
        sim::tick ingress_time = 0;
        net::packet_pool::handle pkt;
        std::uint32_t sent = 0;           // bytes already handed to MAC
        sim::tick head_time = -1;         // when it became queue head
        int retx_count = 0;
    };
    struct retx_sdu {
        net::packet_pool::handle pkt;
        pdcp_sn_t sn = 0;
        std::uint32_t size = 0;
        std::uint32_t sent = 0;
        int retx_count = 0;
    };
    // AM: SDU fully transmitted, awaiting delivery confirmation; the pool
    // reference is retained so HARQ give-up can requeue the packet.
    struct awaiting_sdu {
        net::packet_pool::handle pkt;
        int retx_count = 0;
    };

    void emit_status(sim::tick now);

    rnti_t ue_;
    drb_id_t drb_;
    rlc_config cfg_;
    net::packet_pool& pool_;

    std::deque<queued_sdu> queue_;      // fresh SDUs, front = head
    std::deque<retx_sdu> retx_queue_;   // AM retransmissions (priority)
    std::uint64_t fresh_bytes_ = 0;
    std::uint64_t retx_bytes_ = 0;

    sn_ring<awaiting_sdu> awaiting_delivery_;

    pdcp_sn_t highest_txed_ = 0;
    bool any_txed_ = false;
    pdcp_sn_t delivered_watermark_ = 0;
    bool any_delivered_ = false;
    std::uint64_t drops_ = 0;
    std::uint64_t total_txed_bytes_ = 0;

    status_handler on_status_;
    delay_handler on_delay_;
    discard_handler on_discard_;
};

// UE-side receive entity: reassembles segmented SDUs and delivers in
// order. AM holds indefinitely (ARQ guarantees arrival); UM holds behind a
// gap only until the reassembly deadline (t-Reassembly, TS 38.322) — long
// enough for a full HARQ retransmission chain — then skips the hole.
//
// on_chunk takes ownership of the chunk's pool reference (released on the
// duplicate path, stored in the reassembly window otherwise).
class rlc_rx {
public:
    using deliver_handler = std::function<void(net::packet, sim::tick)>;
    // AM: in-order delivered watermark advanced (drives the RLC ACK).
    using ack_handler = std::function<void(pdcp_sn_t, sim::tick)>;

    rlc_rx(rlc_mode mode, net::packet_pool& pool) : mode_(mode), pool_(pool) {}

    void on_chunk(const tb_chunk& chunk, sim::tick now);

    // DU discarded this SN (retransmission give-up): treat it as delivered
    // so in-order delivery does not stall on the hole.
    void skip(pdcp_sn_t sn, sim::tick now);

    void set_deliver_handler(deliver_handler h) { on_deliver_ = std::move(h); }
    void set_ack_handler(ack_handler h) { on_ack_ = std::move(h); }

    pdcp_sn_t delivered_watermark() const { return next_expected_ - 1; }

    // --- X2/Xn handover ---
    // The receive entity is re-established at handover (TS 38.322): partial
    // reassembly state is flushed — every SDU not yet delivered in order is
    // unacknowledged at the source and rides the forwarded-data path — but
    // the in-order point and the DU-discarded holes must survive, or the
    // target stalls forever waiting for SN 1.
    struct context {
        pdcp_sn_t next_expected = 1;
        std::vector<pdcp_sn_t> skipped;  // sorted
    };
    context export_context();
    void restore(const context& ctx);

private:
    // One reassembly-window slot: partial/complete SDU data, or a
    // DU-discarded hole (skipped wins over any data that arrives for it).
    struct pending_sdu {
        std::uint32_t received = 0;
        std::uint32_t total = 0;
        net::packet_pool::handle pkt;
        bool skipped = false;
    };

    void drain(sim::tick now);

    // Covers the worst-case HARQ retransmission chain (3 x 8 ms) with margin.
    static constexpr sim::tick k_t_reassembly = sim::from_ms(35);

    rlc_mode mode_;
    net::packet_pool& pool_;
    pdcp_sn_t next_expected_ = 1;
    sn_ring<pending_sdu> window_;
    sim::tick um_gap_deadline_ = -1;                  // UM reassembly timer

    deliver_handler on_deliver_;
    ack_handler on_ack_;
};

}  // namespace l4span::ran
