// MAC downlink scheduler: distributes the cell's PRBs among backlogged UEs
// each DL slot. Round-robin and proportional-fair, the two policies the
// paper evaluates (Fig. 10).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace l4span::ran {

enum class sched_policy : std::uint8_t {
    round_robin,
    proportional_fair,
};

struct mac_config {
    int n_prb = 51;                       // 20 MHz @ 30 kHz SCS (TDD band n78)
    int rbg_size = 4;                     // allocation granularity (PRBs)
    sim::tick slot = sim::from_us(500);   // 30 kHz SCS slot length
    int tdd_period_slots = 5;             // DDDSU
    int tdd_dl_slots = 3;                 // slots 0..2 full DL
    double special_slot_factor = 0.5;     // slot 3 carries half a DL slot
    double initial_bler = 0.10;           // HARQ first-transmission error rate
    double retx_bler = 0.02;              // after combining gain
    int max_harq_tx = 4;
    sim::tick harq_rtt = sim::from_ms(8); // MAC/PHY retransmission lag [76,83,86]
    sim::tick ota_delay = sim::from_us(500);  // slot decode latency at the UE
    double pf_window_slots = 200.0;       // PF average-rate EWMA horizon
    sched_policy policy = sched_policy::round_robin;
};

// One UE's standing in the current slot.
struct sched_input {
    std::uint32_t ue_index = 0;          // dense index into the scheduler state
    std::uint64_t backlog_bytes = 0;     // RLC fresh + retx bytes
    double bytes_per_prb = 0.0;          // from current MCS
};

// Stateful PRB allocator. Dense per-UE state is maintained across slots
// (round-robin cursor, PF average rates).
class prb_allocator {
public:
    explicit prb_allocator(mac_config cfg) : cfg_(cfg) {}

    void add_ue() { avg_rate_.push_back(1.0); }

    // PRBs granted per input entry (same order as `in`), written into
    // `grants` (resized; caller-owned so the per-slot hot path reuses
    // capacity). `available_prb` may be lower than cfg.n_prb when HARQ
    // retransmissions already claimed part of the slot.
    void allocate(const std::vector<sched_input>& in, int available_prb,
                  std::vector<int>& grants);
    std::vector<int> allocate(const std::vector<sched_input>& in, int available_prb)
    {
        std::vector<int> grants;
        allocate(in, available_prb, grants);
        return grants;
    }

    // PF bookkeeping: every slot, fold the bytes actually served.
    void update_average(std::uint32_t ue_index, double served_bytes)
    {
        const double w = 1.0 / cfg_.pf_window_slots;
        avg_rate_[ue_index] = (1.0 - w) * avg_rate_[ue_index] + w * served_bytes;
    }

    double average_rate(std::uint32_t ue_index) const { return avg_rate_.at(ue_index); }

private:
    mac_config cfg_;
    std::size_t rr_cursor_ = 0;
    std::vector<double> avg_rate_;
    std::vector<std::uint64_t> planned_scratch_;  // PF inner-loop scratch
};

}  // namespace l4span::ran
