#include "ran/mac.h"

#include <algorithm>

namespace l4span::ran {

void prb_allocator::allocate(const std::vector<sched_input>& in, int available_prb,
                             std::vector<int>& grants)
{
    grants.assign(in.size(), 0);
    if (in.empty() || available_prb <= 0) return;

    if (cfg_.policy == sched_policy::round_robin) {
        // Equal split among backlogged UEs; the remainder rotates so no UE is
        // systematically favoured.
        const int n = static_cast<int>(in.size());
        const int base = available_prb / n;
        int extra = available_prb % n;
        for (int k = 0; k < n; ++k) {
            const int i = static_cast<int>((rr_cursor_ + static_cast<std::size_t>(k)) %
                                           static_cast<std::size_t>(n));
            grants[static_cast<std::size_t>(i)] = base + (extra > 0 ? 1 : 0);
            if (extra > 0) --extra;
        }
        rr_cursor_ = (rr_cursor_ + 1) % in.size();
        return;
    }

    // Proportional fair: hand out one RBG at a time to the UE with the best
    // instantaneous-to-average rate ratio, capping at its backlog.
    const int rbg = std::max(1, cfg_.rbg_size);
    int remaining = available_prb;
    std::vector<std::uint64_t>& planned_bytes = planned_scratch_;
    planned_bytes.assign(in.size(), 0);
    while (remaining > 0) {
        double best_metric = -1.0;
        int best = -1;
        for (std::size_t i = 0; i < in.size(); ++i) {
            if (planned_bytes[i] >= in[i].backlog_bytes) continue;  // enough granted
            const double avg = std::max(1.0, avg_rate_[in[i].ue_index]);
            const double metric = in[i].bytes_per_prb / avg;
            if (metric > best_metric) {
                best_metric = metric;
                best = static_cast<int>(i);
            }
        }
        if (best < 0) break;
        const int give = std::min(remaining, rbg);
        grants[static_cast<std::size_t>(best)] += give;
        planned_bytes[static_cast<std::size_t>(best)] +=
            static_cast<std::uint64_t>(in[static_cast<std::size_t>(best)].bytes_per_prb *
                                       give);
        remaining -= give;
    }
}

}  // namespace l4span::ran
