#include "media/media.h"

#include <algorithm>

namespace l4span::media {

// ---------------------------------------------------------------- sender --

media_sender::media_sender(sim::event_loop& loop, media_config cfg,
                           std::unique_ptr<rate_controller> rc, send_fn send)
    : loop_(loop), cfg_(cfg), rc_(std::move(rc)), send_(std::move(send))
{
}

void media_sender::start()
{
    if (running_) return;
    running_ = true;
    emit();
}

void media_sender::emit()
{
    if (!running_) return;
    net::packet p;
    p.ft = cfg_.ft;
    p.ft.proto = net::ip_proto::udp;
    p.flow_id = cfg_.flow_id;
    p.pkt_id = ++pkt_counter_;
    p.sent_time = loop_.now();
    p.payload_bytes = cfg_.packet_bytes;
    p.ecn_field = net::ecn::ect1;  // both SCReAM and UDP Prague are L4S flows
    sent_bytes_ += p.size_bytes();
    send_(std::move(p));

    const double rate = std::clamp(rc_->target_bps(), cfg_.min_rate_bps, cfg_.max_rate_bps);
    loop_.schedule_after(sim::tx_time(cfg_.packet_bytes, rate), [this] { emit(); });
}

void media_sender::on_packet(const net::packet& pkt)
{
    if (!pkt.is_udp() || !pkt.app_data) return;
    const auto* fb = static_cast<const feedback_report*>(pkt.app_data.get());
    const sim::tick rtt = loop_.now() - fb->report_time + fb->newest_owd;
    rtt_samples_.add(sim::to_ms(rtt));
    rc_->on_feedback(*fb, rtt, loop_.now());
}

// -------------------------------------------------------------- receiver --

media_receiver::media_receiver(sim::event_loop& loop, media_config cfg, send_fn send_feedback)
    : loop_(loop), cfg_(cfg), send_(std::move(send_feedback))
{
}

void media_receiver::on_packet(const net::packet& pkt)
{
    if (!pkt.is_udp()) return;
    const sim::tick now = loop_.now();
    acc_.highest_pkt_id = std::max(acc_.highest_pkt_id, pkt.pkt_id);
    acc_.received_bytes += pkt.payload_bytes;
    acc_.total_packets += 1;
    if (pkt.ecn_field == net::ecn::ce) {
        acc_.ce_bytes += pkt.payload_bytes;
        acc_.ce_packets += 1;
    }
    if (pkt.sent_time >= 0) {
        acc_.newest_owd = now - pkt.sent_time;
        owd_samples_.add(sim::to_ms(acc_.newest_owd));
    }
    goodput_.add(now, pkt.payload_bytes);

    if (!timer_running_) {
        timer_running_ = true;
        loop_.schedule_after(cfg_.feedback_interval, [this] { emit_feedback(); });
    }
}

void media_receiver::emit_feedback()
{
    timer_running_ = false;
    acc_.report_time = loop_.now();
    net::packet fb;
    fb.ft = cfg_.ft.reversed();
    fb.ft.proto = net::ip_proto::udp;
    fb.flow_id = cfg_.flow_id;
    fb.pkt_id = ++fb_counter_;
    fb.sent_time = loop_.now();
    fb.payload_bytes = 64;  // compact RTCP-style report
    fb.app_data = std::make_shared<feedback_report>(acc_);
    send_(std::move(fb));

    // Keep reporting while traffic flows.
    timer_running_ = true;
    loop_.schedule_after(cfg_.feedback_interval, [this] {
        if (acc_.total_packets > 0) emit_feedback();
        else timer_running_ = false;
    });
}

// ---------------------------------------------------------------- SCReAM --

namespace {

// Self-clocked rate adaptation (Johansson, RFC 8298) reduced to its rate
// plant: L4S CE fraction drives a DCTCP-style multiplicative term, queueing
// delay above target drives back-off, otherwise multiplicative-ish ramp-up.
class scream_controller : public rate_controller {
public:
    explicit scream_controller(const media_config& cfg)
        : rate_(cfg.start_rate_bps), min_(cfg.min_rate_bps), max_(cfg.max_rate_bps)
    {
    }

    void on_feedback(const feedback_report& fb, sim::tick, sim::tick now) override
    {
        // Base (propagation) delay tracking.
        if (base_owd_ < 0 || fb.newest_owd < base_owd_) base_owd_ = fb.newest_owd;
        const sim::tick queue_delay = fb.newest_owd - base_owd_;

        const std::uint64_t d_bytes = fb.received_bytes - prev_bytes_;
        const std::uint64_t d_ce = fb.ce_bytes - prev_ce_bytes_;
        prev_bytes_ = fb.received_bytes;
        prev_ce_bytes_ = fb.ce_bytes;
        const double frac = d_bytes > 0 ? static_cast<double>(d_ce) /
                                              static_cast<double>(d_bytes)
                                        : 0.0;
        alpha_ = (1.0 - k_gain) * alpha_ + k_gain * frac;

        if (d_ce > 0) {
            rate_ *= (1.0 - alpha_ / 2.0);
            post_congestion_until_ = now + sim::from_ms(200);
        } else if (queue_delay > k_queue_target) {
            rate_ *= 0.95;
        } else if (now >= post_congestion_until_) {
            rate_ *= 1.05;  // ramp toward max in ~ a second of clean reports
        }
        rate_ = std::clamp(rate_, min_, max_);
    }

    double target_bps() const override { return rate_; }
    std::string name() const override { return "scream"; }

private:
    static constexpr double k_gain = 1.0 / 16.0;
    static constexpr sim::tick k_queue_target = sim::from_ms(60);

    double rate_, min_, max_;
    double alpha_ = 0.0;
    sim::tick base_owd_ = -1;
    sim::tick post_congestion_until_ = 0;
    std::uint64_t prev_bytes_ = 0;
    std::uint64_t prev_ce_bytes_ = 0;
};

// UDP Prague (L4STeam reference behaviour): rate-based Prague — per-report
// alpha EWMA, multiplicative decrease on CE, otherwise 1-packet-per-RTT
// additive increase with an initial exponential ramp.
class udp_prague_controller : public rate_controller {
public:
    explicit udp_prague_controller(const media_config& cfg)
        : rate_(cfg.start_rate_bps), min_(cfg.min_rate_bps), max_(cfg.max_rate_bps),
          pkt_bits_(cfg.packet_bytes * 8.0)
    {
    }

    void on_feedback(const feedback_report& fb, sim::tick rtt, sim::tick now) override
    {
        const std::uint64_t d_bytes = fb.received_bytes - prev_bytes_;
        const std::uint64_t d_ce = fb.ce_bytes - prev_ce_bytes_;
        prev_bytes_ = fb.received_bytes;
        prev_ce_bytes_ = fb.ce_bytes;
        const double frac = d_bytes > 0 ? static_cast<double>(d_ce) /
                                              static_cast<double>(d_bytes)
                                        : 0.0;
        alpha_ = (1.0 - k_gain) * alpha_ + k_gain * frac;

        const double rtt_s = std::max(1e-3, sim::to_sec(rtt));
        if (d_ce > 0) {
            in_ramp_ = false;
            if (now - last_decrease_ >= rtt) {
                rate_ *= (1.0 - alpha_ / 2.0);
                last_decrease_ = now;
            }
        } else if (in_ramp_) {
            rate_ *= 1.5;
        } else {
            rate_ += pkt_bits_ / rtt_s * 0.5;  // ~1 packet per 2 RTTs
        }
        rate_ = std::clamp(rate_, min_, max_);
    }

    double target_bps() const override { return rate_; }
    std::string name() const override { return "udp-prague"; }

private:
    static constexpr double k_gain = 1.0 / 16.0;

    double rate_, min_, max_, pkt_bits_;
    double alpha_ = 0.0;
    bool in_ramp_ = true;
    sim::tick last_decrease_ = 0;
    std::uint64_t prev_bytes_ = 0;
    std::uint64_t prev_ce_bytes_ = 0;
};

}  // namespace

std::unique_ptr<rate_controller> make_scream(const media_config& cfg)
{
    return std::make_unique<scream_controller>(cfg);
}

std::unique_ptr<rate_controller> make_udp_prague(const media_config& cfg)
{
    return std::make_unique<udp_prague_controller>(cfg);
}

}  // namespace l4span::media
