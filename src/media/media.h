// Interactive-application transport over UDP: a paced media sender, a
// receiver that returns periodic RTP-style feedback reports, and pluggable
// rate controllers (SCReAM and UDP Prague, §6.2.3 of the paper).
//
// These flows exercise L4Span's downlink-marking fallback: feedback lives in
// the UDP payload, so the RAN cannot rewrite it (no short-circuiting) and
// the receiver reads CE from the outer IP header.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"

namespace l4span::media {

// Receiver-to-sender report (rides inside a UDP payload).
struct feedback_report {
    std::uint64_t highest_pkt_id = 0;
    std::uint64_t received_bytes = 0;
    std::uint64_t ce_bytes = 0;
    std::uint64_t ce_packets = 0;
    std::uint64_t total_packets = 0;
    sim::tick newest_owd = 0;  // one-way delay of the newest data packet
    sim::tick report_time = 0;
};

class rate_controller {
public:
    virtual ~rate_controller() = default;
    virtual void on_feedback(const feedback_report& fb, sim::tick rtt, sim::tick now) = 0;
    virtual double target_bps() const = 0;
    virtual std::string name() const = 0;
};

struct media_config {
    net::five_tuple ft;  // downlink direction
    std::uint64_t flow_id = 0;
    std::uint32_t packet_bytes = 1200;   // typical RTP video packet
    double min_rate_bps = 150e3;
    double max_rate_bps = 30e6;
    double start_rate_bps = 1e6;
    sim::tick feedback_interval = sim::from_ms(30);
};

class media_sender {
public:
    using send_fn = std::function<void(net::packet)>;

    media_sender(sim::event_loop& loop, media_config cfg,
                 std::unique_ptr<rate_controller> rc, send_fn send);

    void start();
    void stop() { running_ = false; }

    // Feedback packet arriving from the receiver.
    void on_packet(const net::packet& pkt);

    double current_rate_bps() const { return rc_->target_bps(); }
    stats::sample_set& rtt_samples() { return rtt_samples_; }
    const rate_controller& controller() const { return *rc_; }

private:
    void emit();

    sim::event_loop& loop_;
    media_config cfg_;
    std::unique_ptr<rate_controller> rc_;
    send_fn send_;
    bool running_ = false;
    std::uint64_t pkt_counter_ = 0;
    std::uint64_t sent_bytes_ = 0;
    stats::sample_set rtt_samples_;
};

class media_receiver {
public:
    using send_fn = std::function<void(net::packet)>;

    media_receiver(sim::event_loop& loop, media_config cfg, send_fn send_feedback);

    void on_packet(const net::packet& pkt);

    stats::sample_set& owd_samples() { return owd_samples_; }
    stats::rate_series& goodput() { return goodput_; }

private:
    void emit_feedback();

    sim::event_loop& loop_;
    media_config cfg_;
    send_fn send_;
    feedback_report acc_;
    std::uint64_t fb_counter_ = 0;
    bool timer_running_ = false;
    stats::sample_set owd_samples_;
    stats::rate_series goodput_;
};

std::unique_ptr<rate_controller> make_scream(const media_config& cfg);
std::unique_ptr<rate_controller> make_udp_prague(const media_config& cfg);

}  // namespace l4span::media
