#include "media/frame_source.h"

#include <algorithm>
#include <cmath>

namespace l4span::media {

frame_source::frame_source(sim::event_loop& loop, frame_source_config cfg, write_fn write)
    : loop_(loop), cfg_(cfg), write_(std::move(write))
{
    const double per_frame = cfg_.bitrate_bps / cfg_.fps / 8.0;
    if (cfg_.keyframe_interval_s > 0.0 && cfg_.keyframe_scale > 1.0) {
        frames_per_key_ = std::max(
            1, static_cast<int>(std::lround(cfg_.keyframe_interval_s * cfg_.fps)));
        // Scale delta frames down so the keyframe burst does not raise the
        // long-term average above the target bitrate:
        // (scale + N - 1) * delta == N * per_frame.
        const double n = static_cast<double>(frames_per_key_);
        delta_bytes_ = static_cast<std::uint32_t>(
            std::lround(n * per_frame / (cfg_.keyframe_scale + n - 1.0)));
    } else {
        delta_bytes_ = static_cast<std::uint32_t>(std::lround(per_frame));
    }
    delta_bytes_ = std::max<std::uint32_t>(delta_bytes_, 1);
}

void frame_source::start()
{
    if (running_) return;
    running_ = true;
    emit();
}

void frame_source::emit()
{
    if (!running_) return;
    const std::uint64_t id = next_frame_id_++;
    const bool keyframe =
        frames_per_key_ > 0 &&
        (id - 1) % static_cast<std::uint64_t>(frames_per_key_) == 0;
    const std::uint32_t bytes =
        keyframe ? static_cast<std::uint32_t>(
                       std::lround(delta_bytes_ * cfg_.keyframe_scale))
                 : delta_bytes_;

    bytes_generated_ += bytes;
    pending_.push_back({id, bytes_generated_, loop_.now()});
    write_(id, bytes);

    loop_.schedule_after(sim::from_sec(1.0 / cfg_.fps), [this] { emit(); });
}

void frame_source::complete(const pending_frame& f, sim::tick now)
{
    const sim::tick owd = now - f.generated;
    owd_ms_.add(sim::to_ms(owd));
    ++completed_;
    if (owd > cfg_.deadline) ++stalled_;
}

void frame_source::on_bytes_delivered(std::uint64_t cumulative_bytes, sim::tick now)
{
    while (!pending_.empty() && pending_.front().end_offset <= cumulative_bytes) {
        complete(pending_.front(), now);
        pending_.pop_front();
    }
}

void frame_source::on_frame_complete(std::uint64_t frame_id, sim::tick now)
{
    // Streams can finish out of generation order when an older frame is
    // still repairing a loss, so search rather than pop.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->id == frame_id) {
            complete(*it, now);
            pending_.erase(it);
            return;
        }
    }
}

}  // namespace l4span::media
