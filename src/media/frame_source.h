// Application-limited interactive sender: a frame-paced source (cloud
// gaming / XR encoder model) that rides a reliable transport instead of the
// UDP media path in media.h.
//
// Every 1/fps seconds it emits one encoded frame — steady-state size set by
// the target bitrate, with periodic keyframes `keyframe_scale` times larger
// (the bursts that stress a shallow L4S queue). The transport glue reports
// delivery back and the source records the metric interactive applications
// actually feel: per-frame completion one-way delay (generation to full
// delivery at the receiver) and the stall rate (frames completing after
// their delivery deadline).
//
// Two completion modes, matching the two transports:
// - byte-stream (TCP): frames occupy consecutive byte ranges of one stream;
//   on_bytes_delivered(cumulative) completes every frame whose end offset
//   the receiver's in-order point has passed.
// - frame-per-stream (QUIC): each frame is one stream closed by FIN;
//   on_frame_complete(frame_id) fires when that stream fully delivers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_loop.h"
#include "stats/sample_set.h"

namespace l4span::media {

struct frame_source_config {
    double fps = 60.0;
    double bitrate_bps = 8e6;          // long-term average target
    double keyframe_interval_s = 2.0;  // 0: no keyframes
    double keyframe_scale = 4.0;       // keyframe size vs a delta frame
    sim::tick deadline = sim::from_ms(50);  // completion budget before "stall"
};

class frame_source {
public:
    // Called once per generated frame: ship `bytes` as frame `frame_id`
    // (ids are 1-based and monotonic).
    using write_fn = std::function<void(std::uint64_t frame_id, std::uint32_t bytes)>;

    frame_source(sim::event_loop& loop, frame_source_config cfg, write_fn write);

    void start();
    void stop() { running_ = false; }

    // Byte-stream transports: receiver's cumulative in-order byte count.
    void on_bytes_delivered(std::uint64_t cumulative_bytes, sim::tick now);
    // Frame-per-stream transports: frame `frame_id` fully delivered.
    void on_frame_complete(std::uint64_t frame_id, sim::tick now);

    // --- stats ---
    std::uint64_t frames_sent() const { return next_frame_id_ - 1; }
    std::uint64_t frames_completed() const { return completed_; }
    std::uint64_t stalled_frames() const { return stalled_; }
    double stall_fraction() const
    {
        return completed_ ? static_cast<double>(stalled_) /
                                static_cast<double>(completed_)
                          : 0.0;
    }
    // Per-frame completion OWD in ms (generation -> fully delivered).
    const stats::sample_set& frame_owd_ms() const { return owd_ms_; }
    std::uint64_t bytes_generated() const { return bytes_generated_; }

private:
    struct pending_frame {
        std::uint64_t id = 0;
        std::uint64_t end_offset = 0;  // cumulative stream offset of the last byte
        sim::tick generated = 0;
    };

    void emit();
    void complete(const pending_frame& f, sim::tick now);

    sim::event_loop& loop_;
    frame_source_config cfg_;
    write_fn write_;
    bool running_ = false;

    std::uint32_t delta_bytes_ = 0;  // steady-state frame size
    int frames_per_key_ = 0;         // 0: keyframes disabled

    std::uint64_t next_frame_id_ = 1;
    std::uint64_t bytes_generated_ = 0;
    std::deque<pending_frame> pending_;  // in generation (= delivery) order

    std::uint64_t completed_ = 0;
    std::uint64_t stalled_ = 0;
    stats::sample_set owd_ms_;
};

}  // namespace l4span::media
