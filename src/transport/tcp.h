// Event-driven TCP engine: sender and receiver endpoints.
//
// Faithful where it matters for the paper's dynamics: handshake (L4Span's
// RTT* estimate keys off the SYN->ACK interval), byte-sequence cumulative
// ACKs, dupack fast retransmit with NewReno-style recovery, RTO with
// backoff, optional pacing, classic ECN (ECE latched until CWR) and AccECN
// (ACE counter + option byte counters) feedback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"
#include "transport/cc.h"
#include "transport/ecn_feedback.h"

namespace l4span::transport {

struct tcp_config {
    std::uint32_t mss = 1400;                    // payload bytes per segment
    std::uint64_t max_cwnd = 4ull << 20;         // receive-window clamp
    std::uint64_t flow_bytes = 0;                // 0 = unbounded (long-lived flow)
    // Application-limited stream: data arrives only through app_write()
    // (interactive frame sources); the flow never "finishes".
    bool app_limited = false;
    sim::tick min_rto = sim::from_ms(200);
    sim::tick max_rto = sim::from_sec(60);
    net::five_tuple ft;                          // downlink direction (server->UE)
    std::uint64_t flow_id = 0;
};

class tcp_sender {
public:
    using send_fn = std::function<void(net::packet)>;
    using done_fn = std::function<void(sim::tick)>;

    tcp_sender(sim::event_loop& loop, tcp_config cfg, cc_ptr cc, send_fn send);

    // Sends the SYN.
    void start();
    // Stops transmitting new data (long-lived flow shutdown at scenario end).
    void stop() { stopped_ = true; }

    // Appends `bytes` to the application stream (app_limited mode only).
    void app_write(std::uint64_t bytes);

    // Receiver-to-sender path: SYNACK or ACK arrives.
    void on_packet(const net::packet& pkt);

    void set_done_handler(done_fn f) { on_done_ = std::move(f); }

    // --- stats ---
    std::uint64_t delivered_bytes() const { return snd_una_ > 0 ? snd_una_ - 1 : 0; }
    stats::sample_set& rtt_samples() { return rtt_samples_; }
    const stats::sample_set& rtt_samples() const { return rtt_samples_; }
    bool finished() const { return finished_; }
    sim::tick finish_time() const { return finish_time_; }
    sim::tick handshake_rtt() const { return handshake_rtt_; }
    std::uint64_t cwnd_bytes() const { return cc_->cwnd(); }
    const congestion_controller& cc() const { return *cc_; }
    std::uint32_t retransmits() const { return retransmit_count_; }
    // True once the sender concluded the path does not deliver ECN (every
    // AccECN feedback counter still zero after enough delivered data — an
    // ECT-stripping middlebox) and reverted to Not-ECT sending with pure
    // loss-based control. Sticky for the connection's lifetime.
    bool ecn_fallback() const { return ecn_fallback_; }

    // Congestion-reaction trace points (CE response, loss recovery, RTO,
    // ECN fallback), with the post-reaction cwnd in the payload.
    void set_tracer(obs::tracer* t) { tracer_ = t; }

private:
    struct segment {
        std::uint64_t seq;   // first byte (1-based stream offset)
        std::uint32_t len;
        sim::tick sent_time;
        std::uint64_t delivered_at_send;
        bool retransmitted = false;
    };

    void try_send();
    void send_segment(std::uint64_t seq, std::uint32_t len, bool is_retx);
    void process_ack(const net::packet& pkt);
    void enter_recovery(sim::tick now);
    void arm_rto();
    void on_rto_fire();
    std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
    std::uint64_t window() const;
    bool more_app_data() const;

    sim::event_loop& loop_;
    tcp_config cfg_;
    cc_ptr cc_;
    send_fn send_;
    done_fn on_done_;

    bool established_ = false;
    bool stopped_ = false;
    bool finished_ = false;
    sim::tick finish_time_ = -1;
    sim::tick syn_time_ = -1;
    sim::tick handshake_rtt_ = -1;

    std::uint64_t snd_una_ = 1;
    std::uint64_t snd_nxt_ = 1;
    std::deque<segment> segments_;

    // RTT estimation (RFC 6298).
    sim::tick srtt_ = 0;
    sim::tick rttvar_ = 0;
    sim::tick rto_ = sim::from_sec(1);
    sim::event_loop::event_id rto_event_ = 0;
    int rto_backoff_ = 0;

    // Recovery state.
    int dupacks_ = 0;
    bool in_recovery_ = false;
    std::uint64_t recovery_point_ = 0;

    // ECN state. The cumulative AccECN counters (24-bit byte option, 3-bit
    // ACE packet field) are differentiated by the wrap-aware trackers shared
    // with the QUIC engine (ecn_feedback.h).
    bool send_cwr_ = false;          // classic: echo CWR on next data segment
    sim::tick last_ecn_reaction_ = -1;
    ecn_counter_tracker eceb_tracker_{24};
    ecn_counter_tracker ace_tracker_{3};
    // ECN path validation (AccECN senders): confirmed once any receiver
    // byte counter moves; fallback once enough data was delivered with
    // every counter still zero (see k_ecn_validate_segments).
    bool ecn_confirmed_ = false;
    bool ecn_fallback_ = false;

    // App-limited stream bound (cumulative bytes written via app_write).
    std::uint64_t app_limit_ = 0;

    // Delivery-rate estimation for BBR.
    std::uint64_t delivered_ = 0;
    sim::tick last_ack_time_ = 0;

    // Pacing.
    sim::tick next_send_allowed_ = 0;
    bool send_pending_ = false;

    std::uint64_t pkt_counter_ = 0;
    std::uint32_t retransmit_count_ = 0;
    stats::sample_set rtt_samples_;
    obs::tracer* tracer_ = nullptr;
};

class tcp_receiver {
public:
    using send_fn = std::function<void(net::packet)>;
    // In-order delivered byte count after each advance (frame sources key
    // per-frame completion off this).
    using deliver_fn = std::function<void(std::uint64_t inorder_bytes, sim::tick)>;

    tcp_receiver(sim::event_loop& loop, tcp_config cfg, bool accecn, send_fn send_ack);

    // Data (or SYN) arriving at the client.
    void on_packet(const net::packet& pkt);

    void set_deliver_handler(deliver_fn f) { on_deliver_ = std::move(f); }

    // --- stats ---
    std::uint64_t received_bytes() const { return rcv_nxt_ - 1; }
    stats::sample_set& owd_samples() { return owd_samples_; }
    stats::rate_series& goodput() { return goodput_; }
    std::uint64_t ce_packets() const { return ce_packets_; }

private:
    void send_ack(const net::packet& data, sim::tick now);

    sim::event_loop& loop_;
    tcp_config cfg_;
    bool accecn_;
    send_fn send_;
    deliver_fn on_deliver_;

    std::uint64_t rcv_nxt_ = 1;
    std::map<std::uint64_t, std::uint32_t> ooo_;  // seq -> len of out-of-order data

    // Classic ECN echo state: ECE latched until CWR observed.
    bool ece_latched_ = false;
    // AccECN receiver counters.
    std::uint32_t ce_packet_count_ = 5;  // ACE starts at 5 per the draft
    std::uint32_t ect0_bytes_ = 0;
    std::uint32_t ect1_bytes_ = 0;
    std::uint32_t ce_bytes_ = 0;

    std::uint64_t ce_packets_ = 0;
    std::uint64_t pkt_counter_ = 0;
    stats::sample_set owd_samples_;
    stats::rate_series goodput_;
};

}  // namespace l4span::transport
