#include "transport/bbr.h"

namespace l4span::transport {

namespace {
constexpr double k_startup_gain = 2.885;
constexpr double k_drain_gain = 1.0 / 2.885;
constexpr double k_cycle_gains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int k_cycle_len = 8;
constexpr int k_bw_window_rounds = 10;
constexpr sim::tick k_min_rtt_expiry = sim::from_sec(10);
constexpr sim::tick k_probe_rtt_duration = sim::from_ms(200);
constexpr double k_ecn_beta = 0.3;       // v2 inflight_hi reduction factor
constexpr double k_ecn_threshold = 0.05; // CE fraction that triggers a response
}  // namespace

double bbr::max_bw_bps() const
{
    double best = 0.0;
    for (const auto& [round, bps] : bw_samples_) best = std::max(best, bps);
    return best;
}

std::uint64_t bbr::bdp_bytes(double gain) const
{
    const double bw = max_bw_bps();
    if (bw <= 0.0 || min_rtt_ <= 0) return 10ull * mss_;
    return static_cast<std::uint64_t>(gain * bw / 8.0 * sim::to_sec(min_rtt_));
}

void bbr::advance_cycle(sim::tick now)
{
    if (min_rtt_ <= 0) return;
    if (now - cycle_stamp_ < min_rtt_) return;
    cycle_stamp_ = now;
    cycle_index_ = (cycle_index_ + 1) % k_cycle_len;
    pacing_gain_ = k_cycle_gains[cycle_index_];
}

void bbr::on_ack(const ack_sample& s)
{
    const sim::tick now = s.now;

    // Round accounting (~one RTT per round).
    const sim::tick rtt_ref = s.srtt > 0 ? s.srtt : sim::from_ms(25);
    if (now - round_start_ >= rtt_ref) {
        round_start_ = now;
        ++round_;
        // v2: fold per-round CE fraction into the inflight bound.
        if (v2_ && acked_bytes_rtt_ > 0) {
            const double frac = static_cast<double>(ce_bytes_rtt_) /
                                static_cast<double>(acked_bytes_rtt_);
            if (frac > k_ecn_threshold) {
                const std::uint64_t target = std::max<std::uint64_t>(
                    static_cast<std::uint64_t>(
                        static_cast<double>(std::min(inflight_hi_, cwnd_)) *
                        (1.0 - k_ecn_beta * frac)),
                    4ull * mss_);
                inflight_hi_ = target;
                last_ecn_round_ = now;
            } else if (now - last_ecn_round_ > 4 * rtt_ref && inflight_hi_ != ~0ull) {
                // Probe the bound back up when congestion subsides.
                inflight_hi_ += mss_;
            }
        }
        acked_bytes_rtt_ = 0;
        ce_bytes_rtt_ = 0;
    }
    acked_bytes_rtt_ += s.newly_acked;
    ce_bytes_rtt_ += static_cast<std::uint64_t>(s.ce_fraction * s.newly_acked);

    // Bandwidth filter.
    if (s.delivery_rate_bps > 0.0 && !s.app_limited) {
        bw_samples_.emplace_back(round_, s.delivery_rate_bps);
        while (!bw_samples_.empty() &&
               bw_samples_.front().first + k_bw_window_rounds < round_)
            bw_samples_.pop_front();
    }

    // Min-RTT filter.
    if (s.rtt > 0 && (min_rtt_ < 0 || s.rtt < min_rtt_ ||
                      now - min_rtt_stamp_ > k_min_rtt_expiry)) {
        min_rtt_ = s.rtt;
        min_rtt_stamp_ = now;
    }

    switch (mode_) {
    case mode::startup: {
        const double bw = max_bw_bps();
        if (bw > full_bw_ * 1.25) {
            full_bw_ = bw;
            full_bw_count_ = 0;
        } else if (++full_bw_count_ >= 3) {
            mode_ = mode::drain;
            pacing_gain_ = k_drain_gain;
            cwnd_gain_ = 2.0;
        }
        cwnd_ += s.newly_acked;
        break;
    }
    case mode::drain:
        if (s.in_flight <= bdp_bytes(1.0)) {
            mode_ = mode::probe_bw;
            cycle_index_ = 2;  // start in a neutral phase
            pacing_gain_ = 1.0;
            cycle_stamp_ = now;
        }
        break;
    case mode::probe_bw:
        advance_cycle(now);
        if (now - min_rtt_stamp_ > k_min_rtt_expiry) {
            mode_ = mode::probe_rtt;
            probe_rtt_done_ = now + k_probe_rtt_duration;
        }
        break;
    case mode::probe_rtt:
        if (now >= probe_rtt_done_) {
            min_rtt_stamp_ = now;
            mode_ = mode::probe_bw;
            pacing_gain_ = 1.0;
            cycle_stamp_ = now;
        }
        break;
    }

    if (mode_ != mode::startup) {
        cwnd_ = bdp_bytes(cwnd_gain_);
        cwnd_ = std::max<std::uint64_t>(cwnd_, 4ull * mss_);
    }
}

std::uint64_t bbr::cwnd() const
{
    std::uint64_t w = cwnd_;
    if (mode_ == mode::probe_rtt) w = 4ull * mss_;
    if (v2_) w = std::min(w, inflight_hi_);
    return std::max<std::uint64_t>(w, 2ull * mss_);
}

double bbr::pacing_bps() const
{
    const double bw = max_bw_bps();
    if (bw <= 0.0) return 0.0;
    return pacing_gain_ * bw;
}

void bbr::on_loss(sim::tick)
{
    if (!v2_) return;  // v1 shrugs off loss
    inflight_hi_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(std::min(inflight_hi_, cwnd_)) *
                                   (1.0 - k_ecn_beta)),
        4ull * mss_);
}

void bbr::on_ecn(sim::tick)
{
    // v1 ignores ECN entirely; v2 responds via the per-round CE accounting
    // in on_ack (AccECN path), so nothing extra here.
}

void bbr::on_rto(sim::tick)
{
    cwnd_ = 4ull * mss_;
    full_bw_ = 0.0;
    full_bw_count_ = 0;
    if (v2_) inflight_hi_ = ~0ull;
    mode_ = mode::startup;
    pacing_gain_ = k_startup_gain;
    cwnd_gain_ = k_startup_gain;
}

}  // namespace l4span::transport
