// BBR v1 and v2 (Cardwell et al.), model-based controllers.
//
// v1 probes bandwidth/RTT and largely ignores loss and ECN (appendix B of
// the paper). v2 adds inflight bounds and a DCTCP-like response to AccECN
// CE feedback, which is why the paper groups it with L4S senders.
#pragma once

#include <algorithm>
#include <deque>

#include "transport/cc.h"

namespace l4span::transport {

class bbr : public congestion_controller {
public:
    explicit bbr(std::uint32_t mss, bool v2) : mss_(mss), v2_(v2), cwnd_(10ull * mss) {}

    void on_ack(const ack_sample& s) override;
    void on_loss(sim::tick now) override;
    void on_ecn(sim::tick now) override;
    void on_rto(sim::tick now) override;

    std::uint64_t cwnd() const override;
    double pacing_bps() const override;

    net::ecn data_ecn() const override { return v2_ ? net::ecn::ect1 : net::ecn::ect0; }
    bool uses_accecn() const override { return v2_; }
    std::string name() const override { return v2_ ? "bbr2" : "bbr"; }

    double bandwidth_bps() const { return max_bw_bps(); }
    sim::tick min_rtt() const { return min_rtt_; }

private:
    enum class mode { startup, drain, probe_bw, probe_rtt };

    double max_bw_bps() const;
    std::uint64_t bdp_bytes(double gain) const;
    void advance_cycle(sim::tick now);

    std::uint32_t mss_;
    bool v2_;
    std::uint64_t cwnd_;

    mode mode_ = mode::startup;
    double pacing_gain_ = 2.885;
    double cwnd_gain_ = 2.885;

    // Windowed-max bandwidth filter (per-"round" max over ~10 rounds).
    std::deque<std::pair<std::uint64_t, double>> bw_samples_;  // (round, bps)
    std::uint64_t round_ = 0;
    sim::tick round_start_ = 0;

    sim::tick min_rtt_ = -1;
    sim::tick min_rtt_stamp_ = 0;
    sim::tick probe_rtt_done_ = 0;

    double full_bw_ = 0.0;
    int full_bw_count_ = 0;

    int cycle_index_ = 0;
    sim::tick cycle_stamp_ = 0;

    // v2 inflight bound and ECN accounting.
    std::uint64_t inflight_hi_ = ~0ull;
    std::uint64_t ce_bytes_rtt_ = 0;
    std::uint64_t acked_bytes_rtt_ = 0;
    sim::tick last_ecn_round_ = 0;
};

}  // namespace l4span::transport
