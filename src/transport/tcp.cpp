#include "transport/tcp.h"

#include <algorithm>

namespace l4span::transport {

namespace {
// ECN path validation horizon: if after this many MSS of delivered data the
// receiver's AccECN counters have never moved, no data segment arrived with
// its ECT codepoint intact — an ECT-stripping middlebox — and the sender
// falls back to Not-ECT, loss-based operation (mirrors RFC 9000 §13.4.2).
constexpr std::uint64_t k_ecn_validate_segments = 16;
}  // namespace

// ---------------------------------------------------------------- sender --

tcp_sender::tcp_sender(sim::event_loop& loop, tcp_config cfg, cc_ptr cc, send_fn send)
    : loop_(loop), cfg_(cfg), cc_(std::move(cc)), send_(std::move(send))
{
}

void tcp_sender::start()
{
    net::packet syn;
    syn.ft = cfg_.ft;
    syn.flow_id = cfg_.flow_id;
    syn.pkt_id = ++pkt_counter_;
    syn.sent_time = loop_.now();
    syn.tcp = net::tcp_header{};
    syn.tcp->flags.syn = true;
    if (cc_->uses_accecn()) {
        syn.tcp->flags.ae = syn.tcp->flags.cwr = syn.tcp->flags.ece = true;  // AccECN offer
    } else {
        syn.tcp->flags.cwr = syn.tcp->flags.ece = true;  // classic ECN offer
    }
    syn_time_ = loop_.now();
    send_(std::move(syn));
    arm_rto();
}

std::uint64_t tcp_sender::window() const
{
    return std::min<std::uint64_t>(cc_->cwnd(), cfg_.max_cwnd);
}

bool tcp_sender::more_app_data() const
{
    if (stopped_) return false;
    if (cfg_.app_limited) return snd_nxt_ - 1 < app_limit_;
    if (cfg_.flow_bytes == 0) return true;
    return snd_nxt_ - 1 < cfg_.flow_bytes;
}

void tcp_sender::app_write(std::uint64_t bytes)
{
    app_limit_ += bytes;
    if (established_) try_send();
}

void tcp_sender::try_send()
{
    if (!established_ || finished_) return;
    const sim::tick now = loop_.now();
    const double pace = cc_->pacing_bps();

    while (more_app_data() && bytes_in_flight() + cfg_.mss <= window()) {
        if (pace > 0.0 && now < next_send_allowed_) {
            if (!send_pending_) {
                send_pending_ = true;
                loop_.schedule_at(next_send_allowed_, [this] {
                    send_pending_ = false;
                    try_send();
                });
            }
            return;
        }
        std::uint32_t len = cfg_.mss;
        if (cfg_.app_limited)
            len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(len, app_limit_ - (snd_nxt_ - 1)));
        else if (cfg_.flow_bytes > 0)
            len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(len, cfg_.flow_bytes - (snd_nxt_ - 1)));
        if (len == 0) break;
        send_segment(snd_nxt_, len, false);
        snd_nxt_ += len;
        if (pace > 0.0)
            next_send_allowed_ =
                std::max(next_send_allowed_, now) + sim::tx_time(len, pace);
    }
}

void tcp_sender::send_segment(std::uint64_t seq, std::uint32_t len, bool is_retx)
{
    net::packet p;
    p.ft = cfg_.ft;
    p.flow_id = cfg_.flow_id;
    p.pkt_id = ++pkt_counter_;
    p.sent_time = loop_.now();
    p.payload_bytes = len;
    p.ecn_field = ecn_fallback_ ? net::ecn::not_ect : cc_->data_ecn();
    p.tcp = net::tcp_header{};
    p.tcp->seq = static_cast<std::uint32_t>(seq);
    if (send_cwr_ && !is_retx) {
        p.tcp->flags.cwr = true;
        send_cwr_ = false;
    }

    segment seg;
    seg.seq = seq;
    seg.len = len;
    seg.sent_time = loop_.now();
    seg.delivered_at_send = delivered_;
    seg.retransmitted = is_retx;
    if (is_retx) {
        ++retransmit_count_;
        for (auto& s : segments_) {
            if (s.seq == seq) {
                s.sent_time = seg.sent_time;
                s.retransmitted = true;
                break;
            }
        }
    } else {
        segments_.push_back(seg);
    }
    send_(std::move(p));
    arm_rto();
}

void tcp_sender::on_packet(const net::packet& pkt)
{
    if (!pkt.is_tcp()) return;
    const auto& h = *pkt.tcp;

    if (h.flags.syn && h.flags.ack && !established_) {
        established_ = true;
        handshake_rtt_ = loop_.now() - syn_time_;
        srtt_ = handshake_rtt_;
        rttvar_ = handshake_rtt_ / 2;
        rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
        // Handshake-completing ACK: this is the "subsequent forward packet"
        // L4Span's RTT* estimator observes.
        net::packet ack;
        ack.ft = cfg_.ft;
        ack.flow_id = cfg_.flow_id;
        ack.pkt_id = ++pkt_counter_;
        ack.sent_time = loop_.now();
        ack.tcp = net::tcp_header{};
        ack.tcp->flags.ack = true;
        ack.tcp->ack_seq = 1;
        send_(std::move(ack));
        try_send();
        return;
    }
    if (h.flags.ack && established_) process_ack(pkt);
}

void tcp_sender::process_ack(const net::packet& pkt)
{
    const sim::tick now = loop_.now();
    const auto& h = *pkt.tcp;
    const std::uint64_t ack = h.ack_seq;

    ack_sample s;
    s.now = now;

    // --- AccECN / classic ECN feedback extraction ---
    bool classic_ece = false;
    if (cc_->uses_accecn()) {
        std::uint64_t ce_delta_bytes = 0;
        if (h.accecn.present) {
            ce_delta_bytes = eceb_tracker_.update(h.accecn.eceb);
            // ECN path validation: the receiver's cumulative byte counters
            // move iff data arrives with ECT(0)/ECT(1)/CE intact.
            if (!ecn_confirmed_ &&
                (h.accecn.ee0b | h.accecn.ee1b | h.accecn.eceb) != 0)
                ecn_confirmed_ = true;
        } else {
            // Fall back to the 3-bit ACE packet counter.
            ce_delta_bytes = ace_tracker_.update(h.ace()) * cfg_.mss;
        }
        s.ce_fraction = ce_fraction(ce_delta_bytes, ack > snd_una_ ? ack - snd_una_ : 0);
    } else {
        classic_ece = h.flags.ece;
    }

    if (ack > snd_una_) {
        const std::uint64_t newly = ack - snd_una_;
        s.newly_acked = static_cast<std::uint32_t>(newly);
        delivered_ += newly;
        dupacks_ = 0;

        // RTT + delivery rate from the newest fully-acked, never-retransmitted segment.
        while (!segments_.empty() && segments_.front().seq + segments_.front().len <= ack) {
            const segment& seg = segments_.front();
            if (!seg.retransmitted) {
                const sim::tick rtt = now - seg.sent_time;
                s.rtt = rtt;
                rtt_samples_.add(sim::to_ms(rtt));
                if (srtt_ == 0) {
                    srtt_ = rtt;
                    rttvar_ = rtt / 2;
                } else {
                    const sim::tick err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
                    rttvar_ = (3 * rttvar_ + err) / 4;
                    srtt_ = (7 * srtt_ + rtt) / 8;
                }
                rto_ = std::clamp(srtt_ + std::max<sim::tick>(4 * rttvar_, sim::from_ms(1)),
                                  cfg_.min_rto, cfg_.max_rto);
                const sim::tick interval = now - seg.sent_time;
                if (interval > 0)
                    s.delivery_rate_bps = static_cast<double>(delivered_ - seg.delivered_at_send) *
                                          8.0 / sim::to_sec(interval);
            }
            segments_.pop_front();
        }
        snd_una_ = ack;
        rto_backoff_ = 0;

        if (in_recovery_) {
            if (ack >= recovery_point_) {
                in_recovery_ = false;
            } else if (!segments_.empty()) {
                // NewReno partial ACK: retransmit the next hole.
                send_segment(snd_una_, segments_.front().len, true);
            }
        }
    } else if (ack == snd_una_ && established_ && bytes_in_flight() > 0) {
        // Exact duplicate of the highest cumulative ACK; older (reordered)
        // ACKs are ignored rather than treated as loss hints.
        ++dupacks_;
        if (dupacks_ == 3 && !in_recovery_) {
            enter_recovery(now);
        }
    }

    if (cc_->uses_accecn() && !ecn_confirmed_ && !ecn_fallback_ &&
        cc_->data_ecn() != net::ecn::not_ect &&
        delivered_ >= k_ecn_validate_segments * cfg_.mss) {
        // Enough data delivered and not one byte of it kept its ECT mark:
        // the path strips ECN. Stop marking; loss handling is untouched.
        ecn_fallback_ = true;
        if (tracer_)
            tracer_->emit(now, obs::point::ecn_fallback, obs::reason::strip, 0,
                          cfg_.flow_id, delivered_);
    }

    s.srtt = srtt_;
    s.in_flight = bytes_in_flight();
    s.ece = classic_ece;
    s.app_limited = (cfg_.flow_bytes > 0 || cfg_.app_limited) && !more_app_data();

    if (s.newly_acked > 0 || s.ce_fraction > 0.0) {
        cc_->on_ack(s);
        if (tracer_ && s.ce_fraction > 0.0)
            tracer_->emit(now, obs::point::transport_ce, obs::reason::ce_accecn,
                          0, cfg_.flow_id, cc_->cwnd());
    }

    // Classic ECN: react at most once per RTT, echo CWR.
    if (classic_ece) {
        send_cwr_ = true;
        if (last_ecn_reaction_ < 0 || now - last_ecn_reaction_ >= std::max(srtt_, sim::from_ms(1))) {
            last_ecn_reaction_ = now;
            cc_->on_ecn(now);
            if (tracer_)
                tracer_->emit(now, obs::point::transport_ce,
                              obs::reason::ce_classic, 0, cfg_.flow_id,
                              cc_->cwnd());
        }
    }

    // App-limited streams never "finish" — flow_bytes is a bulk-mode knob.
    if (!cfg_.app_limited && cfg_.flow_bytes > 0 && snd_una_ - 1 >= cfg_.flow_bytes &&
        !finished_) {
        finished_ = true;
        finish_time_ = now;
        if (rto_event_) loop_.cancel(rto_event_);
        if (on_done_) on_done_(now);
        return;
    }

    if (segments_.empty() && rto_event_) {
        loop_.cancel(rto_event_);
        rto_event_ = 0;
    }
    try_send();
}

void tcp_sender::enter_recovery(sim::tick now)
{
    in_recovery_ = true;
    recovery_point_ = snd_nxt_;
    cc_->on_loss(now);
    if (tracer_)
        tracer_->emit(now, obs::point::transport_loss, obs::reason::dupack_loss,
                      0, cfg_.flow_id, cc_->cwnd());
    if (!segments_.empty()) send_segment(segments_.front().seq, segments_.front().len, true);
}

void tcp_sender::arm_rto()
{
    if (rto_event_) loop_.cancel(rto_event_);
    const sim::tick timeout = rto_ << std::min(rto_backoff_, 6);
    rto_event_ = loop_.schedule_after(std::min(timeout, cfg_.max_rto), [this] {
        rto_event_ = 0;
        on_rto_fire();
    });
}

void tcp_sender::on_rto_fire()
{
    if (finished_) return;
    if (!established_) {
        // SYN retransmission.
        ++rto_backoff_;
        start();
        return;
    }
    if (segments_.empty()) return;
    ++rto_backoff_;
    in_recovery_ = false;
    dupacks_ = 0;
    cc_->on_rto(loop_.now());
    if (tracer_)
        tracer_->emit(loop_.now(), obs::point::transport_rto,
                      obs::reason::rto_fire, 0, cfg_.flow_id, cc_->cwnd());
    send_segment(segments_.front().seq, segments_.front().len, true);
}

// -------------------------------------------------------------- receiver --

tcp_receiver::tcp_receiver(sim::event_loop& loop, tcp_config cfg, bool accecn, send_fn send_ack)
    : loop_(loop), cfg_(cfg), accecn_(accecn), send_(std::move(send_ack))
{
}

void tcp_receiver::on_packet(const net::packet& pkt)
{
    if (!pkt.is_tcp()) return;
    const sim::tick now = loop_.now();
    const auto& h = *pkt.tcp;

    if (h.flags.syn && !h.flags.ack) {
        net::packet synack;
        synack.ft = cfg_.ft.reversed();
        synack.flow_id = cfg_.flow_id;
        synack.pkt_id = ++pkt_counter_;
        synack.sent_time = now;
        synack.tcp = net::tcp_header{};
        synack.tcp->flags.syn = true;
        synack.tcp->flags.ack = true;
        synack.tcp->ack_seq = 1;
        if (accecn_) synack.tcp->flags.ae = true;  // AccECN accepted
        else synack.tcp->flags.ece = true;         // classic ECN accepted
        send_(std::move(synack));
        return;
    }
    if (h.flags.ack && pkt.payload_bytes == 0) return;  // bare ACK (handshake completion)
    if (pkt.payload_bytes == 0) return;

    // --- ECN accounting ---
    switch (pkt.ecn_field) {
    case net::ecn::ce:
        ++ce_packets_;
        ++ce_packet_count_;
        ce_bytes_ += pkt.payload_bytes;
        if (!accecn_) ece_latched_ = true;
        break;
    case net::ecn::ect0: ect0_bytes_ += pkt.payload_bytes; break;
    case net::ecn::ect1: ect1_bytes_ += pkt.payload_bytes; break;
    case net::ecn::not_ect: break;
    }
    if (!accecn_ && h.flags.cwr) ece_latched_ = false;

    // --- in-order reassembly ---
    const std::uint64_t seq = h.seq;
    if (seq == rcv_nxt_) {
        rcv_nxt_ += pkt.payload_bytes;
        // Pull any queued out-of-order data that is now contiguous.
        auto it = ooo_.begin();
        while (it != ooo_.end() && it->first <= rcv_nxt_) {
            const std::uint64_t end = it->first + it->second;
            if (end > rcv_nxt_) rcv_nxt_ = end;
            it = ooo_.erase(it);
        }
        if (on_deliver_) on_deliver_(rcv_nxt_ - 1, now);
    } else if (seq > rcv_nxt_) {
        ooo_[seq] = std::max(ooo_[seq], pkt.payload_bytes);
    }
    // duplicates (seq < rcv_nxt_) still generate an ACK

    if (pkt.sent_time >= 0) owd_samples_.add(sim::to_ms(now - pkt.sent_time));
    goodput_.add(now, pkt.payload_bytes);

    send_ack(pkt, now);
}

void tcp_receiver::send_ack(const net::packet& /*data*/, sim::tick now)
{
    net::packet ack;
    ack.ft = cfg_.ft.reversed();
    ack.flow_id = cfg_.flow_id;
    ack.pkt_id = ++pkt_counter_;
    ack.sent_time = now;
    ack.tcp = net::tcp_header{};
    ack.tcp->flags.ack = true;
    ack.tcp->ack_seq = static_cast<std::uint32_t>(rcv_nxt_);
    if (accecn_) {
        ack.tcp->set_ace(static_cast<std::uint8_t>(ce_packet_count_ & 0x7));
        ack.tcp->accecn.present = true;
        ack.tcp->accecn.ee0b = ect0_bytes_ & 0xffffff;
        ack.tcp->accecn.eceb = ce_bytes_ & 0xffffff;
        ack.tcp->accecn.ee1b = ect1_bytes_ & 0xffffff;
    } else {
        ack.tcp->flags.ece = ece_latched_;
    }
    send_(std::move(ack));
}

}  // namespace l4span::transport
