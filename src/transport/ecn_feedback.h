// Wrap-aware cumulative-counter tracking shared by the AccECN (TCP) and
// QUIC feedback paths.
//
// Both feedback formats echo *cumulative* congestion counters that the
// sender differentiates: TCP AccECN carries 24-bit byte counters (plus the
// 3-bit ACE packet counter), QUIC ACK frames carry varint packet counters.
// The subtraction must survive wraparound at the counter's modulus, and the
// very first observation establishes a baseline instead of producing a
// spurious delta. Keeping one implementation here means the TCP and QUIC
// engines cannot drift apart on this arithmetic.
#pragma once

#include <algorithm>
#include <cstdint>

namespace l4span::transport {

// Tracks one cumulative counter reported modulo 2^bits. update() returns
// the increment since the previous report; the first report returns 0 and
// only establishes the baseline (the receiver's counters may start at a
// nonzero value, e.g. the ACE field's initial 5 per the AccECN draft).
class ecn_counter_tracker {
public:
    explicit ecn_counter_tracker(unsigned bits = 64)
        : mask_(bits >= 64 ? ~0ull : (1ull << bits) - 1)
    {
    }

    std::uint64_t update(std::uint64_t reported)
    {
        reported &= mask_;
        if (!have_prev_) {
            have_prev_ = true;
            prev_ = reported;
            return 0;
        }
        const std::uint64_t delta = (reported - prev_) & mask_;
        prev_ = reported;
        return delta;
    }

    bool primed() const { return have_prev_; }

private:
    std::uint64_t mask_;
    std::uint64_t prev_ = 0;
    bool have_prev_ = false;
};

// The per-ACK CE fraction scalable controllers consume: marked units over
// newly acknowledged units (bytes for TCP AccECN, packets for QUIC), with
// the edge cases pinned down in one place — no acknowledged progress but a
// positive CE delta means "everything was marked", and the fraction is
// clamped so counter skew can never report more than full marking.
inline double ce_fraction(std::uint64_t ce_delta, std::uint64_t newly_acked)
{
    if (newly_acked == 0) return ce_delta > 0 ? 1.0 : 0.0;
    return std::min(1.0, static_cast<double>(ce_delta) / static_cast<double>(newly_acked));
}

}  // namespace l4span::transport
