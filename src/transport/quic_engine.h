// Event-driven QUIC-style transport engine: packet-number sender and
// receiver endpoints, parallel to the byte-sequence TCP engine in tcp.h.
//
// What it models (and why, for the paper's dynamics):
// - Monotonic packet numbers with ACK-range (SACK-style) feedback: a lost
//   packet never blocks acknowledgment of later ones, so loss recovery is
//   RACK-style (packet-number + time threshold, RFC 9002) and retransmission
//   always uses a *new* packet number — "retransmits" are data re-sends,
//   never ambiguous wire-level duplicates.
// - QUIC-native ECN: receivers echo cumulative ECT(0)/ECT(1)/CE packet
//   counts in every ACK frame (RFC 9000 §13.4), the AccECN analogue that
//   scalable senders like Prague need. Controllers plug in through the same
//   congestion_controller interface as TCP — reno/cubic/prague/bbr unchanged.
// - Stream multiplexing with per-stream and connection flow control; an
//   interactive source can put each video frame on its own stream.
// - Connection-ID addressing: packets are matched by CID, not five-tuple, so
//   a connection survives a path switch (X2/Xn handover) with no transport
//   state migration — on_path_switch() just rotates to the next issued CID.
//
// ACK frames are round-tripped through net::quic_wire so ACK packets carry
// their true wire size (ranges + ECN counts change the bytes the RAN sees).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"
#include "transport/cc.h"
#include "transport/ecn_feedback.h"
#include "transport/quic_types.h"

namespace l4span::transport {

class quic_sender {
public:
    using send_fn = std::function<void(net::packet)>;
    using done_fn = std::function<void(sim::tick)>;

    quic_sender(sim::event_loop& loop, quic::quic_config cfg, cc_ptr cc, send_fn send);

    // Sends the Initial (padded to 1200 bytes per RFC 9000 §8.1).
    void start();
    // Stops generating fresh bulk data (long-lived flow shutdown).
    void stop() { stopped_ = true; }

    // Appends `bytes` to `stream`'s send buffer (opened on first use); `fin`
    // closes it at the resulting offset. App-limited interactive sources
    // (media::frame_source) drive the engine exclusively through this.
    void write(quic::stream_id_t stream, std::uint64_t bytes, bool fin);

    // Receiver-to-sender path: handshake response or ACK packet arrives.
    void on_packet(const net::packet& pkt);

    // Path switch (handover): rotate to the next pre-issued connection ID.
    // No transport state is touched — that is the point of CID addressing.
    void on_path_switch();

    void set_done_handler(done_fn f) { on_done_ = std::move(f); }

    // --- stats ---
    std::uint64_t delivered_bytes() const { return delivered_; }  // acked stream bytes
    stats::sample_set& rtt_samples() { return rtt_samples_; }
    const stats::sample_set& rtt_samples() const { return rtt_samples_; }
    bool finished() const { return finished_; }
    sim::tick finish_time() const { return finish_time_; }
    sim::tick handshake_rtt() const { return handshake_rtt_; }
    std::uint64_t cwnd_bytes() const { return cc_->cwnd(); }
    const congestion_controller& cc() const { return *cc_; }
    // Data re-sends (RACK-declared losses and PTO probes carrying old data).
    std::uint32_t retransmits() const { return retransmit_count_; }
    std::uint32_t lost_packets() const { return lost_packets_; }
    // True once ECN validation (RFC 9000 §13.4.2) concluded the path does
    // not deliver ECN-marked packets — every ACK_ECN count still zero after
    // enough delivered data — and the sender reverted to Not-ECT sending.
    // Sticky for the connection's lifetime.
    bool ecn_fallback() const { return ecn_fallback_; }
    std::uint32_t path_migrations() const { return path_migrations_; }
    quic::cid_t active_cid() const { return cfg_.cid_base + active_cid_index_; }
    std::uint64_t packets_sent() const { return next_pn_; }

    // Congestion-reaction trace points (CE response, RACK loss, PTO
    // collapse, ECN fallback), with the post-reaction cwnd in the payload.
    void set_tracer(obs::tracer* t) { tracer_ = t; }

private:
    struct stream_tx {
        std::uint64_t write_offset = 0;  // bytes the app has appended
        std::uint64_t next_offset = 0;   // next fresh byte to put on the wire
        bool unbounded = false;          // long-lived bulk: data never runs out
        bool fin_pending = false;        // FIN scheduled at write_offset
        bool fin_sent = false;
        std::uint64_t max_data = 0;      // peer-granted MAX_STREAM_DATA
    };
    struct sent_packet {
        sim::tick sent_time = 0;
        quic::stream_frame stream;       // len == 0: no stream payload
        std::uint64_t delivered_at_send = 0;
        bool handshake = false;
    };

    using stream_map = std::map<quic::stream_id_t, stream_tx>;

    void try_send();
    void send_packet(const quic::stream_frame& frame, bool handshake);
    void process_ack(const net::quic::ack_frame& af, sim::tick now);
    void detect_losses(quic::pn_t largest, sim::tick now);
    void maybe_finish(sim::tick now);
    void arm_pto();
    void on_pto_fire();
    std::uint64_t window() const;
    stream_map::iterator next_sendable_stream();

    sim::event_loop& loop_;
    quic::quic_config cfg_;
    cc_ptr cc_;
    send_fn send_;
    done_fn on_done_;

    bool established_ = false;
    bool stopped_ = false;
    bool finished_ = false;
    sim::tick finish_time_ = -1;
    sim::tick initial_time_ = -1;
    sim::tick handshake_rtt_ = -1;

    quic::pn_t next_pn_ = 0;
    std::map<quic::pn_t, sent_packet> unacked_;
    std::uint64_t bytes_in_flight_ = 0;        // stream bytes outstanding
    stream_map streams_;
    std::deque<quic::stream_frame> retx_q_;    // lost chunks awaiting re-send

    // Connection-level flow control (fresh data only; re-sends are free).
    std::uint64_t conn_data_sent_ = 0;
    std::uint64_t conn_credit_ = 0;

    // RTT estimation (RFC 9002 §5).
    sim::tick srtt_ = 0;
    sim::tick rttvar_ = 0;
    sim::tick latest_rtt_ = 0;
    sim::tick pto_ = sim::from_sec(1);
    sim::event_loop::event_id pto_event_ = 0;
    int pto_backoff_ = 0;

    // Loss-episode tracking: one cc->on_loss per flight, like TCP recovery.
    quic::pn_t recovery_until_pn_ = 0;
    bool in_recovery_ = false;

    // ECN feedback: cumulative packet counters from ACK_ECN frames.
    ecn_counter_tracker ce_tracker_{64};
    sim::tick last_ecn_reaction_ = -1;  // classic (non-AccECN) rate limiting
    // ECN path validation (RFC 9000 §13.4.2): confirmed once any ACK_ECN
    // count moves; fallback once enough data arrived with all counts zero.
    bool ecn_confirmed_ = false;
    bool ecn_fallback_ = false;

    // Delivery-rate estimation for BBR.
    std::uint64_t delivered_ = 0;

    // Pacing.
    sim::tick next_send_allowed_ = 0;
    bool send_pending_ = false;

    int active_cid_index_ = 0;
    std::uint32_t path_migrations_ = 0;
    std::uint64_t pkt_counter_ = 0;
    std::uint32_t retransmit_count_ = 0;
    std::uint32_t lost_packets_ = 0;
    stats::sample_set rtt_samples_;
    obs::tracer* tracer_ = nullptr;
};

class quic_receiver {
public:
    using send_fn = std::function<void(net::packet)>;
    // In-order connection bytes after each advance (frame sources in
    // byte-stream mode key off this).
    using deliver_fn = std::function<void(std::uint64_t inorder_bytes, sim::tick)>;
    // A stream closed by FIN became fully delivered.
    using stream_complete_fn = std::function<void(quic::stream_id_t, sim::tick)>;

    quic_receiver(sim::event_loop& loop, quic::quic_config cfg, send_fn send_ack);

    // Data (or Initial) arriving at the client.
    void on_packet(const net::packet& pkt);

    // Path switch: the peer rotates its CID; all issued CIDs stay valid.
    void on_path_switch() { ++path_migrations_; }

    void set_deliver_handler(deliver_fn f) { on_deliver_ = std::move(f); }
    void set_stream_complete_handler(stream_complete_fn f) { on_stream_ = std::move(f); }

    // --- stats ---
    std::uint64_t received_bytes() const { return delivered_total_; }
    stats::sample_set& owd_samples() { return owd_samples_; }
    stats::rate_series& goodput() { return goodput_; }
    std::uint64_t ce_packets() const { return ecn_.ce; }
    const net::quic::ecn_counts& ecn() const { return ecn_; }
    std::uint64_t cid_drops() const { return cid_drops_; }
    std::uint32_t path_migrations() const { return path_migrations_; }
    std::size_t ack_range_count() const { return ranges_.size(); }

private:
    struct stream_rx {
        std::uint64_t next = 0;                        // in-order point
        std::map<std::uint64_t, std::uint32_t> ooo;    // offset -> len
        std::int64_t fin_total = -1;                   // final size once known
        bool complete = false;
    };

    void record_pn(quic::pn_t pn);
    void on_stream_frame(const quic::stream_frame& f, sim::tick now);
    void send_ack(quic::stream_id_t stream, bool had_stream, sim::tick now);

    sim::event_loop& loop_;
    quic::quic_config cfg_;
    send_fn send_;
    deliver_fn on_deliver_;
    stream_complete_fn on_stream_;

    std::vector<net::quic::ack_range> ranges_;  // ascending; capped at 32
    net::quic::ecn_counts ecn_;
    std::map<quic::stream_id_t, stream_rx> streams_;
    std::uint64_t delivered_total_ = 0;

    quic::pn_t tx_pn_ = 0;
    std::uint64_t cid_drops_ = 0;
    std::uint32_t path_migrations_ = 0;
    std::uint64_t pkt_counter_ = 0;
    stats::sample_set owd_samples_;
    stats::rate_series goodput_;
};

}  // namespace l4span::transport
