// TCP Reno (RFC 5681): AIMD with beta = 1/2, ECT(0) data, classic ECN echo
// treated exactly like loss (RFC 3168).
#pragma once

#include "transport/cc.h"

namespace l4span::transport {

class reno : public congestion_controller {
public:
    explicit reno(std::uint32_t mss) : mss_(mss), cwnd_(10ull * mss) {}

    void on_ack(const ack_sample& s) override
    {
        if (cwnd_ < ssthresh_) {
            cwnd_ += s.newly_acked;  // slow start
        } else {
            acked_accum_ += s.newly_acked;
            if (acked_accum_ >= cwnd_) {  // ~1 MSS per RTT
                acked_accum_ -= cwnd_;
                cwnd_ += mss_;
            }
        }
    }

    void on_loss(sim::tick) override
    {
        ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * mss_);
        cwnd_ = ssthresh_;
    }

    void on_rto(sim::tick) override
    {
        ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * mss_);
        cwnd_ = mss_;
    }

    std::uint64_t cwnd() const override { return cwnd_; }
    net::ecn data_ecn() const override { return net::ecn::ect0; }
    std::string name() const override { return "reno"; }

    static constexpr double beta() { return 0.5; }

private:
    std::uint32_t mss_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_ = ~0ull;
    std::uint64_t acked_accum_ = 0;
};

}  // namespace l4span::transport
