// CUBIC (RFC 8312): cubic window growth with beta = 0.7, TCP-friendly
// region, fast convergence. ECT(0) data; CE treated like loss.
#pragma once

#include <algorithm>
#include <cmath>

#include "transport/cc.h"

namespace l4span::transport {

class cubic : public congestion_controller {
public:
    explicit cubic(std::uint32_t mss) : mss_(mss), cwnd_(10ull * mss) {}

    void on_ack(const ack_sample& s) override
    {
        if (cwnd_ < ssthresh_) {
            cwnd_ += s.newly_acked;
            return;
        }
        const double rtt_s = sim::to_sec(s.srtt > 0 ? s.srtt : sim::from_ms(100));
        if (epoch_start_ < 0) {
            epoch_start_ = s.now;
            const double w_max_seg = w_max_ / mss_;
            const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
            k_ = w_max_seg > cwnd_seg
                     ? std::cbrt((w_max_seg - cwnd_seg) / k_c)
                     : 0.0;
            w_est_ = cwnd_seg;
        }
        const double t = sim::to_sec(s.now - epoch_start_);
        const double w_max_seg = w_max_ / mss_;
        const double target_seg = k_c * std::pow(t + rtt_s - k_, 3.0) + w_max_seg;
        // TCP-friendly region (Reno-equivalent growth).
        w_est_ += 3.0 * (1.0 - k_beta) / (1.0 + k_beta) *
                  (static_cast<double>(s.newly_acked) / static_cast<double>(cwnd_));
        const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
        double next_seg = cwnd_seg;
        if (target_seg > cwnd_seg)
            next_seg = cwnd_seg + (target_seg - cwnd_seg) / cwnd_seg *
                                      (static_cast<double>(s.newly_acked) / mss_);
        else
            next_seg = cwnd_seg + 0.01 * (static_cast<double>(s.newly_acked) / mss_) /
                                      cwnd_seg;
        next_seg = std::max(next_seg, w_est_);
        cwnd_ = static_cast<std::uint64_t>(next_seg * mss_);
    }

    void on_loss(sim::tick) override
    {
        // Fast convergence: release bandwidth when W_max shrinks.
        const double cwnd_d = static_cast<double>(cwnd_);
        w_max_ = cwnd_d < w_max_ ? cwnd_d * (2.0 - k_beta) / 2.0 : cwnd_d;
        cwnd_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(cwnd_d * k_beta),
                                        2ull * mss_);
        ssthresh_ = cwnd_;
        epoch_start_ = -1;
    }

    void on_rto(sim::tick) override
    {
        w_max_ = static_cast<double>(cwnd_);
        ssthresh_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(cwnd_ * k_beta),
                                            2ull * mss_);
        cwnd_ = mss_;
        epoch_start_ = -1;
    }

    std::uint64_t cwnd() const override { return cwnd_; }
    net::ecn data_ecn() const override { return net::ecn::ect0; }
    std::string name() const override { return "cubic"; }

    static constexpr double beta() { return k_beta; }

private:
    static constexpr double k_c = 0.4;     // cubic scaling constant (segments/s^3)
    static constexpr double k_beta = 0.7;  // multiplicative decrease

    std::uint32_t mss_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_ = ~0ull;
    double w_max_ = 0.0;
    double w_est_ = 0.0;
    double k_ = 0.0;
    sim::tick epoch_start_ = -1;
};

}  // namespace l4span::transport
