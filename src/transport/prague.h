// TCP Prague: the L4S reference sender (Briscoe et al., "Implementing the
// Prague Requirements"). ECT(1) data, AccECN feedback, DCTCP-style EWMA of
// the CE fraction, multiplicative decrease by alpha/2 at most once per RTT,
// immediate return to additive increase (the "slightly pressed brake" of
// §2 of the paper).
#pragma once

#include <algorithm>

#include "transport/cc.h"

namespace l4span::transport {

class prague : public congestion_controller {
public:
    explicit prague(std::uint32_t mss) : mss_(mss), cwnd_(10ull * mss) {}

    void on_ack(const ack_sample& s) override
    {
        bytes_acked_rtt_ += s.newly_acked;
        ce_bytes_rtt_ += static_cast<std::uint64_t>(s.ce_fraction * s.newly_acked);
        srtt_ = s.srtt;

        // Per-RTT virtual round: fold the CE fraction into alpha.
        if (s.now - round_start_ >= (s.srtt > 0 ? s.srtt : sim::from_ms(25))) {
            const double frac = bytes_acked_rtt_ > 0
                                    ? static_cast<double>(ce_bytes_rtt_) /
                                          static_cast<double>(bytes_acked_rtt_)
                                    : 0.0;
            alpha_ = (1.0 - k_gain) * alpha_ + k_gain * frac;
            if (ce_bytes_rtt_ > 0) {
                // Multiplicative decrease once per round, then resume AI.
                cwnd_ = std::max<std::uint64_t>(
                    static_cast<std::uint64_t>(cwnd_ * (1.0 - alpha_ / 2.0)), 2ull * mss_);
                ssthresh_ = cwnd_;
                in_slow_start_ = false;
            }
            bytes_acked_rtt_ = 0;
            ce_bytes_rtt_ = 0;
            round_start_ = s.now;
        }

        if (in_slow_start_ && s.ce_fraction > 0.0) in_slow_start_ = false;
        if (in_slow_start_) {
            cwnd_ += s.newly_acked;
        } else {
            acked_accum_ += s.newly_acked;
            if (acked_accum_ >= cwnd_) {
                acked_accum_ -= cwnd_;
                cwnd_ += mss_;
            }
        }
    }

    void on_loss(sim::tick) override
    {
        cwnd_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * mss_);
        ssthresh_ = cwnd_;
        in_slow_start_ = false;
    }

    void on_ecn(sim::tick now) override { on_loss(now); }

    void on_rto(sim::tick) override
    {
        ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * mss_);
        cwnd_ = mss_;
        in_slow_start_ = true;
    }

    std::uint64_t cwnd() const override { return cwnd_; }

    double pacing_bps() const override
    {
        if (srtt_ <= 0) return 0.0;
        // Pace at ~cwnd/RTT with a small headroom so ACK clocking keeps up.
        return static_cast<double>(cwnd_) * 8.0 / sim::to_sec(srtt_) * 1.2;
    }

    net::ecn data_ecn() const override { return net::ecn::ect1; }
    bool uses_accecn() const override { return true; }
    std::string name() const override { return "prague"; }

    double alpha() const { return alpha_; }

private:
    static constexpr double k_gain = 1.0 / 16.0;  // DCTCP g

    std::uint32_t mss_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_ = ~0ull;
    std::uint64_t acked_accum_ = 0;
    bool in_slow_start_ = true;
    double alpha_ = 0.0;
    sim::tick round_start_ = 0;
    sim::tick srtt_ = 0;
    std::uint64_t bytes_acked_rtt_ = 0;
    std::uint64_t ce_bytes_rtt_ = 0;
};

}  // namespace l4span::transport
