#include "transport/quic_engine.h"

#include <algorithm>

namespace l4span::transport {

namespace {

constexpr std::uint32_t k_initial_bytes = 1200;  // RFC 9000 §8.1 padding

const quic::packet_payload* payload_of(const net::packet& pkt)
{
    if (!pkt.is_udp() || !pkt.app_data) return nullptr;
    return static_cast<const quic::packet_payload*>(pkt.app_data.get());
}

}  // namespace

// ---------------------------------------------------------------- sender --

quic_sender::quic_sender(sim::event_loop& loop, quic::quic_config cfg, cc_ptr cc,
                         send_fn send)
    : loop_(loop), cfg_(cfg), cc_(std::move(cc)), send_(std::move(send))
{
    conn_credit_ = cfg_.conn_flow_window;
    // QUIC ECN counters start at 0 (RFC 9000 §13.4), unlike TCP's ACE field:
    // prime the tracker so a CE mark in the very first ACK is not absorbed
    // as baseline.
    ce_tracker_.update(0);
}

void quic_sender::start()
{
    if (!cfg_.app_limited) {
        // Bulk mode: stream 0 carries the whole flow, like the TCP engine's
        // byte stream. flow_bytes == 0 means a long-lived flow.
        stream_tx& s = streams_[0];
        s.max_data = cfg_.stream_flow_window;
        if (cfg_.flow_bytes > 0) {
            s.write_offset = cfg_.flow_bytes;
            s.fin_pending = true;
        } else {
            s.unbounded = true;
        }
    }
    initial_time_ = loop_.now();
    send_packet(quic::stream_frame{}, /*handshake=*/true);
}

void quic_sender::write(quic::stream_id_t stream, std::uint64_t bytes, bool fin)
{
    stream_tx& s = streams_[stream];
    if (s.max_data == 0) s.max_data = cfg_.stream_flow_window;
    s.write_offset += bytes;
    if (fin) s.fin_pending = true;
    if (established_) try_send();
}

void quic_sender::on_path_switch()
{
    if (active_cid_index_ + 1 < cfg_.issued_cids) ++active_cid_index_;
    ++path_migrations_;
}

std::uint64_t quic_sender::window() const
{
    return std::min<std::uint64_t>(cc_->cwnd(), cfg_.max_cwnd);
}

quic_sender::stream_map::iterator quic_sender::next_sendable_stream()
{
    auto it = streams_.begin();
    while (it != streams_.end()) {
        stream_tx& s = it->second;
        // Drained frame streams (everything sent, FIN on the wire) are done:
        // re-sends come from retx_q_ copies, so the entry can go. Bulk
        // stream 0 stays for maybe_finish's completion check.
        if (cfg_.app_limited && s.fin_sent && s.next_offset == s.write_offset) {
            it = streams_.erase(it);
            continue;
        }
        const bool has_fresh =
            (s.unbounded && !stopped_) || s.next_offset < s.write_offset;
        if (has_fresh && s.next_offset < s.max_data && conn_data_sent_ < conn_credit_)
            return it;
        ++it;
    }
    return streams_.end();
}

void quic_sender::try_send()
{
    if (!established_ || finished_) return;
    const sim::tick now = loop_.now();
    const double pace = cc_->pacing_bps();

    while (true) {
        // Pick the next chunk: lost data first, then fresh stream data in
        // stream-id order (frame streams are opened in frame order, so this
        // is oldest-frame-first).
        quic::stream_frame frame;
        bool is_retx = false;
        if (!retx_q_.empty()) {
            frame = retx_q_.front();
            is_retx = true;
        } else {
            const auto sit = next_sendable_stream();
            if (sit == streams_.end()) return;  // app- or flow-control-limited
            const stream_tx& s = sit->second;
            std::uint64_t avail =
                s.unbounded ? cfg_.mtu_payload : s.write_offset - s.next_offset;
            avail = std::min(avail, s.max_data - s.next_offset);
            avail = std::min(avail, conn_credit_ - conn_data_sent_);
            const std::uint32_t len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(avail, cfg_.mtu_payload));
            if (len == 0) return;
            frame.id = sit->first;
            frame.offset = s.next_offset;
            frame.len = len;
            frame.fin = s.fin_pending && !s.unbounded &&
                        s.next_offset + len == s.write_offset;
        }
        if (bytes_in_flight_ + frame.len > window()) return;
        if (pace > 0.0 && now < next_send_allowed_) {
            if (!send_pending_) {
                send_pending_ = true;
                loop_.schedule_at(next_send_allowed_, [this] {
                    send_pending_ = false;
                    try_send();
                });
            }
            return;
        }

        if (is_retx) {
            retx_q_.pop_front();
            ++retransmit_count_;
        } else {
            stream_tx& s = streams_[frame.id];
            s.next_offset += frame.len;
            s.fin_sent = s.fin_sent || frame.fin;
            conn_data_sent_ += frame.len;
        }
        send_packet(frame, /*handshake=*/false);
        if (pace > 0.0)
            next_send_allowed_ =
                std::max(next_send_allowed_, now) + sim::tx_time(frame.len, pace);
    }
}

void quic_sender::send_packet(const quic::stream_frame& frame, bool handshake)
{
    net::packet p;
    p.ft = cfg_.ft;
    p.flow_id = cfg_.flow_id;
    p.pkt_id = ++pkt_counter_;
    p.sent_time = loop_.now();
    p.ecn_field =
        (handshake || ecn_fallback_) ? net::ecn::not_ect : cc_->data_ecn();
    p.payload_bytes = handshake ? k_initial_bytes
                                : frame.len + quic::k_stream_frame_overhead +
                                      quic::k_short_header_bytes;

    auto payload = std::make_shared<quic::packet_payload>();
    payload->dcid = active_cid();
    payload->pn = next_pn_;
    payload->handshake = handshake;
    if (frame.len > 0) payload->stream = frame;
    p.app_data = std::move(payload);

    sent_packet rec;
    rec.sent_time = loop_.now();
    rec.stream = frame;
    rec.delivered_at_send = delivered_;
    rec.handshake = handshake;
    unacked_.emplace(next_pn_, rec);
    ++next_pn_;
    bytes_in_flight_ += frame.len;

    send_(std::move(p));
    arm_pto();
}

void quic_sender::on_packet(const net::packet& pkt)
{
    const quic::packet_payload* payload = payload_of(pkt);
    if (!payload) return;
    const sim::tick now = loop_.now();

    if (payload->handshake && !established_) {
        established_ = true;
        handshake_rtt_ = now - initial_time_;
        srtt_ = handshake_rtt_;
        rttvar_ = handshake_rtt_ / 2;
        pto_backoff_ = 0;
        // The Initial (and any PTO re-sends of it) is implicitly confirmed.
        for (auto it = unacked_.begin(); it != unacked_.end();) {
            if (it->second.handshake) it = unacked_.erase(it);
            else ++it;
        }
        if (unacked_.empty() && pto_event_) {
            loop_.cancel(pto_event_);
            pto_event_ = 0;
        }
        try_send();
        return;
    }
    if (!established_) return;

    // Flow-control credit rides the ACK path and only ever extends.
    if (payload->credit) {
        conn_credit_ = std::max(conn_credit_, payload->credit->conn_max_data);
        if (payload->credit->stream) {
            auto it = streams_.find(*payload->credit->stream);
            if (it != streams_.end())
                it->second.max_data =
                    std::max(it->second.max_data, payload->credit->stream_max_data);
        }
    }
    if (payload->ack) process_ack(*payload->ack, now);
}

void quic_sender::process_ack(const net::quic::ack_frame& af, sim::tick now)
{
    ack_sample s;
    s.now = now;
    std::uint64_t newly_bytes = 0;
    std::uint64_t newly_pkts = 0;
    bool largest_newly_acked = false;
    sim::tick largest_sent_time = -1;
    std::uint64_t rate_delivered_at_send = 0;
    sim::tick rate_sent_time = -1;

    for (const auto& range : af.ranges) {
        auto it = unacked_.lower_bound(range.first);
        while (it != unacked_.end() && it->first <= range.last) {
            const sent_packet& sp = it->second;
            newly_bytes += sp.stream.len;
            ++newly_pkts;
            bytes_in_flight_ -= sp.stream.len;
            if (it->first == af.largest) {
                largest_newly_acked = true;
                largest_sent_time = sp.sent_time;
            }
            // Rate sample from the newest acked packet (packet numbers are
            // never reused, so every sample is unambiguous).
            if (sp.sent_time > rate_sent_time) {
                rate_sent_time = sp.sent_time;
                rate_delivered_at_send = sp.delivered_at_send;
            }
            if (sp.stream.len > 0 && !retx_q_.empty()) {
                // A chunk declared lost but now acked late: drop the pending
                // re-send instead of sending spurious duplicate data.
                for (auto rit = retx_q_.begin(); rit != retx_q_.end(); ++rit) {
                    if (rit->id == sp.stream.id && rit->offset == sp.stream.offset) {
                        retx_q_.erase(rit);
                        break;
                    }
                }
            }
            it = unacked_.erase(it);
        }
    }

    if (largest_newly_acked) {
        latest_rtt_ = std::max<sim::tick>(
            now - largest_sent_time - sim::from_us(static_cast<double>(af.ack_delay_us)),
            1);
        rtt_samples_.add(sim::to_ms(latest_rtt_));
        if (srtt_ == 0) {
            srtt_ = latest_rtt_;
            rttvar_ = latest_rtt_ / 2;
        } else {
            const sim::tick err =
                latest_rtt_ > srtt_ ? latest_rtt_ - srtt_ : srtt_ - latest_rtt_;
            rttvar_ = (3 * rttvar_ + err) / 4;
            srtt_ = (7 * srtt_ + latest_rtt_) / 8;
        }
    }
    if (newly_pkts > 0) {
        delivered_ += newly_bytes;
        pto_backoff_ = 0;
        if (rate_sent_time >= 0 && now > rate_sent_time)
            s.delivery_rate_bps = static_cast<double>(delivered_ - rate_delivered_at_send) *
                                  8.0 / sim::to_sec(now - rate_sent_time);
    }

    // ECN feedback: cumulative CE packet counts, wrap-aware via the tracker
    // shared with the TCP AccECN path.
    bool classic_ce = false;
    if (af.ecn_present) {
        const std::uint64_t ce_delta = ce_tracker_.update(af.ecn.ce);
        if (cc_->uses_accecn()) {
            s.ce_fraction = ce_fraction(ce_delta, newly_pkts);
        } else {
            classic_ce = ce_delta > 0;
        }
        // ECN validation (RFC 9000 §13.4.2): the receiver's counts move iff
        // packets arrive with their ECT/CE codepoint intact. All-zero after
        // a validation horizon of delivered data means the path strips ECN:
        // stop marking, keep loss-based control (the codepoint is the only
        // thing that changes).
        if (!ecn_confirmed_ && (af.ecn.ect0 | af.ecn.ect1 | af.ecn.ce) != 0)
            ecn_confirmed_ = true;
        if (!ecn_confirmed_ && !ecn_fallback_ &&
            cc_->data_ecn() != net::ecn::not_ect &&
            delivered_ >= 16ull * cfg_.mtu_payload) {
            ecn_fallback_ = true;
            if (tracer_)
                tracer_->emit(now, obs::point::ecn_fallback, obs::reason::strip,
                              0, cfg_.flow_id, delivered_);
        }
    }

    s.newly_acked = static_cast<std::uint32_t>(newly_bytes);
    s.rtt = largest_newly_acked ? latest_rtt_ : -1;
    s.srtt = srtt_;
    s.in_flight = bytes_in_flight_;
    s.app_limited = retx_q_.empty() && next_sendable_stream() == streams_.end();
    if (s.newly_acked > 0 || s.ce_fraction > 0.0) {
        cc_->on_ack(s);
        if (tracer_ && s.ce_fraction > 0.0)
            tracer_->emit(now, obs::point::transport_ce, obs::reason::ce_accecn,
                          0, cfg_.flow_id, cc_->cwnd());
    }

    // Non-scalable senders treat any CE increment like a classic ECE echo,
    // at most once per RTT (mirrors the TCP engine's classic path).
    if (classic_ce) {
        if (last_ecn_reaction_ < 0 ||
            now - last_ecn_reaction_ >= std::max(srtt_, sim::from_ms(1))) {
            last_ecn_reaction_ = now;
            cc_->on_ecn(now);
            if (tracer_)
                tracer_->emit(now, obs::point::transport_ce,
                              obs::reason::ce_classic, 0, cfg_.flow_id,
                              cc_->cwnd());
        }
    }

    detect_losses(af.largest, now);
    maybe_finish(now);
    if (finished_) return;

    if (unacked_.empty() && pto_event_) {
        loop_.cancel(pto_event_);
        pto_event_ = 0;
    }
    try_send();
}

void quic_sender::detect_losses(quic::pn_t largest, sim::tick now)
{
    const sim::tick loss_delay = std::max<sim::tick>(
        9 * std::max(srtt_, latest_rtt_) / 8, sim::from_ms(1));
    auto it = unacked_.begin();
    while (it != unacked_.end() && it->first < largest) {
        const bool pn_lost =
            largest - it->first >= static_cast<quic::pn_t>(cfg_.pn_loss_threshold);
        const bool time_lost = it->second.sent_time <= now - loss_delay;
        if (!pn_lost && !time_lost) break;  // later packets are younger still
        ++lost_packets_;
        bytes_in_flight_ -= it->second.stream.len;
        if (it->second.stream.len > 0) {
            // A PTO probe may have duplicated this chunk under another PN:
            // queue it for re-send only if no copy is already pending or
            // still in flight, or the receiver would see duplicate data
            // (and retransmit_count_ would overstate the repair work).
            const quic::stream_frame& chunk = it->second.stream;
            bool outstanding = false;
            for (const auto& q : retx_q_)
                if (q.id == chunk.id && q.offset == chunk.offset) {
                    outstanding = true;
                    break;
                }
            if (!outstanding)
                for (const auto& [pn, sp] : unacked_)
                    if (pn != it->first && sp.stream.len > 0 &&
                        sp.stream.id == chunk.id && sp.stream.offset == chunk.offset) {
                        outstanding = true;
                        break;
                    }
            if (!outstanding) retx_q_.push_back(chunk);
        }
        if (it->first >= recovery_until_pn_) {
            // One congestion response per flight, like TCP's recovery episode.
            cc_->on_loss(now);
            recovery_until_pn_ = next_pn_;
            if (tracer_)
                tracer_->emit(now, obs::point::transport_loss,
                              obs::reason::rack_loss, 0, cfg_.flow_id,
                              cc_->cwnd());
        }
        it = unacked_.erase(it);
    }
}

void quic_sender::maybe_finish(sim::tick now)
{
    // App-limited connections never "finish" (flow_bytes is bulk-mode only,
    // mirroring the TCP engine).
    if (finished_ || cfg_.app_limited || cfg_.flow_bytes == 0) return;
    const auto it = streams_.find(0);
    if (it == streams_.end()) return;
    const stream_tx& s = it->second;
    if (s.fin_sent && s.next_offset == s.write_offset && bytes_in_flight_ == 0 &&
        retx_q_.empty()) {
        finished_ = true;
        finish_time_ = now;
        if (pto_event_) {
            loop_.cancel(pto_event_);
            pto_event_ = 0;
        }
        if (on_done_) on_done_(now);
    }
}

void quic_sender::arm_pto()
{
    if (pto_event_) loop_.cancel(pto_event_);
    pto_ = std::clamp(srtt_ + std::max<sim::tick>(4 * rttvar_, sim::from_ms(1)),
                      cfg_.min_pto, cfg_.max_pto);
    const sim::tick timeout = pto_ << std::min(pto_backoff_, 6);
    pto_event_ = loop_.schedule_after(std::min(timeout, cfg_.max_pto), [this] {
        pto_event_ = 0;
        on_pto_fire();
    });
}

void quic_sender::on_pto_fire()
{
    if (finished_) return;
    if (!established_) {
        ++pto_backoff_;
        send_packet(quic::stream_frame{}, /*handshake=*/true);
        return;
    }
    if (unacked_.empty()) return;
    ++pto_backoff_;
    // Persistent congestion: repeated PTOs collapse the window like an RTO.
    if (pto_backoff_ >= 2) {
        cc_->on_rto(loop_.now());
        if (tracer_)
            tracer_->emit(loop_.now(), obs::point::transport_rto,
                          obs::reason::rto_fire, 0, cfg_.flow_id, cc_->cwnd());
    }
    // Probe with the oldest outstanding data under a new packet number.
    for (const auto& [pn, sp] : unacked_) {
        if (sp.stream.len > 0) {
            ++retransmit_count_;
            send_packet(sp.stream, /*handshake=*/false);
            return;
        }
    }
    arm_pto();  // nothing probeable: keep the timer alive
}

// -------------------------------------------------------------- receiver --

quic_receiver::quic_receiver(sim::event_loop& loop, quic::quic_config cfg,
                             send_fn send_ack)
    : loop_(loop), cfg_(cfg), send_(std::move(send_ack))
{
}

void quic_receiver::record_pn(quic::pn_t pn)
{
    // Ranges are kept ascending; arrivals are near-monotonic so scanning
    // from the back touches one or two entries.
    for (std::size_t i = ranges_.size(); i-- > 0;) {
        auto& r = ranges_[i];
        if (pn >= r.first && pn <= r.last) return;  // duplicate
        if (pn == r.last + 1) {
            r.last = pn;
            // Coalesce with the next range if the gap closed.
            if (i + 1 < ranges_.size() && ranges_[i + 1].first == pn + 1) {
                r.last = ranges_[i + 1].last;
                ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
            }
            return;
        }
        if (pn + 1 == r.first) {
            r.first = pn;
            if (i > 0 && ranges_[i - 1].last + 1 == pn) {
                ranges_[i - 1].last = r.last;
                ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i));
            }
            return;
        }
        if (pn > r.last) {
            ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                           {pn, pn});
            return;
        }
    }
    ranges_.insert(ranges_.begin(), {pn, pn});
    // Bound the ACK frame: drop the oldest run once past 32 ranges (the
    // sender has long since declared anything that old acked or lost).
    if (ranges_.size() > 32) ranges_.erase(ranges_.begin());
}

void quic_receiver::on_packet(const net::packet& pkt)
{
    const quic::packet_payload* payload = payload_of(pkt);
    if (!payload) return;
    // CID addressing: anything outside the issued set is not this connection.
    if (payload->dcid < cfg_.cid_base ||
        payload->dcid >= cfg_.cid_base + static_cast<quic::cid_t>(cfg_.issued_cids)) {
        ++cid_drops_;
        return;
    }
    const sim::tick now = loop_.now();
    record_pn(payload->pn);

    if (payload->handshake) {
        // Respond so the peer gets its handshake RTT; carries the ACK too.
        net::packet resp;
        resp.ft = cfg_.ft.reversed();
        resp.flow_id = cfg_.flow_id;
        resp.pkt_id = ++pkt_counter_;
        resp.sent_time = now;
        auto rp = std::make_shared<quic::packet_payload>();
        rp->dcid = payload->dcid;
        rp->pn = tx_pn_++;
        rp->handshake = true;
        net::quic::ack_frame af;
        af.largest = ranges_.back().last;
        af.ranges.assign(ranges_.rbegin(), ranges_.rend());
        rp->ack = af;
        resp.payload_bytes = static_cast<std::uint32_t>(
            net::quic::encoded_ack_size(af) + quic::k_short_header_bytes);
        resp.app_data = std::move(rp);
        send_(std::move(resp));
        return;
    }

    // ECN accounting: QUIC counts *packets* per codepoint (RFC 9000 §13.4).
    switch (pkt.ecn_field) {
    case net::ecn::ce: ++ecn_.ce; break;
    case net::ecn::ect0: ++ecn_.ect0; break;
    case net::ecn::ect1: ++ecn_.ect1; break;
    case net::ecn::not_ect: break;
    }

    bool had_stream = false;
    quic::stream_id_t stream = 0;
    if (payload->stream) {
        had_stream = true;
        stream = payload->stream->id;
        on_stream_frame(*payload->stream, now);
        if (pkt.sent_time >= 0) owd_samples_.add(sim::to_ms(now - pkt.sent_time));
        goodput_.add(now, payload->stream->len);
    }
    send_ack(stream, had_stream, now);
}

void quic_receiver::on_stream_frame(const quic::stream_frame& f, sim::tick now)
{
    stream_rx& s = streams_[f.id];
    if (s.complete) return;
    if (f.fin) s.fin_total = static_cast<std::int64_t>(f.offset + f.len);
    const std::uint64_t end = f.offset + f.len;
    if (end <= s.next) return;  // pure duplicate
    if (f.offset > s.next) {
        auto& len = s.ooo[f.offset];
        len = std::max(len, f.len);
        return;
    }
    // In-order (or overlapping) advance, then drain newly contiguous data.
    std::uint64_t advanced = end - s.next;
    s.next = end;
    auto it = s.ooo.begin();
    while (it != s.ooo.end() && it->first <= s.next) {
        const std::uint64_t e2 = it->first + it->second;
        if (e2 > s.next) {
            advanced += e2 - s.next;
            s.next = e2;
        }
        it = s.ooo.erase(it);
    }
    delivered_total_ += advanced;
    if (on_deliver_) on_deliver_(delivered_total_, now);
    if (s.fin_total >= 0 && s.next == static_cast<std::uint64_t>(s.fin_total)) {
        s.complete = true;
        if (on_stream_) on_stream_(f.id, now);
    }
}

void quic_receiver::send_ack(quic::stream_id_t stream, bool had_stream, sim::tick now)
{
    net::quic::ack_frame af;
    af.largest = ranges_.back().last;
    af.ranges.assign(ranges_.rbegin(), ranges_.rend());
    af.ecn_present = true;
    af.ecn = ecn_;

    net::packet ack;
    ack.ft = cfg_.ft.reversed();
    ack.flow_id = cfg_.flow_id;
    ack.pkt_id = ++pkt_counter_;
    ack.sent_time = now;
    // Charge the ACK its genuine encoded size: more ranges and bigger ECN
    // counters mean more bytes on the uplink the RAN has to carry.
    ack.payload_bytes = static_cast<std::uint32_t>(
        net::quic::encoded_ack_size(af) + quic::k_short_header_bytes);

    auto payload = std::make_shared<quic::packet_payload>();
    payload->dcid = cfg_.cid_base;
    payload->pn = tx_pn_++;
    payload->ack = std::move(af);
    quic::flow_credit credit;
    credit.conn_max_data = delivered_total_ + cfg_.conn_flow_window;
    if (had_stream) {
        credit.stream = stream;
        credit.stream_max_data = streams_[stream].next + cfg_.stream_flow_window;
    }
    payload->credit = credit;
    ack.app_data = std::move(payload);
    send_(std::move(ack));
}

}  // namespace l4span::transport
