// Congestion-controller interface for the TCP engine.
//
// Controllers see per-ACK samples (with classic-ECN echo or AccECN CE byte
// fractions), loss/RTO events, and expose a congestion window plus an
// optional pacing rate. The marking strategies in L4Span are derived from
// these controllers' response functions, so their control laws follow the
// published algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/ecn.h"
#include "sim/time.h"

namespace l4span::transport {

struct ack_sample {
    std::uint32_t newly_acked = 0;    // bytes newly cumulatively acked
    sim::tick rtt = -1;               // RTT of the newest acked segment (-1: none)
    sim::tick srtt = 0;               // smoothed RTT maintained by the engine
    bool ece = false;                 // classic ECN echo seen on this ACK
    double ce_fraction = 0.0;         // AccECN: CE bytes / newly acked bytes
    std::uint64_t in_flight = 0;      // bytes outstanding after this ACK
    double delivery_rate_bps = 0.0;   // rate sample for BBR-style controllers
    bool app_limited = false;
    sim::tick now = 0;
};

class congestion_controller {
public:
    virtual ~congestion_controller() = default;

    virtual void on_ack(const ack_sample& s) = 0;
    // Fast-retransmit-level loss (at most once per recovery episode).
    virtual void on_loss(sim::tick now) = 0;
    // Classic ECN congestion signal (engine rate-limits to once per RTT).
    virtual void on_ecn(sim::tick now) { on_loss(now); }
    virtual void on_rto(sim::tick now) = 0;

    virtual std::uint64_t cwnd() const = 0;
    // 0 disables pacing (pure ACK clocking).
    virtual double pacing_bps() const { return 0.0; }

    // ECN codepoint this sender stamps on data packets.
    virtual net::ecn data_ecn() const = 0;
    // Whether the flow negotiates AccECN feedback (L4S senders).
    virtual bool uses_accecn() const { return false; }

    virtual std::string name() const = 0;
};

using cc_ptr = std::unique_ptr<congestion_controller>;

// Factory by algorithm name ("reno", "cubic", "prague", "bbr", "bbr2").
cc_ptr make_cc(const std::string& algorithm, std::uint32_t mss);

}  // namespace l4span::transport
