#include "transport/cc.h"

#include <stdexcept>

#include "transport/bbr.h"
#include "transport/cubic.h"
#include "transport/prague.h"
#include "transport/reno.h"

namespace l4span::transport {

cc_ptr make_cc(const std::string& algorithm, std::uint32_t mss)
{
    if (algorithm == "reno") return std::make_unique<reno>(mss);
    if (algorithm == "cubic") return std::make_unique<cubic>(mss);
    if (algorithm == "prague") return std::make_unique<prague>(mss);
    if (algorithm == "bbr") return std::make_unique<bbr>(mss, false);
    if (algorithm == "bbr2") return std::make_unique<bbr>(mss, true);
    throw std::invalid_argument("unknown congestion controller \"" + algorithm +
                                "\" (valid: reno, cubic, prague, bbr, bbr2)");
}

}  // namespace l4span::transport
