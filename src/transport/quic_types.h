// Structural QUIC packet model: connection IDs, packet numbers, frames.
//
// QUIC rides in UDP datagrams, so the RAN and L4Span see only the outer IP
// header (five-tuple, ECN field, length) — exactly the deployment reality
// the paper's downlink-marking fallback handles. The frame content below is
// carried opaquely in net::packet::app_data; only the endpoints parse it.
// ACK frames are additionally round-tripped through net::quic_wire so ACK
// packets are charged their true wire size.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/five_tuple.h"
#include "net/quic_wire.h"
#include "sim/time.h"

namespace l4span::transport::quic {

using cid_t = std::uint64_t;        // connection ID (sequence within the set)
using pn_t = std::uint64_t;         // monotonic packet number (never reused)
using stream_id_t = std::uint64_t;

inline constexpr std::uint32_t k_short_header_bytes = 1 + 8 + 4;  // flags+CID+PN
inline constexpr std::uint32_t k_stream_frame_overhead = 8;       // type+id+off+len

// STREAM frame: `len` bytes of stream `id` at `offset` (bytes are counted,
// not materialized, like the rest of the packet model).
struct stream_frame {
    stream_id_t id = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    bool fin = false;
};

// MAX_DATA / MAX_STREAM_DATA flow-control credit carried on the ACK path:
// the receiver continuously extends its windows as data is consumed.
struct flow_credit {
    std::uint64_t conn_max_data = 0;
    std::optional<stream_id_t> stream;
    std::uint64_t stream_max_data = 0;
};

// The decoded content of one QUIC packet. Handshake packets model the
// Initial exchange (the sender's first flight and the peer's response, which
// gives the engine its handshake RTT like TCP's SYN–SYNACK); short packets
// carry stream data and/or an ACK frame.
struct packet_payload {
    cid_t dcid = 0;           // destination connection ID the sender used
    pn_t pn = 0;
    bool handshake = false;
    std::optional<net::quic::ack_frame> ack;
    std::optional<stream_frame> stream;
    std::optional<flow_credit> credit;
};

struct quic_config {
    std::uint32_t mtu_payload = 1400;        // stream bytes per short packet
    std::uint64_t max_cwnd = 4ull << 20;
    std::uint64_t flow_bytes = 0;            // bulk stream 0: 0 = unbounded
    bool app_limited = false;                // data arrives via write() only
    std::uint64_t conn_flow_window = 16ull << 20;
    std::uint64_t stream_flow_window = 4ull << 20;
    sim::tick min_pto = sim::from_ms(200);
    sim::tick max_pto = sim::from_sec(60);
    int pn_loss_threshold = 3;               // RACK packet-reordering threshold
    int issued_cids = 4;                     // CIDs pre-issued for migration
    net::five_tuple ft;                      // downlink direction (server->UE)
    std::uint64_t flow_id = 0;
    cid_t cid_base = 1;                      // first CID of the issued set
};

}  // namespace l4span::transport::quic
