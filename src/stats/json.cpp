#include "stats/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace l4span::stats {

namespace {

// Recursive-descent parser. Tracks 1-based line/column for diagnostics and
// bounds nesting depth so adversarial input ("[[[[[...") cannot overflow
// the call stack.
class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    json run()
    {
        json v = value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing garbage after JSON value");
        return v;
    }

private:
    static constexpr int k_max_depth = 64;

    [[noreturn]] void fail(const std::string& msg) const
    {
        throw json_parse_error(msg + " at line " + std::to_string(line_) +
                                   ", column " + std::to_string(column()),
                               line_, column());
    }

    int column() const
    {
        return static_cast<int>(pos_ - line_start_) + 1;
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char get()
    {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            line_start_ = pos_;
        }
        return c;
    }

    void skip_ws()
    {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
            get();
        }
    }

    void expect(char want, const char* what)
    {
        skip_ws();
        if (eof()) fail(std::string("unexpected end of input, expected ") + what);
        if (peek() != want)
            fail(std::string("expected ") + what + ", got '" + peek() + "'");
        get();
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) return false;
        for (std::size_t i = 0; i < word.size(); ++i) get();
        return true;
    }

    json value(int depth)
    {
        if (depth > k_max_depth) fail("nesting deeper than 64 levels");
        skip_ws();
        if (eof()) fail("unexpected end of input, expected a value");
        const int at_line = line_;
        json v;
        const char c = peek();
        if (c == '{') {
            v = object_value(depth);
        } else if (c == '[') {
            v = array_value(depth);
        } else if (c == '"') {
            v = json(string_value());
        } else if (c == 't') {
            if (!literal("true")) fail("invalid literal (expected \"true\")");
            v = json(true);
        } else if (c == 'f') {
            if (!literal("false")) fail("invalid literal (expected \"false\")");
            v = json(false);
        } else if (c == 'n') {
            if (!literal("null")) fail("invalid literal (expected \"null\")");
            v = json();
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            v = json(number_value());
        } else {
            fail(std::string("unexpected character '") + c + "'");
        }
        v.set_line(at_line);
        return v;
    }

    json object_value(int depth)
    {
        get();  // '{'
        json obj = json::object();
        skip_ws();
        if (!eof() && peek() == '}') {
            get();
            return obj;
        }
        for (;;) {
            skip_ws();
            if (eof()) fail("unexpected end of input inside object");
            if (peek() != '"') fail("expected a quoted object key");
            const int key_line = line_;
            std::string key = string_value();
            if (obj.find(key))
                throw json_parse_error("duplicate key \"" + key + "\" at line " +
                                           std::to_string(key_line),
                                       key_line, 1);
            expect(':', "':' after object key");
            obj.set(std::move(key), value(depth + 1));
            skip_ws();
            if (eof()) fail("unexpected end of input inside object");
            const char c = get();
            if (c == '}') return obj;
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    json array_value(int depth)
    {
        get();  // '['
        json arr = json::array();
        skip_ws();
        if (!eof() && peek() == ']') {
            get();
            return arr;
        }
        for (;;) {
            arr.push(value(depth + 1));
            skip_ws();
            if (eof()) fail("unexpected end of input inside array");
            const char c = get();
            if (c == ']') return arr;
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    std::string string_value()
    {
        get();  // '"'
        std::string out;
        for (;;) {
            if (eof()) fail("unterminated string");
            const char c = get();
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string (use \\u escapes)");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (eof()) fail("unterminated escape sequence");
            const char e = get();
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (eof()) fail("unterminated \\u escape");
                    const char h = get();
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("invalid hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are not
                // combined — scenario files are ASCII in practice).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default: fail(std::string("invalid escape '\\") + e + "'");
            }
        }
    }

    double number_value()
    {
        const std::size_t start = pos_;
        if (peek() == '-') get();
        auto digits = [&] {
            bool any = false;
            while (!eof() && peek() >= '0' && peek() <= '9') {
                get();
                any = true;
            }
            return any;
        };
        if (!digits()) fail("invalid number (no digits)");
        if (!eof() && peek() == '.') {
            get();
            if (!digits()) fail("invalid number (no digits after '.')");
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            get();
            if (!eof() && (peek() == '+' || peek() == '-')) get();
            if (!digits()) fail("invalid number (no digits in exponent)");
        }
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v))
            fail("number \"" + token + "\" out of range");
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_start_ = 0;
    int line_ = 1;
};

}  // namespace

json json::parse(std::string_view text)
{
    return parser(text).run();
}

bool json::as_bool() const
{
    if (kind_ != kind::boolean) throw std::logic_error("json: not a boolean");
    return bool_;
}

double json::as_number() const
{
    if (kind_ != kind::number) throw std::logic_error("json: not a number");
    return num_;
}

const std::string& json::as_string() const
{
    if (kind_ != kind::string) throw std::logic_error("json: not a string");
    return str_;
}

const std::vector<std::pair<std::string, json>>& json::members() const
{
    if (kind_ != kind::object) throw std::logic_error("json: not an object");
    return members_;
}

const std::vector<json>& json::elements() const
{
    if (kind_ != kind::array) throw std::logic_error("json: not an array");
    return elements_;
}

const json* json::find(std::string_view key) const
{
    if (kind_ != kind::object) return nullptr;
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

json& json::set(std::string key, json value)
{
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

json& json::push(json value)
{
    elements_.push_back(std::move(value));
    return *this;
}

std::string json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    out.push_back('\n');
    return out;
}

std::string json::dump_compact() const
{
    std::string out;
    write_compact(out);
    return out;
}

void json::write_compact(std::string& out) const
{
    switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: write_number(out, num_); break;
    case kind::string: write_escaped(out, str_); break;
    case kind::object:
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i) out.push_back(',');
            write_escaped(out, members_[i].first);
            out.push_back(':');
            members_[i].second.write_compact(out);
        }
        out.push_back('}');
        break;
    case kind::array:
        out.push_back('[');
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i) out.push_back(',');
            elements_[i].write_compact(out);
        }
        out.push_back(']');
        break;
    }
}

void json::write_escaped(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void json::write_number(std::string& out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
}

void json::write(std::string& out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: write_number(out, num_); break;
    case kind::string: write_escaped(out, str_); break;
    case kind::object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += i ? ",\n" : "\n";
            out += pad;
            write_escaped(out, members_[i].first);
            out += ": ";
            members_[i].second.write(out, indent, depth + 1);
        }
        out.push_back('\n');
        out += close_pad;
        out.push_back('}');
        break;
    case kind::array:
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            out += i ? ",\n" : "\n";
            out += pad;
            elements_[i].write(out, indent, depth + 1);
        }
        out.push_back('\n');
        out += close_pad;
        out.push_back(']');
        break;
    }
}

bool read_text_file(const std::string& path, std::string& out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return false;
    out.clear();
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

bool write_text_file(const std::string& path, const std::string& text)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (n != text.size()) std::fclose(f);
    return ok;
}

}  // namespace l4span::stats
