#include "stats/json.h"

#include <cmath>
#include <cstdio>

namespace l4span::stats {

json& json::set(std::string key, json value)
{
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

json& json::push(json value)
{
    elements_.push_back(std::move(value));
    return *this;
}

std::string json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    out.push_back('\n');
    return out;
}

std::string json::dump_compact() const
{
    std::string out;
    write_compact(out);
    return out;
}

void json::write_compact(std::string& out) const
{
    switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: write_number(out, num_); break;
    case kind::string: write_escaped(out, str_); break;
    case kind::object:
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i) out.push_back(',');
            write_escaped(out, members_[i].first);
            out.push_back(':');
            members_[i].second.write_compact(out);
        }
        out.push_back('}');
        break;
    case kind::array:
        out.push_back('[');
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i) out.push_back(',');
            elements_[i].write_compact(out);
        }
        out.push_back(']');
        break;
    }
}

void json::write_escaped(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void json::write_number(std::string& out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
}

void json::write(std::string& out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: write_number(out, num_); break;
    case kind::string: write_escaped(out, str_); break;
    case kind::object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += i ? ",\n" : "\n";
            out += pad;
            write_escaped(out, members_[i].first);
            out += ": ";
            members_[i].second.write(out, indent, depth + 1);
        }
        out.push_back('\n');
        out += close_pad;
        out.push_back('}');
        break;
    case kind::array:
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            out += i ? ",\n" : "\n";
            out += pad;
            elements_[i].write(out, indent, depth + 1);
        }
        out.push_back('\n');
        out += close_pad;
        out.push_back(']');
        break;
    }
}

bool write_text_file(const std::string& path, const std::string& text)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (n != text.size()) std::fclose(f);
    return ok;
}

}  // namespace l4span::stats
