// Fixed-width time bins over simulated time. Two flavours:
//  * rate_series  — sums bytes per bin, reads back as Mbit/s (throughput plots)
//  * value_series — averages samples per bin (queue length, RTT time-series)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace l4span::stats {

class rate_series {
public:
    explicit rate_series(sim::tick bin_width = sim::from_ms(100)) : width_(bin_width) {}

    void add(sim::tick t, std::int64_t bytes);

    // Mbit/s of the bin containing `t` (0 when out of range).
    double mbps_at(sim::tick t) const;
    std::vector<double> mbps() const;

    sim::tick bin_width() const { return width_; }
    std::size_t bins() const { return byte_bins_.size(); }
    double total_mbps(sim::tick duration) const;
    std::int64_t total_bytes() const { return total_; }

private:
    sim::tick width_;
    std::vector<std::int64_t> byte_bins_;
    std::int64_t total_ = 0;
};

class value_series {
public:
    explicit value_series(sim::tick bin_width = sim::from_ms(100)) : width_(bin_width) {}

    void add(sim::tick t, double v);
    std::vector<double> means() const;
    std::size_t bins() const { return sums_.size(); }

private:
    sim::tick width_;
    std::vector<double> sums_;
    std::vector<std::int64_t> counts_;
};

}  // namespace l4span::stats
