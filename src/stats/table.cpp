#include "stats/table.h"

#include <cstdio>
#include <sstream>

namespace l4span::stats {

std::string table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string table::to_string() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            if (row[c].size() > widths[c]) widths[c] = row[c].size();

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            os << v;
            for (std::size_t pad = v.size(); pad < widths[c] + 2; ++pad) os << ' ';
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

void table::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

}  // namespace l4span::stats
