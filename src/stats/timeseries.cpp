#include "stats/timeseries.h"

namespace l4span::stats {

void rate_series::add(sim::tick t, std::int64_t bytes)
{
    if (t < 0) return;
    const auto bin = static_cast<std::size_t>(t / width_);
    if (byte_bins_.size() <= bin) byte_bins_.resize(bin + 1, 0);
    byte_bins_[bin] += bytes;
    total_ += bytes;
}

double rate_series::mbps_at(sim::tick t) const
{
    if (t < 0) return 0.0;
    const auto bin = static_cast<std::size_t>(t / width_);
    if (bin >= byte_bins_.size()) return 0.0;
    return static_cast<double>(byte_bins_[bin]) * 8.0 / sim::to_sec(width_) / 1e6;
}

std::vector<double> rate_series::mbps() const
{
    std::vector<double> out;
    out.reserve(byte_bins_.size());
    for (auto b : byte_bins_)
        out.push_back(static_cast<double>(b) * 8.0 / sim::to_sec(width_) / 1e6);
    return out;
}

double rate_series::total_mbps(sim::tick duration) const
{
    if (duration <= 0) return 0.0;
    return static_cast<double>(total_) * 8.0 / sim::to_sec(duration) / 1e6;
}

void value_series::add(sim::tick t, double v)
{
    if (t < 0) return;
    const auto bin = static_cast<std::size_t>(t / width_);
    if (sums_.size() <= bin) {
        sums_.resize(bin + 1, 0.0);
        counts_.resize(bin + 1, 0);
    }
    sums_[bin] += v;
    counts_[bin] += 1;
}

std::vector<double> value_series::means() const
{
    std::vector<double> out(sums_.size(), 0.0);
    for (std::size_t i = 0; i < sums_.size(); ++i)
        if (counts_[i] > 0) out[i] = sums_[i] / static_cast<double>(counts_[i]);
    return out;
}

}  // namespace l4span::stats
