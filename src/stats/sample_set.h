// Accumulates scalar samples and answers order statistics (median,
// percentiles, CDF points) plus moments. Used for every distributional
// metric the paper reports (one-way delay, RTT, throughput, queue length).
#pragma once

#include <cstddef>
#include <vector>

namespace l4span::stats {

class sample_set {
public:
    void add(double v);
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    double stddev() const;
    double sum() const { return sum_; }

    // p in [0, 100]; linear interpolation between closest ranks.
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    // n evenly spaced (value, cumulative fraction) points of the empirical CDF.
    struct cdf_point {
        double value;
        double fraction;
    };
    std::vector<cdf_point> cdf(std::size_t n = 20) const;

    // Fraction of samples <= v.
    double fraction_below(double v) const;

    const std::vector<double>& raw() const { return samples_; }
    void clear();

private:
    void ensure_sorted() const;

    std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
};

}  // namespace l4span::stats
