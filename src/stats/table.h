// Minimal fixed-width console table used by the benchmark harnesses to print
// the rows each paper figure/table reports.
#pragma once

#include <string>
#include <vector>

namespace l4span::stats {

class table {
public:
    explicit table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    // Convenience: formats doubles with the given precision.
    static std::string num(double v, int precision = 2);

    std::string to_string() const;
    void print() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace l4span::stats
