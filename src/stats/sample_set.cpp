#include "stats/sample_set.h"

#include <algorithm>
#include <cmath>

namespace l4span::stats {

void sample_set::add(double v)
{
    samples_.push_back(v);
    sum_ += v;
    sum_sq_ += v * v;
    sorted_ = false;
}

void sample_set::ensure_sorted() const
{
    if (!sorted_) {
        auto& s = const_cast<std::vector<double>&>(samples_);
        std::sort(s.begin(), s.end());
        sorted_ = true;
    }
}

double sample_set::min() const
{
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double sample_set::max() const
{
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

double sample_set::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double sample_set::stddev() const
{
    if (samples_.size() < 2) return 0.0;
    const double n = static_cast<double>(samples_.size());
    const double m = sum_ / n;
    const double var = std::max(0.0, sum_sq_ / n - m * m);
    return std::sqrt(var);
}

double sample_set::percentile(double p) const
{
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    const double rank = p / 100.0 * (static_cast<double>(samples_.size()) - 1.0);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<sample_set::cdf_point> sample_set::cdf(std::size_t n) const
{
    std::vector<cdf_point> out;
    if (samples_.empty() || n == 0) return out;
    ensure_sorted();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double f = static_cast<double>(i + 1) / static_cast<double>(n);
        out.push_back({percentile(f * 100.0), f});
    }
    return out;
}

double sample_set::fraction_below(double v) const
{
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), v);
    return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

void sample_set::clear()
{
    samples_.clear();
    sum_ = sum_sq_ = 0.0;
    sorted_ = true;
}

}  // namespace l4span::stats
