// Minimal ordered JSON value tree + serializer for the machine-readable
// per-figure benchmark summaries (BENCH_<fig>.json) — and, since the
// scenario engine, a recursive-descent *parser* so scenario files load back
// into the same value type. Output is deterministic: object keys keep
// insertion order and numbers are formatted with a fixed shortest-roundtrip
// format, so a summary computed from identical results is byte-identical
// regardless of how the grid was scheduled, and export -> parse -> export
// of a scenario document is the identity on bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace l4span::stats {

// Parse failure: the message already embeds "line L, column C" so callers
// can surface it verbatim; the fields are exposed for tests and tooling.
class json_parse_error : public std::runtime_error {
public:
    json_parse_error(const std::string& what, int line, int column)
        : std::runtime_error(what), line_(line), column_(column)
    {
    }
    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_;
    int column_;
};

class json {
public:
    enum class kind : std::uint8_t { null, boolean, number, string, object, array };

    json() : kind_(kind::null) {}
    json(bool b) : kind_(kind::boolean), bool_(b) {}                     // NOLINT
    json(double v) : kind_(kind::number), num_(v) {}                     // NOLINT
    json(int v) : kind_(kind::number), num_(v) {}                        // NOLINT
    json(std::int64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}  // NOLINT
    json(std::uint64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}  // NOLINT
    json(std::string s) : kind_(kind::string), str_(std::move(s)) {}     // NOLINT
    json(const char* s) : kind_(kind::string), str_(s) {}                // NOLINT

    static json object() { json j; j.kind_ = kind::object; return j; }
    static json array() { json j; j.kind_ = kind::array; return j; }

    // Parses a JSON document. Throws json_parse_error (with 1-based
    // line/column) on malformed input, trailing garbage, duplicate object
    // keys, or nesting deeper than an internal bound (so byte soup cannot
    // overflow the stack). Every parsed node remembers its source line —
    // schema binders use it for "key X at line N" diagnostics.
    static json parse(std::string_view text);

    // --- inspection (parser side) ---
    kind type() const { return kind_; }
    bool is_null() const { return kind_ == kind::null; }
    bool is_bool() const { return kind_ == kind::boolean; }
    bool is_number() const { return kind_ == kind::number; }
    bool is_string() const { return kind_ == kind::string; }
    bool is_object() const { return kind_ == kind::object; }
    bool is_array() const { return kind_ == kind::array; }

    // Typed accessors: the caller is expected to have checked the kind
    // (schema binders do and produce actionable errors); a mismatch throws
    // std::logic_error as a programming-error backstop.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const std::vector<std::pair<std::string, json>>& members() const;
    const std::vector<json>& elements() const;

    // Object member lookup; nullptr when absent or not an object.
    const json* find(std::string_view key) const;

    // 1-based source line of this node when it came from parse(); 0 for
    // programmatically built values.
    int line() const { return line_; }
    void set_line(int line) { line_ = line; }

    // Object member (insertion-ordered). Returns *this for chaining.
    json& set(std::string key, json value);
    // Array element.
    json& push(json value);

    std::string dump(int indent = 2) const;
    // Single-line serialization (no trailing newline) for JSONL streams
    // (the obs:: metric snapshots and trace dumps are one value per line).
    std::string dump_compact() const;

private:
    void write(std::string& out, int indent, int depth) const;
    void write_compact(std::string& out) const;
    static void write_escaped(std::string& out, const std::string& s);
    static void write_number(std::string& out, double v);

    kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    int line_ = 0;
    std::string str_;
    std::vector<std::pair<std::string, json>> members_;  // object
    std::vector<json> elements_;                         // array
};

// Writes `text` to `path` (creating parent-less paths as given); returns
// false on I/O failure. Used by benches for their --json summaries.
bool write_text_file(const std::string& path, const std::string& text);

// Reads the whole file into `out`; returns false on I/O failure. Used by
// the scenario loader.
bool read_text_file(const std::string& path, std::string& out);

}  // namespace l4span::stats
