// Minimal ordered JSON value tree + serializer for the machine-readable
// per-figure benchmark summaries (BENCH_<fig>.json). Output is deterministic:
// object keys keep insertion order and numbers are formatted with a fixed
// shortest-roundtrip format, so a summary computed from identical results is
// byte-identical regardless of how the grid was scheduled.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace l4span::stats {

class json {
public:
    json() : kind_(kind::null) {}
    json(bool b) : kind_(kind::boolean), bool_(b) {}                     // NOLINT
    json(double v) : kind_(kind::number), num_(v) {}                     // NOLINT
    json(int v) : kind_(kind::number), num_(v) {}                        // NOLINT
    json(std::int64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}  // NOLINT
    json(std::uint64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}  // NOLINT
    json(std::string s) : kind_(kind::string), str_(std::move(s)) {}     // NOLINT
    json(const char* s) : kind_(kind::string), str_(s) {}                // NOLINT

    static json object() { json j; j.kind_ = kind::object; return j; }
    static json array() { json j; j.kind_ = kind::array; return j; }

    // Object member (insertion-ordered). Returns *this for chaining.
    json& set(std::string key, json value);
    // Array element.
    json& push(json value);

    std::string dump(int indent = 2) const;
    // Single-line serialization (no trailing newline) for JSONL streams
    // (the obs:: metric snapshots and trace dumps are one value per line).
    std::string dump_compact() const;

private:
    enum class kind : std::uint8_t { null, boolean, number, string, object, array };

    void write(std::string& out, int indent, int depth) const;
    void write_compact(std::string& out) const;
    static void write_escaped(std::string& out, const std::string& s);
    static void write_number(std::string& out, double v);

    kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<std::pair<std::string, json>> members_;  // object
    std::vector<json> elements_;                         // array
};

// Writes `text` to `path` (creating parent-less paths as given); returns
// false on I/O failure. Used by benches for their --json summaries.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace l4span::stats
