#include "obs/hub.h"

#include <algorithm>
#include <cstdio>

#include "stats/json.h"

namespace l4span::obs {

hub::hub(std::size_t num_shards, config cfg) : cfg_(std::move(cfg))
{
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
        auto st = std::make_unique<shard_state>();
        st->tr.configure(static_cast<std::uint8_t>(s), cfg_.ring_capacity);
        if (cfg_.lifecycle_flow != ~0ull)
            st->tr.set_lifecycle_flow(cfg_.lifecycle_flow);
        st->tr.set_incident_handler([this, s](sim::tick now, const char* why) {
            record_incident(s, now, why);
        });
        shards_.push_back(std::move(st));
    }
}

void hub::sample(sim::event_loop& loop, std::size_t shard)
{
    shard_state& st = *shards_[shard];
    st.snapshots += st.reg.snapshot_line(loop.now(), st.tr.shard());
    st.snapshots += '\n';
}

void hub::start_sampling(sim::event_loop& loop, std::size_t shard)
{
    loop.schedule_after(cfg_.snapshot_period, [this, &loop, shard] {
        sample(loop, shard);
        start_sampling(loop, shard);
    });
}

std::string hub::event_line(const trace_event& ev)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%lld,\"p\":\"%s\",\"r\":\"%s\",\"s\":%u,\"a\":%lu,"
                  "\"b\":%llu,\"c\":%llu}",
                  static_cast<long long>(ev.t),
                  point_name(static_cast<point>(ev.pt)),
                  reason_name(static_cast<reason>(ev.rsn)),
                  static_cast<unsigned>(ev.shard),
                  static_cast<unsigned long>(ev.a),
                  static_cast<unsigned long long>(ev.b),
                  static_cast<unsigned long long>(ev.c));
    return buf;
}

void hub::record_incident(std::size_t shard, sim::tick now, const char* why)
{
    shard_state& st = *shards_[shard];
    if (st.inc_names.size() >= cfg_.max_incidents) return;

    std::vector<trace_event> tail;
    tail.reserve(cfg_.flight_last_n);
    st.tr.ring().last_n(cfg_.flight_last_n, tail);

    char name[96];
    std::snprintf(name, sizeof(name), "s%zu-%zu-%s", shard, st.inc_names.size(),
                  why);
    auto head = stats::json::object();
    head.set("incident", why)
        .set("t", static_cast<std::int64_t>(now))
        .set("s", static_cast<std::uint64_t>(shard))
        .set("events", static_cast<std::uint64_t>(tail.size()))
        .set("ring_total", st.tr.ring().total());
    std::string body = head.dump_compact();
    body += '\n';
    for (const trace_event& ev : tail) {
        body += event_line(ev);
        body += '\n';
    }
    st.inc_names.emplace_back(name);
    st.inc_bodies.push_back(std::move(body));
}

void hub::note_invariant(std::size_t shard, const char* name, bool ok, sim::tick now)
{
    shard_state& st = *shards_[shard];
    st.tr.emit(now, point::invariant, reason::none, ok ? 0u : 1u);
    if (!ok) record_incident(shard, now, name);
}

void hub::gather_incidents()
{
    incident_names_.clear();
    incident_bodies_.clear();
    for (const auto& st : shards_) {
        for (std::size_t i = 0; i < st->inc_names.size(); ++i) {
            incident_names_.push_back(st->inc_names[i]);
            incident_bodies_.push_back(st->inc_bodies[i]);
        }
    }
}

const std::vector<std::string>& hub::incident_names()
{
    gather_incidents();
    return incident_names_;
}

std::string hub::incident_text(std::size_t i)
{
    gather_incidents();
    return incident_bodies_.at(i);
}

std::size_t hub::incident_count()
{
    gather_incidents();
    return incident_names_.size();
}

std::string hub::metrics_text() const
{
    std::string out;
    for (const auto& st : shards_) out += st->snapshots;
    return out;
}

std::string hub::merged_trace_text() const
{
    // Each ring is internally (time, seq)-ordered; tag events with their
    // per-shard sequence number and merge across shards by
    // (time, shard, seq) — a total order independent of --jobs.
    struct tagged {
        const trace_event* ev;
        std::uint64_t seq;
    };
    std::vector<tagged> all;
    for (const auto& st : shards_) {
        const trace_ring& ring = st->tr.ring();
        const std::uint64_t first = ring.total() - ring.size();
        for (std::size_t i = 0; i < ring.size(); ++i)
            all.push_back({&ring.at(i), first + i});
    }
    std::sort(all.begin(), all.end(), [](const tagged& x, const tagged& y) {
        if (x.ev->t != y.ev->t) return x.ev->t < y.ev->t;
        if (x.ev->shard != y.ev->shard) return x.ev->shard < y.ev->shard;
        return x.seq < y.seq;
    });
    std::string out;
    for (const tagged& tg : all) {
        out += event_line(*tg.ev);
        out += '\n';
    }
    return out;
}

bool hub::finish(sim::tick now)
{
    if (!finished_) {
        finished_ = true;
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            shard_state& st = *shards_[s];
            st.snapshots += st.reg.snapshot_line(now, st.tr.shard());
            st.snapshots += '\n';
        }
    }
    if (cfg_.out_prefix.empty()) return true;

    gather_incidents();
    bool ok = stats::write_text_file(cfg_.out_prefix + ".metrics.jsonl",
                                     metrics_text());
    ok = stats::write_text_file(cfg_.out_prefix + ".trace.jsonl",
                                merged_trace_text()) &&
         ok;
    for (std::size_t i = 0; i < incident_names_.size(); ++i) {
        ok = stats::write_text_file(
                 cfg_.out_prefix + ".incident-" + incident_names_[i] + ".jsonl",
                 incident_bodies_[i]) &&
             ok;
    }
    return ok;
}

}  // namespace l4span::obs
