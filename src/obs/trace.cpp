#include "obs/trace.h"

namespace l4span::obs {

const char* point_name(point p)
{
    switch (p) {
    case point::none: return "none";
    case point::sdap_ingress: return "sdap_ingress";
    case point::ul_ingress: return "ul_ingress";
    case point::rlc_enqueue: return "rlc_enqueue";
    case point::rlc_discard: return "rlc_discard";
    case point::rlc_deliver: return "rlc_deliver";
    case point::mac_tx: return "mac_tx";
    case point::harq_conclude: return "harq_conclude";
    case point::rlf_declared: return "rlf_declared";
    case point::aqm_mark: return "aqm_mark";
    case point::aqm_drop: return "aqm_drop";
    case point::impair: return "impair";
    case point::l4span_dl: return "l4span_dl";
    case point::l4span_ul: return "l4span_ul";
    case point::fault_fire: return "fault_fire";
    case point::ho_start: return "ho_start";
    case point::ho_complete: return "ho_complete";
    case point::cell_outage: return "cell_outage";
    case point::cell_restore: return "cell_restore";
    case point::link_flap: return "link_flap";
    case point::transport_ce: return "transport_ce";
    case point::transport_loss: return "transport_loss";
    case point::transport_rto: return "transport_rto";
    case point::ecn_fallback: return "ecn_fallback";
    case point::lifecycle: return "lifecycle";
    case point::invariant: return "invariant";
    case point::count: break;
    }
    return "?";
}

const char* reason_name(reason r)
{
    switch (r) {
    case reason::none: return "none";
    case reason::rlc_full: return "rlc_full";
    case reason::hook_drop: return "hook_drop";
    case reason::pass: return "pass";
    case reason::control: return "control";
    case reason::ce_upstream: return "ce_upstream";
    case reason::tentative_mark: return "tentative_mark";
    case reason::ce_mark: return "ce_mark";
    case reason::drop_non_ecn: return "drop_non_ecn";
    case reason::ack_ace: return "ack_ace";
    case reason::ack_ece: return "ack_ece";
    case reason::queue_overflow: return "queue_overflow";
    case reason::l4s_mark: return "l4s_mark";
    case reason::classic_mark: return "classic_mark";
    case reason::classic_drop: return "classic_drop";
    case reason::codel_mark: return "codel_mark";
    case reason::codel_drop: return "codel_drop";
    case reason::remark: return "remark";
    case reason::bleach: return "bleach";
    case reason::strip: return "strip";
    case reason::gilbert_loss: return "gilbert_loss";
    case reason::reorder: return "reorder";
    case reason::duplicate: return "duplicate";
    case reason::harq_ok: return "harq_ok";
    case reason::harq_retx: return "harq_retx";
    case reason::harq_fail: return "harq_fail";
    case reason::outage: return "outage";
    case reason::fault_rlf: return "fault_rlf";
    case reason::fault_ho_failure: return "fault_ho_failure";
    case reason::fault_cell_outage: return "fault_cell_outage";
    case reason::fault_link_flap: return "fault_link_flap";
    case reason::fault_impair_swap: return "fault_impair_swap";
    case reason::ho_sabotaged: return "ho_sabotaged";
    case reason::rollback: return "rollback";
    case reason::reestablish: return "reestablish";
    case reason::ce_classic: return "ce_classic";
    case reason::ce_accecn: return "ce_accecn";
    case reason::rack_loss: return "rack_loss";
    case reason::dupack_loss: return "dupack_loss";
    case reason::rto_fire: return "rto_fire";
    case reason::count: break;
    }
    return "?";
}

}  // namespace l4span::obs
