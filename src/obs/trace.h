// Structured event tracing: a compact binary ring buffer of sim-time-stamped
// trace events, one ring per shard, written only by that shard's loop thread.
//
// Design constraints (see docs/OBSERVABILITY.md):
// - Zero heap on the hot path: the ring is preallocated at configure() time
//   and overwrites the oldest event when full; emit() is a bounds-free store.
// - Byte-identical simulation whether tracing is on or off: emit() never
//   draws RNG, never schedules events, never mutates simulated state.
// - Near-zero cost when disabled: every instrumented module holds a plain
//   `obs::tracer*` that is nullptr when observability is off, so the guard
//   is a single well-predicted branch.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace l4span::obs {

// Layer-boundary trace points. Append only — the numeric values appear in
// binary rings that tests snapshot; renumbering breaks nothing at runtime
// but churns every pinned dump.
enum class point : std::uint16_t {
    none = 0,
    // RAN data path (SDAP -> PDCP -> RLC -> MAC/HARQ)
    sdap_ingress,   // a=(ue<<8)|drb  b=flow_id          c=pkt_id
    ul_ingress,     // a=(ue<<8)     b=flow_id          c=pkt_id
    rlc_enqueue,    // a=(ue<<8)|drb  b=pdcp sn          c=(flow_id<<32)|pkt_id
    rlc_discard,    // a=(ue<<8)|drb  b=flow_id          c=pkt_id
    rlc_deliver,    // a=(ue<<8)|drb  b=(flow_id<<32)|pkt_id  c=payload bytes
    mac_tx,         // a=(ue<<8)|drb  b=pdcp sn          c=chunk bytes
    harq_conclude,  // a=(ue<<8)|drb  b=attempt          c=tb bytes
    rlf_declared,   // a=(ue<<8)     b=harq fail streak
    // Core AQM (wired bottleneck / CU baselines)
    aqm_mark,  // a=queue id  b=flow_id  c=sojourn ticks
    aqm_drop,  // a=queue id  b=flow_id  c=queue bytes
    // topo::path_impairment stages
    impair,  // a=stage id  b=flow_id  c=pkt_id
    // L4Span decisions (core/l4span)
    l4span_dl,  // a=(ue<<8)|drb  b=(flow_id<<32)|pkt_id  c=p_mark * 1e9
    l4span_ul,  // a=(ue<<8)|drb  b=flow_id               c=marks echoed
    // Faults, handover, recovery
    fault_fire,   // a=fault class  b=scheduled tick
    ho_start,     // a=ue index     b=source cell  c=target cell
    ho_complete,  // a=ue index     b=source cell  c=target cell
    cell_outage,  // a=cell index
    cell_restore, // a=cell index
    link_flap,    // a=cell index   b=0 down / 1 up
    // Transport CE / loss reactions
    transport_ce,    // a=flow_id  b=cwnd bytes  c=ce_fraction * 1e9
    transport_loss,  // a=flow_id  b=cwnd bytes  c=bytes lost/marked
    transport_rto,   // a=flow_id  b=cwnd bytes
    ecn_fallback,    // a=flow_id
    // Sampled per-packet lifecycle mode (follows one flow end to end)
    lifecycle,  // a=(ue<<8)|drb  b=pkt_id  c=packet-pool handle / stage datum
    // Invariant checks (flight-recorder trigger)
    invariant,  // a=0 ok / 1 tripped
    count
};

// Why a trace point fired. One byte; shared across layers so a dump renders
// with a single reason table.
enum class reason : std::uint8_t {
    none = 0,
    // RAN ingress drops
    rlc_full,
    hook_drop,
    // L4Span downlink decision (§4.2/§4.3 of the paper)
    pass,            // forwarded unmarked
    control,         // zero-payload control segment, never marked
    ce_upstream,     // arrived CE: short-circuited, no extra mark charged
    tentative_mark,  // short-circuit path marked on behalf of the RAN queue
    ce_mark,         // normal downlink CE mark
    drop_non_ecn,    // mark decision on a Not-ECT packet -> CU drop fallback
    // L4Span uplink feedback rewrite
    ack_ace,  // AccECN ACE/byte-counter rewrite
    ack_ece,  // classic ECE latch
    // AQM verdicts
    queue_overflow,
    l4s_mark,
    classic_mark,
    classic_drop,
    codel_mark,
    codel_drop,
    // Impairment stages (topo::path_impairment transform order)
    remark,
    bleach,
    strip,
    gilbert_loss,
    reorder,
    duplicate,
    // HARQ conclusions
    harq_ok,
    harq_retx,
    harq_fail,
    outage,
    // Fault classes / recovery outcomes
    fault_rlf,
    fault_ho_failure,
    fault_cell_outage,
    fault_link_flap,
    fault_impair_swap,
    ho_sabotaged,
    rollback,
    reestablish,
    // Transport signals
    ce_classic,
    ce_accecn,
    rack_loss,
    dupack_loss,
    rto_fire,
    count
};

const char* point_name(point p);
const char* reason_name(reason r);

// One fixed-size binary record. 32 bytes so a 8192-slot ring is 256 KiB.
struct trace_event {
    sim::tick t = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint32_t a = 0;
    std::uint16_t pt = 0;
    std::uint8_t rsn = 0;
    std::uint8_t shard = 0;
};
static_assert(sizeof(trace_event) == 32, "trace_event must stay one cache-line half");

// Preallocated overwrite-oldest ring. Single-writer (the owning shard's loop
// thread); readers run either on the same thread (flight-recorder dumps) or
// after the simulation stops (final merge).
class trace_ring {
public:
    trace_ring() = default;

    void reset(std::size_t capacity)
    {
        buf_.assign(capacity, trace_event{});
        next_ = 0;
    }

    void push(const trace_event& ev)
    {
        buf_[static_cast<std::size_t>(next_ % buf_.size())] = ev;
        ++next_;
    }

    std::size_t capacity() const { return buf_.size(); }
    // Events ever pushed (also the global per-shard sequence number of the
    // next event — the deterministic merge tiebreaker).
    std::uint64_t total() const { return next_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(
            next_ < buf_.size() ? next_ : static_cast<std::uint64_t>(buf_.size()));
    }

    // i-th retained event, oldest first.
    const trace_event& at(std::size_t i) const
    {
        const std::uint64_t first = next_ - size();
        return buf_[static_cast<std::size_t>((first + i) % buf_.size())];
    }

    // Appends the last min(n, size()) events, oldest first.
    void last_n(std::size_t n, std::vector<trace_event>& out) const
    {
        const std::size_t have = size();
        const std::size_t take = n < have ? n : have;
        for (std::size_t i = have - take; i < have; ++i) out.push_back(at(i));
    }

private:
    std::vector<trace_event> buf_;
    std::uint64_t next_ = 0;
};

// Per-shard emission facade handed (as a raw pointer) to every instrumented
// module on that shard. Disabled tracers are simply never handed out — the
// module-side nullptr check is the enable flag.
class tracer {
public:
    using incident_fn = std::function<void(sim::tick, const char*)>;

    void configure(std::uint8_t shard, std::size_t ring_capacity)
    {
        shard_ = shard;
        ring_.reset(ring_capacity ? ring_capacity : 1);
    }

    void emit(sim::tick t, point p, reason r = reason::none, std::uint32_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0)
    {
        ring_.push({t, b, c, a, static_cast<std::uint16_t>(p),
                    static_cast<std::uint8_t>(r), shard_});
    }

    // Per-packet lifecycle mode: modules ask before emitting `lifecycle`
    // events for a packet's flow.
    void set_lifecycle_flow(std::uint64_t flow_id) { lifecycle_flow_ = flow_id; }
    bool wants_flow(std::uint64_t flow_id) const { return flow_id == lifecycle_flow_; }

    // Flight-recorder trigger: forwards to the owning hub, which dumps this
    // shard's last N events. Runs on the shard's own thread, so the dump
    // reads a quiescent ring.
    void set_incident_handler(incident_fn f) { incident_ = std::move(f); }
    void request_incident(sim::tick now, const char* why)
    {
        if (incident_) incident_(now, why);
    }

    std::uint8_t shard() const { return shard_; }
    trace_ring& ring() { return ring_; }
    const trace_ring& ring() const { return ring_; }

private:
    trace_ring ring_;
    std::uint64_t lifecycle_flow_ = ~0ull;
    std::uint8_t shard_ = 0;
    incident_fn incident_;
};

}  // namespace l4span::obs
