// Sim-time metrics registry: named counters, gauges and fixed-bucket
// histograms registered per module, sampled on sim-time ticks into a
// periodic JSONL snapshot stream (one compact stats::json line per shard
// per tick).
//
// Registration happens at scenario construction (heap is fine there);
// reads happen at snapshot time on the owning shard's loop thread, so the
// register-a-lambda-over-an-accessor pattern costs the instrumented module
// nothing on its hot path. Histograms are the exception: modules sample
// into them directly (a bucket increment), e.g. L4Span's predicted-sojourn
// distribution.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "stats/json.h"

namespace l4span::obs {

// Fixed upper-bound buckets (last bucket is +inf). Deterministic by
// construction: sampling is an integer increment, serialization walks the
// fixed bounds in order.
class histogram {
public:
    explicit histogram(std::vector<double> upper_bounds)
        : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0)
    {
    }

    void sample(double v)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v > bounds_[i]) ++i;
        ++counts_[i];
        ++total_;
        sum_ += v;
    }

    std::uint64_t total() const { return total_; }
    double sum() const { return sum_; }
    const std::vector<double>& bounds() const { return bounds_; }
    const std::vector<std::uint64_t>& counts() const { return counts_; }

    stats::json to_json() const
    {
        auto j = stats::json::object();
        auto bounds = stats::json::array();
        for (const double b : bounds_) bounds.push(b);
        auto counts = stats::json::array();
        for (const std::uint64_t c : counts_) counts.push(c);
        j.set("bounds", std::move(bounds))
            .set("counts", std::move(counts))
            .set("n", total_)
            .set("sum", sum_);
        return j;
    }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

// One registry per shard. Not thread-safe by design: everything it reads is
// owned by the shard it belongs to, which is what keeps snapshots
// byte-identical for any --jobs.
class registry {
public:
    void add_counter(std::string name, std::function<std::uint64_t()> read)
    {
        counters_.push_back({std::move(name), std::move(read)});
    }

    void add_gauge(std::string name, std::function<double()> read)
    {
        gauges_.push_back({std::move(name), std::move(read)});
    }

    // The returned pointer is stable for the registry's lifetime (deque).
    histogram* add_histogram(std::string name, std::vector<double> upper_bounds)
    {
        histograms_.emplace_back(std::move(name), histogram(std::move(upper_bounds)));
        return &histograms_.back().second;
    }

    std::size_t metric_count() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    // One compact JSONL snapshot line: {"t":..,"s":..,"m":{...}}.
    std::string snapshot_line(sim::tick now, std::uint8_t shard) const
    {
        auto m = stats::json::object();
        for (const auto& c : counters_) m.set(c.first, c.second());
        for (const auto& g : gauges_) m.set(g.first, g.second());
        for (const auto& h : histograms_) m.set(h.first, h.second.to_json());
        auto line = stats::json::object();
        line.set("t", static_cast<std::int64_t>(now))
            .set("s", static_cast<std::uint64_t>(shard))
            .set("m", std::move(m));
        return line.dump_compact();
    }

private:
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>> counters_;
    std::vector<std::pair<std::string, std::function<double()>>> gauges_;
    std::deque<std::pair<std::string, histogram>> histograms_;
};

}  // namespace l4span::obs
