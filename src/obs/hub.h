// Observability hub: owns one tracer + metrics registry + snapshot buffer
// per shard, schedules periodic metric sampling on each shard's loop, and
// runs the fault flight recorder.
//
// Shard safety / determinism contract: every per-shard structure is written
// only by its own shard's loop thread (incident dumps included — they are
// triggered from that thread). The cross-shard merge happens once, after
// the simulation stops, in fixed (time, shard, sequence) order, so a
// jobs-1 and a jobs-4 run of the same scenario produce byte-identical
// metric snapshots and trace dumps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/event_loop.h"

namespace l4span::obs {

struct config {
    bool enabled = false;
    // Metric snapshot cadence (sim time).
    sim::tick snapshot_period = sim::from_ms(100);
    // Per-shard trace ring slots (32 B each).
    std::size_t ring_capacity = 8192;
    // Flight recorder: events dumped per incident, and the per-shard
    // incident cap (a chaos run can fire hundreds of faults; the first
    // few dumps carry the diagnosis).
    std::size_t flight_last_n = 256;
    std::size_t max_incidents = 8;
    // Per-packet lifecycle mode: follow this flow id end to end
    // (~0 = off).
    std::uint64_t lifecycle_flow = ~0ull;
    // Output prefix for <prefix>.metrics.jsonl / <prefix>.trace.jsonl /
    // <prefix>.incident-*.jsonl. Empty: keep everything in memory
    // (tests read the accessors instead).
    std::string out_prefix;
};

class hub {
public:
    hub(std::size_t num_shards, config cfg);

    const config& cfg() const { return cfg_; }
    std::size_t num_shards() const { return shards_.size(); }

    tracer& shard_tracer(std::size_t shard) { return shards_[shard]->tr; }
    registry& shard_registry(std::size_t shard) { return shards_[shard]->reg; }

    // Schedules the self-rescheduling snapshot sampler for `shard` on its
    // loop. The sampler only reads shard-local state; it never perturbs
    // simulated behavior (it does add loop events, so processed-event
    // counts differ from an unobserved run — formatted results do not).
    void start_sampling(sim::event_loop& loop, std::size_t shard);

    // Flight-recorder triggers ------------------------------------------
    // Dump the shard ring's last N events. Must run on the shard's thread.
    void record_incident(std::size_t shard, sim::tick now, const char* why);
    // Emits an `invariant` trace event; a failed check also records an
    // incident.
    void note_invariant(std::size_t shard, const char* name, bool ok, sim::tick now);

    // Takes a final metric snapshot on every shard, merges the per-shard
    // buffers in deterministic order and, when cfg.out_prefix is set,
    // writes the JSONL artifacts. Returns false on any write failure.
    bool finish(sim::tick now);

    // In-memory views (valid once the simulation has stopped; finish()
    // adds the final snapshot). Incidents are re-gathered from the shard
    // buffers on each call, in shard order.
    std::string metrics_text() const;
    std::string merged_trace_text() const;
    const std::vector<std::string>& incident_names();
    std::string incident_text(std::size_t i);
    std::size_t incident_count();

    // One trace event as a compact JSONL line (shared with the incident
    // dumps and tests).
    static std::string event_line(const trace_event& ev);

private:
    struct shard_state {
        tracer tr;
        registry reg;
        std::string snapshots;                 // JSONL lines, newline-terminated
        std::vector<std::string> inc_names;    // per-shard incident labels
        std::vector<std::string> inc_bodies;   // per-shard incident dumps
    };

    void sample(sim::event_loop& loop, std::size_t shard);
    void gather_incidents();

    config cfg_;
    std::vector<std::unique_ptr<shard_state>> shards_;
    // Deterministic cross-shard views built by finish() (shard order).
    std::vector<std::string> incident_names_;
    std::vector<std::string> incident_bodies_;
    bool finished_ = false;
};

}  // namespace l4span::obs
