// JSON scenario schema ("l4span-scenario-v1"): the data-driven face of the
// experiment harnesses. A scenario file names one of five experiment
// *families* — each a parameterized grid the repo previously only shipped
// compiled into a bench binary — plus the grid axes to sweep:
//
//   tcp_grid        Fig. 9/24 methodology: CCA x channel x queue x RTT x
//                   UE-count x {vanilla, +L4Span} congested-cell grid
//   shared_drb      Fig. 16: shared-DRB marking strategies on one UE
//   ecn_impairment  adversarial wired path: impairment profile x CCA x
//                   cross-traffic through a core bottleneck AQM
//   fault_chaos     multi-cell fault injection: fault class x transport
//   cell_flows      generic single-cell scenario: a full cell_spec (any
//                   bottleneck AQM incl. "wred", impairments, cross
//                   traffic, L4Span knobs) + explicit flow list, swept
//                   over seeds
//
// Parsing is strict: unknown keys, type mismatches and out-of-range values
// throw scenario_error naming the offending key and its source line.
// export_scenario() is the exact inverse on the supported surface — every
// key is always written, in a fixed order, so export -> parse -> export is
// the identity on bytes (pinned by tests/test_scenario_fuzz.cpp), and a
// bench's compiled-in scenario exported via --export-scenario reproduces
// the bench's output byte-for-byte when run back through `l4span_run`
// (pinned by tests/test_scenario_spec.cpp).
//
// Schema reference: docs/SCENARIOS.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/cell.h"
#include "stats/json.h"

namespace l4span::scenario {

inline constexpr const char* k_scenario_schema = "l4span-scenario-v1";

// Scenario load/validation failure. The message names the file (or origin
// label), the offending key path and — for parsed input — its 1-based
// source line, so a typo in a 300-line scenario is a one-glance fix.
class scenario_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

// --- family parameter blocks -----------------------------------------------

// Fig. 9-style congested-cell grid (bench_fig09_tcp_grid).
struct tcp_grid_family {
    std::uint64_t seed_base = 1000;
    std::vector<double> rtts_ms{19.0, 53.0};  // one-way server->core OWD
    std::vector<std::size_t> queues_sdus{16384, 256};
    std::vector<int> ue_counts{16, 64};
    std::vector<std::string> ccas{"prague", "bbr2", "cubic"};
    std::vector<std::string> channels{"static", "mobile"};
};

// Fig. 16 shared-DRB marking strategies (bench_fig16_shared_drb).
struct shared_drb_family {
    struct strategy {
        std::string label;
        core::shared_drb_policy policy = core::shared_drb_policy::coupled;
    };
    std::uint64_t seed = 71;
    std::vector<strategy> strategies;
};

// Adversarial wired-path grid (bench_ecn_impairment).
struct ecn_impairment_family {
    struct profile {
        std::string name;
        bool drop_non_ecn = false;  // arm L4Span's drop-based fallback
        topo::impairment_spec impair;
    };
    struct transport {
        std::string cca;    // flow_spec CCA name (prague, quic-prague, ...)
        std::string label;  // row label (tcp-prague, ...)
    };
    std::uint64_t seed = 71;
    int ues = 4;
    double bottleneck_bps = 80e6;
    std::string bottleneck_aqm = "dualpi2";
    double cross_rate_bps = 30e6;
    std::vector<bool> cross_options{false, true};
    std::vector<transport> ccas;
    std::vector<profile> profiles;
};

// Multi-cell fault-injection grid (bench_fault_chaos).
struct fault_chaos_family {
    struct profile {
        std::string name;
        double rlf_per_ue_per_sec = 0.0;
        double ho_failure_per_ue_per_sec = 0.0;
        double outages_per_cell_per_sec = 0.0;
        double flaps_per_cell_per_sec = 0.0;
    };
    struct transport {
        std::string cca;
        bool media = false;  // frame-paced interactive source on top
    };
    int num_cells = 3;
    int ues_per_cell = 3;
    std::uint64_t cell_seed = 41;
    double wired_bps = 100e6;
    std::uint64_t fault_seed = 23;
    double fault_start_ms = 800.0;
    double fault_end_margin_ms = 500.0;  // leave room to observe recovery
    std::vector<profile> profiles;
    std::vector<transport> transports;
};

// Generic single-cell scenario: the full cell_spec surface (this is the
// only producer of bottleneck_aqm == "wred") + an explicit flow list, each
// entry optionally replicated `count` times onto consecutive UEs, swept
// over `seeds` (one independent grid point per seed).
struct cell_flows_family {
    struct flow {
        flow_spec spec;
        int count = 1;  // replicas on UEs spec.ue, spec.ue+1, ...
    };
    std::vector<std::uint64_t> seeds{1};
    cell_spec cell;
    std::vector<flow> flows;
};

// --- the scenario document --------------------------------------------------

struct scenario_spec {
    std::string figure;     // summary JSON "figure" tag (fig09, ...)
    std::string title;      // banner line
    std::string paper_ref;  // banner "reproduces:" line
    std::string family;     // which block below is active
    bool quick = false;     // documents which slice this file describes
    sim::tick duration = 0; // per-grid-point simulated time

    tcp_grid_family tcp_grid;
    shared_drb_family shared_drb;
    ecn_impairment_family ecn_impairment;
    fault_chaos_family fault_chaos;
    cell_flows_family cell_flows;

    // Semantic validation beyond parse-time binding (non-empty axes,
    // sub-spec consistency). Throws scenario_error. parse_scenario_text
    // runs this; call it yourself on programmatically built specs.
    void validate() const;
};

// Parses + validates a scenario document. `origin` labels errors (a file
// path, or e.g. "<builtin>"). Throws scenario_error on malformed JSON,
// unknown/duplicate keys, type mismatches or out-of-range values, always
// naming the offending key and source line.
scenario_spec parse_scenario_text(std::string_view text, const std::string& origin);

// read_text_file + parse_scenario_text. Throws scenario_error (including
// for an unreadable path).
scenario_spec load_scenario_file(const std::string& path);

// Serializes `spec` to its scenario document. Writes every supported key
// in fixed order: parse(export(s).dump()) reproduces `s` exactly, and
// export(parse(text)) reproduces `text` for any export-produced `text`.
stats::json export_scenario(const scenario_spec& spec);

// export_scenario(spec).dump() -> `path`; "wrote <path>" on stderr.
// Returns 0, or 1 on I/O failure (mirrors benchutil::finish). Benches use
// this behind --export-scenario.
int write_scenario_file(const std::string& path, const scenario_spec& spec);

// shared_drb_policy <-> schema name (original, l4s_all, classic_all,
// coupled). The by-name direction throws scenario_error listing the valid
// names.
std::string shared_drb_policy_name(core::shared_drb_policy p);
core::shared_drb_policy shared_drb_policy_by_name(const std::string& name);

}  // namespace l4span::scenario
