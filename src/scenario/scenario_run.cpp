#include "scenario/scenario_run.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "scenario/bench_format.h"
#include "scenario/cell_scenario.h"
#include "scenario/topology.h"
#include "stats/table.h"
#include "topo/fault_plan.h"

namespace l4span::scenario {

namespace {

// --- tcp_grid (bench_fig09_tcp_grid) ----------------------------------------

int run_tcp_grid(const scenario_spec& spec, const bench_args& args,
                 stats::json* summary_out)
{
    const tcp_grid_family& fam = spec.tcp_grid;
    benchutil::header(spec.title.c_str(), spec.paper_ref.c_str());

    struct grid_point {
        double rtt;
        std::size_t queue;
        int ues;
        std::string cca;
        std::string chan;
        bool on;
    };
    std::vector<grid_point> points;
    for (const double rtt : fam.rtts_ms)
        for (const std::size_t queue : fam.queues_sdus)
            for (const int ues : fam.ue_counts)
                for (const auto& cca : fam.ccas)
                    for (const auto& chan : fam.channels)
                        for (const bool on : {false, true})
                            points.push_back({rtt, queue, ues, cca, chan, on});

    grid_runner pool(args.jobs);
    std::fprintf(stderr, "%s: %zu grid points on %d worker(s)\n",
                 spec.figure.c_str(), points.size(), pool.jobs());
    const auto results = pool.map(points.size(), [&](std::size_t i) {
        // One artifact prefix per grid point, so parallel points never
        // write over each other's JSONL files.
        const std::string obs = args.obs_out.empty()
                                    ? std::string()
                                    : args.obs_out + "-" + std::to_string(i);
        const grid_point& p = points[i];
        return benchutil::run_tcp_grid_cell(p.cca, p.ues, p.queue, p.rtt, p.chan,
                                            p.on, fam.seed_base, spec.duration,
                                            args.impair_noop, obs);
    });

    auto summary = stats::json::object();
    summary.set("figure", spec.figure).set("quick", spec.quick);
    auto json_points = stats::json::array();

    std::size_t idx = 0;
    for (const double rtt : fam.rtts_ms) {
        for (const std::size_t queue : fam.queues_sdus) {
            for (const int ues : fam.ue_counts) {
                std::printf("\n--- %d UEs, RLC queue %zu SDUs, base RTT %.0f ms ---\n",
                            ues, queue, 2 * rtt);
                stats::table t({"cca", "chan", "L4Span", "OWD ms p10/p25/p50/p75/p90",
                                "per-UE Mbit/s p10..p90", "OWD reduction"});
                for (const auto& cca : fam.ccas) {
                    for (const auto& chan : fam.channels) {
                        double base_median = 0.0;
                        for (const bool on : {false, true}) {
                            const auto& r = results[idx];
                            const auto& p = points[idx];
                            ++idx;
                            std::string reduction = "-";
                            double reduction_pct = 0.0;
                            if (!on) {
                                base_median = r.owd_ms.median();
                            } else if (base_median > 0.0) {
                                reduction_pct =
                                    100.0 * (1.0 - r.owd_ms.median() / base_median);
                                reduction = stats::table::num(reduction_pct, 1) + "%";
                            }
                            t.add_row({cca, chan, on ? "+" : "-",
                                       benchutil::box(r.owd_ms),
                                       benchutil::box(r.tput_mbps, 2), reduction});
                            auto jp = stats::json::object();
                            jp.set("cca", p.cca)
                                .set("chan", p.chan)
                                .set("l4span", p.on)
                                .set("ues", p.ues)
                                .set("rlc_queue_sdus", p.queue)
                                .set("base_rtt_ms", 2 * p.rtt)
                                .set("owd_ms", benchutil::box_json(r.owd_ms))
                                .set("tput_mbps", benchutil::box_json(r.tput_mbps));
                            if (on) jp.set("owd_reduction_pct", reduction_pct);
                            json_points.push(std::move(jp));
                        }
                    }
                }
                t.print();
            }
        }
    }
    summary.set("points", std::move(json_points));
    if (summary_out) *summary_out = summary;
    return benchutil::finish(args, summary);
}

// --- shared_drb (bench_fig16_shared_drb) ------------------------------------

int run_shared_drb(const scenario_spec& spec, const bench_args& args,
                   stats::json* summary_out)
{
    const shared_drb_family& fam = spec.shared_drb;
    benchutil::header(spec.title.c_str(), spec.paper_ref.c_str());

    struct share_result {
        double prague_mbps = 0.0;
        double cubic_mbps = 0.0;
        double prague_rtt_ms = 0.0;
        double cubic_rtt_ms = 0.0;
    };

    grid_runner pool(args.jobs);
    std::fprintf(stderr, "%s: %zu strategies on %d worker(s)\n",
                 spec.figure.c_str(), fam.strategies.size(), pool.jobs());
    const auto results = pool.map(fam.strategies.size(), [&](std::size_t i) {
        cell_spec cell;
        cell.num_ues = 1;
        cell.channel = "static";
        cell.cu = cu_mode::l4span;
        cell.separate_drbs_per_class = false;  // the low-end single-DRB UE
        cell.l4s.shared_policy = fam.strategies[i].policy;
        cell.seed = fam.seed;
        cell_scenario s(cell);
        flow_spec prague;
        prague.cca = "prague";
        const int hp = s.add_flow(prague);
        flow_spec cubic;
        cubic.cca = "cubic";
        const int hc = s.add_flow(cubic);
        s.run(spec.duration);

        share_result r;
        r.prague_mbps = s.goodput_mbps(hp);
        r.cubic_mbps = s.goodput_mbps(hc);
        r.prague_rtt_ms = s.rtt_ms(hp).median();
        r.cubic_rtt_ms = s.rtt_ms(hc).median();
        return r;
    });

    auto summary = stats::json::object();
    summary.set("figure", spec.figure).set("quick", spec.quick);
    auto json_points = stats::json::array();

    stats::table t({"strategy", "L4S tput share (%)", "L4S RTT share (%)",
                    "prague Mbit/s", "cubic Mbit/s"});
    for (std::size_t i = 0; i < fam.strategies.size(); ++i) {
        const auto& r = results[i];
        const double rp = r.prague_mbps, rc = r.cubic_mbps;
        const double tp = r.prague_rtt_ms, tc = r.cubic_rtt_ms;
        const double tput_share = rp + rc > 0 ? 100.0 * rp / (rp + rc) : 0;
        const double rtt_share = tp + tc > 0 ? 100.0 * tp / (tp + tc) : 0;
        t.add_row({fam.strategies[i].label, stats::table::num(tput_share, 1),
                   stats::table::num(rtt_share, 1), stats::table::num(rp, 2),
                   stats::table::num(rc, 2)});
        auto jp = stats::json::object();
        jp.set("strategy", fam.strategies[i].label)
            .set("l4s_tput_share_pct", tput_share)
            .set("l4s_rtt_share_pct", rtt_share)
            .set("prague_mbps", rp)
            .set("cubic_mbps", rc);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    if (summary_out) *summary_out = summary;
    return benchutil::finish(args, summary);
}

// --- ecn_impairment (bench_ecn_impairment) ----------------------------------

int run_ecn_impairment(const scenario_spec& spec, const bench_args& args,
                       stats::json* summary_out)
{
    const ecn_impairment_family& fam = spec.ecn_impairment;
    benchutil::header(spec.title.c_str(), spec.paper_ref.c_str());

    struct grid_point {
        const ecn_impairment_family::transport* cca;
        const ecn_impairment_family::profile* profile;
        bool cross;
    };
    struct point_result {
        stats::sample_set owd_ms;  // pooled over all flows
        double goodput_mbps = 0.0;
        std::uint64_t retransmits = 0;
        std::uint64_t ce_applied = 0;    // bottleneck AQM + CU marks
        std::uint64_t ce_delivered = 0;  // receiver-observed CE packets
        int fallbacks = 0;               // senders that reverted to Not-ECT
        std::uint64_t cross_packets = 0;
    };

    std::vector<grid_point> points;
    for (const auto& cca : fam.ccas)
        for (const auto& pr : fam.profiles)
            for (const bool cross : fam.cross_options)
                points.push_back({&cca, &pr, cross});

    grid_runner pool(args.jobs);
    std::fprintf(stderr, "%s: %zu grid points on %d worker(s)\n",
                 spec.figure.c_str(), points.size(), pool.jobs());
    const auto results = pool.map(points.size(), [&](std::size_t i) {
        const grid_point& p = points[i];
        cell_spec cell;
        cell.num_ues = fam.ues;
        cell.channel = "static";
        cell.cu = cu_mode::l4span;
        cell.seed = fam.seed;
        cell.bottleneck_bps = fam.bottleneck_bps;
        cell.bottleneck_aqm = fam.bottleneck_aqm;
        cell.impair_dl = p.profile->impair;
        cell.impair_dl.force_stage = true;  // "clean" exercises the pass-through
        cell.l4s.drop_non_ecn = p.profile->drop_non_ecn;
        if (p.cross) {
            topo::cross_traffic_spec bg;
            bg.model = "poisson";
            bg.rate_bps = fam.cross_rate_bps;
            cell.cross_traffic.push_back(bg);
        }

        cell_scenario s(cell);
        std::vector<int> handles;
        for (int u = 0; u < fam.ues; ++u) {
            flow_spec f;
            f.cca = p.cca->cca;
            f.ue = u;
            f.max_cwnd = 1536 * 1024;
            handles.push_back(s.add_flow(f));
        }
        s.run(spec.duration);

        point_result r;
        for (int h : handles) {
            for (double v : s.owd_ms(h).raw()) r.owd_ms.add(v);
            r.goodput_mbps += s.goodput_mbps(h);
            r.retransmits += s.flow_retransmits(h);
            r.ce_delivered += s.flow_ce_packets(h);
            if (s.flow_ecn_fallback(h)) ++r.fallbacks;
        }
        r.ce_applied = s.bottleneck_ce_marks();
        if (const core::l4span* l4s = s.l4span_layer()) r.ce_applied += l4s->marks();
        r.cross_packets = s.cross_traffic_packets();
        return r;
    });

    auto summary = stats::json::object();
    summary.set("figure", spec.figure).set("quick", spec.quick);
    auto json_points = stats::json::array();

    stats::table t({"cca", "impairment", "cross", "OWD ms p50/p90/p99",
                    "sum Mbit/s", "retx", "CE deliv/applied", "fallback"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const grid_point& p = points[i];
        const point_result& r = results[i];
        char owd[96];
        std::snprintf(owd, sizeof(owd), "%.1f/%.1f/%.1f", r.owd_ms.median(),
                      r.owd_ms.percentile(90), r.owd_ms.percentile(99));
        char ce[64];
        std::snprintf(ce, sizeof(ce), "%llu/%llu",
                      static_cast<unsigned long long>(r.ce_delivered),
                      static_cast<unsigned long long>(r.ce_applied));
        t.add_row({p.cca->label, p.profile->name, p.cross ? "poisson" : "-", owd,
                   stats::table::num(r.goodput_mbps, 1),
                   std::to_string(r.retransmits), ce,
                   std::to_string(r.fallbacks)});

        const double ce_ratio =
            r.ce_applied > 0
                ? static_cast<double>(r.ce_delivered) /
                      static_cast<double>(r.ce_applied)
                : 1.0;
        auto jp = stats::json::object();
        jp.set("cca", p.cca->label)
            .set("impairment", p.profile->name)
            .set("cross_traffic", p.cross)
            .set("owd_ms", benchutil::box_json(r.owd_ms))
            .set("owd_p99_ms", r.owd_ms.percentile(99))
            .set("goodput_mbps", r.goodput_mbps)
            .set("retransmits", r.retransmits)
            .set("ce_applied", r.ce_applied)
            .set("ce_delivered", r.ce_delivered)
            .set("ce_delivery_ratio", ce_ratio)
            .set("ecn_fallbacks", r.fallbacks)
            .set("cross_packets", r.cross_packets);
        json_points.push(std::move(jp));
    }
    t.print();
    summary.set("points", std::move(json_points));
    if (summary_out) *summary_out = summary;
    return benchutil::finish(args, summary);
}

// --- fault_chaos (bench_fault_chaos) ----------------------------------------

int run_fault_chaos(const scenario_spec& spec, const bench_args& args,
                    stats::json* summary_out)
{
    const fault_chaos_family& fam = spec.fault_chaos;
    benchutil::header(spec.title.c_str(), spec.paper_ref.c_str());

    struct point_result {
        stats::sample_set owd_ms;       // pooled over all flows
        stats::sample_set tput_mbps;    // one sample per flow
        stats::sample_set recovery_ms;  // per recovered fault
        double stall_fraction = -1.0;   // media rows only
        std::uint64_t retransmits = 0;
        std::uint64_t injected = 0;
        std::uint64_t rlf_detected = 0;
        std::uint64_t reestablishments = 0;
        std::uint64_t ho_failures = 0;
        std::uint64_t ho_rollbacks = 0;
        std::uint64_t events = 0;
    };

    // The points run serially: each topology shards its cells over `jobs`
    // workers internally, which is where the parallelism already lives.
    const int jobs = args.jobs > 0 ? args.jobs : default_jobs();

    auto run_point = [&](const fault_chaos_family::profile& profile,
                         const fault_chaos_family::transport& tr,
                         const std::string& obs_out) {
        topology_spec tspec;
        tspec.num_cells = fam.num_cells;
        tspec.ues_per_cell = fam.ues_per_cell;
        tspec.cell.cu = cu_mode::l4span;
        tspec.cell.channel = "static";
        tspec.cell.seed = fam.cell_seed;
        tspec.wired_bps = fam.wired_bps;
        tspec.jobs = jobs;
        if (!obs_out.empty()) {
            // Flight recorder on: every injected fault dumps the firing
            // shard's last-N trace events to <prefix>.incident-*.jsonl, and
            // run() writes the end-of-run metrics + merged trace. Measured
            // results must be byte-identical with or without this.
            tspec.cell.obs.enabled = true;
            tspec.cell.obs.out_prefix = obs_out;
        }
        topology topo(tspec);

        std::vector<int> handles;
        for (int ue = 0; ue < topo.num_ues(); ++ue) {
            flow_spec f;
            f.cca = tr.cca;
            f.ue = ue;
            f.max_cwnd = 1536 * 1024;
            if (tr.media) {
                f.fps = 30.0;
                f.frame_bitrate_bps = 6e6;
            }
            handles.push_back(topo.add_flow(f));
        }

        topo::fault_plan_config fc;
        fc.num_cells = fam.num_cells;
        fc.ues_per_cell = fam.ues_per_cell;
        fc.start = sim::from_ms(fam.fault_start_ms);
        fc.end = spec.duration - sim::from_ms(fam.fault_end_margin_ms);
        fc.seed = fam.fault_seed;
        fc.rlf_per_ue_per_sec = profile.rlf_per_ue_per_sec;
        fc.ho_failure_per_ue_per_sec = profile.ho_failure_per_ue_per_sec;
        fc.outages_per_cell_per_sec = profile.outages_per_cell_per_sec;
        fc.flaps_per_cell_per_sec = profile.flaps_per_cell_per_sec;
        if (fc.any_enabled()) topo.apply_faults(topo::fault_plan(fc));

        topo.run(spec.duration);

        point_result r;
        for (const int h : handles) {
            for (double v : topo.owd_ms(h).raw()) r.owd_ms.add(v);
            r.tput_mbps.add(topo.goodput_mbps(h));
            r.retransmits += topo.flow_retransmits(h);
            if (const auto* fs = topo.frame_stats(h)) {
                if (r.stall_fraction < 0.0) r.stall_fraction = 0.0;
                r.stall_fraction += fs->stall_fraction() /
                                    static_cast<double>(handles.size());
            }
        }
        for (double v : topo.recovery_ms()) r.recovery_ms.add(v);
        for (auto cls : {topo::fault_class::rlf, topo::fault_class::handover_failure,
                         topo::fault_class::cell_outage, topo::fault_class::link_flap})
            r.injected += topo.faults_injected(cls);
        r.rlf_detected = topo.rlf_detected();
        r.reestablishments = topo.reestablishments();
        r.ho_failures = topo.ho_failures();
        r.ho_rollbacks = topo.ho_rollbacks();
        r.events = topo.processed_events();
        return r;
    };

    auto summary = stats::json::object();
    summary.set("figure", spec.figure).set("quick", spec.quick);
    auto json_points = stats::json::array();

    stats::table t({"faults", "transport", "injected", "recov ms p50/p90",
                    "OWD ms p10/p25/p50/p75/p90", "Mbit/s p50", "retx",
                    "stall frac"});
    for (const auto& profile : fam.profiles) {
        for (const auto& tr : fam.transports) {
            const std::string obs =
                args.obs_out.empty()
                    ? std::string()
                    : args.obs_out + "-" + profile.name + "-" + tr.cca +
                          (tr.media ? "-media" : "");
            const auto r = run_point(profile, tr, obs);
            char recov[64];
            std::snprintf(recov, sizeof(recov), "%.0f/%.0f",
                          r.recovery_ms.median(), r.recovery_ms.percentile(90));
            char stall[32];
            if (r.stall_fraction >= 0.0)
                std::snprintf(stall, sizeof(stall), "%.3f", r.stall_fraction);
            else
                std::snprintf(stall, sizeof(stall), "-");
            t.add_row({profile.name, tr.cca + (tr.media ? " (media)" : ""),
                       std::to_string(r.injected),
                       r.recovery_ms.count() ? recov : "-",
                       benchutil::box(r.owd_ms),
                       stats::table::num(r.tput_mbps.median(), 2),
                       std::to_string(r.retransmits), stall});
            auto jp = stats::json::object();
            jp.set("faults", profile.name)
                .set("cca", tr.cca)
                .set("media", tr.media)
                .set("faults_injected", r.injected)
                .set("rlf_detected", r.rlf_detected)
                .set("reestablishments", r.reestablishments)
                .set("ho_failures", r.ho_failures)
                .set("ho_rollbacks", r.ho_rollbacks)
                .set("recovery_ms", benchutil::box_json(r.recovery_ms))
                .set("owd_ms", benchutil::box_json(r.owd_ms))
                .set("tput_mbps", benchutil::box_json(r.tput_mbps))
                .set("retransmits", r.retransmits)
                .set("stall_fraction", r.stall_fraction)
                .set("sim_events", r.events);
            json_points.push(std::move(jp));
        }
    }
    t.print();
    summary.set("points", std::move(json_points));
    if (summary_out) *summary_out = summary;
    return benchutil::finish(args, summary);
}

// --- cell_flows (schema-only generic family) --------------------------------

int run_cell_flows(const scenario_spec& spec, const bench_args& args,
                   stats::json* summary_out)
{
    const cell_flows_family& fam = spec.cell_flows;
    benchutil::header(spec.title.c_str(), spec.paper_ref.c_str());

    struct flow_result {
        std::string cca;
        int ue = 0;
        double goodput_mbps = 0.0;
        stats::sample_set owd_ms;
        double rtt_p50_ms = 0.0;
        std::uint64_t retransmits = 0;
    };

    grid_runner pool(args.jobs);
    std::fprintf(stderr, "%s: %zu grid points on %d worker(s)\n",
                 spec.figure.c_str(), fam.seeds.size(), pool.jobs());
    const auto results = pool.map(fam.seeds.size(), [&](std::size_t i) {
        cell_spec cell = fam.cell;
        cell.seed = fam.seeds[i];
        cell.impair_dl.force_stage = cell.impair_dl.force_stage || args.impair_noop;
        cell.impair_ul.force_stage = cell.impair_ul.force_stage || args.impair_noop;
        if (!args.obs_out.empty()) {
            cell.obs.enabled = true;
            cell.obs.out_prefix = args.obs_out + "-" + std::to_string(i);
        }
        cell_scenario s(cell);
        std::vector<std::pair<int, flow_result>> handles;
        for (const auto& fl : fam.flows) {
            for (int k = 0; k < fl.count; ++k) {
                flow_spec f = fl.spec;
                f.ue = fl.spec.ue + k;
                flow_result meta;
                meta.cca = f.cca;
                meta.ue = f.ue;
                handles.emplace_back(s.add_flow(f), std::move(meta));
            }
        }
        s.run(spec.duration);
        std::vector<flow_result> out;
        for (auto& [h, meta] : handles) {
            meta.goodput_mbps = s.goodput_mbps(h);
            for (double v : s.owd_ms(h).raw()) meta.owd_ms.add(v);
            meta.rtt_p50_ms = s.rtt_ms(h).median();
            meta.retransmits = s.flow_retransmits(h);
            out.push_back(std::move(meta));
        }
        return out;
    });

    auto summary = stats::json::object();
    summary.set("figure", spec.figure).set("quick", spec.quick);
    auto json_points = stats::json::array();

    stats::table t({"seed", "flow", "cca", "ue", "Mbit/s",
                    "OWD ms p10/p25/p50/p75/p90", "RTT ms p50", "retx"});
    for (std::size_t i = 0; i < fam.seeds.size(); ++i) {
        for (std::size_t fi = 0; fi < results[i].size(); ++fi) {
            const flow_result& r = results[i][fi];
            t.add_row({std::to_string(fam.seeds[i]), std::to_string(fi), r.cca,
                       std::to_string(r.ue), stats::table::num(r.goodput_mbps, 2),
                       benchutil::box(r.owd_ms),
                       stats::table::num(r.rtt_p50_ms, 1),
                       std::to_string(r.retransmits)});
            auto jp = stats::json::object();
            jp.set("seed", fam.seeds[i])
                .set("flow", static_cast<std::uint64_t>(fi))
                .set("cca", r.cca)
                .set("ue", r.ue)
                .set("goodput_mbps", r.goodput_mbps)
                .set("owd_ms", benchutil::box_json(r.owd_ms))
                .set("rtt_p50_ms", r.rtt_p50_ms)
                .set("retransmits", r.retransmits);
            json_points.push(std::move(jp));
        }
    }
    t.print();
    summary.set("points", std::move(json_points));
    if (summary_out) *summary_out = summary;
    return benchutil::finish(args, summary);
}

}  // namespace

scenario_spec builtin_scenario(const std::string& name, bool quick)
{
    scenario_spec spec;
    spec.quick = quick;
    if (name == "fig09") {
        spec.figure = "fig09";
        spec.title = "Fig. 9: TCP one-way delay vs per-UE throughput grid";
        spec.paper_ref =
            "L4Span cuts Prague/CUBIC median OWD by ~98% (static), ~97% "
            "(mobile), BBRv2 by ~52%, at <10% median throughput cost";
        spec.family = "tcp_grid";
        spec.duration = sim::from_sec(6);
        if (quick) {  // 2-point CI slice: one cell, with and without L4Span
            spec.tcp_grid.rtts_ms = {19.0};
            spec.tcp_grid.queues_sdus = {256};
            spec.tcp_grid.ue_counts = {16};
            spec.tcp_grid.ccas = {"prague"};
            spec.tcp_grid.channels = {"static"};
        }
        return spec;
    }
    if (name == "fig16") {
        spec.figure = "fig16";
        spec.title = "Fig. 16: shared-DRB marking strategies";
        spec.paper_ref =
            "'original' starves L4S, 'L4S-for-all' starves classic "
            "(~25%), 'classic-for-all' is noisy; L4Span's coupling "
            "lands near 50/50 with the least variance";
        spec.family = "shared_drb";
        spec.duration = sim::from_sec(15);
        spec.shared_drb.strategies = {
            {"original", core::shared_drb_policy::original},
            {"L4S-for-all", core::shared_drb_policy::l4s_all},
            {"classic-for-all", core::shared_drb_policy::classic_all},
            {"L4Span (coupled)", core::shared_drb_policy::coupled},
        };
        if (quick)  // CI slice: the strawman vs the paper's design
            spec.shared_drb.strategies = {spec.shared_drb.strategies.front(),
                                          spec.shared_drb.strategies.back()};
        return spec;
    }
    if (name == "ecn_impairment") {
        spec.figure = "ecn_impairment";
        spec.title = "ECN path-impairment grid (bleach/strip/remark/loss/reorder)";
        spec.paper_ref =
            "robustness item: L4Span + Prague/CUBIC/BBRv2 when the wired path "
            "bleaches or strips ECN (cf. \"A Fresh Look at ECN Traversal\")";
        spec.family = "ecn_impairment";
        spec.duration = sim::from_sec(5);
        ecn_impairment_family& f = spec.ecn_impairment;
        f.profiles.push_back({"clean", false, {}});
        {
            ecn_impairment_family::profile p;
            p.name = "bleach";
            p.impair.bleach_ce = 1.0;  // congestion signal erased, ECT restored
            f.profiles.push_back(std::move(p));
        }
        {
            ecn_impairment_family::profile p;
            p.name = "remark";
            p.impair.remark_ect1 = 1.0;  // L4S identifier erased -> classic
            f.profiles.push_back(std::move(p));
        }
        {
            ecn_impairment_family::profile p;
            p.name = "strip";
            p.impair.strip_ect = 1.0;  // path declares the flow non-ECN-capable
            f.profiles.push_back(std::move(p));
        }
        {
            // Same stripped path, but the CU sheds queue instead of letting
            // the demoted flow sit in a seconds-deep RLC backlog.
            ecn_impairment_family::profile p;
            p.name = "strip+drop";
            p.drop_non_ecn = true;
            p.impair.strip_ect = 1.0;
            f.profiles.push_back(std::move(p));
        }
        {
            ecn_impairment_family::profile p;
            p.name = "loss";
            p.impair.loss = 0.01;
            p.impair.loss_burst = 4.0;  // Gilbert bursts, ~1% stationary loss
            f.profiles.push_back(std::move(p));
        }
        {
            ecn_impairment_family::profile p;
            p.name = "reorder";
            p.impair.reorder = 0.02;
            p.impair.reorder_gap = 5;
            f.profiles.push_back(std::move(p));
        }
        {
            // Everything at once: the worst path the traversal study saw.
            ecn_impairment_family::profile p;
            p.name = "liar";
            p.impair.bleach_ce = 1.0;
            p.impair.remark_ect1 = 1.0;
            p.impair.loss = 0.005;
            p.impair.loss_burst = 2.0;
            p.impair.reorder = 0.01;
            p.impair.duplicate = 0.005;
            f.profiles.push_back(std::move(p));
        }
        f.ccas = {{"prague", "tcp-prague"},
                  {"quic-prague", "quic-prague"},
                  {"cubic", "tcp-cubic"},
                  {"bbr2", "tcp-bbr2"}};
        if (quick) {  // CI slice: 2 transports x 3 profiles, cross on
            f.ccas = {{"prague", "tcp-prague"}, {"quic-prague", "quic-prague"}};
            f.profiles = {f.profiles[0], f.profiles[3], f.profiles[4]};
            f.cross_options = {true};
            f.ues = 2;
            spec.duration = sim::from_sec(2);
        }
        return spec;
    }
    if (name == "fault_chaos") {
        spec.figure = "fault_chaos";
        spec.title = "Fault-injection chaos grid (fault class x transport)";
        spec.paper_ref =
            "graceful degradation under RLF / handover failure / "
            "cell outage / link flaps: bounded recovery, no wedged "
            "flows, interactive media resumes after blackouts";
        spec.family = "fault_chaos";
        spec.duration = sim::from_sec(6);
        spec.fault_chaos.profiles = {
            {"baseline", 0.0, 0.0, 0.0, 0.0},
            {"rlf", 0.6, 0.0, 0.0, 0.0},
            {"ho-failure", 0.0, 0.6, 0.0, 0.0},
            {"cell-outage", 0.0, 0.0, 0.3, 0.0},
            {"link-flap", 0.0, 0.0, 0.0, 0.5},
            {"chaos-mix", 0.4, 0.3, 0.15, 0.25},
        };
        spec.fault_chaos.transports = {
            {"prague", false}, {"cubic", false}, {"quic-prague", true}};
        if (quick) {
            spec.fault_chaos.profiles = {{"baseline", 0, 0, 0, 0},
                                         {"chaos-mix", 0.4, 0.3, 0.15, 0.25}};
            spec.fault_chaos.transports = {{"prague", false}};
            spec.duration = sim::from_sec(3);
        }
        return spec;
    }
    throw scenario_error("unknown builtin scenario \"" + name +
                         "\" (valid: fig09, fig16, ecn_impairment, fault_chaos)");
}

int run_scenario(const scenario_spec& spec, const bench_args& args,
                 stats::json* summary_out)
{
    spec.validate();
    if (spec.family == "tcp_grid") return run_tcp_grid(spec, args, summary_out);
    if (spec.family == "shared_drb") return run_shared_drb(spec, args, summary_out);
    if (spec.family == "ecn_impairment")
        return run_ecn_impairment(spec, args, summary_out);
    if (spec.family == "fault_chaos")
        return run_fault_chaos(spec, args, summary_out);
    if (spec.family == "cell_flows") return run_cell_flows(spec, args, summary_out);
    throw scenario_error("run_scenario: unknown family \"" + spec.family + "\"");
}

}  // namespace l4span::scenario
