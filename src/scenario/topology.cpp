#include "scenario/topology.h"

#include <algorithm>
#include <stdexcept>

namespace l4span::scenario {

namespace {
// Largest multiple of the MAC slot that does not exceed `latency` — the
// "synchronized at slot boundaries" contract of the sharded mode.
sim::tick slot_aligned(sim::tick latency, sim::tick slot)
{
    return (latency / slot) * slot;
}
}  // namespace

topology::topology(topology_spec spec) : spec_(std::move(spec))
{
    if (spec_.num_cells < 1) throw std::invalid_argument("topology: need >= 1 cell");
    if (spec_.ues_per_cell < 1)
        throw std::invalid_argument("topology: need >= 1 UE per cell");

    spec_.cell.impair_dl.validate("topology_spec.cell.impair_dl");
    spec_.cell.impair_ul.validate("topology_spec.cell.impair_ul");
    if (!spec_.cell.cross_traffic.empty())
        throw std::invalid_argument(
            "topology_spec.cell.cross_traffic: the multi-cell topology has "
            "no shared wired bottleneck for background senders to compete "
            "for — cross-traffic is a cell_scenario feature (like "
            "bottleneck_bps)");

    const sim::tick slot = ran::mac_config{}.slot;
    const sim::tick min_latency = std::min(
        {spec_.core_hop_latency, spec_.ue_stack_latency, spec_.x2_latency});
    if (slot_aligned(min_latency, slot) < slot)
        throw std::invalid_argument(
            "topology: every cross-shard latency must be >= one MAC slot");
    // The X2 context transfer must not outrun in-flight downlink/uplink
    // packets, or data already heading to the source cell would be lost.
    if (spec_.x2_latency < spec_.core_hop_latency ||
        spec_.x2_latency < spec_.ue_stack_latency)
        throw std::invalid_argument(
            "topology: x2_latency must be >= core_hop and ue_stack latencies");

    shards_ = std::make_unique<sim::shard_group>(
        static_cast<std::size_t>(spec_.num_cells), slot_aligned(min_latency, slot),
        spec_.jobs);

    for (int c = 0; c < spec_.num_cells; ++c) {
        cell_spec cs = spec_.cell;
        cs.num_ues = spec_.ues_per_cell;
        cs.seed = spec_.cell.seed + 7919u * static_cast<std::uint64_t>(c);
        // One impairment stage pair per home shard: each stage's RNG and
        // hold buffer are touched only from its own shard's loop, so runs
        // stay byte-identical for any `jobs`.
        if (spec_.cell.impair_dl.wants_stage()) {
            impair_dl_.push_back(std::make_unique<topo::path_impairment>(
                shards_->loop(static_cast<std::size_t>(c)), spec_.cell.impair_dl,
                topo::impairment_seed(cs.seed, /*lane=*/0, false)));
            impair_dl_.back()->set_deliver(
                [this](net::packet pkt) { forward_downlink(std::move(pkt)); });
        }
        if (spec_.cell.impair_ul.wants_stage()) {
            impair_ul_.push_back(std::make_unique<topo::path_impairment>(
                shards_->loop(static_cast<std::size_t>(c)), spec_.cell.impair_ul,
                topo::impairment_seed(cs.seed, /*lane=*/0, true)));
            impair_ul_.back()->set_deliver(
                [this](net::packet pkt) { uplink_arrival(std::move(pkt)); });
        }
        cells_.push_back(std::make_unique<scenario::cell>(
            shards_->loop(static_cast<std::size_t>(c)), std::move(cs), c));
    }

    for (int c = 0; c < spec_.num_cells; ++c) {
        for (int u = 0; u < spec_.ues_per_cell; ++u) {
            auto e = std::make_unique<ue_entry>();
            e->home = c;
            e->serving = c;
            e->rnti = cells_[static_cast<std::size_t>(c)]->rnti_of(
                static_cast<std::size_t>(u));
            ues_.push_back(std::move(e));
        }
    }

    for (int c = 0; c < spec_.num_cells; ++c) {
        scenario::cell* cp = cells_[static_cast<std::size_t>(c)].get();
        // Runs on cell c's shard; forwards to the flow's home shard. flows_
        // is immutable during the run, so the cross-thread read is safe.
        cp->set_deliver_handler(
            [this](ran::rnti_t, ran::drb_id_t, net::packet pkt, sim::tick now) {
                const std::size_t f = pkt.flow_id;
                if (f >= flows_.size()) return;
                shards_->post(static_cast<std::size_t>(flows_[f]->home),
                              now + spec_.ue_stack_latency,
                              [this, f, pkt = std::move(pkt)] {
                                  flows_[f]->ep.on_downlink(pkt);
                              });
            });
        cp->set_uplink_handler([this](ran::rnti_t, net::packet pkt, sim::tick now) {
            const std::size_t f = pkt.flow_id;
            if (f >= flows_.size()) return;
            // Server-side return path: the home shard's uplink impairment
            // stage (when mounted) sits at the end of the wired hop.
            const std::size_t home = static_cast<std::size_t>(flows_[f]->home);
            shards_->post(home, now + flows_[f]->wired_owd,
                          [this, home, pkt = std::move(pkt)]() mutable {
                              if (home < impair_ul_.size())
                                  impair_ul_[home]->send(std::move(pkt));
                              else uplink_arrival(std::move(pkt));
                          });
        });
    }
}

topology::~topology() = default;

int topology::add_flow(flow_spec fspec)
{
    if (ran_) throw std::logic_error("topology: add_flow after run");
    if (fspec.ue < 0 || static_cast<std::size_t>(fspec.ue) >= ues_.size())
        throw std::out_of_range("topology: flow attached to unknown UE");
    const sim::tick owd = sim::from_ms(fspec.wired_owd_ms);
    if (owd < shards_->quantum())
        throw std::invalid_argument(
            "topology: flow wired_owd must be >= the shard sync quantum");

    const int handle = static_cast<int>(flows_.size());
    ue_entry& u = *ues_[static_cast<std::size_t>(fspec.ue)];
    auto f = std::make_unique<flow_rt>();
    f->spec = fspec;
    f->home = u.home;
    f->wired_owd = owd;
    scenario::cell& home_cell = *cells_[static_cast<std::size_t>(u.home)];
    f->qfi = home_cell.alloc_qfi(u.rnti);
    home_cell.map_qos_flow(u.rnti, f->qfi, is_l4s_cca(fspec.cca));

    auto dl_send = [this, handle](net::packet pkt) {
        // Runs on the home shard (the sender lives there).
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        flow_rt& fl = *flows_[static_cast<std::size_t>(handle)];
        shards_->loop(static_cast<std::size_t>(fl.home))
            .schedule_after(fl.wired_owd, [this, handle, pkt = std::move(pkt)]() mutable {
                route_downlink(static_cast<std::size_t>(handle), std::move(pkt));
            });
    };
    auto ul_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        route_uplink(static_cast<std::size_t>(handle), std::move(pkt));
    };

    f->ep = make_flow_endpoints(shards_->loop(static_cast<std::size_t>(u.home)), fspec,
                                handle, fspec.ue, std::move(dl_send), std::move(ul_send));
    flows_.push_back(std::move(f));
    return handle;
}

void topology::route_downlink(std::size_t flow, net::packet pkt)
{
    // The wired downlink hop ends here (home shard): apply the path
    // impairment before the UPF hold/route, so held packets are never
    // impaired twice when finish_handover flushes them.
    const std::size_t home = static_cast<std::size_t>(flows_[flow]->home);
    if (home < impair_dl_.size()) impair_dl_[home]->send(std::move(pkt));
    else forward_downlink(std::move(pkt));
}

void topology::forward_downlink(net::packet pkt)
{
    const std::size_t flow = pkt.flow_id;
    if (flow >= flows_.size()) return;
    flow_rt& f = *flows_[flow];
    ue_entry& u = *ues_[static_cast<std::size_t>(f.spec.ue)];
    if (!u.attached) {
        u.held_dl.push_back(std::move(pkt));  // UPF holds until path switch
        return;
    }
    scenario::cell* c = cells_[static_cast<std::size_t>(u.serving)].get();
    const ran::rnti_t rnti = u.rnti;
    const ran::qfi_t qfi = f.qfi;
    const sim::tick now = shards_->loop(static_cast<std::size_t>(u.home)).now();
    shards_->post(static_cast<std::size_t>(u.serving), now + spec_.core_hop_latency,
                  [c, rnti, qfi, pkt = std::move(pkt)]() mutable {
                      // The UE may have detached while this hop was in
                      // flight (cannot happen while x2 >= core_hop, but
                      // stay safe): the packet is lost, like a late X2
                      // forward in a real deployment.
                      if (c->has_ue(rnti)) c->deliver_downlink(std::move(pkt), rnti, qfi);
                  });
}

void topology::uplink_arrival(net::packet pkt)
{
    const std::size_t f = pkt.flow_id;
    if (f >= flows_.size()) return;
    flows_[f]->ep.on_uplink(pkt);
}

void topology::route_uplink(std::size_t flow, net::packet pkt)
{
    flow_rt& f = *flows_[flow];
    ue_entry& u = *ues_[static_cast<std::size_t>(f.spec.ue)];
    if (!u.attached) {
        u.held_ul.push_back(std::move(pkt));  // UE stack holds until path switch
        return;
    }
    scenario::cell* c = cells_[static_cast<std::size_t>(u.serving)].get();
    const ran::rnti_t rnti = u.rnti;
    const sim::tick now = shards_->loop(static_cast<std::size_t>(u.home)).now();
    shards_->post(static_cast<std::size_t>(u.serving), now + spec_.ue_stack_latency,
                  [c, rnti, pkt = std::move(pkt)]() mutable {
                      if (c->has_ue(rnti)) c->send_uplink(rnti, std::move(pkt));
                  });
}

void topology::schedule_handover(sim::tick when, int ue, int target_cell)
{
    if (ran_) throw std::logic_error("topology: schedule_handover after run");
    if (ue < 0 || static_cast<std::size_t>(ue) >= ues_.size())
        throw std::out_of_range("topology: handover for unknown UE");
    if (target_cell < 0 || target_cell >= num_cells())
        throw std::out_of_range("topology: handover to unknown cell");
    const std::size_t home = static_cast<std::size_t>(ues_[static_cast<std::size_t>(ue)]->home);
    shards_->loop(home).schedule_at(
        when, [this, ue, target_cell] { begin_handover(ue, target_cell); });
}

void topology::apply(const std::vector<topo::handover_event>& plan)
{
    for (const auto& ev : plan) schedule_handover(ev.when, ev.ue, ev.target_cell);
}

void topology::begin_handover(int ue, int target)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    if (!u.attached || target == u.serving) return;  // mid-handover or no-op
    ++ho_started_;
    u.attached = false;
    scenario::cell* src = cells_[static_cast<std::size_t>(u.serving)].get();
    scenario::cell* tgt = cells_[static_cast<std::size_t>(target)].get();
    const ran::rnti_t rnti = u.rnti;
    const std::size_t src_shard = static_cast<std::size_t>(u.serving);
    const std::size_t tgt_shard = static_cast<std::size_t>(target);
    const std::size_t home_shard = static_cast<std::size_t>(u.home);
    const sim::tick now = shards_->loop(home_shard).now();

    // Leg 1 — handover command reaches the source cell, which exports the
    // UE context (SN status transfer + data forwarding + hook state). By
    // then every in-flight downlink/uplink packet for the UE has landed
    // (x2 >= core_hop/ue_stack), so the context captures all of them.
    shards_->post(src_shard, now + spec_.x2_latency, [this, ue, src, tgt, tgt_shard,
                                                      home_shard, rnti, target] {
        auto ctx = src->detach_ue(rnti);
        const sim::tick t1 = src->loop().now();
        // Leg 2 — context transfer to the target cell, which admits the UE
        // under a fresh RNTI and resumes the bearers.
        shards_->post(tgt_shard, t1 + spec_.x2_latency,
                      [this, ue, tgt, home_shard, target, ctx = std::move(ctx)]() mutable {
                          const ran::rnti_t new_rnti = tgt->attach_ue(std::move(ctx));
                          const sim::tick t2 = tgt->loop().now();
                          // Leg 3 — path switch back to the UPF/home shard.
                          shards_->post(home_shard, t2 + spec_.x2_latency,
                                        [this, ue, target, new_rnti] {
                                            finish_handover(ue, target, new_rnti);
                                        });
                      });
    });
}

void topology::finish_handover(int ue, int target, ran::rnti_t new_rnti)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    u.serving = target;
    u.rnti = new_rnti;
    u.attached = true;
    ++ho_completed_;
    // Path switch: QUIC connections rotate to their next issued CID and
    // keep going — connection identity is the CID, not the path, so no
    // transport state migrates (TCP/media flows have nothing to do). Runs
    // on the home shard, where the endpoints live.
    for (auto& f : flows_)
        if (f->spec.ue == ue) f->ep.on_path_switch();
    // Flush held packets in arrival order down the normal paths. Held
    // downlink packets already passed the impairment stage before the UPF
    // hold, so they re-enter after it (forward_downlink).
    auto dl = std::move(u.held_dl);
    u.held_dl.clear();
    for (auto& pkt : dl) forward_downlink(std::move(pkt));
    auto ul = std::move(u.held_ul);
    u.held_ul.clear();
    for (auto& pkt : ul) {
        const std::size_t f = pkt.flow_id;
        route_uplink(f, std::move(pkt));
    }
}

void topology::run(sim::tick duration)
{
    duration_ = duration;
    ran_ = true;
    for (auto& c : cells_) c->start();
    shards_->run_until(duration);
}

topology::flow_rt& topology::flow_at(int flow) const
{
    if (flow < 0 || static_cast<std::size_t>(flow) >= flows_.size())
        throw std::out_of_range("topology: flow handle out of range");
    return *flows_[static_cast<std::size_t>(flow)];
}

const topology::ue_entry& topology::ue_at(int ue) const
{
    if (ue < 0 || static_cast<std::size_t>(ue) >= ues_.size())
        throw std::out_of_range("topology: UE index out of range");
    return *ues_[static_cast<std::size_t>(ue)];
}

const stats::sample_set& topology::owd_ms(int flow) const
{
    return flow_at(flow).ep.owd_samples();
}

const stats::sample_set& topology::rtt_ms(int flow) const
{
    return flow_at(flow).ep.rtt_samples();
}

const stats::rate_series& topology::goodput_series(int flow) const
{
    return flow_at(flow).ep.goodput();
}

double topology::goodput_mbps(int flow) const
{
    const flow_rt& f = flow_at(flow);
    return flow_goodput_mbps(f.spec, f.ep, duration_);
}

std::uint64_t topology::delivered_bytes(int flow) const
{
    return flow_at(flow).ep.delivered_bytes();
}

std::uint64_t topology::flow_retransmits(int flow) const
{
    return flow_at(flow).ep.transport_retransmits();
}

const media::frame_source* topology::frame_stats(int flow) const
{
    return flow_at(flow).ep.frame_stats();
}

const transport::quic_sender* topology::quic_flow(int flow) const
{
    return flow_at(flow).ep.qsnd.get();
}

int topology::home_cell(int ue) const
{
    return ue_at(ue).home;
}

int topology::serving_cell(int ue) const
{
    return ue_at(ue).serving;
}

ran::rnti_t topology::ue_rnti(int ue) const
{
    return ue_at(ue).rnti;
}

const topo::path_impairment* topology::impair_dl_stage(int c) const
{
    if (c < 0 || c >= num_cells())
        throw std::out_of_range("topology: impairment stage index out of range");
    return static_cast<std::size_t>(c) < impair_dl_.size()
               ? impair_dl_[static_cast<std::size_t>(c)].get()
               : nullptr;
}

const topo::path_impairment* topology::impair_ul_stage(int c) const
{
    if (c < 0 || c >= num_cells())
        throw std::out_of_range("topology: impairment stage index out of range");
    return static_cast<std::size_t>(c) < impair_ul_.size()
               ? impair_ul_[static_cast<std::size_t>(c)].get()
               : nullptr;
}

}  // namespace l4span::scenario
