#include "scenario/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace l4span::scenario {

namespace {
// Largest multiple of the MAC slot that does not exceed `latency` — the
// "synchronized at slot boundaries" contract of the sharded mode.
sim::tick slot_aligned(sim::tick latency, sim::tick slot)
{
    return (latency / slot) * slot;
}

// What survives a lost X2 context transfer: the UE's own bearer
// configuration and channel profile. SN status, forwarded SDUs and the CU
// hook state were in the dropped message — RLC/PDCP restart from SN 1 and
// the transports retransmit whatever was in flight end-to-end, so every
// SDU is either delivered once or counted lost, never duplicated.
ran::ue_handover_context strip_transfer_state(ran::ue_handover_context ctx)
{
    for (auto& d : ctx.drbs) {
        d.tx = {};
        d.rx = {};
        d.pdcp_next_sn = 1;
    }
    ctx.hook_state.reset();
    return ctx;
}
}  // namespace

topology::topology(topology_spec spec) : spec_(std::move(spec))
{
    if (spec_.num_cells < 1) throw std::invalid_argument("topology: need >= 1 cell");
    if (spec_.ues_per_cell < 1)
        throw std::invalid_argument("topology: need >= 1 UE per cell");

    spec_.cell.impair_dl.validate("topology_spec.cell.impair_dl");
    spec_.cell.impair_ul.validate("topology_spec.cell.impair_ul");
    if (!spec_.cell.cross_traffic.empty())
        throw std::invalid_argument(
            "topology_spec.cell.cross_traffic: the multi-cell topology has "
            "no shared wired bottleneck for background senders to compete "
            "for — cross-traffic is a cell_scenario feature (like "
            "bottleneck_bps)");

    if (spec_.wired_bps < 0.0)
        throw std::invalid_argument("topology: wired_bps must be >= 0");

    const sim::tick slot = ran::mac_config{}.slot;
    const sim::tick min_latency = std::min(
        {spec_.core_hop_latency, spec_.ue_stack_latency, spec_.x2_latency});
    if (slot_aligned(min_latency, slot) < slot)
        throw std::invalid_argument(
            "topology: every cross-shard latency must be >= one MAC slot");
    // The X2 context transfer must not outrun in-flight downlink/uplink
    // packets, or data already heading to the source cell would be lost.
    if (spec_.x2_latency < spec_.core_hop_latency ||
        spec_.x2_latency < spec_.ue_stack_latency)
        throw std::invalid_argument(
            "topology: x2_latency must be >= core_hop and ue_stack latencies");

    shards_ = std::make_unique<sim::shard_group>(
        static_cast<std::size_t>(spec_.num_cells), slot_aligned(min_latency, slot),
        spec_.jobs);

    // One observability shard per cell: each tracer/registry pair is only
    // ever written from its own shard's loop thread.
    if (spec_.cell.obs.enabled)
        hub_ = std::make_unique<obs::hub>(
            static_cast<std::size_t>(spec_.num_cells), spec_.cell.obs);

    for (int c = 0; c < spec_.num_cells; ++c) {
        cell_spec cs = spec_.cell;
        cs.num_ues = spec_.ues_per_cell;
        cs.seed = spec_.cell.seed + 7919u * static_cast<std::uint64_t>(c);
        // One impairment stage pair per home shard: each stage's RNG and
        // hold buffer are touched only from its own shard's loop, so runs
        // stay byte-identical for any `jobs`.
        if (spec_.cell.impair_dl.wants_stage()) {
            impair_dl_.push_back(std::make_unique<topo::path_impairment>(
                shards_->loop(static_cast<std::size_t>(c)), spec_.cell.impair_dl,
                topo::impairment_seed(cs.seed, /*lane=*/0, false)));
            impair_dl_.back()->set_deliver(
                [this](net::packet pkt) { forward_downlink(std::move(pkt)); });
            impair_dl_.back()->set_tracer(shard_tr(static_cast<std::size_t>(c)),
                                          /*stage=*/0);
        }
        if (spec_.cell.impair_ul.wants_stage()) {
            impair_ul_.push_back(std::make_unique<topo::path_impairment>(
                shards_->loop(static_cast<std::size_t>(c)), spec_.cell.impair_ul,
                topo::impairment_seed(cs.seed, /*lane=*/0, true)));
            impair_ul_.back()->set_deliver(
                [this](net::packet pkt) { uplink_arrival(std::move(pkt)); });
            impair_ul_.back()->set_tracer(shard_tr(static_cast<std::size_t>(c)),
                                          /*stage=*/1);
        }
        if (spec_.wired_bps > 0.0) {
            // A real (rate-limited, FIFO-buffered) server->core hop; the
            // flow's wired_owd propagation follows the serialization. This
            // is the link that link_flap faults stall and recover.
            wired_dl_.push_back(std::make_unique<topo::wired_link>(
                shards_->loop(static_cast<std::size_t>(c)), spec_.wired_bps, 0));
            wired_dl_.back()->set_deliver([this](net::packet pkt) {
                const std::size_t f = pkt.flow_id;
                if (f >= flows_.size()) return;
                flow_rt& fl = *flows_[f];
                shards_->loop(static_cast<std::size_t>(fl.home))
                    .schedule_after(fl.wired_owd,
                                    [this, f, pkt = std::move(pkt)]() mutable {
                                        route_downlink(f, std::move(pkt));
                                    });
            });
        }
        if (spec_.wired_bps > 0.0 && hub_)
            wired_dl_.back()->queue().set_tracer(
                shard_tr(static_cast<std::size_t>(c)), /*id=*/0);
        cells_.push_back(std::make_unique<scenario::cell>(
            shards_->loop(static_cast<std::size_t>(c)), std::move(cs), c));
        if (hub_)
            cells_.back()->attach_obs(
                shard_tr(static_cast<std::size_t>(c)),
                &hub_->shard_registry(static_cast<std::size_t>(c)));
    }

    cell_down_.assign(static_cast<std::size_t>(spec_.num_cells),
                      std::vector<std::uint8_t>(
                          static_cast<std::size_t>(spec_.num_cells), 0));
    cell_rnti_ue_.resize(static_cast<std::size_t>(spec_.num_cells));

    for (int c = 0; c < spec_.num_cells; ++c) {
        for (int u = 0; u < spec_.ues_per_cell; ++u) {
            auto e = std::make_unique<ue_entry>();
            e->home = c;
            e->serving = c;
            e->rnti = cells_[static_cast<std::size_t>(c)]->rnti_of(
                static_cast<std::size_t>(u));
            cell_rnti_ue_[static_cast<std::size_t>(c)][e->rnti] =
                static_cast<int>(ues_.size());
            ues_.push_back(std::move(e));
        }
    }

    for (int c = 0; c < spec_.num_cells; ++c) {
        scenario::cell* cp = cells_[static_cast<std::size_t>(c)].get();
        // Runs on cell c's shard; forwards to the flow's home shard. flows_
        // is immutable during the run, so the cross-thread read is safe.
        cp->set_deliver_handler(
            [this](ran::rnti_t, ran::drb_id_t, net::packet pkt, sim::tick now) {
                const std::size_t f = pkt.flow_id;
                if (f >= flows_.size()) return;
                shards_->post(static_cast<std::size_t>(flows_[f]->home),
                              now + spec_.ue_stack_latency,
                              [this, f, pkt = std::move(pkt)] {
                                  flows_[f]->ep.on_downlink(pkt);
                              });
            });
        cp->set_rlf_handler(
            [this, c](ran::rnti_t rnti, sim::tick) { on_rlf(c, rnti); });
        cp->set_uplink_handler([this](ran::rnti_t, net::packet pkt, sim::tick now) {
            const std::size_t f = pkt.flow_id;
            if (f >= flows_.size()) return;
            // Server-side return path: the home shard's uplink impairment
            // stage (when mounted) sits at the end of the wired hop.
            const std::size_t home = static_cast<std::size_t>(flows_[f]->home);
            shards_->post(home, now + flows_[f]->wired_owd,
                          [this, home, pkt = std::move(pkt)]() mutable {
                              if (home < impair_ul_.size())
                                  impair_ul_[home]->send(std::move(pkt));
                              else uplink_arrival(std::move(pkt));
                          });
        });
    }
}

topology::~topology() = default;

int topology::add_flow(flow_spec fspec)
{
    if (ran_) throw std::logic_error("topology: add_flow after run");
    if (fspec.ue < 0 || static_cast<std::size_t>(fspec.ue) >= ues_.size())
        throw std::out_of_range("topology: flow attached to unknown UE");
    const sim::tick owd = sim::from_ms(fspec.wired_owd_ms);
    if (owd < shards_->quantum())
        throw std::invalid_argument(
            "topology: flow wired_owd must be >= the shard sync quantum");

    const int handle = static_cast<int>(flows_.size());
    ue_entry& u = *ues_[static_cast<std::size_t>(fspec.ue)];
    auto f = std::make_unique<flow_rt>();
    f->spec = fspec;
    f->home = u.home;
    f->wired_owd = owd;
    scenario::cell& home_cell = *cells_[static_cast<std::size_t>(u.home)];
    f->qfi = home_cell.alloc_qfi(u.rnti);
    home_cell.map_qos_flow(u.rnti, f->qfi, is_l4s_cca(fspec.cca));

    auto dl_send = [this, handle](net::packet pkt) {
        // Runs on the home shard (the sender lives there).
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        flow_rt& fl = *flows_[static_cast<std::size_t>(handle)];
        const std::size_t home = static_cast<std::size_t>(fl.home);
        if (home < wired_dl_.size()) {
            // Serialization at the wired hop's line rate; the flow's
            // wired_owd propagation is added by the link's deliver handler.
            wired_dl_[home]->send(std::move(pkt));
            return;
        }
        shards_->loop(home).schedule_after(
            fl.wired_owd, [this, handle, pkt = std::move(pkt)]() mutable {
                route_downlink(static_cast<std::size_t>(handle), std::move(pkt));
            });
    };
    auto ul_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        route_uplink(static_cast<std::size_t>(handle), std::move(pkt));
    };

    f->ep = make_flow_endpoints(shards_->loop(static_cast<std::size_t>(u.home)), fspec,
                                handle, fspec.ue, std::move(dl_send), std::move(ul_send),
                                shard_tr(static_cast<std::size_t>(u.home)));
    flows_.push_back(std::move(f));
    return handle;
}

void topology::route_downlink(std::size_t flow, net::packet pkt)
{
    // The wired downlink hop ends here (home shard): apply the path
    // impairment before the UPF hold/route, so held packets are never
    // impaired twice when finish_handover flushes them.
    const std::size_t home = static_cast<std::size_t>(flows_[flow]->home);
    if (home < impair_dl_.size()) impair_dl_[home]->send(std::move(pkt));
    else forward_downlink(std::move(pkt));
}

void topology::forward_downlink(net::packet pkt)
{
    const std::size_t flow = pkt.flow_id;
    if (flow >= flows_.size()) return;
    flow_rt& f = *flows_[flow];
    ue_entry& u = *ues_[static_cast<std::size_t>(f.spec.ue)];
    if (!u.attached) {
        u.held_dl.push_back(std::move(pkt));  // UPF holds until path switch
        return;
    }
    scenario::cell* c = cells_[static_cast<std::size_t>(u.serving)].get();
    const ran::rnti_t rnti = u.rnti;
    const ran::qfi_t qfi = f.qfi;
    const sim::tick now = shards_->loop(static_cast<std::size_t>(u.home)).now();
    shards_->post(static_cast<std::size_t>(u.serving), now + spec_.core_hop_latency,
                  [c, rnti, qfi, pkt = std::move(pkt)]() mutable {
                      // The UE may have detached while this hop was in
                      // flight (cannot happen while x2 >= core_hop, but
                      // stay safe): the packet is lost, like a late X2
                      // forward in a real deployment.
                      if (c->has_ue(rnti)) c->deliver_downlink(std::move(pkt), rnti, qfi);
                  });
}

void topology::uplink_arrival(net::packet pkt)
{
    const std::size_t f = pkt.flow_id;
    if (f >= flows_.size()) return;
    flows_[f]->ep.on_uplink(pkt);
}

void topology::route_uplink(std::size_t flow, net::packet pkt)
{
    flow_rt& f = *flows_[flow];
    ue_entry& u = *ues_[static_cast<std::size_t>(f.spec.ue)];
    if (!u.attached) {
        u.held_ul.push_back(std::move(pkt));  // UE stack holds until path switch
        return;
    }
    scenario::cell* c = cells_[static_cast<std::size_t>(u.serving)].get();
    const ran::rnti_t rnti = u.rnti;
    const sim::tick now = shards_->loop(static_cast<std::size_t>(u.home)).now();
    shards_->post(static_cast<std::size_t>(u.serving), now + spec_.ue_stack_latency,
                  [c, rnti, pkt = std::move(pkt)]() mutable {
                      if (c->has_ue(rnti)) c->send_uplink(rnti, std::move(pkt));
                  });
}

void topology::schedule_handover(sim::tick when, int ue, int target_cell)
{
    if (ran_) throw std::logic_error("topology: schedule_handover after run");
    if (ue < 0 || static_cast<std::size_t>(ue) >= ues_.size())
        throw std::out_of_range("topology: handover for unknown UE");
    if (target_cell < 0 || target_cell >= num_cells())
        throw std::out_of_range("topology: handover to unknown cell");
    const std::size_t home = static_cast<std::size_t>(ues_[static_cast<std::size_t>(ue)]->home);
    shards_->loop(home).schedule_at(
        when, [this, ue, target_cell] { begin_handover(ue, target_cell); });
}

void topology::apply(const std::vector<topo::handover_event>& plan)
{
    for (const auto& ev : plan) schedule_handover(ev.when, ev.ue, ev.target_cell);
}

void topology::apply_faults(const topo::fault_plan& plan)
{
    if (ran_) throw std::logic_error("topology: apply_faults after run");
    if (faults_applied_)
        throw std::logic_error("topology: apply_faults called twice");
    const auto& cfg = plan.config();
    if (cfg.num_cells != spec_.num_cells || cfg.ues_per_cell != spec_.ues_per_cell)
        throw std::invalid_argument(
            "topology: fault plan shaped for a different topology "
            "(num_cells/ues_per_cell mismatch)");
    if (plan.count(topo::fault_class::link_flap) > 0 && wired_dl_.empty())
        throw std::invalid_argument(
            "topology: link_flap faults stall the wired server->core hop — "
            "set topology_spec.wired_bps > 0 to mount it");
    for (const auto& ev : plan.schedule()) {
        if (ev.cls != topo::fault_class::impairment_swap) continue;
        if ((ev.uplink ? impair_ul_ : impair_dl_).empty())
            throw std::invalid_argument(
                std::string("topology: impairment_swap faults need a mounted ") +
                (ev.uplink ? "uplink" : "downlink") +
                " stage — set force_stage or an active knob on "
                "cell_spec.impair_dl/impair_ul");
    }
    faults_applied_ = true;
    injector_ = std::make_unique<sim::fault_injector>(topo::k_num_fault_classes);

    // Observe hook for one armed event: runs on the firing shard's thread
    // right before the fault action, emitting the fault_fire trace event and
    // requesting a flight-recorder incident dump. Empty (and free) with
    // observability off — sim::fault_injector never learns about obs::.
    auto observe = [this](std::size_t shard, obs::reason r, std::uint64_t b,
                          std::uint64_t c) -> sim::callback {
        obs::tracer* tr = shard_tr(shard);
        if (!tr) return {};
        sim::event_loop* lp = &shards_->loop(shard);
        return [tr, lp, r, b, c] {
            tr->emit(lp->now(), obs::point::fault_fire, r, 0, b, c);
            tr->request_incident(lp->now(), "fault");
        };
    };

    for (const auto& ev : plan.schedule()) {
        const std::size_t cls = static_cast<std::size_t>(ev.cls);
        switch (ev.cls) {
        case topo::fault_class::rlf: {
            const std::size_t home =
                static_cast<std::size_t>(ues_.at(static_cast<std::size_t>(ev.ue))->home);
            injector_->arm(shards_->loop(home), ev.when, cls,
                           [this, ue = ev.ue, d = ev.duration] { inject_rlf(ue, d); },
                           observe(home, obs::reason::fault_rlf,
                                   static_cast<std::uint64_t>(ev.ue),
                                   static_cast<std::uint64_t>(ev.duration)));
            break;
        }
        case topo::fault_class::handover_failure: {
            const std::size_t home =
                static_cast<std::size_t>(ues_.at(static_cast<std::size_t>(ev.ue))->home);
            injector_->arm(shards_->loop(home), ev.when, cls,
                           [this, ue = ev.ue, m = ev.mode] { inject_ho_failure(ue, m); },
                           observe(home, obs::reason::fault_ho_failure,
                                   static_cast<std::uint64_t>(ev.ue),
                                   static_cast<std::uint64_t>(ev.mode)));
            break;
        }
        case topo::fault_class::cell_outage: {
            const int c = ev.cell;
            // Every shard flips its private down-flag copy at the same two
            // ticks and, acting as home shard, evacuates/repatriates its
            // own UEs. Only the owning shard's event counts as injected.
            for (int s = 0; s < num_cells(); ++s) {
                auto down = [this, s, c] {
                    cell_down_[static_cast<std::size_t>(s)]
                              [static_cast<std::size_t>(c)] = 1;
                    evacuate_cell(s, c);
                };
                if (s == c)
                    injector_->arm(shards_->loop(static_cast<std::size_t>(s)),
                                   ev.when, cls, std::move(down),
                                   observe(static_cast<std::size_t>(s),
                                           obs::reason::fault_cell_outage,
                                           static_cast<std::uint64_t>(c),
                                           static_cast<std::uint64_t>(ev.duration)));
                else
                    shards_->loop(static_cast<std::size_t>(s))
                        .schedule_at(ev.when, std::move(down));
                shards_->loop(static_cast<std::size_t>(s))
                    .schedule_at(ev.when + ev.duration, [this, s, c] {
                        cell_down_[static_cast<std::size_t>(s)]
                                  [static_cast<std::size_t>(c)] = 0;
                        // One restore event, on the owning shard only.
                        if (s == c) {
                            if (obs::tracer* tr =
                                    shard_tr(static_cast<std::size_t>(s)))
                                tr->emit(shards_->loop(static_cast<std::size_t>(s))
                                             .now(),
                                         obs::point::cell_restore,
                                         obs::reason::none, 0,
                                         static_cast<std::uint64_t>(c));
                        }
                        repatriate_cell(s, c);
                    });
            }
            break;
        }
        case topo::fault_class::link_flap: {
            const std::size_t c = static_cast<std::size_t>(ev.cell);
            injector_->arm(shards_->loop(c), ev.when, cls,
                           [this, c] { wired_dl_[c]->set_rate(0.0); },
                           observe(c, obs::reason::fault_link_flap,
                                   static_cast<std::uint64_t>(ev.cell),
                                   static_cast<std::uint64_t>(ev.duration)));
            // The plan's per-cell flap stream never overlaps itself, so
            // this recovery cannot re-enable a later flap's stall.
            shards_->loop(c).schedule_at(ev.when + ev.duration, [this, c] {
                wired_dl_[c]->set_rate(spec_.wired_bps);
            });
            break;
        }
        case topo::fault_class::impairment_swap: {
            const std::size_t c = static_cast<std::size_t>(ev.cell);
            topo::path_impairment* st =
                ev.uplink ? impair_ul_[c].get() : impair_dl_[c].get();
            injector_->arm(shards_->loop(c), ev.when, cls,
                           [st, spec = ev.impair] { st->set_spec(spec); },
                           observe(c, obs::reason::fault_impair_swap,
                                   static_cast<std::uint64_t>(ev.cell),
                                   ev.uplink ? 1 : 0));
            break;
        }
        }
    }
}

void topology::inject_rlf(int ue, sim::tick duration)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    if (!u.attached) return;  // mid-handover or mid-blackout: nothing to fail
    const std::size_t home_shard = static_cast<std::size_t>(u.home);
    if (cell_down_[home_shard][static_cast<std::size_t>(u.serving)])
        return;  // the cell is down and the UE is being evacuated anyway
    scenario::cell* c = cells_[static_cast<std::size_t>(u.serving)].get();
    const ran::rnti_t rnti = u.rnti;
    const sim::tick now = shards_->loop(home_shard).now();
    const sim::tick q = shards_->quantum();
    u.outage_until = now + duration;
    // The gNB observes the collapse one quantum later (the minimum
    // cross-shard latency); if RLF detection detaches the UE first, the
    // end_radio_outage for the dead RNTI is a no-op.
    shards_->post(static_cast<std::size_t>(u.serving), now + q,
                  [c, rnti] { c->begin_radio_outage(rnti); });
    shards_->post(static_cast<std::size_t>(u.serving),
                  now + std::max(duration, 2 * q),
                  [c, rnti] { c->end_radio_outage(rnti); });
}

void topology::inject_ho_failure(int ue, topo::ho_failure_mode mode)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    if (!u.attached) return;  // mid-handover or mid-blackout: skip
    const int tgt = pick_neighbor(u.serving, static_cast<std::size_t>(u.home));
    if (tgt == u.serving) return;  // no healthy neighbor to attempt
    u.sabotage_next_ho = true;
    u.sabotage_mode = mode;
    begin_handover(ue, tgt);  // consumes the sabotage flag
}

void topology::on_rlf(int cell, ran::rnti_t rnti)
{
    auto& map = cell_rnti_ue_[static_cast<std::size_t>(cell)];
    const auto it = map.find(rnti);
    if (it == map.end()) return;  // a racing handover already moved the UE
    const int ue = it->second;
    map.erase(it);
    ++rlf_detected_;
    // Re-establishment invalidates the hook state (stale profile/estimator
    // state under the dead RNTI would be wrong, and removing it guarantees
    // no leaked flow-table entries) but keeps the UE's RLC/PDCP context:
    // unacked SDUs ride the re-attach and are delivered exactly once, as
    // in PDCP data recovery.
    auto ctx = cells_[static_cast<std::size_t>(cell)]->detach_ue(
        rnti, scenario::cell::hook_transfer::invalidate);
    const sim::tick now = shards_->loop(static_cast<std::size_t>(cell)).now();
    const std::size_t home_shard =
        static_cast<std::size_t>(ues_[static_cast<std::size_t>(ue)]->home);
    shards_->post(home_shard, now + spec_.x2_latency,
                  [this, ue, ctx = std::move(ctx)]() mutable {
                      ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
                      u.attached = false;  // UPF holds traffic from here on
                      u.blackout_start =
                          shards_->loop(static_cast<std::size_t>(u.home)).now();
                      schedule_reestablish(ue, std::move(ctx), -1);
                  });
}

void topology::schedule_reestablish(int ue, ran::ue_handover_context ctx,
                                    int preferred)
{
    const std::size_t home_shard =
        static_cast<std::size_t>(ues_[static_cast<std::size_t>(ue)]->home);
    shards_->loop(home_shard).schedule_after(
        spec_.reestablish_backoff,
        [this, ue, preferred, ctx = std::move(ctx)]() mutable {
            do_reestablish(ue, std::move(ctx), preferred);
        });
}

void topology::do_reestablish(int ue, ran::ue_handover_context ctx, int preferred)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    const std::size_t home_shard = static_cast<std::size_t>(u.home);
    const sim::tick now = shards_->loop(home_shard).now();
    int tgt = preferred >= 0 ? preferred : u.serving;
    // Re-establishing toward a cell that is down — or toward the old
    // serving cell while the UE's radio outage is still running — would
    // fail again immediately: pick the lowest-indexed healthy neighbor.
    if (cell_down_[home_shard][static_cast<std::size_t>(tgt)] ||
        (tgt == u.serving && now < u.outage_until))
        tgt = pick_neighbor(tgt, home_shard);
    const std::size_t tgt_shard = static_cast<std::size_t>(tgt);
    scenario::cell* t = cells_[tgt_shard].get();
    shards_->post(
        tgt_shard, now + spec_.x2_latency,
        [this, ue, tgt, tgt_shard, t, ctx = std::move(ctx)]() mutable {
            if (cell_down_[tgt_shard][static_cast<std::size_t>(tgt)]) {
                // Went down while the request was in flight: back off at
                // home and try again somewhere healthy.
                const sim::tick tn = t->loop().now();
                const std::size_t home = static_cast<std::size_t>(
                    ues_[static_cast<std::size_t>(ue)]->home);
                shards_->post(home, tn + spec_.x2_latency,
                              [this, ue, ctx = std::move(ctx)]() mutable {
                                  schedule_reestablish(ue, std::move(ctx), -1);
                              });
                return;
            }
            readmit(ue, tgt, std::move(ctx), switch_kind::reestablish);
        });
}

void topology::evacuate_cell(int shard, int cell)
{
    // This shard, acting as home shard, hands its own UEs off the downed
    // cell; other shards do the same for theirs at the same tick.
    for (std::size_t i = 0; i < ues_.size(); ++i) {
        ue_entry& u = *ues_[i];
        if (u.home != shard) continue;  // not ours to touch
        if (!u.attached || u.serving != cell) continue;
        u.evac_return = cell;
        begin_handover(static_cast<int>(i), pick_neighbor(cell, static_cast<std::size_t>(shard)));
    }
}

void topology::repatriate_cell(int shard, int cell)
{
    for (std::size_t i = 0; i < ues_.size(); ++i) {
        ue_entry& u = *ues_[i];
        if (u.home != shard || u.evac_return != cell) continue;
        u.evac_return = -1;
        // A UE mid-handover or mid-blackout at recovery stays where it
        // lands; only settled UEs return.
        if (u.attached && u.serving != cell)
            begin_handover(static_cast<int>(i), cell);
    }
}

int topology::pick_neighbor(int avoid, std::size_t shard) const
{
    for (int c = 0; c < num_cells(); ++c)
        if (c != avoid && !cell_down_[shard][static_cast<std::size_t>(c)])
            return c;
    return avoid;  // everything is down — stay put (degraded but safe)
}

void topology::begin_handover(int ue, int target)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    if (!u.attached || target == u.serving) return;  // mid-handover or no-op
    const std::size_t home_shard = static_cast<std::size_t>(u.home);
    if (cell_down_[home_shard][static_cast<std::size_t>(target)]) {
        // Measurement reports would not have picked a cell that is down:
        // redirect to the best healthy neighbor instead.
        target = pick_neighbor(target, home_shard);
        if (target == u.serving) return;
    }
    const bool fail = u.sabotage_next_ho;
    const topo::ho_failure_mode mode = u.sabotage_mode;
    u.sabotage_next_ho = false;
    if (fail) ++ho_failures_;
    ++ho_started_;
    u.attached = false;
    const int src_cell = u.serving;
    scenario::cell* src = cells_[static_cast<std::size_t>(u.serving)].get();
    scenario::cell* tgt = cells_[static_cast<std::size_t>(target)].get();
    const ran::rnti_t rnti = u.rnti;
    const std::size_t src_shard = static_cast<std::size_t>(u.serving);
    const std::size_t tgt_shard = static_cast<std::size_t>(target);
    const sim::tick now = shards_->loop(home_shard).now();
    if (obs::tracer* tr = shard_tr(home_shard))
        tr->emit(now, obs::point::ho_start,
                 fail ? obs::reason::ho_sabotaged : obs::reason::none,
                 static_cast<std::uint32_t>(ue),
                 static_cast<std::uint64_t>(src_cell),
                 static_cast<std::uint64_t>(target));

    // Leg 1 — handover command reaches the source cell, which exports the
    // UE context (SN status transfer + data forwarding + hook state). By
    // then every in-flight downlink/uplink packet for the UE has landed
    // (x2 >= core_hop/ue_stack), so the context captures all of them.
    shards_->post(src_shard, now + spec_.x2_latency, [this, ue, src, tgt, src_shard,
                                                      tgt_shard, home_shard, rnti,
                                                      target, src_cell, fail, mode] {
        // An RLF declared while the command was in flight already detached
        // the UE; the re-establishment path owns the recovery then.
        if (!src->has_ue(rnti)) return;
        cell_rnti_ue_[static_cast<std::size_t>(src_cell)].erase(rnti);
        const bool lose_ctx = fail && mode == topo::ho_failure_mode::reestablish;
        auto ctx = src->detach_ue(rnti, lose_ctx
                                            ? scenario::cell::hook_transfer::invalidate
                                            : scenario::cell::hook_transfer::migrate);
        const sim::tick t1 = src->loop().now();
        if (fail) {
            if (mode == topo::ho_failure_mode::rollback) {
                // The X2 transfer is lost; the source detects the missing
                // acknowledgment after ho_failure_timeout and re-admits
                // the UE with the exported state intact — every forwarded
                // SDU comes back exactly once.
                src->loop().schedule_after(
                    spec_.ho_failure_timeout,
                    [this, ue, src_cell, ctx = std::move(ctx)]() mutable {
                        readmit(ue, src_cell, std::move(ctx), switch_kind::rollback);
                    });
            } else {
                // The context is lost with the transfer: the UE falls back
                // to RLF re-establishment toward the original target, with
                // only what it knows itself (bearer config, no SN status).
                shards_->post(
                    home_shard, t1 + spec_.x2_latency,
                    [this, ue, target,
                     ctx = strip_transfer_state(std::move(ctx))]() mutable {
                        ue_entry& uu = *ues_[static_cast<std::size_t>(ue)];
                        uu.blackout_start =
                            shards_->loop(static_cast<std::size_t>(uu.home)).now();
                        schedule_reestablish(ue, std::move(ctx), target);
                    });
            }
            return;
        }
        // Leg 2 — context transfer to the target cell, which admits the UE
        // under a fresh RNTI and resumes the bearers.
        shards_->post(
            tgt_shard, t1 + spec_.x2_latency,
            [this, ue, tgt, tgt_shard, src_shard, src_cell, target,
             ctx = std::move(ctx)]() mutable {
                if (cell_down_[tgt_shard][static_cast<std::size_t>(target)]) {
                    // The target went down while the context was in
                    // flight: bounce it back to the source, which
                    // re-admits the UE (a rollback).
                    const sim::tick t2 = tgt->loop().now();
                    shards_->post(src_shard, t2 + spec_.x2_latency,
                                  [this, ue, src_cell, ctx = std::move(ctx)]() mutable {
                                      readmit(ue, src_cell, std::move(ctx),
                                              switch_kind::rollback);
                                  });
                    return;
                }
                readmit(ue, target, std::move(ctx), switch_kind::handover);
            });
    });
}

void topology::readmit(int ue, int cell, ran::ue_handover_context ctx,
                       switch_kind kind)
{
    scenario::cell* c = cells_[static_cast<std::size_t>(cell)].get();
    const ran::rnti_t new_rnti = c->attach_ue(std::move(ctx));
    cell_rnti_ue_[static_cast<std::size_t>(cell)][new_rnti] = ue;
    const sim::tick now = c->loop().now();
    // Leg 3 — path switch back to the UPF/home shard (`home` is immutable,
    // so the cross-shard read is safe).
    const std::size_t home_shard =
        static_cast<std::size_t>(ues_[static_cast<std::size_t>(ue)]->home);
    shards_->post(home_shard, now + spec_.x2_latency, [this, ue, cell, new_rnti, kind] {
        finish_path_switch(ue, cell, new_rnti, kind);
    });
}

void topology::finish_path_switch(int ue, int target, ran::rnti_t new_rnti,
                                  switch_kind kind)
{
    ue_entry& u = *ues_[static_cast<std::size_t>(ue)];
    u.serving = target;
    u.rnti = new_rnti;
    u.attached = true;
    switch (kind) {
    case switch_kind::handover: ++ho_completed_; break;
    case switch_kind::reestablish: ++reestablished_; break;
    case switch_kind::rollback: ++ho_rollbacks_; break;
    }
    const sim::tick now = shards_->loop(static_cast<std::size_t>(u.home)).now();
    if (obs::tracer* tr = shard_tr(static_cast<std::size_t>(u.home)))
        tr->emit(now, obs::point::ho_complete,
                 kind == switch_kind::reestablish ? obs::reason::reestablish
                 : kind == switch_kind::rollback  ? obs::reason::rollback
                                                  : obs::reason::none,
                 static_cast<std::uint32_t>(ue),
                 static_cast<std::uint64_t>(target), new_rnti);
    if (u.blackout_start >= 0) {
        u.recovery_samples.push_back(sim::to_ms(now - u.blackout_start));
        u.blackout_start = -1;
    }
    // Path switch: QUIC connections rotate to their next issued CID and
    // keep going — connection identity is the CID, not the path, so no
    // transport state migrates (TCP/media flows have nothing to do). Runs
    // on the home shard, where the endpoints live.
    for (auto& f : flows_)
        if (f->spec.ue == ue) f->ep.on_path_switch();
    // Flush held packets in arrival order down the normal paths. Held
    // downlink packets already passed the impairment stage before the UPF
    // hold, so they re-enter after it (forward_downlink).
    auto dl = std::move(u.held_dl);
    u.held_dl.clear();
    for (auto& pkt : dl) forward_downlink(std::move(pkt));
    auto ul = std::move(u.held_ul);
    u.held_ul.clear();
    for (auto& pkt : ul) {
        const std::size_t f = pkt.flow_id;
        route_uplink(f, std::move(pkt));
    }
}

void topology::run(sim::tick duration)
{
    duration_ = duration;
    ran_ = true;
    if (hub_)
        for (std::size_t s = 0; s < static_cast<std::size_t>(num_cells()); ++s)
            hub_->start_sampling(shards_->loop(s), s);
    for (auto& c : cells_) c->start();
    shards_->run_until(duration);
    if (hub_) hub_->finish(duration);
}

topology::flow_rt& topology::flow_at(int flow) const
{
    if (flow < 0 || static_cast<std::size_t>(flow) >= flows_.size())
        throw std::out_of_range("topology: flow handle out of range");
    return *flows_[static_cast<std::size_t>(flow)];
}

const topology::ue_entry& topology::ue_at(int ue) const
{
    if (ue < 0 || static_cast<std::size_t>(ue) >= ues_.size())
        throw std::out_of_range("topology: UE index out of range");
    return *ues_[static_cast<std::size_t>(ue)];
}

const stats::sample_set& topology::owd_ms(int flow) const
{
    return flow_at(flow).ep.owd_samples();
}

const stats::sample_set& topology::rtt_ms(int flow) const
{
    return flow_at(flow).ep.rtt_samples();
}

const stats::rate_series& topology::goodput_series(int flow) const
{
    return flow_at(flow).ep.goodput();
}

double topology::goodput_mbps(int flow) const
{
    const flow_rt& f = flow_at(flow);
    return flow_goodput_mbps(f.spec, f.ep, duration_);
}

std::uint64_t topology::delivered_bytes(int flow) const
{
    return flow_at(flow).ep.delivered_bytes();
}

std::uint64_t topology::flow_retransmits(int flow) const
{
    return flow_at(flow).ep.transport_retransmits();
}

const media::frame_source* topology::frame_stats(int flow) const
{
    return flow_at(flow).ep.frame_stats();
}

const transport::quic_sender* topology::quic_flow(int flow) const
{
    return flow_at(flow).ep.qsnd.get();
}

int topology::home_cell(int ue) const
{
    return ue_at(ue).home;
}

int topology::serving_cell(int ue) const
{
    return ue_at(ue).serving;
}

ran::rnti_t topology::ue_rnti(int ue) const
{
    return ue_at(ue).rnti;
}

const topo::path_impairment* topology::impair_dl_stage(int c) const
{
    if (c < 0 || c >= num_cells())
        throw std::out_of_range("topology: impairment stage index out of range");
    return static_cast<std::size_t>(c) < impair_dl_.size()
               ? impair_dl_[static_cast<std::size_t>(c)].get()
               : nullptr;
}

const topo::path_impairment* topology::impair_ul_stage(int c) const
{
    if (c < 0 || c >= num_cells())
        throw std::out_of_range("topology: impairment stage index out of range");
    return static_cast<std::size_t>(c) < impair_ul_.size()
               ? impair_ul_[static_cast<std::size_t>(c)].get()
               : nullptr;
}

std::uint64_t topology::faults_injected(topo::fault_class cls) const
{
    return injector_ ? injector_->injected(static_cast<std::size_t>(cls)) : 0;
}

std::uint64_t topology::faults_armed(topo::fault_class cls) const
{
    return injector_ ? injector_->armed(static_cast<std::size_t>(cls)) : 0;
}

std::vector<double> topology::recovery_ms() const
{
    std::vector<double> out;
    for (const auto& u : ues_)
        out.insert(out.end(), u->recovery_samples.begin(),
                   u->recovery_samples.end());
    return out;
}

const topo::wired_link* topology::wired_dl_link(int c) const
{
    if (c < 0 || c >= num_cells())
        throw std::out_of_range("topology: wired link index out of range");
    return static_cast<std::size_t>(c) < wired_dl_.size()
               ? wired_dl_[static_cast<std::size_t>(c)].get()
               : nullptr;
}

bool topology::cell_is_down(int cell) const
{
    if (cell < 0 || cell >= num_cells())
        throw std::out_of_range("topology: cell index out of range");
    return cell_down_[0][static_cast<std::size_t>(cell)] != 0;
}

}  // namespace l4span::scenario
