#include "scenario/grid_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace l4span::scenario {

int default_jobs()
{
    if (const char* env = std::getenv("L4SPAN_BENCH_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

grid_runner::grid_runner(int jobs) : jobs_(jobs > 0 ? jobs : default_jobs()) {}

void grid_runner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn)
{
    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
        while (true) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

bench_args parse_bench_args(int argc, char** argv)
{
    bench_args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            args.jobs = std::atoi(argv[++i]);
        } else if (a.rfind("--jobs=", 0) == 0) {
            args.jobs = std::atoi(a.c_str() + 7);
        } else if (a.rfind("-j", 0) == 0 && a.size() > 2) {
            args.jobs = std::atoi(a.c_str() + 2);
        } else if (a == "--quick") {
            args.quick = true;
        } else if (a == "--json" && i + 1 < argc) {
            args.json_path = argv[++i];
        } else if (a.rfind("--json=", 0) == 0) {
            args.json_path = a.substr(7);
        } else if (a == "--trace-dir" && i + 1 < argc) {
            args.trace_dir = argv[++i];
        } else if (a.rfind("--trace-dir=", 0) == 0) {
            args.trace_dir = a.substr(12);
        } else if (a == "--impair-noop") {
            args.impair_noop = true;
        } else if (a == "--obs-out" && i + 1 < argc) {
            args.obs_out = argv[++i];
        } else if (a.rfind("--obs-out=", 0) == 0) {
            args.obs_out = a.substr(10);
        } else if (a == "--export-scenario" && i + 1 < argc) {
            args.export_scenario = argv[++i];
        } else if (a.rfind("--export-scenario=", 0) == 0) {
            args.export_scenario = a.substr(18);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--quick] [--json PATH] "
                         "[--trace-dir DIR] [--impair-noop] "
                         "[--obs-out PREFIX] [--export-scenario PATH]\n"
                         "unknown argument: %s\n",
                         argv[0], a.c_str());
            std::exit(2);
        }
    }
    if (args.jobs < 0) args.jobs = 1;
    return args;
}

}  // namespace l4span::scenario
