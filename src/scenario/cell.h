// One cell of a (possibly multi-cell) experiment: the gNB, its CU hook
// (L4Span or a baseline), per-UE DRB bookkeeping and instrumentation.
//
// A cell runs on an externally owned event loop, so a scenario can place
// one cell on its private loop (cell_scenario) or one cell per shard of a
// sim::shard_group (scenario::topology). X2/Xn handover moves a UE between
// two cells via detach_ue/attach_ue, carrying RLC/PDCP bearer state and the
// CU hook's marking state.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aqm/wred_dualq.h"
#include "chan/trace_channel.h"
#include "core/l4span.h"
#include "media/frame_source.h"
#include "obs/hub.h"
#include "media/media.h"
#include "ran/gnb.h"
#include "scenario/baselines.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"
#include "topo/cross_traffic.h"
#include "topo/path_impairment.h"
#include "transport/quic_engine.h"
#include "transport/tcp.h"

namespace l4span::scenario {

enum class cu_mode : std::uint8_t {
    none,         // vanilla RAN: deep RLC queue, no signaling (the status quo)
    l4span,       // the paper's system
    dualpi2_ran,  // §6.3.1 microbenchmark baseline
    tcran,        // §6.2.2 comparison baseline
};

struct cell_spec {
    int num_ues = 1;
    // static | pedestrian | vehicular | mobile | trace (DCI replay).
    std::string channel = "static";
    // Trace-driven channels: with channel == "trace", UE i replays
    // ue_traces[i % ue_traces.size()] (per-UE loop/offset/time-scale knobs
    // live in chan::trace_config). Validated with actionable errors.
    std::vector<chan::trace_config> ue_traces;
    std::size_t rlc_queue_sdus = 16384;  // srsRAN default; the paper also uses 256
    ran::rlc_mode rlc_mode = ran::rlc_mode::am;
    ran::sched_policy sched = ran::sched_policy::round_robin;
    cu_mode cu = cu_mode::l4span;
    core::l4span_config l4s;
    tc_ran::config tcran;
    dualpi2_ran_hook::config dualpi2;
    std::uint64_t seed = 1;
    // Put L4S and classic flows of one UE on separate DRBs (§4.2.3 default
    // deployment; false models the low-end shared-DRB UE of §6.2.6).
    bool separate_drbs_per_class = false;
    // Optional shared wired bottleneck on the forward path (Fig. 2): rate
    // changes according to `bottleneck_schedule` (time, bps). Consumed by
    // cell_scenario only.
    double bottleneck_bps = 0.0;
    std::vector<std::pair<sim::tick, double>> bottleneck_schedule;
    // Queue discipline of the wired bottleneck: "fifo" (default),
    // "dualpi2" (an L4S-aware core router whose CE marks a downstream
    // impairment stage can bleach), or "wred" (occupancy-ramp dual queue,
    // parameters in `wred`). Consumed by cell_scenario only.
    std::string bottleneck_aqm = "fifo";
    // Parameters for bottleneck_aqm == "wred". No compiled-in bench sets
    // these — the scenario schema (docs/SCENARIOS.md) is the only producer.
    aqm::wred_dualq_config wred;
    // Optional uplink bottleneck on the server-side return path (FIFO):
    // ACKs and uplink feedback serialize through it, so a congested return
    // hop delays the downlink control loop. 0 keeps the return path
    // latency-only, exactly as before. Consumed by cell_scenario only.
    double ul_bottleneck_bps = 0.0;
    // Wired-path impairments (topo::path_impairment), per direction. The
    // downlink stage sits after the core bottleneck and before the RAN; the
    // uplink stage sits on the server-side return path. All-off specs mount
    // no stage (unless force_stage) and change nothing.
    topo::impairment_spec impair_dl;
    topo::impairment_spec impair_ul;
    // Unresponsive wired background senders sharing the core bottleneck
    // (requires bottleneck_bps > 0), or — per-entry, with spec.uplink — the
    // uplink return bottleneck (requires ul_bottleneck_bps > 0). Consumed
    // by cell_scenario only; scenario::topology has no shared wired
    // bottleneck and rejects these.
    std::vector<topo::cross_traffic_spec> cross_traffic;
    // Record the ground-truth per-TB MAC transmission log (cell::tx_log,
    // Fig. 20 estimator-error experiments). Off by default: the log costs a
    // lookup + append per transport block on the per-slot hot path, and
    // grows without bound over a run.
    bool record_tx_log = false;
    // Observability (src/obs): with obs.enabled the harness builds an
    // obs::hub (one shard per cell), wires every layer's tracer, samples
    // metric snapshots on the spec's cadence and arms the fault flight
    // recorder. Off by default: the only residue of the disabled state is
    // one null-pointer branch per trace site, and an enabled run's
    // simulated behavior stays byte-identical (tracing never draws RNG or
    // schedules sim-visible events). Consumed by cell_scenario and
    // scenario::topology.
    obs::config obs;
};

struct flow_spec {
    // reno|cubic|prague|bbr|bbr2 (TCP), scream|udp-prague (UDP media), or
    // quic-<cc> (QUIC engine with any of the TCP congestion controllers,
    // e.g. "quic-prague").
    std::string cca = "prague";
    int ue = 0;                  // UE index (cell-local or topology-global)
    sim::tick start_time = 0;
    sim::tick stop_time = -1;            // long-lived flows run to scenario end
    std::uint64_t flow_bytes = 0;        // >0: short-lived flow, measures FCT
    double wired_owd_ms = 19.0;          // one-way server->core ("east" Azure)
    std::uint32_t mss = 1400;
    std::uint64_t max_cwnd = 4ull << 20;
    double media_max_bps = 38e6;
    double media_start_bps = 1e6;
    // Interactive frame-paced source (media::frame_source) riding the
    // reliable transport — QUIC stream-per-frame or app-limited TCP — when
    // fps > 0. Ignored for scream/udp-prague flows; an interactive flow is
    // long-lived (flow_bytes is ignored, the stream never "finishes").
    double fps = 0.0;
    double frame_bitrate_bps = 8e6;
    double keyframe_interval_s = 2.0;
    double keyframe_scale = 4.0;
    double frame_deadline_ms = 50.0;
};

// Maps the paper's channel labels to profiles. "trace" is rejected here
// with a pointer at cell_spec.ue_traces (a trace is data, not a profile);
// unknown names list the valid options.
chan::channel_profile channel_by_name(const std::string& name, std::uint64_t variant = 0);

// The link model for UE `variant` of `spec`: a trace_channel when the spec
// says "trace" (validating the assignment), else a fading channel profile
// resolved through channel_by_name. Throws std::invalid_argument with the
// valid options on any misconfiguration.
std::unique_ptr<chan::link_model> make_ue_link(const cell_spec& spec,
                                               std::uint64_t variant);

bool is_l4s_cca(const std::string& cca);
bool is_media_cca(const std::string& cca);
bool is_quic_cca(const std::string& cca);
// "quic-prague" -> "prague"; throws std::invalid_argument otherwise.
std::string quic_cc_of(const std::string& cca);

// One flow's endpoints: server-side sender and UE-side receiver (TCP, QUIC
// or media), wired to scenario-supplied send callbacks. Both endpoints live
// on the loop they were created with — in a sharded topology that is the
// UE's home shard, which never changes even as the UE hands over between
// cells.
struct flow_endpoints {
    bool is_media = false;
    bool is_quic = false;
    std::unique_ptr<transport::tcp_sender> snd;
    std::unique_ptr<transport::tcp_receiver> rcv;
    std::unique_ptr<transport::quic_sender> qsnd;
    std::unique_ptr<transport::quic_receiver> qrcv;
    std::unique_ptr<media::media_sender> msnd;
    std::unique_ptr<media::media_receiver> mrcv;
    std::unique_ptr<media::frame_source> frames;  // interactive source (fps > 0)

    void on_downlink(const net::packet& pkt);  // deliver to the receiver
    void on_uplink(const net::packet& pkt);    // deliver feedback to the sender

    // Handover path switch: a QUIC connection rotates to its next issued
    // CID and keeps going; TCP/media endpoints have nothing to do.
    void on_path_switch();

    const stats::sample_set& owd_samples() const;
    const stats::sample_set& rtt_samples() const;
    const stats::rate_series& goodput() const;
    std::uint64_t delivered_bytes() const;
    std::uint64_t cwnd_bytes() const;
    std::uint64_t transport_retransmits() const;  // TCP/QUIC data re-sends
    bool tcp_finished() const;
    sim::tick tcp_finish_time() const;
    const media::frame_source* frame_stats() const { return frames.get(); }
};

// Builds the endpoints for `spec` and schedules their start/stop events on
// `loop`. `handle` and `ue_addr` synthesize the unique five-tuple. `tracer`
// (optional) reaches the sender's congestion-reaction trace points; it must
// belong to the shard that owns `loop`.
flow_endpoints make_flow_endpoints(sim::event_loop& loop, const flow_spec& spec,
                                   int handle, int ue_addr,
                                   std::function<void(net::packet)> dl_send,
                                   std::function<void(net::packet)> ul_send,
                                   obs::tracer* tracer = nullptr);

// Goodput over the flow's active period — shared by every harness so the
// single-cell and multi-cell metric definitions cannot diverge.
double flow_goodput_mbps(const flow_spec& spec, const flow_endpoints& ep,
                         sim::tick scenario_duration);

class cell {
public:
    cell(sim::event_loop& loop, cell_spec spec, int index = 0);
    ~cell();

    sim::event_loop& loop() { return loop_; }
    int index() const { return index_; }
    const cell_spec& spec() const { return spec_; }

    // --- topology construction ---
    // Adds a UE with the spec's channel; `variant` seeds the pedestrian /
    // vehicular alternation of the "mobile" profile.
    ran::rnti_t add_ue(std::uint64_t variant);
    // RNTI of the i-th UE added (initial construction order).
    ran::rnti_t rnti_of(std::size_t i) const;
    // Allocates the UE's next QFI.
    ran::qfi_t alloc_qfi(ran::rnti_t ue);
    // Routes `qfi` to the UE's per-class DRB; returns the DRB chosen.
    ran::drb_id_t map_qos_flow(ran::rnti_t ue, ran::qfi_t qfi, bool l4s_class);

    // Starts the slot clock and queue sampling. Call once.
    void start();

    // --- data path (core/UPF side) ---
    void deliver_downlink(net::packet pkt, ran::rnti_t ue, ran::qfi_t qfi);
    void send_uplink(ran::rnti_t ue, net::packet pkt);
    bool has_ue(ran::rnti_t ue) const;

    // --- X2/Xn handover + fault recovery ---
    // What happens to the CU hook's per-UE marking state at detach:
    // `migrate` exports it into the context (normal handover — carrying it
    // forward prevents the post-handover marking glitch); `invalidate`
    // removes and discards it (RLF re-establishment — the forwarded SN
    // space restarts, so stale profile/estimator state would be wrong, and
    // dropping it guarantees no leaked flow-table entries under the dead
    // RNTI). Either way the entity holds nothing keyed to the old RNTI.
    enum class hook_transfer : std::uint8_t { migrate, invalidate };
    ran::ue_handover_context detach_ue(ran::rnti_t ue,
                                       hook_transfer ht = hook_transfer::migrate);
    ran::rnti_t attach_ue(ran::ue_handover_context ctx);

    // --- fault injection (radio outage / RLF) ---
    void begin_radio_outage(ran::rnti_t ue) { gnb_->begin_outage(ue); }
    void end_radio_outage(ran::rnti_t ue) { gnb_->end_outage(ue); }
    void set_rlf_handler(ran::gnb::rlf_handler h);

    void set_deliver_handler(ran::gnb::deliver_handler h);
    void set_uplink_handler(ran::gnb::uplink_handler h);
    // Per-slot DCI log (chan::trace_recorder plugs in here). Fires on this
    // cell's loop thread: in a sharded topology record with jobs=1 or use
    // one recorder per cell.
    void set_linklog_handler(ran::gnb::linklog_handler h);

    // --- instrumentation ---
    ran::gnb& gnb() { return *gnb_; }
    core::l4span* l4span_layer() { return l4span_.get(); }
    // Wires the cell into the observability subsystem: the tracer reaches
    // the gNB's layer-boundary trace points and the CU hook's decision
    // points; the registry (optional) gains cell-prefixed counters for the
    // gNB and the L4Span entity plus the predicted-sojourn histogram. Call
    // before start(); both pointers are non-owning and may be null.
    void attach_obs(obs::tracer* tr, obs::registry* reg);
    const stats::sample_set& rlc_queue_sdus(ran::rnti_t ue) const;
    const stats::value_series& rlc_queue_series(ran::rnti_t ue) const;
    // Requires cell_spec.record_tx_log (throws std::logic_error otherwise —
    // an empty log would silently read as "no transmissions").
    const std::vector<std::pair<sim::tick, std::uint32_t>>& tx_log(ran::rnti_t ue) const;
    double mean_queuing_ms() const;
    double mean_scheduling_ms() const;

private:
    struct ue_rec {
        ran::rnti_t rnti = 0;
        ran::drb_id_t default_drb = 0;
        ran::drb_id_t classic_drb = 0;
        int next_qfi = 1;
        bool attached = true;
        stats::sample_set rlc_samples;
        stats::value_series rlc_series{sim::from_ms(100)};
        std::vector<std::pair<sim::tick, std::uint32_t>> tx_log;
    };

    ue_rec& rec(ran::rnti_t ue);
    const ue_rec& rec(ran::rnti_t ue) const;
    void schedule_sampling();

    sim::event_loop& loop_;
    cell_spec spec_;
    int index_;
    sim::rng rng_;
    std::unique_ptr<ran::gnb> gnb_;
    std::unique_ptr<core::l4span> l4span_;
    std::unique_ptr<dualpi2_ran_hook> dualpi2_;
    std::unique_ptr<tc_ran> tcran_;
    ran::cu_hook* hook_ = nullptr;

    std::vector<std::unique_ptr<ue_rec>> ues_;  // includes detached tombstones
    // RNTIs are assigned densely from 1 by this cell's gNB and never
    // reused, so the lookup is a vector indexed by rnti-1.
    std::vector<ue_rec*> rnti_slots_;

    double queuing_sum_ms_ = 0.0;
    double sched_sum_ms_ = 0.0;
    std::uint64_t delay_reports_ = 0;
    bool started_ = false;
};

}  // namespace l4span::scenario
