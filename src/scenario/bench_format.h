// Shared output/formatting helpers for the benchmark harnesses and the
// scenario engine's family runners. Historically bench/bench_util.h; moved
// into the library so `l4span_run` and the conformance tests share the
// exact code path the bench binaries print through — byte-identity between
// a bench and the same scenario loaded from JSON holds by construction.
#pragma once

#include <cstdio>
#include <string>

#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/json.h"
#include "stats/sample_set.h"
#include "stats/table.h"

namespace l4span::benchutil {

// One congested-cell grid point of the Fig. 9 / Fig. 24 methodology: `ues`
// long-lived downloads of one CCA, pooled OWD samples + per-UE goodput.
struct tcp_grid_result {
    stats::sample_set owd_ms;      // pooled over all UEs
    stats::sample_set tput_mbps;   // one sample per UE
};

inline tcp_grid_result run_tcp_grid_cell(const std::string& cca, int ues,
                                         std::size_t queue, double wired_owd_ms,
                                         const std::string& chan, bool l4span_on,
                                         std::uint64_t seed_base, sim::tick duration,
                                         bool impair_noop = false,
                                         const std::string& obs_out = "")
{
    scenario::cell_spec cell;
    cell.num_ues = ues;
    cell.channel = chan;
    cell.rlc_queue_sdus = queue;
    cell.cu = l4span_on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = seed_base + static_cast<std::uint64_t>(ues) + queue;
    // Pass-through fast-path check: mount all-off impairment stages on both
    // directions; results must be byte-identical to running without them.
    cell.impair_dl.force_stage = impair_noop;
    cell.impair_ul.force_stage = impair_noop;
    // Telemetry hub: the measured results must not change, only the JSONL
    // artifacts appear (CI diffs a traced run against an untraced one).
    if (!obs_out.empty()) {
        cell.obs.enabled = true;
        cell.obs.out_prefix = obs_out;
    }
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < ues; ++u) {
        scenario::flow_spec f;
        f.cca = cca;
        f.ue = u;
        f.wired_owd_ms = wired_owd_ms;
        f.max_cwnd = 1536 * 1024;  // Linux default-autotuned receive window
        handles.push_back(s.add_flow(f));
    }
    s.run(duration);

    tcp_grid_result r;
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) r.owd_ms.add(v);
        r.tput_mbps.add(s.goodput_mbps(h));
    }
    return r;
}

// "p10/p25/p50/p75/p90" summary the paper's box plots report.
inline std::string box(const stats::sample_set& s, int precision = 1)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.*f/%.*f/%.*f/%.*f/%.*f", precision,
                  s.percentile(10), precision, s.percentile(25), precision, s.median(),
                  precision, s.percentile(75), precision, s.percentile(90));
    return buf;
}

// Same box statistics as a JSON object for the machine-readable summaries.
inline stats::json box_json(const stats::sample_set& s)
{
    auto j = stats::json::object();
    j.set("p10", s.percentile(10))
        .set("p25", s.percentile(25))
        .set("p50", s.median())
        .set("p75", s.percentile(75))
        .set("p90", s.percentile(90))
        .set("count", s.count());
    return j;
}

inline void header(const char* title, const char* paper_ref)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n  reproduces: %s\n", title, paper_ref);
    std::printf("================================================================\n");
}

// Writes the per-figure JSON summary when --json was given; the process exit
// status reflects write failures so scripts/CI notice missing artifacts.
inline int finish(const scenario::bench_args& args, const stats::json& summary)
{
    if (args.json_path.empty()) return 0;
    if (!stats::write_text_file(args.json_path, summary.dump())) {
        std::fprintf(stderr, "error: cannot write JSON summary to %s\n",
                     args.json_path.c_str());
        return 1;
    }
    std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
    return 0;
}

}  // namespace l4span::benchutil
