// Baseline in-RAN AQMs the paper compares against.
//
//  * tc_ran (§6.2.2, Irazabal et al.): a CoDel / ECN-CoDel queuing
//    discipline between the SDAP and PDCP layers. The qdisc holds the
//    standing queue at the CU and trickles packets into the RLC only while
//    the RLC SDU queue is short, so the fixed-threshold CoDel logic governs
//    the sojourn time.
//  * dualpi2_ran_hook (§6.3.1): the wired DualPi2 marking rule transplanted
//    into the CU — step-marks L4S packets on the measured head sojourn and
//    PI-marks classic packets — to show a fixed-threshold marker cannot
//    track a volatile wireless egress rate.
#pragma once

#include <memory>
#include <unordered_map>

#include "aqm/codel.h"
#include "core/profile_table.h"
#include "ran/cu_hook.h"
#include "ran/gnb.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace l4span::scenario {

class tc_ran {
public:
    struct config {
        aqm::codel_config codel;
        std::size_t rlc_drain_sdus = 16;     // keep the RLC queue at most this long
        sim::tick poll = sim::from_ms(1);
    };

    tc_ran(sim::event_loop& loop, ran::gnb& gnb, config cfg);

    // Use instead of gnb.deliver_downlink(): packets pass the CoDel queue
    // first and drain into the RLC under flow control.
    void deliver_downlink(net::packet pkt, ran::rnti_t ue, ran::qfi_t qfi);

private:
    struct ue_queue {
        std::unique_ptr<aqm::codel_queue> q;
        ran::qfi_t qfi = 0;
    };

    void poll();

    sim::event_loop& loop_;
    ran::gnb& gnb_;
    config cfg_;
    std::unordered_map<ran::rnti_t, ue_queue> queues_;
    bool polling_ = false;
};

class dualpi2_ran_hook : public ran::cu_hook {
public:
    struct config {
        sim::tick l4s_step = sim::from_ms(1);     // also evaluated at 10 ms
        sim::tick classic_target = sim::from_ms(15);
        sim::tick t_update = sim::from_ms(16);
        double alpha = 0.16;
        double beta = 3.2;
        std::uint64_t seed = 11;
    };

    explicit dualpi2_ran_hook(config cfg) : cfg_(cfg), rng_(cfg.seed) {}

    bool on_dl_packet(net::packet& pkt, ran::rnti_t ue, ran::drb_id_t drb,
                      ran::pdcp_sn_t sn, sim::tick now) override;
    bool on_ul_packet(net::packet&, ran::rnti_t, sim::tick) override { return true; }
    void on_delivery_status(const ran::dl_delivery_status& st, sim::tick now) override;

private:
    struct drb_state {
        core::profile_table table;
        double p_prime = 0.0;
        sim::tick last_update = 0;
        sim::tick prev_sojourn = 0;
    };

    drb_state& drb(ran::rnti_t ue, ran::drb_id_t id)
    {
        return drbs_[(static_cast<std::uint32_t>(ue) << 8) | id];
    }

    config cfg_;
    sim::rng rng_;
    std::unordered_map<std::uint32_t, drb_state> drbs_;
};

}  // namespace l4span::scenario
