// Parallel experiment runner for scenario grids.
//
// The paper's figure grids (Fig. 9/24/19/...) are hundreds of fully
// independent cell_scenario runs: each grid point owns its own event_loop
// and RNG, so there is no shared mutable state and points can execute on any
// thread. grid_runner fans the points out over a std::thread pool and
// returns results indexed by grid coordinate, so downstream table/JSON
// output is byte-identical regardless of completion order or thread count.
//
// Thread-safety contract: the job callable runs on a pool thread and must
// only touch state it owns (build the scenario inside the job). `jobs == 1`
// runs everything inline on the calling thread — exactly the historical
// serial behavior.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace l4span::scenario {

// Worker count resolution: explicit value if > 0, else the
// L4SPAN_BENCH_JOBS environment variable, else hardware concurrency.
int default_jobs();

class grid_runner {
public:
    // jobs == 0 resolves through default_jobs().
    explicit grid_runner(int jobs = 0);

    int jobs() const { return jobs_; }

    // Runs fn(i) for every i in [0, n). Results come back in index order.
    // The first exception thrown by any job is rethrown on the caller's
    // thread after all workers drain.
    template <typename Fn>
    auto map(std::size_t n, Fn&& fn) -> std::vector<decltype(fn(std::size_t{}))>
    {
        using result = decltype(fn(std::size_t{}));
        std::vector<std::optional<result>> slots(n);
        run_indexed(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<result> out;
        out.reserve(n);
        for (auto& s : slots) out.push_back(std::move(*s));
        return out;
    }

    // Index fan-out without result collection (jobs write their own slots).
    void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    int jobs_;
};

// --- shared CLI plumbing for the figure benches -----------------------------

struct bench_args {
    int jobs = 0;            // --jobs N (0 → default_jobs())
    bool quick = false;      // --quick: tiny grid slice for CI perf-smoke
    std::string json_path;   // --json PATH: write the per-figure summary
    std::string trace_dir;   // --trace-dir DIR: replay DCI traces from DIR
                             // (bench_trace_replay, bench_fig18_coherence)
    bool impair_noop = false;  // --impair-noop: mount all-off impairment
                               // stages (pass-through fast-path check; the
                               // output must be byte-identical)
    std::string obs_out;     // --obs-out PREFIX: enable the obs:: telemetry
                             // hub and write PREFIX.metrics.jsonl /
                             // PREFIX.trace.jsonl (+ incident dumps). The
                             // simulated results must be byte-identical
                             // with or without it.
    std::string export_scenario;  // --export-scenario PATH: benches with a
                                  // scenario_spec-backed grid dump their
                                  // compiled-in scenario (after --quick
                                  // slicing) to PATH as JSON and exit
                                  // instead of running. Other benches
                                  // accept and ignore the flag.
};

// Parses --jobs N / --quick / --json PATH / --trace-dir DIR /
// --impair-noop / --obs-out PREFIX (and -jN).
// Unknown arguments are rejected with a usage message on stderr and
// exit(2) so a typo can't silently run the full multi-minute grid.
bench_args parse_bench_args(int argc, char** argv);

}  // namespace l4span::scenario
