#include "scenario/baselines.h"

namespace l4span::scenario {

// ----------------------------------------------------------------- TC-RAN --

tc_ran::tc_ran(sim::event_loop& loop, ran::gnb& gnb, config cfg)
    : loop_(loop), gnb_(gnb), cfg_(cfg)
{
}

void tc_ran::deliver_downlink(net::packet pkt, ran::rnti_t ue, ran::qfi_t qfi)
{
    auto it = queues_.find(ue);
    if (it == queues_.end()) {
        ue_queue q;
        q.q = std::make_unique<aqm::codel_queue>(cfg_.codel);
        q.qfi = qfi;
        it = queues_.emplace(ue, std::move(q)).first;
    }
    it->second.q->enqueue(std::move(pkt), loop_.now());
    // Opportunistic immediate drain so short queues add no latency.
    poll();
}

void tc_ran::poll()
{
    bool any_left = false;
    for (auto& [ue, q] : queues_) {
        // Flow control: only feed the RLC while its SDU queue is short, so
        // the standing queue (and CoDel's authority) stays at the CU.
        while (!q.q->empty() && gnb_.rlc(ue, 1).queued_sdus() < cfg_.rlc_drain_sdus) {
            auto pkt = q.q->dequeue(loop_.now());
            if (!pkt) break;  // CoDel dropped the tail of the queue
            gnb_.deliver_downlink(std::move(*pkt), ue, q.qfi);
        }
        if (!q.q->empty()) any_left = true;
    }
    if (any_left) {
        loop_.schedule_after(cfg_.poll, [this] { poll(); });
        polling_ = true;
    } else {
        polling_ = false;
    }
}

// ------------------------------------------------------- DualPi2 in the RAN --

bool dualpi2_ran_hook::on_dl_packet(net::packet& pkt, ran::rnti_t ue, ran::drb_id_t drb_id,
                                    ran::pdcp_sn_t sn, sim::tick now)
{
    drb_state& d = drb(ue, drb_id);
    d.table.on_ingress(sn, pkt.size_bytes(), now);
    if (pkt.payload_bytes == 0) return true;

    const sim::tick sojourn = d.table.head_age(now);
    if (pkt.ecn_field == net::ecn::ect1) {
        // L4S: step threshold OR coupled probability, as in RFC 9332.
        const double p_cl = std::min(1.0, 2.0 * d.p_prime);
        if (sojourn > cfg_.l4s_step || rng_.bernoulli(p_cl)) pkt.ecn_field = net::ecn::ce;
    } else if (pkt.ecn_field == net::ecn::ect0) {
        if (rng_.bernoulli(d.p_prime * d.p_prime)) pkt.ecn_field = net::ecn::ce;
    }
    return true;
}

void dualpi2_ran_hook::on_delivery_status(const ran::dl_delivery_status& st, sim::tick now)
{
    drb_state& d = drb(st.ue, st.drb);
    if (st.has_transmitted) d.table.on_transmitted(st.highest_transmitted_sn, st.timestamp, {});
    d.table.prune(now, sim::from_sec(1));

    while (now - d.last_update >= cfg_.t_update) {
        d.last_update += cfg_.t_update;
        const sim::tick sojourn = d.table.head_age(d.last_update);
        d.p_prime += cfg_.alpha * sim::to_sec(sojourn - cfg_.classic_target) +
                     cfg_.beta * sim::to_sec(sojourn - d.prev_sojourn);
        d.p_prime = std::clamp(d.p_prime, 0.0, 1.0);
        d.prev_sojourn = sojourn;
    }
}

}  // namespace l4span::scenario
