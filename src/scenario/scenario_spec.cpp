#include "scenario/scenario_spec.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace l4span::scenario {

namespace {

// Largest integer a double (and therefore a JSON number) carries exactly.
constexpr double k_max_exact = 9007199254740992.0;  // 2^53

// Time fields travel as milliseconds/seconds; conversion rounds to the
// nearest tick (nanosecond). Round-to-nearest — unlike from_ms's
// truncation — makes tick -> decimal -> tick the identity for every tick
// below 2^51 ns, which is what keeps export -> parse -> export exact.
sim::tick ms_to_tick(double ms)
{
    return static_cast<sim::tick>(std::llround(ms * sim::k_millisecond));
}
sim::tick sec_to_tick(double s)
{
    return static_cast<sim::tick>(std::llround(s * sim::k_second));
}

[[noreturn]] void fail(const std::string& origin, int line, const std::string& msg)
{
    std::string out = origin + ": " + msg;
    if (line > 0) out += " (line " + std::to_string(line) + ")";
    throw scenario_error(out);
}

// One object node being bound to a struct: typed, range-checked accessors
// that mark the keys they consume, plus a final unknown-key sweep. Every
// error names the full key path and the node's source line.
class binder {
public:
    binder(const std::string& origin, const stats::json& node, std::string path)
        : origin_(origin), node_(node), path_(std::move(path))
    {
        if (!node_.is_object())
            fail(origin_, node_.line(), "\"" + path_ + "\" must be an object");
    }

    const std::string& origin() const { return origin_; }
    const std::string& path() const { return path_; }
    int line() const { return node_.line(); }

    // Returns the member or nullptr, remembering `key` as known.
    const stats::json* opt(const char* key)
    {
        known_.push_back(key);
        return node_.find(key);
    }

    bool bool_or(const char* key, bool def)
    {
        const stats::json* v = opt(key);
        if (!v) return def;
        if (!v->is_bool()) fail_key(key, *v, "must be true or false");
        return v->as_bool();
    }

    double num_or(const char* key, double def,
                  double lo = -std::numeric_limits<double>::infinity(),
                  double hi = std::numeric_limits<double>::infinity())
    {
        const stats::json* v = opt(key);
        if (!v) return def;
        return check_range(key, *v, lo, hi);
    }

    // Integer-valued number in [lo, hi].
    long long int_or(const char* key, long long def, long long lo, long long hi)
    {
        const stats::json* v = opt(key);
        if (!v) return def;
        const double d = check_range(key, *v, static_cast<double>(lo),
                                     static_cast<double>(hi));
        if (d != std::floor(d))
            fail_key(key, *v, "must be an integer, got " + std::to_string(d));
        return static_cast<long long>(d);
    }

    std::uint64_t u64_or(const char* key, std::uint64_t def)
    {
        const stats::json* v = opt(key);
        if (!v) return def;
        const double d = check_range(key, *v, 0.0, k_max_exact);
        if (d != std::floor(d)) fail_key(key, *v, "must be a non-negative integer");
        return static_cast<std::uint64_t>(d);
    }

    std::string str_or(const char* key, std::string def)
    {
        const stats::json* v = opt(key);
        if (!v) return def;
        if (!v->is_string()) fail_key(key, *v, "must be a string");
        return v->as_string();
    }

    // Required array member.
    const stats::json& array(const char* key)
    {
        const stats::json* v = opt(key);
        if (!v)
            fail(origin_, node_.line(),
                 "missing required key \"" + path_ + "." + key + "\"");
        if (!v->is_array()) fail_key(key, *v, "must be an array");
        if (v->elements().empty()) fail_key(key, *v, "must not be empty");
        return *v;
    }

    // Optional object member; nullptr when absent.
    const stats::json* object(const char* key)
    {
        const stats::json* v = opt(key);
        if (!v) return nullptr;
        if (!v->is_object()) fail_key(key, *v, "must be an object");
        return v;
    }

    [[noreturn]] void fail_key(const char* key, const stats::json& v,
                               const std::string& msg)
    {
        fail(origin_, v.line() > 0 ? v.line() : node_.line(),
             "key \"" + path_ + "." + key + "\" " + msg);
    }

    // Unknown-key sweep: every accessor above registered its key, so by now
    // `known_` is the complete schema of this object and anything else is a
    // typo worth naming (with the valid keys, so the fix is one glance).
    void done()
    {
        for (const auto& [key, value] : node_.members()) {
            bool ok = false;
            for (const char* k : known_)
                if (key == k) { ok = true; break; }
            if (ok) continue;
            std::string valid;
            for (const char* k : known_)
                valid += (valid.empty() ? "" : ", ") + std::string(k);
            fail(origin_, value.line() > 0 ? value.line() : node_.line(),
                 "unknown key \"" + path_ + "." + key + "\" (valid: " + valid + ")");
        }
    }

private:
    double check_range(const char* key, const stats::json& v, double lo, double hi)
    {
        if (!v.is_number()) fail_key(key, v, "must be a number");
        const double d = v.as_number();
        if (d < lo || d > hi)
            fail_key(key, v,
                     "must be in [" + std::to_string(lo) + ", " +
                         std::to_string(hi) + "], got " + std::to_string(d));
        return d;
    }

    const std::string& origin_;
    const stats::json& node_;
    std::string path_;
    std::vector<const char*> known_;
};

std::string elem_path(const std::string& base, const char* key, std::size_t i)
{
    return base + "." + key + "[" + std::to_string(i) + "]";
}

// --- small enum <-> name tables ---------------------------------------------

std::string cu_mode_name(cu_mode m)
{
    switch (m) {
        case cu_mode::none: return "none";
        case cu_mode::l4span: return "l4span";
        case cu_mode::dualpi2_ran: return "dualpi2_ran";
        case cu_mode::tcran: return "tcran";
    }
    return "l4span";
}

cu_mode cu_mode_by_name(binder& b, const char* key, const std::string& name)
{
    if (name == "none") return cu_mode::none;
    if (name == "l4span") return cu_mode::l4span;
    if (name == "dualpi2_ran") return cu_mode::dualpi2_ran;
    if (name == "tcran") return cu_mode::tcran;
    fail(b.origin(), b.line(),
         "key \"" + b.path() + "." + key + "\": unknown CU mode \"" + name +
             "\" (valid: none, l4span, dualpi2_ran, tcran)");
}

std::string ecn_name(net::ecn e)
{
    switch (e) {
        case net::ecn::not_ect: return "not_ect";
        case net::ecn::ect0: return "ect0";
        case net::ecn::ect1: return "ect1";
        case net::ecn::ce: return "ce";
    }
    return "not_ect";
}

net::ecn ecn_by_name(binder& b, const char* key, const std::string& name)
{
    if (name == "not_ect") return net::ecn::not_ect;
    if (name == "ect0") return net::ecn::ect0;
    if (name == "ect1") return net::ecn::ect1;
    if (name == "ce") return net::ecn::ce;
    fail(b.origin(), b.line(),
         "key \"" + b.path() + "." + key + "\": unknown ECN codepoint \"" + name +
             "\" (valid: not_ect, ect0, ect1, ce)");
}

// --- sub-spec parsers (parse_x) and exporters (json_of_x) -------------------
// Every exporter writes every key, always, in one fixed order; every parser
// accepts exactly those keys. That pairing is what makes export -> parse ->
// export the byte identity.

topo::impairment_spec parse_impairment(const std::string& origin,
                                       const stats::json& node,
                                       const std::string& path, bool top_level)
{
    binder b(origin, node, path);
    topo::impairment_spec s;
    s.remark_ect1 = b.num_or("remark_ect1", 0.0, 0.0, 1.0);
    s.bleach_ce = b.num_or("bleach_ce", 0.0, 0.0, 1.0);
    s.strip_ect = b.num_or("strip_ect", 0.0, 0.0, 1.0);
    s.loss = b.num_or("loss", 0.0, 0.0, 1.0);
    s.loss_burst = b.num_or("loss_burst", 1.0, 1.0, 1e6);
    s.reorder = b.num_or("reorder", 0.0, 0.0, 1.0);
    s.reorder_gap = static_cast<int>(b.int_or("reorder_gap", 3, 1, 1 << 20));
    s.reorder_hold_max = ms_to_tick(b.num_or("reorder_hold_max_ms", 20.0, 0.0, 60e3));
    s.duplicate = b.num_or("duplicate", 0.0, 0.0, 1.0);
    s.force_stage = b.bool_or("force_stage", false);
    if (const stats::json* fp = b.opt("flow_policies")) {
        if (!fp->is_array())
            b.fail_key("flow_policies", *fp, "must be an array");
        if (!top_level)
            b.fail_key("flow_policies", *fp,
                       "may not nest (per-flow policies are one level deep)");
        for (std::size_t i = 0; i < fp->elements().size(); ++i)
            s.flow_policies.push_back(
                parse_impairment(origin, fp->elements()[i],
                                 elem_path(path, "flow_policies", i), false));
    }
    b.done();
    return s;
}

stats::json json_of_impairment(const topo::impairment_spec& s, bool top_level)
{
    auto j = stats::json::object();
    j.set("remark_ect1", s.remark_ect1)
        .set("bleach_ce", s.bleach_ce)
        .set("strip_ect", s.strip_ect)
        .set("loss", s.loss)
        .set("loss_burst", s.loss_burst)
        .set("reorder", s.reorder)
        .set("reorder_gap", s.reorder_gap)
        .set("reorder_hold_max_ms", sim::to_ms(s.reorder_hold_max))
        .set("duplicate", s.duplicate)
        .set("force_stage", s.force_stage);
    if (top_level) {
        auto fp = stats::json::array();
        for (const auto& p : s.flow_policies)
            fp.push(json_of_impairment(p, false));
        j.set("flow_policies", std::move(fp));
    }
    return j;
}

aqm::wred_profile parse_wred_profile(const std::string& origin,
                                     const stats::json& node,
                                     const std::string& path)
{
    binder b(origin, node, path);
    aqm::wred_profile p;
    p.min_bytes = static_cast<std::size_t>(
        b.int_or("min_bytes", 0, 0, 1ll << 40));
    p.max_bytes = static_cast<std::size_t>(
        b.int_or("max_bytes", 0, 0, 1ll << 40));
    p.max_p = b.num_or("max_p", 1.0, 0.0, 1.0);
    b.done();
    return p;
}

stats::json json_of_wred_profile(const aqm::wred_profile& p)
{
    auto j = stats::json::object();
    j.set("min_bytes", static_cast<std::uint64_t>(p.min_bytes))
        .set("max_bytes", static_cast<std::uint64_t>(p.max_bytes))
        .set("max_p", p.max_p);
    return j;
}

aqm::wred_dualq_config parse_wred(const std::string& origin,
                                  const stats::json& node, const std::string& path)
{
    binder b(origin, node, path);
    aqm::wred_dualq_config cfg;
    if (const stats::json* p = b.object("l4s"))
        cfg.l4s = parse_wred_profile(origin, *p, path + ".l4s");
    if (const stats::json* p = b.object("classic"))
        cfg.classic = parse_wred_profile(origin, *p, path + ".classic");
    cfg.ecn_drop_bytes = static_cast<std::size_t>(
        b.int_or("ecn_drop_bytes", static_cast<long long>(cfg.ecn_drop_bytes), 0,
                 1ll << 40));
    cfg.l4s_weight = static_cast<int>(b.int_or("l4s_weight", cfg.l4s_weight, 1, 1 << 20));
    cfg.max_bytes = static_cast<std::size_t>(
        b.int_or("max_bytes", static_cast<long long>(cfg.max_bytes), 1, 1ll << 40));
    b.done();
    return cfg;
}

stats::json json_of_wred(const aqm::wred_dualq_config& cfg)
{
    auto j = stats::json::object();
    j.set("l4s", json_of_wred_profile(cfg.l4s))
        .set("classic", json_of_wred_profile(cfg.classic))
        .set("ecn_drop_bytes", static_cast<std::uint64_t>(cfg.ecn_drop_bytes))
        .set("l4s_weight", cfg.l4s_weight)
        .set("max_bytes", static_cast<std::uint64_t>(cfg.max_bytes));
    return j;
}

core::l4span_config parse_l4s(const std::string& origin, const stats::json& node,
                              const std::string& path)
{
    binder b(origin, node, path);
    core::l4span_config cfg;
    cfg.sojourn_threshold = ms_to_tick(
        b.num_or("sojourn_threshold_ms", sim::to_ms(cfg.sojourn_threshold), 0.1, 10e3));
    cfg.coherence_time = ms_to_tick(
        b.num_or("coherence_time_ms", sim::to_ms(cfg.coherence_time), 0.1, 10e3));
    cfg.short_circuit = b.bool_or("short_circuit", cfg.short_circuit);
    cfg.drop_non_ecn = b.bool_or("drop_non_ecn", cfg.drop_non_ecn);
    cfg.error_aware = b.bool_or("error_aware", cfg.error_aware);
    cfg.classic_beta = b.num_or("classic_beta", cfg.classic_beta, 0.01, 0.99);
    cfg.mss = static_cast<std::uint32_t>(b.int_or("mss", cfg.mss, 64, 65535));
    cfg.shared_policy = shared_drb_policy_by_name(
        b.str_or("shared_policy", shared_drb_policy_name(cfg.shared_policy)));
    cfg.prune_horizon = ms_to_tick(
        b.num_or("prune_horizon_ms", sim::to_ms(cfg.prune_horizon), 1.0, 3600e3));
    b.done();
    return cfg;
}

stats::json json_of_l4s(const core::l4span_config& cfg)
{
    auto j = stats::json::object();
    j.set("sojourn_threshold_ms", sim::to_ms(cfg.sojourn_threshold))
        .set("coherence_time_ms", sim::to_ms(cfg.coherence_time))
        .set("short_circuit", cfg.short_circuit)
        .set("drop_non_ecn", cfg.drop_non_ecn)
        .set("error_aware", cfg.error_aware)
        .set("classic_beta", cfg.classic_beta)
        .set("mss", static_cast<int>(cfg.mss))
        .set("shared_policy", shared_drb_policy_name(cfg.shared_policy))
        .set("prune_horizon_ms", sim::to_ms(cfg.prune_horizon));
    return j;
}

topo::cross_traffic_spec parse_cross(const std::string& origin,
                                     const stats::json& node,
                                     const std::string& path)
{
    binder b(origin, node, path);
    topo::cross_traffic_spec s;
    s.model = b.str_or("model", s.model);
    if (s.model != "poisson" && s.model != "cbr")
        fail(origin, b.line(),
             "key \"" + path + ".model\": unknown model \"" + s.model +
                 "\" (valid: poisson, cbr)");
    s.rate_bps = b.num_or("rate_bps", 0.0, 0.0, 1e12);
    s.pkt_bytes = static_cast<std::uint32_t>(b.int_or("pkt_bytes", s.pkt_bytes, 64, 65535));
    s.ecn_field = ecn_by_name(b, "ecn", b.str_or("ecn", ecn_name(s.ecn_field)));
    s.start_time = ms_to_tick(b.num_or("start_ms", 0.0, 0.0, 3600e3));
    const double stop_ms = b.num_or("stop_ms", -1.0, -1.0, 3600e3);
    s.stop_time = stop_ms < 0.0 ? -1 : ms_to_tick(stop_ms);
    s.uplink = b.bool_or("uplink", false);
    b.done();
    return s;
}

stats::json json_of_cross(const topo::cross_traffic_spec& s)
{
    auto j = stats::json::object();
    j.set("model", s.model)
        .set("rate_bps", s.rate_bps)
        .set("pkt_bytes", static_cast<int>(s.pkt_bytes))
        .set("ecn", ecn_name(s.ecn_field))
        .set("start_ms", sim::to_ms(s.start_time))
        .set("stop_ms", s.stop_time < 0 ? -1.0 : sim::to_ms(s.stop_time))
        .set("uplink", s.uplink);
    return j;
}

cell_spec parse_cell(const std::string& origin, const stats::json& node,
                     const std::string& path)
{
    binder b(origin, node, path);
    cell_spec c;
    c.num_ues = static_cast<int>(b.int_or("num_ues", c.num_ues, 1, 4096));
    c.channel = b.str_or("channel", c.channel);
    if (c.channel == "trace")
        fail(origin, b.line(),
             "key \"" + path + ".channel\": \"trace\" is not available in "
             "scenario files (v1) — DCI trace replay needs trace data files; "
             "use bench_trace_replay (valid: static, pedestrian, vehicular, "
             "mobile)");
    c.rlc_queue_sdus = static_cast<std::size_t>(
        b.int_or("rlc_queue_sdus", static_cast<long long>(c.rlc_queue_sdus), 1,
                 1ll << 30));
    c.cu = cu_mode_by_name(b, "cu", b.str_or("cu", cu_mode_name(c.cu)));
    c.seed = b.u64_or("seed", c.seed);
    c.separate_drbs_per_class =
        b.bool_or("separate_drbs_per_class", c.separate_drbs_per_class);
    c.bottleneck_bps = b.num_or("bottleneck_bps", 0.0, 0.0, 1e12);
    c.bottleneck_aqm = b.str_or("bottleneck_aqm", c.bottleneck_aqm);
    if (c.bottleneck_aqm != "fifo" && c.bottleneck_aqm != "dualpi2" &&
        c.bottleneck_aqm != "wred")
        fail(origin, b.line(),
             "key \"" + path + ".bottleneck_aqm\": unknown AQM \"" +
                 c.bottleneck_aqm + "\" (valid: fifo, dualpi2, wred)");
    if (const stats::json* w = b.object("wred"))
        c.wred = parse_wred(origin, *w, path + ".wred");
    c.ul_bottleneck_bps = b.num_or("ul_bottleneck_bps", 0.0, 0.0, 1e12);
    if (const stats::json* l = b.object("l4s"))
        c.l4s = parse_l4s(origin, *l, path + ".l4s");
    if (const stats::json* i = b.object("impair_dl"))
        c.impair_dl = parse_impairment(origin, *i, path + ".impair_dl", true);
    if (const stats::json* i = b.object("impair_ul"))
        c.impair_ul = parse_impairment(origin, *i, path + ".impair_ul", true);
    if (const stats::json* x = b.opt("cross_traffic")) {
        if (!x->is_array()) b.fail_key("cross_traffic", *x, "must be an array");
        for (std::size_t i = 0; i < x->elements().size(); ++i)
            c.cross_traffic.push_back(parse_cross(
                origin, x->elements()[i], elem_path(path, "cross_traffic", i)));
    }
    b.done();
    return c;
}

stats::json json_of_cell(const cell_spec& c)
{
    auto j = stats::json::object();
    j.set("num_ues", c.num_ues)
        .set("channel", c.channel)
        .set("rlc_queue_sdus", static_cast<std::uint64_t>(c.rlc_queue_sdus))
        .set("cu", cu_mode_name(c.cu))
        .set("seed", c.seed)
        .set("separate_drbs_per_class", c.separate_drbs_per_class)
        .set("bottleneck_bps", c.bottleneck_bps)
        .set("bottleneck_aqm", c.bottleneck_aqm)
        .set("wred", json_of_wred(c.wred))
        .set("ul_bottleneck_bps", c.ul_bottleneck_bps)
        .set("l4s", json_of_l4s(c.l4s))
        .set("impair_dl", json_of_impairment(c.impair_dl, true))
        .set("impair_ul", json_of_impairment(c.impair_ul, true));
    auto x = stats::json::array();
    for (const auto& s : c.cross_traffic) x.push(json_of_cross(s));
    j.set("cross_traffic", std::move(x));
    return j;
}

flow_spec parse_flow(const std::string& origin, const stats::json& node,
                     const std::string& path, int* count_out)
{
    binder b(origin, node, path);
    flow_spec f;
    f.cca = b.str_or("cca", f.cca);
    f.ue = static_cast<int>(b.int_or("ue", f.ue, 0, 1 << 20));
    *count_out = static_cast<int>(b.int_or("count", 1, 1, 4096));
    f.start_time = ms_to_tick(b.num_or("start_ms", 0.0, 0.0, 3600e3));
    const double stop_ms = b.num_or("stop_ms", -1.0, -1.0, 3600e3);
    f.stop_time = stop_ms < 0.0 ? -1 : ms_to_tick(stop_ms);
    f.flow_bytes = b.u64_or("flow_bytes", f.flow_bytes);
    f.wired_owd_ms = b.num_or("wired_owd_ms", f.wired_owd_ms, 0.0, 10e3);
    f.mss = static_cast<std::uint32_t>(b.int_or("mss", f.mss, 64, 65535));
    f.max_cwnd = b.u64_or("max_cwnd", f.max_cwnd);
    f.media_max_bps = b.num_or("media_max_bps", f.media_max_bps, 0.0, 1e12);
    f.media_start_bps = b.num_or("media_start_bps", f.media_start_bps, 0.0, 1e12);
    f.fps = b.num_or("fps", f.fps, 0.0, 1e3);
    f.frame_bitrate_bps = b.num_or("frame_bitrate_bps", f.frame_bitrate_bps, 0.0, 1e12);
    f.keyframe_interval_s = b.num_or("keyframe_interval_s", f.keyframe_interval_s,
                                     0.01, 3600.0);
    f.keyframe_scale = b.num_or("keyframe_scale", f.keyframe_scale, 1.0, 1e3);
    f.frame_deadline_ms = b.num_or("frame_deadline_ms", f.frame_deadline_ms, 0.1,
                                   10e3);
    b.done();
    return f;
}

stats::json json_of_flow(const flow_spec& f, int count)
{
    auto j = stats::json::object();
    j.set("cca", f.cca)
        .set("ue", f.ue)
        .set("count", count)
        .set("start_ms", sim::to_ms(f.start_time))
        .set("stop_ms", f.stop_time < 0 ? -1.0 : sim::to_ms(f.stop_time))
        .set("flow_bytes", f.flow_bytes)
        .set("wired_owd_ms", f.wired_owd_ms)
        .set("mss", static_cast<int>(f.mss))
        .set("max_cwnd", f.max_cwnd)
        .set("media_max_bps", f.media_max_bps)
        .set("media_start_bps", f.media_start_bps)
        .set("fps", f.fps)
        .set("frame_bitrate_bps", f.frame_bitrate_bps)
        .set("keyframe_interval_s", f.keyframe_interval_s)
        .set("keyframe_scale", f.keyframe_scale)
        .set("frame_deadline_ms", f.frame_deadline_ms);
    return j;
}

// --- family parsers / exporters ---------------------------------------------

tcp_grid_family parse_tcp_grid(const std::string& origin, const stats::json& node)
{
    binder b(origin, node, "tcp_grid");
    tcp_grid_family f;
    f.seed_base = b.u64_or("seed_base", f.seed_base);
    f.rtts_ms.clear();
    for (const auto& v : b.array("rtts_ms").elements()) {
        if (!v.is_number() || v.as_number() < 0.0 || v.as_number() > 10e3)
            fail(origin, v.line(),
                 "key \"tcp_grid.rtts_ms\" entries must be numbers in [0, 10000]");
        f.rtts_ms.push_back(v.as_number());
    }
    f.queues_sdus.clear();
    for (const auto& v : b.array("queues_sdus").elements()) {
        if (!v.is_number() || v.as_number() < 1 || v.as_number() > (1 << 30) ||
            v.as_number() != std::floor(v.as_number()))
            fail(origin, v.line(),
                 "key \"tcp_grid.queues_sdus\" entries must be integers >= 1");
        f.queues_sdus.push_back(static_cast<std::size_t>(v.as_number()));
    }
    f.ue_counts.clear();
    for (const auto& v : b.array("ue_counts").elements()) {
        if (!v.is_number() || v.as_number() < 1 || v.as_number() > 4096 ||
            v.as_number() != std::floor(v.as_number()))
            fail(origin, v.line(),
                 "key \"tcp_grid.ue_counts\" entries must be integers in [1, 4096]");
        f.ue_counts.push_back(static_cast<int>(v.as_number()));
    }
    f.ccas.clear();
    for (const auto& v : b.array("ccas").elements()) {
        if (!v.is_string())
            fail(origin, v.line(), "key \"tcp_grid.ccas\" entries must be strings");
        f.ccas.push_back(v.as_string());
    }
    f.channels.clear();
    for (const auto& v : b.array("channels").elements()) {
        if (!v.is_string())
            fail(origin, v.line(),
                 "key \"tcp_grid.channels\" entries must be strings");
        f.channels.push_back(v.as_string());
    }
    b.done();
    return f;
}

stats::json json_of_tcp_grid(const tcp_grid_family& f)
{
    auto j = stats::json::object();
    j.set("seed_base", f.seed_base);
    auto rtts = stats::json::array();
    for (double v : f.rtts_ms) rtts.push(v);
    j.set("rtts_ms", std::move(rtts));
    auto queues = stats::json::array();
    for (std::size_t v : f.queues_sdus) queues.push(static_cast<std::uint64_t>(v));
    j.set("queues_sdus", std::move(queues));
    auto ues = stats::json::array();
    for (int v : f.ue_counts) ues.push(v);
    j.set("ue_counts", std::move(ues));
    auto ccas = stats::json::array();
    for (const auto& v : f.ccas) ccas.push(v);
    j.set("ccas", std::move(ccas));
    auto chans = stats::json::array();
    for (const auto& v : f.channels) chans.push(v);
    j.set("channels", std::move(chans));
    return j;
}

shared_drb_family parse_shared_drb(const std::string& origin, const stats::json& node)
{
    binder b(origin, node, "shared_drb");
    shared_drb_family f;
    f.seed = b.u64_or("seed", f.seed);
    const stats::json& strategies = b.array("strategies");
    for (std::size_t i = 0; i < strategies.elements().size(); ++i) {
        const std::string path = elem_path("shared_drb", "strategies", i);
        binder sb(origin, strategies.elements()[i], path);
        shared_drb_family::strategy st;
        st.label = sb.str_or("label", "");
        try {
            st.policy = shared_drb_policy_by_name(
                sb.str_or("policy", "coupled"));
        } catch (const scenario_error& e) {
            fail(origin, sb.line(), "key \"" + path + ".policy\": " + e.what());
        }
        if (st.label.empty()) st.label = shared_drb_policy_name(st.policy);
        sb.done();
        f.strategies.push_back(std::move(st));
    }
    b.done();
    return f;
}

stats::json json_of_shared_drb(const shared_drb_family& f)
{
    auto j = stats::json::object();
    j.set("seed", f.seed);
    auto strategies = stats::json::array();
    for (const auto& st : f.strategies) {
        auto js = stats::json::object();
        js.set("label", st.label).set("policy", shared_drb_policy_name(st.policy));
        strategies.push(std::move(js));
    }
    j.set("strategies", std::move(strategies));
    return j;
}

ecn_impairment_family parse_ecn_impairment(const std::string& origin,
                                           const stats::json& node)
{
    binder b(origin, node, "ecn_impairment");
    ecn_impairment_family f;
    f.seed = b.u64_or("seed", f.seed);
    f.ues = static_cast<int>(b.int_or("ues", f.ues, 1, 4096));
    f.bottleneck_bps = b.num_or("bottleneck_bps", f.bottleneck_bps, 1e3, 1e12);
    f.bottleneck_aqm = b.str_or("bottleneck_aqm", f.bottleneck_aqm);
    if (f.bottleneck_aqm != "fifo" && f.bottleneck_aqm != "dualpi2" &&
        f.bottleneck_aqm != "wred")
        fail(origin, b.line(),
             "key \"ecn_impairment.bottleneck_aqm\": unknown AQM \"" +
                 f.bottleneck_aqm + "\" (valid: fifo, dualpi2, wred)");
    f.cross_rate_bps = b.num_or("cross_rate_bps", f.cross_rate_bps, 0.0, 1e12);
    f.cross_options.clear();
    for (const auto& v : b.array("cross_options").elements()) {
        if (!v.is_bool())
            fail(origin, v.line(),
                 "key \"ecn_impairment.cross_options\" entries must be booleans");
        f.cross_options.push_back(v.as_bool());
    }
    const stats::json& ccas = b.array("ccas");
    for (std::size_t i = 0; i < ccas.elements().size(); ++i) {
        const std::string path = elem_path("ecn_impairment", "ccas", i);
        binder cb(origin, ccas.elements()[i], path);
        ecn_impairment_family::transport t;
        t.cca = cb.str_or("cca", "prague");
        t.label = cb.str_or("label", t.cca);
        cb.done();
        f.ccas.push_back(std::move(t));
    }
    const stats::json& profiles = b.array("profiles");
    for (std::size_t i = 0; i < profiles.elements().size(); ++i) {
        const std::string path = elem_path("ecn_impairment", "profiles", i);
        binder pb(origin, profiles.elements()[i], path);
        ecn_impairment_family::profile p;
        p.name = pb.str_or("name", "profile" + std::to_string(i));
        p.drop_non_ecn = pb.bool_or("drop_non_ecn", false);
        if (const stats::json* imp = pb.object("impair"))
            p.impair = parse_impairment(origin, *imp, path + ".impair", true);
        pb.done();
        f.profiles.push_back(std::move(p));
    }
    b.done();
    return f;
}

stats::json json_of_ecn_impairment(const ecn_impairment_family& f)
{
    auto j = stats::json::object();
    j.set("seed", f.seed)
        .set("ues", f.ues)
        .set("bottleneck_bps", f.bottleneck_bps)
        .set("bottleneck_aqm", f.bottleneck_aqm)
        .set("cross_rate_bps", f.cross_rate_bps);
    auto cross = stats::json::array();
    for (bool v : f.cross_options) cross.push(v);
    j.set("cross_options", std::move(cross));
    auto ccas = stats::json::array();
    for (const auto& t : f.ccas) {
        auto jt = stats::json::object();
        jt.set("cca", t.cca).set("label", t.label);
        ccas.push(std::move(jt));
    }
    j.set("ccas", std::move(ccas));
    auto profiles = stats::json::array();
    for (const auto& p : f.profiles) {
        auto jp = stats::json::object();
        jp.set("name", p.name)
            .set("drop_non_ecn", p.drop_non_ecn)
            .set("impair", json_of_impairment(p.impair, true));
        profiles.push(std::move(jp));
    }
    j.set("profiles", std::move(profiles));
    return j;
}

fault_chaos_family parse_fault_chaos(const std::string& origin,
                                     const stats::json& node)
{
    binder b(origin, node, "fault_chaos");
    fault_chaos_family f;
    f.num_cells = static_cast<int>(b.int_or("num_cells", f.num_cells, 1, 64));
    f.ues_per_cell = static_cast<int>(b.int_or("ues_per_cell", f.ues_per_cell, 1, 256));
    f.cell_seed = b.u64_or("cell_seed", f.cell_seed);
    f.wired_bps = b.num_or("wired_bps", f.wired_bps, 1e3, 1e12);
    f.fault_seed = b.u64_or("fault_seed", f.fault_seed);
    f.fault_start_ms = b.num_or("fault_start_ms", f.fault_start_ms, 0.0, 3600e3);
    f.fault_end_margin_ms =
        b.num_or("fault_end_margin_ms", f.fault_end_margin_ms, 0.0, 3600e3);
    const stats::json& profiles = b.array("profiles");
    for (std::size_t i = 0; i < profiles.elements().size(); ++i) {
        const std::string path = elem_path("fault_chaos", "profiles", i);
        binder pb(origin, profiles.elements()[i], path);
        fault_chaos_family::profile p;
        p.name = pb.str_or("name", "profile" + std::to_string(i));
        p.rlf_per_ue_per_sec = pb.num_or("rlf_per_ue_per_sec", 0.0, 0.0, 100.0);
        p.ho_failure_per_ue_per_sec =
            pb.num_or("ho_failure_per_ue_per_sec", 0.0, 0.0, 100.0);
        p.outages_per_cell_per_sec =
            pb.num_or("outages_per_cell_per_sec", 0.0, 0.0, 100.0);
        p.flaps_per_cell_per_sec =
            pb.num_or("flaps_per_cell_per_sec", 0.0, 0.0, 100.0);
        pb.done();
        f.profiles.push_back(std::move(p));
    }
    const stats::json& transports = b.array("transports");
    for (std::size_t i = 0; i < transports.elements().size(); ++i) {
        const std::string path = elem_path("fault_chaos", "transports", i);
        binder tb(origin, transports.elements()[i], path);
        fault_chaos_family::transport t;
        t.cca = tb.str_or("cca", "prague");
        t.media = tb.bool_or("media", false);
        tb.done();
        f.transports.push_back(std::move(t));
    }
    b.done();
    return f;
}

stats::json json_of_fault_chaos(const fault_chaos_family& f)
{
    auto j = stats::json::object();
    j.set("num_cells", f.num_cells)
        .set("ues_per_cell", f.ues_per_cell)
        .set("cell_seed", f.cell_seed)
        .set("wired_bps", f.wired_bps)
        .set("fault_seed", f.fault_seed)
        .set("fault_start_ms", f.fault_start_ms)
        .set("fault_end_margin_ms", f.fault_end_margin_ms);
    auto profiles = stats::json::array();
    for (const auto& p : f.profiles) {
        auto jp = stats::json::object();
        jp.set("name", p.name)
            .set("rlf_per_ue_per_sec", p.rlf_per_ue_per_sec)
            .set("ho_failure_per_ue_per_sec", p.ho_failure_per_ue_per_sec)
            .set("outages_per_cell_per_sec", p.outages_per_cell_per_sec)
            .set("flaps_per_cell_per_sec", p.flaps_per_cell_per_sec);
        profiles.push(std::move(jp));
    }
    j.set("profiles", std::move(profiles));
    auto transports = stats::json::array();
    for (const auto& t : f.transports) {
        auto jt = stats::json::object();
        jt.set("cca", t.cca).set("media", t.media);
        transports.push(std::move(jt));
    }
    j.set("transports", std::move(transports));
    return j;
}

cell_flows_family parse_cell_flows(const std::string& origin,
                                   const stats::json& node)
{
    binder b(origin, node, "cell_flows");
    cell_flows_family f;
    f.seeds.clear();
    for (const auto& v : b.array("seeds").elements()) {
        if (!v.is_number() || v.as_number() < 0 || v.as_number() > k_max_exact ||
            v.as_number() != std::floor(v.as_number()))
            fail(origin, v.line(),
                 "key \"cell_flows.seeds\" entries must be non-negative integers");
        f.seeds.push_back(static_cast<std::uint64_t>(v.as_number()));
    }
    if (const stats::json* c = b.object("cell"))
        f.cell = parse_cell(origin, *c, "cell_flows.cell");
    const stats::json& flows = b.array("flows");
    for (std::size_t i = 0; i < flows.elements().size(); ++i) {
        cell_flows_family::flow fl;
        fl.spec = parse_flow(origin, flows.elements()[i],
                             elem_path("cell_flows", "flows", i), &fl.count);
        f.flows.push_back(std::move(fl));
    }
    b.done();
    return f;
}

stats::json json_of_cell_flows(const cell_flows_family& f)
{
    auto j = stats::json::object();
    auto seeds = stats::json::array();
    for (std::uint64_t v : f.seeds) seeds.push(v);
    j.set("seeds", std::move(seeds));
    j.set("cell", json_of_cell(f.cell));
    auto flows = stats::json::array();
    for (const auto& fl : f.flows) flows.push(json_of_flow(fl.spec, fl.count));
    j.set("flows", std::move(flows));
    return j;
}

}  // namespace

std::string shared_drb_policy_name(core::shared_drb_policy p)
{
    switch (p) {
        case core::shared_drb_policy::original: return "original";
        case core::shared_drb_policy::l4s_all: return "l4s_all";
        case core::shared_drb_policy::classic_all: return "classic_all";
        case core::shared_drb_policy::coupled: return "coupled";
    }
    return "coupled";
}

core::shared_drb_policy shared_drb_policy_by_name(const std::string& name)
{
    if (name == "original") return core::shared_drb_policy::original;
    if (name == "l4s_all") return core::shared_drb_policy::l4s_all;
    if (name == "classic_all") return core::shared_drb_policy::classic_all;
    if (name == "coupled") return core::shared_drb_policy::coupled;
    throw scenario_error("unknown shared-DRB policy \"" + name +
                         "\" (valid: original, l4s_all, classic_all, coupled)");
}

void scenario_spec::validate() const
{
    const auto require = [](bool ok, const std::string& msg) {
        if (!ok) throw scenario_error(msg);
    };
    require(duration > 0, "duration_s must be > 0");
    if (family == "tcp_grid") {
        require(!tcp_grid.rtts_ms.empty() && !tcp_grid.queues_sdus.empty() &&
                    !tcp_grid.ue_counts.empty() && !tcp_grid.ccas.empty() &&
                    !tcp_grid.channels.empty(),
                "tcp_grid: every axis (rtts_ms, queues_sdus, ue_counts, ccas, "
                "channels) needs at least one entry");
    } else if (family == "shared_drb") {
        require(!shared_drb.strategies.empty(),
                "shared_drb.strategies needs at least one entry");
    } else if (family == "ecn_impairment") {
        require(!ecn_impairment.ccas.empty() && !ecn_impairment.profiles.empty() &&
                    !ecn_impairment.cross_options.empty(),
                "ecn_impairment: ccas, profiles and cross_options each need at "
                "least one entry");
        try {
            for (std::size_t i = 0; i < ecn_impairment.profiles.size(); ++i)
                ecn_impairment.profiles[i].impair.validate(
                    "ecn_impairment.profiles[" + std::to_string(i) + "].impair");
        } catch (const std::invalid_argument& e) {
            throw scenario_error(e.what());
        }
    } else if (family == "fault_chaos") {
        require(!fault_chaos.profiles.empty() && !fault_chaos.transports.empty(),
                "fault_chaos: profiles and transports each need at least one "
                "entry");
        require(sim::from_ms(fault_chaos.fault_start_ms) +
                        sim::from_ms(fault_chaos.fault_end_margin_ms) <
                    duration,
                "fault_chaos: fault_start_ms + fault_end_margin_ms must leave a "
                "non-empty fault window inside duration_s");
    } else if (family == "cell_flows") {
        require(!cell_flows.seeds.empty(), "cell_flows.seeds needs at least one entry");
        require(!cell_flows.flows.empty(), "cell_flows.flows needs at least one entry");
        try {
            cell_flows.cell.impair_dl.validate("cell_flows.cell.impair_dl");
            cell_flows.cell.impair_ul.validate("cell_flows.cell.impair_ul");
            cell_flows.cell.wred.validate("cell_flows.cell.wred");
            for (std::size_t i = 0; i < cell_flows.cell.cross_traffic.size(); ++i)
                cell_flows.cell.cross_traffic[i].validate(
                    "cell_flows.cell.cross_traffic[" + std::to_string(i) + "]");
        } catch (const std::invalid_argument& e) {
            throw scenario_error(e.what());
        }
        for (const auto& fl : cell_flows.flows)
            require(fl.spec.ue + fl.count <= cell_flows.cell.num_ues,
                    "cell_flows.flows: flow on ue " + std::to_string(fl.spec.ue) +
                        " with count " + std::to_string(fl.count) +
                        " exceeds cell.num_ues (" +
                        std::to_string(cell_flows.cell.num_ues) + ")");
    } else {
        throw scenario_error("unknown family \"" + family +
                             "\" (valid: tcp_grid, shared_drb, ecn_impairment, "
                             "fault_chaos, cell_flows)");
    }
}

scenario_spec parse_scenario_text(std::string_view text, const std::string& origin)
{
    stats::json doc;
    try {
        doc = stats::json::parse(text);
    } catch (const stats::json_parse_error& e) {
        throw scenario_error(origin + ": " + e.what());
    }
    binder b(origin, doc, "$");
    scenario_spec spec;
    const std::string schema = b.str_or("schema", "");
    if (schema != k_scenario_schema)
        fail(origin, doc.line(),
             "key \"$.schema\" must be \"" + std::string(k_scenario_schema) +
                 "\", got \"" + schema + "\"");
    spec.figure = b.str_or("figure", "scenario");
    spec.title = b.str_or("title", "scenario");
    spec.paper_ref = b.str_or("paper_ref", "custom scenario");
    spec.quick = b.bool_or("quick", false);
    spec.duration = sec_to_tick(b.num_or("duration_s", 0.0, 0.001, 3600.0));
    spec.family = b.str_or("family", "");
    const stats::json* section = nullptr;
    if (spec.family == "tcp_grid") {
        section = b.object("tcp_grid");
        if (section) spec.tcp_grid = parse_tcp_grid(origin, *section);
    } else if (spec.family == "shared_drb") {
        section = b.object("shared_drb");
        if (section) spec.shared_drb = parse_shared_drb(origin, *section);
    } else if (spec.family == "ecn_impairment") {
        section = b.object("ecn_impairment");
        if (section) spec.ecn_impairment = parse_ecn_impairment(origin, *section);
    } else if (spec.family == "fault_chaos") {
        section = b.object("fault_chaos");
        if (section) spec.fault_chaos = parse_fault_chaos(origin, *section);
    } else if (spec.family == "cell_flows") {
        section = b.object("cell_flows");
        if (section) spec.cell_flows = parse_cell_flows(origin, *section);
    } else {
        fail(origin, doc.line(),
             "key \"$.family\": unknown family \"" + spec.family +
                 "\" (valid: tcp_grid, shared_drb, ecn_impairment, fault_chaos, "
                 "cell_flows)");
    }
    if (!section)
        fail(origin, doc.line(),
             "missing section \"$." + spec.family +
                 "\" (the family names its parameter block)");
    // The other four family keys must not also be present: two parameter
    // blocks with one family selector is a scenario that silently ignores
    // half its content — diagnose instead.
    for (const char* other : {"tcp_grid", "shared_drb", "ecn_impairment",
                              "fault_chaos", "cell_flows"}) {
        if (other == spec.family) continue;
        if (const stats::json* stray = b.opt(other))
            fail(origin, stray->line(),
                 "section \"$." + std::string(other) +
                     "\" present but family is \"" + spec.family +
                     "\" — remove it or change $.family");
    }
    b.done();
    try {
        spec.validate();
    } catch (const scenario_error& e) {
        throw scenario_error(origin + ": " + e.what());
    }
    return spec;
}

scenario_spec load_scenario_file(const std::string& path)
{
    std::string text;
    if (!stats::read_text_file(path, text))
        throw scenario_error(path + ": cannot read scenario file");
    return parse_scenario_text(text, path);
}

stats::json export_scenario(const scenario_spec& spec)
{
    auto j = stats::json::object();
    j.set("schema", k_scenario_schema)
        .set("figure", spec.figure)
        .set("title", spec.title)
        .set("paper_ref", spec.paper_ref)
        .set("quick", spec.quick)
        .set("duration_s", sim::to_sec(spec.duration))
        .set("family", spec.family);
    if (spec.family == "tcp_grid")
        j.set("tcp_grid", json_of_tcp_grid(spec.tcp_grid));
    else if (spec.family == "shared_drb")
        j.set("shared_drb", json_of_shared_drb(spec.shared_drb));
    else if (spec.family == "ecn_impairment")
        j.set("ecn_impairment", json_of_ecn_impairment(spec.ecn_impairment));
    else if (spec.family == "fault_chaos")
        j.set("fault_chaos", json_of_fault_chaos(spec.fault_chaos));
    else if (spec.family == "cell_flows")
        j.set("cell_flows", json_of_cell_flows(spec.cell_flows));
    else
        throw scenario_error("export_scenario: unknown family \"" + spec.family +
                             "\"");
    return j;
}

int write_scenario_file(const std::string& path, const scenario_spec& spec)
{
    if (!stats::write_text_file(path, export_scenario(spec).dump())) {
        std::fprintf(stderr, "error: cannot write scenario to %s\n", path.c_str());
        return 1;
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}

}  // namespace l4span::scenario
