#include "scenario/cell.h"

#include <algorithm>
#include <stdexcept>

namespace l4span::scenario {

namespace {
constexpr sim::tick k_sample_period = sim::from_ms(10);
}  // namespace

bool is_l4s_cca(const std::string& cca)
{
    if (is_quic_cca(cca)) return is_l4s_cca(quic_cc_of(cca));
    return cca == "prague" || cca == "bbr2" || cca == "scream" || cca == "udp-prague";
}

bool is_media_cca(const std::string& cca)
{
    return cca == "scream" || cca == "udp-prague";
}

bool is_quic_cca(const std::string& cca)
{
    return cca.rfind("quic-", 0) == 0;
}

std::string quic_cc_of(const std::string& cca)
{
    if (!is_quic_cca(cca))
        throw std::invalid_argument("not a quic CCA name: " + cca);
    return cca.substr(5);
}

chan::channel_profile channel_by_name(const std::string& name, std::uint64_t variant)
{
    chan::channel_profile p;
    if (name == "static") p = chan::channel_profile::static_channel();
    else if (name == "pedestrian") p = chan::channel_profile::pedestrian();
    else if (name == "vehicular") p = chan::channel_profile::vehicular();
    else if (name == "mobile") {
        // "Mobile" combines pedestrian- and vehicular-speed channels (§6.2.1):
        // alternate per UE.
        p = (variant % 2 == 0) ? chan::channel_profile::pedestrian()
                               : chan::channel_profile::vehicular();
        p.name = "mobile";
    } else if (name == "trace") {
        throw std::invalid_argument(
            "channel \"trace\" is not a fading profile — assign per-UE DCI "
            "traces via cell_spec.ue_traces (chan::load_trace_file or "
            "chan::synth_trace) and the cell builds trace_channels");
    } else {
        throw std::invalid_argument(
            "unknown channel profile: " + name +
            " (valid: static, pedestrian, vehicular, mobile, trace)");
    }
    return p;
}

std::unique_ptr<chan::link_model> make_ue_link(const cell_spec& spec,
                                               std::uint64_t variant)
{
    if (spec.channel != "trace")
        return nullptr;  // caller draws a fading channel from the profile
    if (spec.ue_traces.empty())
        throw std::invalid_argument(
            "cell channel is \"trace\" but cell_spec.ue_traces is empty — add "
            "at least one chan::trace_config (data from chan::load_trace_file "
            "or chan::synth_trace; knobs: loop, offset, time_scale)");
    const auto& cfg = spec.ue_traces[static_cast<std::size_t>(
        variant % spec.ue_traces.size())];
    return std::make_unique<chan::trace_channel>(cfg);  // ctor validates cfg
}

// --- flow endpoints ---------------------------------------------------------

void flow_endpoints::on_downlink(const net::packet& pkt)
{
    if (is_media) mrcv->on_packet(pkt);
    else if (is_quic) qrcv->on_packet(pkt);
    else rcv->on_packet(pkt);
}

void flow_endpoints::on_uplink(const net::packet& pkt)
{
    if (is_media) msnd->on_packet(pkt);
    else if (is_quic) qsnd->on_packet(pkt);
    else snd->on_packet(pkt);
}

void flow_endpoints::on_path_switch()
{
    if (!is_quic) return;
    qsnd->on_path_switch();
    qrcv->on_path_switch();
}

const stats::sample_set& flow_endpoints::owd_samples() const
{
    if (is_media) return mrcv->owd_samples();
    return is_quic ? qrcv->owd_samples() : rcv->owd_samples();
}

const stats::sample_set& flow_endpoints::rtt_samples() const
{
    if (is_media) return msnd->rtt_samples();
    return is_quic ? qsnd->rtt_samples() : snd->rtt_samples();
}

const stats::rate_series& flow_endpoints::goodput() const
{
    if (is_media) return mrcv->goodput();
    return is_quic ? qrcv->goodput() : rcv->goodput();
}

std::uint64_t flow_endpoints::delivered_bytes() const
{
    if (is_media) return static_cast<std::uint64_t>(mrcv->goodput().total_bytes());
    return is_quic ? qrcv->received_bytes() : rcv->received_bytes();
}

std::uint64_t flow_endpoints::cwnd_bytes() const
{
    if (is_media) return 0;
    return is_quic ? qsnd->cwnd_bytes() : snd->cwnd_bytes();
}

std::uint64_t flow_endpoints::transport_retransmits() const
{
    if (is_media) return 0;
    return is_quic ? qsnd->retransmits() : snd->retransmits();
}

bool flow_endpoints::tcp_finished() const
{
    if (is_media) return false;
    return is_quic ? qsnd->finished() : snd->finished();
}

sim::tick flow_endpoints::tcp_finish_time() const
{
    if (is_media) return -1;
    return is_quic ? qsnd->finish_time() : snd->finish_time();
}

flow_endpoints make_flow_endpoints(sim::event_loop& loop, const flow_spec& spec,
                                   int handle, int ue_addr,
                                   std::function<void(net::packet)> dl_send,
                                   std::function<void(net::packet)> ul_send,
                                   obs::tracer* tracer)
{
    flow_endpoints ep;
    ep.is_media = is_media_cca(spec.cca);
    ep.is_quic = is_quic_cca(spec.cca);

    // Synthetic five-tuple: unique server per flow.
    net::five_tuple ft;
    ft.src_ip = 0x0a000001u + static_cast<std::uint32_t>(handle);  // 10.0.0.x server
    ft.dst_ip = 0xc0a80001u + static_cast<std::uint32_t>(ue_addr);
    ft.src_port = 443;
    ft.dst_port = static_cast<std::uint16_t>(50000 + handle);
    ft.proto = (ep.is_media || ep.is_quic) ? net::ip_proto::udp : net::ip_proto::tcp;

    media::frame_source_config fcfg;
    fcfg.fps = spec.fps;
    fcfg.bitrate_bps = spec.frame_bitrate_bps;
    fcfg.keyframe_interval_s = spec.keyframe_interval_s;
    fcfg.keyframe_scale = spec.keyframe_scale;
    fcfg.deadline = sim::from_ms(spec.frame_deadline_ms);

    if (ep.is_media) {
        media::media_config mcfg;
        mcfg.ft = ft;
        mcfg.flow_id = static_cast<std::uint64_t>(handle);
        mcfg.max_rate_bps = spec.media_max_bps;
        mcfg.start_rate_bps = spec.media_start_bps;
        auto rc = spec.cca == "scream" ? media::make_scream(mcfg)
                                       : media::make_udp_prague(mcfg);
        ep.msnd = std::make_unique<media::media_sender>(loop, mcfg, std::move(rc),
                                                        std::move(dl_send));
        ep.mrcv = std::make_unique<media::media_receiver>(loop, mcfg, std::move(ul_send));
        media::media_sender* snd = ep.msnd.get();
        loop.schedule_at(spec.start_time, [snd] { snd->start(); });
        if (spec.stop_time >= 0)
            loop.schedule_at(spec.stop_time, [snd] { snd->stop(); });
    } else if (ep.is_quic) {
        transport::quic::quic_config qcfg;
        qcfg.mtu_payload = spec.mss;
        qcfg.max_cwnd = spec.max_cwnd;
        qcfg.flow_bytes = spec.flow_bytes;
        qcfg.app_limited = spec.fps > 0.0;
        qcfg.ft = ft;
        qcfg.flow_id = static_cast<std::uint64_t>(handle);
        auto cc = transport::make_cc(quic_cc_of(spec.cca), spec.mss);
        ep.qsnd = std::make_unique<transport::quic_sender>(loop, qcfg, std::move(cc),
                                                           std::move(dl_send));
        ep.qsnd->set_tracer(tracer);
        ep.qrcv = std::make_unique<transport::quic_receiver>(loop, qcfg,
                                                             std::move(ul_send));
        transport::quic_sender* snd = ep.qsnd.get();
        if (spec.fps > 0.0) {
            // One stream per frame (stream id == frame id), closed by FIN;
            // completion comes back through the receiver's stream handler.
            ep.frames = std::make_unique<media::frame_source>(
                loop, fcfg, [snd](std::uint64_t frame_id, std::uint32_t bytes) {
                    snd->write(frame_id, bytes, /*fin=*/true);
                });
            media::frame_source* fr = ep.frames.get();
            ep.qrcv->set_stream_complete_handler(
                [fr](transport::quic::stream_id_t stream, sim::tick now) {
                    fr->on_frame_complete(stream, now);
                });
            loop.schedule_at(spec.start_time, [fr] { fr->start(); });
            if (spec.stop_time >= 0)
                loop.schedule_at(spec.stop_time, [fr] { fr->stop(); });
        }
        loop.schedule_at(spec.start_time, [snd] { snd->start(); });
        if (spec.stop_time >= 0)
            loop.schedule_at(spec.stop_time, [snd] { snd->stop(); });
    } else {
        transport::tcp_config tcfg;
        tcfg.mss = spec.mss;
        tcfg.max_cwnd = spec.max_cwnd;
        tcfg.flow_bytes = spec.flow_bytes;
        tcfg.app_limited = spec.fps > 0.0;
        tcfg.ft = ft;
        tcfg.flow_id = static_cast<std::uint64_t>(handle);
        auto cc = transport::make_cc(spec.cca, spec.mss);
        const bool accecn = cc->uses_accecn();
        ep.snd = std::make_unique<transport::tcp_sender>(loop, tcfg, std::move(cc),
                                                         std::move(dl_send));
        ep.snd->set_tracer(tracer);
        ep.rcv = std::make_unique<transport::tcp_receiver>(loop, tcfg, accecn,
                                                           std::move(ul_send));
        transport::tcp_sender* snd = ep.snd.get();
        if (spec.fps > 0.0) {
            // Frames occupy consecutive ranges of the TCP byte stream; the
            // receiver's in-order point completes them.
            ep.frames = std::make_unique<media::frame_source>(
                loop, fcfg, [snd](std::uint64_t, std::uint32_t bytes) {
                    snd->app_write(bytes);
                });
            media::frame_source* fr = ep.frames.get();
            ep.rcv->set_deliver_handler([fr](std::uint64_t bytes, sim::tick now) {
                fr->on_bytes_delivered(bytes, now);
            });
            loop.schedule_at(spec.start_time, [fr] { fr->start(); });
            if (spec.stop_time >= 0)
                loop.schedule_at(spec.stop_time, [fr] { fr->stop(); });
        }
        loop.schedule_at(spec.start_time, [snd] { snd->start(); });
        if (spec.stop_time >= 0)
            loop.schedule_at(spec.stop_time, [snd] { snd->stop(); });
    }
    return ep;
}

double flow_goodput_mbps(const flow_spec& spec, const flow_endpoints& ep,
                         sim::tick scenario_duration)
{
    sim::tick end = spec.stop_time >= 0 ? spec.stop_time : scenario_duration;
    if (ep.tcp_finished()) end = ep.tcp_finish_time();
    const sim::tick active = end - spec.start_time;
    if (active <= 0) return 0.0;
    return static_cast<double>(ep.delivered_bytes()) * 8.0 / sim::to_sec(active) / 1e6;
}

// --- cell -------------------------------------------------------------------

cell::cell(sim::event_loop& loop, cell_spec spec, int index)
    : loop_(loop), spec_(std::move(spec)), index_(index), rng_(spec_.seed)
{
    ran::gnb_config gcfg;
    gcfg.mac.policy = spec_.sched;
    gnb_ = std::make_unique<ran::gnb>(loop_, gcfg, rng_.fork());

    switch (spec_.cu) {
    case cu_mode::l4span: {
        auto cfg = spec_.l4s;
        cfg.seed = rng_.fork().engine()();
        l4span_ = std::make_unique<core::l4span>(cfg);
        hook_ = l4span_.get();
        gnb_->set_cu_hook(l4span_.get());
        break;
    }
    case cu_mode::dualpi2_ran:
        dualpi2_ = std::make_unique<dualpi2_ran_hook>(spec_.dualpi2);
        hook_ = dualpi2_.get();
        gnb_->set_cu_hook(dualpi2_.get());
        break;
    case cu_mode::tcran:
        tcran_ = std::make_unique<tc_ran>(loop_, *gnb_, spec_.tcran);
        break;
    case cu_mode::none: break;
    }

    for (int u = 0; u < spec_.num_ues; ++u) add_ue(static_cast<std::uint64_t>(u));

    gnb_->set_delay_handler([this](const ran::sdu_delay_report& r) {
        queuing_sum_ms_ += sim::to_ms(r.queuing);
        sched_sum_ms_ += sim::to_ms(r.scheduling);
        ++delay_reports_;
    });
    if (spec_.record_tx_log)
        gnb_->set_txlog_handler(
            [this](ran::rnti_t ue, ran::drb_id_t, std::uint32_t bytes, sim::tick now) {
                if (ue >= 1 && ue <= rnti_slots_.size())
                    rnti_slots_[ue - 1]->tx_log.emplace_back(now, bytes);
            });
}

cell::~cell() = default;

ran::rnti_t cell::add_ue(std::uint64_t variant)
{
    auto link = make_ue_link(spec_, variant);
    const ran::rnti_t rnti =
        link ? gnb_->add_ue(std::move(link))
             : gnb_->add_ue(channel_by_name(spec_.channel, variant));

    ran::rlc_config rlc;
    rlc.mode = spec_.rlc_mode;
    rlc.max_queue_sdus = spec_.rlc_queue_sdus;

    auto r = std::make_unique<ue_rec>();
    r->rnti = rnti;
    r->default_drb = gnb_->add_drb(rnti, rlc);
    r->classic_drb = spec_.separate_drbs_per_class ? gnb_->add_drb(rnti, rlc)
                                                   : r->default_drb;
    rnti_slots_.resize(std::max<std::size_t>(rnti_slots_.size(), rnti), nullptr);
    rnti_slots_[rnti - 1] = r.get();
    ues_.push_back(std::move(r));
    return rnti;
}

ran::rnti_t cell::rnti_of(std::size_t i) const
{
    return ues_.at(i)->rnti;
}

ran::qfi_t cell::alloc_qfi(ran::rnti_t ue)
{
    return static_cast<ran::qfi_t>(rec(ue).next_qfi++);
}

ran::drb_id_t cell::map_qos_flow(ran::rnti_t ue, ran::qfi_t qfi, bool l4s_class)
{
    ue_rec& r = rec(ue);
    const ran::drb_id_t drb = l4s_class ? r.default_drb : r.classic_drb;
    gnb_->map_qos_flow(ue, qfi, drb);
    return drb;
}

void cell::attach_obs(obs::tracer* tr, obs::registry* reg)
{
    gnb_->set_tracer(tr);
    if (l4span_) l4span_->set_tracer(tr);
    if (!reg) return;
    const std::string p = "cell" + std::to_string(index_) + ".";
    reg->add_counter(p + "gnb.slots", [this] { return gnb_->slots_elapsed(); });
    reg->add_gauge(p + "gnb.active_ues", [this] {
        return static_cast<double>(gnb_->active_ues());
    });
    if (l4span_) {
        core::l4span* l4s = l4span_.get();
        reg->add_counter(p + "l4span.marks", [l4s] { return l4s->marks(); });
        reg->add_counter(p + "l4span.drops", [l4s] { return l4s->drops(); });
        reg->add_counter(p + "l4span.dl_events", [l4s] { return l4s->dl_events(); });
        reg->add_counter(p + "l4span.ul_events", [l4s] { return l4s->ul_events(); });
        reg->add_counter(p + "l4span.feedback_events",
                         [l4s] { return l4s->feedback_events(); });
        l4s->set_sojourn_histogram(reg->add_histogram(
            p + "l4span.sojourn_ms", {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}));
    }
}

void cell::start()
{
    if (started_) return;
    started_ = true;
    gnb_->start();
    schedule_sampling();
}

void cell::schedule_sampling()
{
    loop_.schedule_after(k_sample_period, [this] {
        for (auto& r : ues_) {
            if (!r->attached) continue;
            const auto sdus =
                static_cast<double>(gnb_->rlc(r->rnti, r->default_drb).queued_sdus());
            r->rlc_samples.add(sdus);
            r->rlc_series.add(loop_.now(), sdus);
        }
        schedule_sampling();
    });
}

void cell::deliver_downlink(net::packet pkt, ran::rnti_t ue, ran::qfi_t qfi)
{
    // TC-RAN intercepts at the CU ingress; everything else goes straight in.
    if (tcran_) tcran_->deliver_downlink(std::move(pkt), ue, qfi);
    else gnb_->deliver_downlink(std::move(pkt), ue, qfi);
}

void cell::send_uplink(ran::rnti_t ue, net::packet pkt)
{
    gnb_->send_uplink(ue, std::move(pkt));
}

bool cell::has_ue(ran::rnti_t ue) const
{
    return gnb_->has_ue(ue);
}

ran::ue_handover_context cell::detach_ue(ran::rnti_t ue, hook_transfer ht)
{
    auto ctx = gnb_->detach_ue(ue);
    if (hook_) {
        // detach removes every entry keyed to the RNTI either way; only
        // `migrate` keeps the state alive for the target cell's entity.
        auto st = hook_->detach_ue(ue);
        if (ht == hook_transfer::migrate) ctx.hook_state = std::move(st);
    }
    rec(ue).attached = false;  // stats freeze; the record stays queryable
    return ctx;
}

void cell::set_rlf_handler(ran::gnb::rlf_handler h)
{
    gnb_->set_rlf_handler(std::move(h));
}

ran::rnti_t cell::attach_ue(ran::ue_handover_context ctx)
{
    // Bearer bookkeeping mirrored from the context before it is consumed.
    const bool separated = ctx.drbs.size() > 1;
    int next_qfi = 1;
    for (const auto& [qfi, drb] : ctx.qfi_map) {
        (void)drb;
        next_qfi = std::max(next_qfi, static_cast<int>(qfi) + 1);
    }
    auto hook_state = std::move(ctx.hook_state);

    const ran::rnti_t rnti = gnb_->attach_ue(std::move(ctx));
    if (hook_ && hook_state) hook_->attach_ue(rnti, std::move(hook_state));

    auto r = std::make_unique<ue_rec>();
    r->rnti = rnti;
    r->default_drb = 1;
    r->classic_drb = separated ? 2 : 1;
    r->next_qfi = next_qfi;
    rnti_slots_.resize(std::max<std::size_t>(rnti_slots_.size(), rnti), nullptr);
    rnti_slots_[rnti - 1] = r.get();
    ues_.push_back(std::move(r));
    return rnti;
}

void cell::set_deliver_handler(ran::gnb::deliver_handler h)
{
    gnb_->set_deliver_handler(std::move(h));
}

void cell::set_uplink_handler(ran::gnb::uplink_handler h)
{
    gnb_->set_uplink_handler(std::move(h));
}

void cell::set_linklog_handler(ran::gnb::linklog_handler h)
{
    gnb_->set_linklog_handler(std::move(h));
}

const stats::sample_set& cell::rlc_queue_sdus(ran::rnti_t ue) const
{
    return rec(ue).rlc_samples;
}

const stats::value_series& cell::rlc_queue_series(ran::rnti_t ue) const
{
    return rec(ue).rlc_series;
}

const std::vector<std::pair<sim::tick, std::uint32_t>>& cell::tx_log(ran::rnti_t ue) const
{
    const ue_rec& r = rec(ue);
    if (!spec_.record_tx_log)
        throw std::logic_error("cell: tx_log requires cell_spec.record_tx_log");
    return r.tx_log;
}

double cell::mean_queuing_ms() const
{
    return delay_reports_ ? queuing_sum_ms_ / static_cast<double>(delay_reports_) : 0.0;
}

double cell::mean_scheduling_ms() const
{
    return delay_reports_ ? sched_sum_ms_ / static_cast<double>(delay_reports_) : 0.0;
}

cell::ue_rec& cell::rec(ran::rnti_t ue)
{
    if (ue < 1 || ue > rnti_slots_.size() || rnti_slots_[ue - 1] == nullptr)
        throw std::out_of_range("unknown rnti in cell");
    return *rnti_slots_[ue - 1];
}

const cell::ue_rec& cell::rec(ran::rnti_t ue) const
{
    return const_cast<cell*>(this)->rec(ue);
}

}  // namespace l4span::scenario
