// End-to-end single-cell experiment harness: builds one scenario::cell on a
// private event loop, attaches TCP or media flows with per-flow wired server
// paths, runs the simulation and collects the metrics the paper's figures
// report.
//
// Every bench binary and example is a thin wrapper over this class; the
// cell wiring itself lives in scenario::cell so the multi-cell topology
// layer reuses it unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/cell.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"
#include "topo/cross_traffic.h"
#include "topo/path_impairment.h"
#include "topo/wired_link.h"

namespace l4span::scenario {

class cell_scenario {
public:
    explicit cell_scenario(cell_spec spec);
    ~cell_scenario();

    // Returns the flow handle (index).
    int add_flow(flow_spec spec);

    void run(sim::tick duration);

    // --- per-flow results (handles are bounds-checked: a bad handle throws
    // std::out_of_range instead of reading a stale or foreign flow) ---
    const stats::sample_set& owd_ms(int flow) const;       // one-way delay
    const stats::sample_set& rtt_ms(int flow) const;       // sender RTT samples
    double goodput_mbps(int flow) const;                   // over active period
    const stats::rate_series& goodput_series(int flow) const;
    double fct_ms(int flow) const;                         // -1 if not finished
    std::uint64_t delivered_bytes(int flow) const;
    std::uint64_t flow_cwnd(int flow) const;               // TCP/QUIC flows only
    const transport::tcp_sender* tcp_flow(int flow) const;
    const transport::quic_sender* quic_flow(int flow) const;   // quic-* flows
    const media::frame_source* frame_stats(int flow) const;    // fps > 0 flows
    std::uint64_t flow_retransmits(int flow) const;        // TCP/QUIC re-sends
    // CE-marked packets the flow's receiver actually saw (0 for media
    // flows) — the numerator of the CE-delivery ratio.
    std::uint64_t flow_ce_packets(int flow) const;
    // True when the TCP/QUIC sender's ECN path validation gave up and the
    // flow reverted to Not-ECT sending (false for media flows).
    bool flow_ecn_fallback(int flow) const;

    // --- cell-level instrumentation ---
    const stats::sample_set& rlc_queue_sdus(int ue) const;  // sampled every 10 ms
    const stats::value_series& rlc_queue_series(int ue) const;
    double mean_queuing_ms() const;
    double mean_scheduling_ms() const;
    core::l4span* l4span_layer() { return cell_->l4span_layer(); }
    ran::gnb& gnb() { return cell_->gnb(); }
    scenario::cell& cell() { return *cell_; }
    sim::event_loop& loop() { return loop_; }
    // Ground-truth MAC transmissions, (time, bytes), per UE index (Fig. 20).
    const std::vector<std::pair<sim::tick, std::uint32_t>>& tx_log(int ue) const;
    double sim_wallclock_events() const { return static_cast<double>(loop_.processed()); }

    // --- path-impairment instrumentation ---
    // Mounted stages (nullptr when the spec's knobs are all off and
    // force_stage is false).
    const topo::path_impairment* impair_dl() const { return impair_dl_.get(); }
    const topo::path_impairment* impair_ul() const { return impair_ul_.get(); }
    // CE marks applied by the wired bottleneck AQM (0 without a bottleneck
    // or with a FIFO one). Together with l4span_layer()->marks() this is
    // the denominator of the CE-delivery ratio.
    std::uint64_t bottleneck_ce_marks() const
    {
        return bottleneck_ ? bottleneck_->queue().marks() : 0;
    }
    std::uint64_t cross_traffic_packets() const;
    // The uplink return-path bottleneck (nullptr when ul_bottleneck_bps
    // is 0 and the return path is latency-only).
    const topo::wired_link* ul_bottleneck() const { return ul_bottleneck_.get(); }

    // --- observability ---
    // The hub (nullptr unless cell_spec.obs.enabled). run() takes the final
    // snapshot and writes the JSONL artifacts when obs.out_prefix is set;
    // the in-memory views stay readable either way.
    obs::hub* obs_hub() { return hub_.get(); }

private:
    struct flow_rt {
        flow_spec spec;
        ran::rnti_t rnti = 0;
        ran::qfi_t qfi = 0;
        sim::tick wired_owd = 0;
        flow_endpoints ep;
    };

    flow_rt& flow_at(int flow) const;
    ran::rnti_t rnti_at(int ue) const;
    void downlink_arrival(net::packet pkt);  // route into the RAN by flow_id
    void uplink_arrival(net::packet pkt);    // route feedback to the sender

    cell_spec spec_;
    sim::event_loop loop_;
    std::unique_ptr<obs::hub> hub_;
    std::unique_ptr<scenario::cell> cell_;
    std::unique_ptr<topo::wired_link> bottleneck_;
    std::unique_ptr<topo::wired_link> ul_bottleneck_;
    std::unique_ptr<topo::path_impairment> impair_dl_;
    std::unique_ptr<topo::path_impairment> impair_ul_;
    std::vector<std::unique_ptr<topo::cross_traffic>> cross_;
    std::vector<std::unique_ptr<flow_rt>> flows_;
    sim::tick duration_ = 0;
};

}  // namespace l4span::scenario
