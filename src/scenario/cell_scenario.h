// End-to-end experiment harness: builds a cell (gNB + UEs + channels),
// attaches TCP or media flows with per-flow wired server paths, runs the
// simulation and collects the metrics the paper's figures report.
//
// Every bench binary and example is a thin wrapper over this class.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/l4span.h"
#include "media/media.h"
#include "ran/gnb.h"
#include "scenario/baselines.h"
#include "sim/event_loop.h"
#include "stats/sample_set.h"
#include "stats/timeseries.h"
#include "topo/wired_link.h"
#include "transport/tcp.h"

namespace l4span::scenario {

enum class cu_mode : std::uint8_t {
    none,         // vanilla RAN: deep RLC queue, no signaling (the status quo)
    l4span,       // the paper's system
    dualpi2_ran,  // §6.3.1 microbenchmark baseline
    tcran,        // §6.2.2 comparison baseline
};

struct cell_spec {
    int num_ues = 1;
    std::string channel = "static";  // static | pedestrian | vehicular | mobile
    std::size_t rlc_queue_sdus = 16384;  // srsRAN default; the paper also uses 256
    ran::rlc_mode rlc_mode = ran::rlc_mode::am;
    ran::sched_policy sched = ran::sched_policy::round_robin;
    cu_mode cu = cu_mode::l4span;
    core::l4span_config l4s;
    tc_ran::config tcran;
    dualpi2_ran_hook::config dualpi2;
    std::uint64_t seed = 1;
    // Put L4S and classic flows of one UE on separate DRBs (§4.2.3 default
    // deployment; false models the low-end shared-DRB UE of §6.2.6).
    bool separate_drbs_per_class = false;
    // Optional shared wired bottleneck on the forward path (Fig. 2): rate
    // changes according to `bottleneck_schedule` (time, bps).
    double bottleneck_bps = 0.0;
    std::vector<std::pair<sim::tick, double>> bottleneck_schedule;
};

struct flow_spec {
    std::string cca = "prague";  // reno|cubic|prague|bbr|bbr2|scream|udp-prague
    int ue = 0;                  // UE index (0-based)
    sim::tick start_time = 0;
    sim::tick stop_time = -1;            // long-lived flows run to scenario end
    std::uint64_t flow_bytes = 0;        // >0: short-lived flow, measures FCT
    double wired_owd_ms = 19.0;          // one-way server->core ("east" Azure)
    std::uint32_t mss = 1400;
    std::uint64_t max_cwnd = 4ull << 20;
    double media_max_bps = 38e6;
    double media_start_bps = 1e6;
};

class cell_scenario {
public:
    explicit cell_scenario(cell_spec spec);
    ~cell_scenario();

    // Returns the flow handle (index).
    int add_flow(flow_spec spec);

    void run(sim::tick duration);

    // --- per-flow results ---
    const stats::sample_set& owd_ms(int flow) const;       // one-way delay
    const stats::sample_set& rtt_ms(int flow) const;       // sender RTT samples
    double goodput_mbps(int flow) const;                   // over active period
    const stats::rate_series& goodput_series(int flow) const;
    double fct_ms(int flow) const;                         // -1 if not finished
    std::uint64_t delivered_bytes(int flow) const;
    std::uint64_t flow_cwnd(int flow) const;               // TCP flows only
    const transport::tcp_sender* tcp_flow(int flow) const;

    // --- cell-level instrumentation ---
    const stats::sample_set& rlc_queue_sdus(int ue) const;  // sampled every 10 ms
    const stats::value_series& rlc_queue_series(int ue) const;
    double mean_queuing_ms() const;
    double mean_scheduling_ms() const;
    core::l4span* l4span_layer() { return l4span_.get(); }
    ran::gnb& gnb() { return *gnb_; }
    sim::event_loop& loop() { return loop_; }
    // Ground-truth MAC transmissions, (time, bytes), per UE index (Fig. 20).
    const std::vector<std::pair<sim::tick, std::uint32_t>>& tx_log(int ue) const;
    double sim_wallclock_events() const { return static_cast<double>(loop_.processed()); }

private:
    struct flow_rt {
        flow_spec spec;
        ran::rnti_t rnti = 0;
        ran::qfi_t qfi = 0;
        bool is_media = false;
        std::unique_ptr<transport::tcp_sender> snd;
        std::unique_ptr<transport::tcp_receiver> rcv;
        std::unique_ptr<media::media_sender> msnd;
        std::unique_ptr<media::media_receiver> mrcv;
        sim::tick wired_owd = 0;
        sim::tick active_until = 0;
    };

    void route_downlink(net::packet pkt, flow_rt& f);
    void start_sampling();

    cell_spec spec_;
    sim::event_loop loop_;
    sim::rng rng_;
    std::unique_ptr<ran::gnb> gnb_;
    std::unique_ptr<core::l4span> l4span_;
    std::unique_ptr<dualpi2_ran_hook> dualpi2_;
    std::unique_ptr<tc_ran> tcran_;
    std::unique_ptr<topo::wired_link> bottleneck_;

    std::vector<ran::rnti_t> rntis_;
    std::vector<ran::drb_id_t> default_drb_;   // per UE
    std::vector<ran::drb_id_t> classic_drb_;   // per UE (when separated)
    std::vector<int> next_qfi_;

    std::vector<std::unique_ptr<flow_rt>> flows_;
    std::vector<stats::sample_set> rlc_samples_;
    std::vector<stats::value_series> rlc_series_;
    std::vector<std::vector<std::pair<sim::tick, std::uint32_t>>> tx_logs_;

    double queuing_sum_ms_ = 0.0;
    double sched_sum_ms_ = 0.0;
    std::uint64_t delay_reports_ = 0;
    sim::tick duration_ = 0;
};

// Maps the paper's channel labels to profiles.
chan::channel_profile channel_by_name(const std::string& name, std::uint64_t variant = 0);

}  // namespace l4span::scenario
