#include "scenario/cell_scenario.h"

#include <stdexcept>

#include "aqm/dualpi2.h"

namespace l4span::scenario {

namespace {

std::unique_ptr<aqm::queue_discipline> make_bottleneck_queue(const cell_spec& spec)
{
    if (spec.bottleneck_aqm == "fifo")
        return std::make_unique<aqm::fifo_queue>(4 << 20);
    if (spec.bottleneck_aqm == "dualpi2") {
        aqm::dualpi2_config cfg;
        cfg.max_bytes = 4 << 20;
        cfg.seed = topo::impairment_seed(spec.seed, /*lane=*/2, false);
        return std::make_unique<aqm::dualpi2_queue>(cfg);
    }
    if (spec.bottleneck_aqm == "wred") {
        aqm::wred_dualq_config cfg = spec.wred;
        cfg.seed = topo::impairment_seed(spec.seed, /*lane=*/3, false);
        return std::make_unique<aqm::wred_dualq_queue>(cfg);
    }
    throw std::invalid_argument("unknown bottleneck AQM \"" + spec.bottleneck_aqm +
                                "\" (valid: fifo, dualpi2, wred)");
}

}  // namespace

cell_scenario::cell_scenario(cell_spec spec) : spec_(std::move(spec))
{
    spec_.impair_dl.validate("cell_spec.impair_dl");
    spec_.impair_ul.validate("cell_spec.impair_ul");
    bool any_dl_cross = false, any_ul_cross = false;
    for (std::size_t i = 0; i < spec_.cross_traffic.size(); ++i) {
        spec_.cross_traffic[i].validate("cell_spec.cross_traffic[" +
                                        std::to_string(i) + "]");
        (spec_.cross_traffic[i].uplink ? any_ul_cross : any_dl_cross) = true;
    }
    if (any_dl_cross && spec_.bottleneck_bps <= 0.0)
        throw std::invalid_argument(
            "cell_spec.cross_traffic: background senders share the core "
            "bottleneck, so set bottleneck_bps > 0 (there is no queue to "
            "compete for otherwise)");
    if (any_ul_cross && spec_.ul_bottleneck_bps <= 0.0)
        throw std::invalid_argument(
            "cell_spec.cross_traffic: uplink background senders share the "
            "return-path bottleneck, so set ul_bottleneck_bps > 0 (the "
            "latency-only return path has no queue to compete for)");
    if (spec_.ul_bottleneck_bps < 0.0)
        throw std::invalid_argument("cell_spec.ul_bottleneck_bps must be >= 0");

    cell_ = std::make_unique<scenario::cell>(loop_, spec_);

    obs::tracer* tr = nullptr;
    if (spec_.obs.enabled) {
        hub_ = std::make_unique<obs::hub>(1, spec_.obs);
        tr = &hub_->shard_tracer(0);
        cell_->attach_obs(tr, &hub_->shard_registry(0));
    }

    cell_->set_deliver_handler(
        [this](ran::rnti_t, ran::drb_id_t, net::packet pkt, sim::tick) {
            const std::size_t f = pkt.flow_id;
            if (f >= flows_.size()) return;
            flows_[f]->ep.on_downlink(pkt);
        });

    // Impairment stages mount only when a knob is on (or force_stage): the
    // all-off default leaves the event flow of existing scenarios untouched.
    if (spec_.impair_dl.wants_stage())
        impair_dl_ = std::make_unique<topo::path_impairment>(
            loop_, spec_.impair_dl,
            topo::impairment_seed(spec_.seed, /*lane=*/0, false));
    if (spec_.impair_ul.wants_stage())
        impair_ul_ = std::make_unique<topo::path_impairment>(
            loop_, spec_.impair_ul,
            topo::impairment_seed(spec_.seed, /*lane=*/0, true));
    if (impair_dl_) {
        impair_dl_->set_deliver([this](net::packet pkt) { downlink_arrival(std::move(pkt)); });
        impair_dl_->set_tracer(tr, /*stage=*/0);
    }
    if (impair_ul_) {
        impair_ul_->set_deliver([this](net::packet pkt) { uplink_arrival(std::move(pkt)); });
        impair_ul_->set_tracer(tr, /*stage=*/1);
    }

    // Uplink return path: RAN -> [uplink bottleneck] -> [uplink impairment]
    // -> per-flow reverse wired hop back to the sender. The bottleneck sits
    // first, where the cell's aggregate ACK stream (and any uplink cross
    // traffic) serializes onto the return hop.
    if (spec_.ul_bottleneck_bps > 0.0) {
        ul_bottleneck_ = std::make_unique<topo::wired_link>(
            loop_, spec_.ul_bottleneck_bps, sim::from_ms(1));
        ul_bottleneck_->queue().set_tracer(tr, /*id=*/1);
        ul_bottleneck_->set_deliver([this](net::packet pkt) {
            if (impair_ul_) impair_ul_->send(std::move(pkt));
            else uplink_arrival(std::move(pkt));
        });
    }
    cell_->set_uplink_handler([this](ran::rnti_t, net::packet pkt, sim::tick) {
        if (ul_bottleneck_) ul_bottleneck_->send(std::move(pkt));
        else if (impair_ul_) impair_ul_->send(std::move(pkt));
        else uplink_arrival(std::move(pkt));
    });

    if (spec_.bottleneck_bps > 0.0) {
        bottleneck_ = std::make_unique<topo::wired_link>(
            loop_, spec_.bottleneck_bps, sim::from_ms(1),
            make_bottleneck_queue(spec_));
        bottleneck_->queue().set_tracer(tr, /*id=*/0);
        // The downlink stage sits between the core bottleneck and the RAN —
        // the only placement where bleaching can erase the core AQM's CE
        // marks before they reach the UE.
        bottleneck_->set_deliver([this](net::packet pkt) {
            if (impair_dl_) impair_dl_->send(std::move(pkt));
            else downlink_arrival(std::move(pkt));
        });
        for (const auto& [when, bps] : spec_.bottleneck_schedule)
            loop_.schedule_at(when, [this, bps = bps] { bottleneck_->set_rate(bps); });
    }
    for (std::size_t i = 0; i < spec_.cross_traffic.size(); ++i) {
        // Uplink generators inject into the return bottleneck (their
        // packets sink in uplink_arrival's unknown-flow check); downlink
        // ones into the core bottleneck as before. Each direction draws an
        // independent seed stream.
        const bool ul = spec_.cross_traffic[i].uplink;
        topo::wired_link* link = ul ? ul_bottleneck_.get() : bottleneck_.get();
        cross_.push_back(std::make_unique<topo::cross_traffic>(
            loop_, spec_.cross_traffic[i],
            topo::impairment_seed(spec_.seed, /*lane=*/64 + i, ul),
            static_cast<std::uint32_t>(i),
            [link](net::packet pkt) { link->send(std::move(pkt)); }));
        cross_.back()->start();
    }
}

void cell_scenario::downlink_arrival(net::packet pkt)
{
    const std::size_t f = pkt.flow_id;
    // Unknown flow ids (cross-traffic's sentinel) sink here: background
    // packets exist to occupy the bottleneck, not to enter the RAN.
    if (f >= flows_.size()) return;
    flow_rt& flow = *flows_[f];
    cell_->deliver_downlink(std::move(pkt), flow.rnti, flow.qfi);
}

void cell_scenario::uplink_arrival(net::packet pkt)
{
    const std::size_t f = pkt.flow_id;
    if (f >= flows_.size()) return;
    // Reverse wired path back to the server.
    loop_.schedule_after(flows_[f]->wired_owd, [this, f, pkt = std::move(pkt)] {
        flows_[f]->ep.on_uplink(pkt);
    });
}

std::uint64_t cell_scenario::cross_traffic_packets() const
{
    std::uint64_t n = 0;
    for (const auto& c : cross_) n += c->packets_sent();
    return n;
}

cell_scenario::~cell_scenario() = default;

ran::rnti_t cell_scenario::rnti_at(int ue) const
{
    if (ue < 0 || ue >= spec_.num_ues)
        throw std::out_of_range("cell_scenario: UE index out of range");
    return cell_->rnti_of(static_cast<std::size_t>(ue));
}

int cell_scenario::add_flow(flow_spec fspec)
{
    const ran::rnti_t rnti = rnti_at(fspec.ue);  // validates the UE index
    const int handle = static_cast<int>(flows_.size());
    auto f = std::make_unique<flow_rt>();
    f->spec = fspec;
    f->rnti = rnti;
    f->wired_owd = sim::from_ms(fspec.wired_owd_ms);
    f->qfi = cell_->alloc_qfi(rnti);
    cell_->map_qos_flow(rnti, f->qfi, is_l4s_cca(fspec.cca));

    auto dl_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        // Forward wired path: fixed propagation, then optional bottleneck,
        // then the optional impairment stage (downlink_arrival routes into
        // the RAN; the stage forwards there via its deliver handler).
        loop_.schedule_after(flows_[static_cast<std::size_t>(handle)]->wired_owd,
                             [this, pkt = std::move(pkt)]() mutable {
                                 if (bottleneck_) bottleneck_->send(std::move(pkt));
                                 else if (impair_dl_) impair_dl_->send(std::move(pkt));
                                 else downlink_arrival(std::move(pkt));
                             });
    };
    auto ul_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        cell_->send_uplink(flows_[static_cast<std::size_t>(handle)]->rnti,
                           std::move(pkt));
    };

    f->ep = make_flow_endpoints(loop_, fspec, handle, fspec.ue, std::move(dl_send),
                                std::move(ul_send),
                                hub_ ? &hub_->shard_tracer(0) : nullptr);
    flows_.push_back(std::move(f));
    return handle;
}

void cell_scenario::run(sim::tick duration)
{
    duration_ = duration;
    if (hub_) hub_->start_sampling(loop_, 0);
    cell_->start();
    loop_.run_until(duration);
    if (hub_) hub_->finish(duration);
}

cell_scenario::flow_rt& cell_scenario::flow_at(int flow) const
{
    if (flow < 0 || static_cast<std::size_t>(flow) >= flows_.size())
        throw std::out_of_range("cell_scenario: flow handle out of range");
    return *flows_[static_cast<std::size_t>(flow)];
}

const stats::sample_set& cell_scenario::owd_ms(int flow) const
{
    return flow_at(flow).ep.owd_samples();
}

const stats::sample_set& cell_scenario::rtt_ms(int flow) const
{
    return flow_at(flow).ep.rtt_samples();
}

std::uint64_t cell_scenario::delivered_bytes(int flow) const
{
    return flow_at(flow).ep.delivered_bytes();
}

double cell_scenario::goodput_mbps(int flow) const
{
    const flow_rt& f = flow_at(flow);
    return flow_goodput_mbps(f.spec, f.ep, duration_);
}

const stats::rate_series& cell_scenario::goodput_series(int flow) const
{
    return flow_at(flow).ep.goodput();
}

std::uint64_t cell_scenario::flow_cwnd(int flow) const
{
    return flow_at(flow).ep.cwnd_bytes();
}

const transport::tcp_sender* cell_scenario::tcp_flow(int flow) const
{
    return flow_at(flow).ep.snd.get();
}

const transport::quic_sender* cell_scenario::quic_flow(int flow) const
{
    return flow_at(flow).ep.qsnd.get();
}

const media::frame_source* cell_scenario::frame_stats(int flow) const
{
    return flow_at(flow).ep.frame_stats();
}

std::uint64_t cell_scenario::flow_retransmits(int flow) const
{
    return flow_at(flow).ep.transport_retransmits();
}

std::uint64_t cell_scenario::flow_ce_packets(int flow) const
{
    const flow_rt& f = flow_at(flow);
    if (f.ep.rcv) return f.ep.rcv->ce_packets();
    if (f.ep.qrcv) return f.ep.qrcv->ce_packets();
    return 0;
}

bool cell_scenario::flow_ecn_fallback(int flow) const
{
    const flow_rt& f = flow_at(flow);
    if (f.ep.snd) return f.ep.snd->ecn_fallback();
    if (f.ep.qsnd) return f.ep.qsnd->ecn_fallback();
    return false;
}

double cell_scenario::fct_ms(int flow) const
{
    const flow_rt& f = flow_at(flow);
    if (!f.ep.tcp_finished()) return -1.0;
    return sim::to_ms(f.ep.tcp_finish_time() - f.spec.start_time);
}

const stats::sample_set& cell_scenario::rlc_queue_sdus(int ue) const
{
    return cell_->rlc_queue_sdus(rnti_at(ue));
}

const stats::value_series& cell_scenario::rlc_queue_series(int ue) const
{
    return cell_->rlc_queue_series(rnti_at(ue));
}

double cell_scenario::mean_queuing_ms() const
{
    return cell_->mean_queuing_ms();
}

double cell_scenario::mean_scheduling_ms() const
{
    return cell_->mean_scheduling_ms();
}

const std::vector<std::pair<sim::tick, std::uint32_t>>& cell_scenario::tx_log(int ue) const
{
    return cell_->tx_log(rnti_at(ue));
}

}  // namespace l4span::scenario
