#include "scenario/cell_scenario.h"

#include <stdexcept>

namespace l4span::scenario {

namespace {
constexpr sim::tick k_sample_period = sim::from_ms(10);

bool is_l4s_cca(const std::string& cca)
{
    return cca == "prague" || cca == "bbr2" || cca == "scream" || cca == "udp-prague";
}

bool is_media_cca(const std::string& cca)
{
    return cca == "scream" || cca == "udp-prague";
}
}  // namespace

chan::channel_profile channel_by_name(const std::string& name, std::uint64_t variant)
{
    chan::channel_profile p;
    if (name == "static") p = chan::channel_profile::static_channel();
    else if (name == "pedestrian") p = chan::channel_profile::pedestrian();
    else if (name == "vehicular") p = chan::channel_profile::vehicular();
    else if (name == "mobile") {
        // "Mobile" combines pedestrian- and vehicular-speed channels (§6.2.1):
        // alternate per UE.
        p = (variant % 2 == 0) ? chan::channel_profile::pedestrian()
                               : chan::channel_profile::vehicular();
        p.name = "mobile";
    } else {
        throw std::invalid_argument("unknown channel profile: " + name);
    }
    return p;
}

cell_scenario::cell_scenario(cell_spec spec) : spec_(std::move(spec)), rng_(spec_.seed)
{
    ran::gnb_config gcfg;
    gcfg.mac.policy = spec_.sched;
    gnb_ = std::make_unique<ran::gnb>(loop_, gcfg, rng_.fork());

    switch (spec_.cu) {
    case cu_mode::l4span: {
        auto cfg = spec_.l4s;
        cfg.seed = rng_.fork().engine()();
        l4span_ = std::make_unique<core::l4span>(cfg);
        gnb_->set_cu_hook(l4span_.get());
        break;
    }
    case cu_mode::dualpi2_ran:
        dualpi2_ = std::make_unique<dualpi2_ran_hook>(spec_.dualpi2);
        gnb_->set_cu_hook(dualpi2_.get());
        break;
    case cu_mode::tcran:
        tcran_ = std::make_unique<tc_ran>(loop_, *gnb_, spec_.tcran);
        break;
    case cu_mode::none: break;
    }

    ran::rlc_config rlc;
    rlc.mode = spec_.rlc_mode;
    rlc.max_queue_sdus = spec_.rlc_queue_sdus;

    for (int u = 0; u < spec_.num_ues; ++u) {
        const auto profile = channel_by_name(spec_.channel, static_cast<std::uint64_t>(u));
        const ran::rnti_t rnti = gnb_->add_ue(profile);
        rntis_.push_back(rnti);
        default_drb_.push_back(gnb_->add_drb(rnti, rlc));
        classic_drb_.push_back(spec_.separate_drbs_per_class ? gnb_->add_drb(rnti, rlc)
                                                             : default_drb_.back());
        next_qfi_.push_back(1);
    }
    rlc_samples_.resize(static_cast<std::size_t>(spec_.num_ues));
    rlc_series_.assign(static_cast<std::size_t>(spec_.num_ues),
                       stats::value_series(sim::from_ms(100)));
    tx_logs_.resize(static_cast<std::size_t>(spec_.num_ues));

    gnb_->set_delay_handler([this](const ran::sdu_delay_report& r) {
        queuing_sum_ms_ += sim::to_ms(r.queuing);
        sched_sum_ms_ += sim::to_ms(r.scheduling);
        ++delay_reports_;
    });
    gnb_->set_txlog_handler(
        [this](ran::rnti_t ue, ran::drb_id_t, std::uint32_t bytes, sim::tick now) {
            const std::size_t idx = static_cast<std::size_t>(ue - 1);
            if (idx < tx_logs_.size()) tx_logs_[idx].emplace_back(now, bytes);
        });

    gnb_->set_deliver_handler(
        [this](ran::rnti_t, ran::drb_id_t, net::packet pkt, sim::tick) {
            const std::size_t f = pkt.flow_id;
            if (f >= flows_.size()) return;
            flow_rt& flow = *flows_[f];
            if (flow.is_media) flow.mrcv->on_packet(pkt);
            else flow.rcv->on_packet(pkt);
        });

    gnb_->set_uplink_handler([this](ran::rnti_t, net::packet pkt, sim::tick) {
        const std::size_t f = pkt.flow_id;
        if (f >= flows_.size()) return;
        flow_rt& flow = *flows_[f];
        // Reverse wired path back to the server.
        loop_.schedule_after(flow.wired_owd, [this, f, pkt = std::move(pkt)] {
            flow_rt& fl = *flows_[f];
            if (fl.is_media) fl.msnd->on_packet(pkt);
            else fl.snd->on_packet(pkt);
        });
    });

    if (spec_.bottleneck_bps > 0.0) {
        bottleneck_ = std::make_unique<topo::wired_link>(
            loop_, spec_.bottleneck_bps, sim::from_ms(1),
            std::make_unique<aqm::fifo_queue>(4 << 20));
        bottleneck_->set_deliver([this](net::packet pkt) {
            const std::size_t f = pkt.flow_id;
            if (f >= flows_.size()) return;
            route_downlink(std::move(pkt), *flows_[f]);
        });
        for (const auto& [when, bps] : spec_.bottleneck_schedule)
            loop_.schedule_at(when, [this, bps = bps] { bottleneck_->set_rate(bps); });
    }
}

cell_scenario::~cell_scenario() = default;

void cell_scenario::route_downlink(net::packet pkt, flow_rt& f)
{
    // 5G core hop, then the CU (TC-RAN intercepts at the CU ingress).
    if (tcran_) tcran_->deliver_downlink(std::move(pkt), f.rnti, f.qfi);
    else gnb_->deliver_downlink(std::move(pkt), f.rnti, f.qfi);
}

int cell_scenario::add_flow(flow_spec fspec)
{
    if (fspec.ue < 0 || fspec.ue >= spec_.num_ues)
        throw std::out_of_range("flow attached to unknown UE");
    const int handle = static_cast<int>(flows_.size());
    auto f = std::make_unique<flow_rt>();
    f->spec = fspec;
    f->rnti = rntis_[static_cast<std::size_t>(fspec.ue)];
    f->is_media = is_media_cca(fspec.cca);
    f->wired_owd = sim::from_ms(fspec.wired_owd_ms);
    f->qfi = static_cast<ran::qfi_t>(next_qfi_[static_cast<std::size_t>(fspec.ue)]++);

    // Route the flow's QFI to the right DRB (class-separated when enabled).
    const ran::drb_id_t drb = is_l4s_cca(fspec.cca)
                                  ? default_drb_[static_cast<std::size_t>(fspec.ue)]
                                  : classic_drb_[static_cast<std::size_t>(fspec.ue)];
    gnb_->map_qos_flow(f->rnti, f->qfi, drb);

    // Synthetic five-tuple: unique server per flow.
    net::five_tuple ft;
    ft.src_ip = 0x0a000001u + static_cast<std::uint32_t>(handle);  // 10.0.0.x server
    ft.dst_ip = 0xc0a80001u + static_cast<std::uint32_t>(fspec.ue);
    ft.src_port = 443;
    ft.dst_port = static_cast<std::uint16_t>(50000 + handle);
    ft.proto = f->is_media ? net::ip_proto::udp : net::ip_proto::tcp;

    auto dl_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        // Forward wired path: fixed propagation, then optional bottleneck.
        loop_.schedule_after(flows_[static_cast<std::size_t>(handle)]->wired_owd,
                             [this, handle, pkt = std::move(pkt)]() mutable {
                                 flow_rt& f2 = *flows_[static_cast<std::size_t>(handle)];
                                 if (bottleneck_) bottleneck_->send(std::move(pkt));
                                 else route_downlink(std::move(pkt), f2);
                             });
    };
    auto ul_send = [this, handle](net::packet pkt) {
        pkt.flow_id = static_cast<std::uint64_t>(handle);
        gnb_->send_uplink(flows_[static_cast<std::size_t>(handle)]->rnti, std::move(pkt));
    };

    if (f->is_media) {
        media::media_config mcfg;
        mcfg.ft = ft;
        mcfg.flow_id = static_cast<std::uint64_t>(handle);
        mcfg.max_rate_bps = fspec.media_max_bps;
        mcfg.start_rate_bps = fspec.media_start_bps;
        auto rc = fspec.cca == "scream" ? media::make_scream(mcfg)
                                        : media::make_udp_prague(mcfg);
        f->msnd = std::make_unique<media::media_sender>(loop_, mcfg, std::move(rc), dl_send);
        f->mrcv = std::make_unique<media::media_receiver>(loop_, mcfg, ul_send);
        media::media_sender* snd = f->msnd.get();
        loop_.schedule_at(fspec.start_time, [snd] { snd->start(); });
        if (fspec.stop_time >= 0)
            loop_.schedule_at(fspec.stop_time, [snd] { snd->stop(); });
    } else {
        transport::tcp_config tcfg;
        tcfg.mss = fspec.mss;
        tcfg.max_cwnd = fspec.max_cwnd;
        tcfg.flow_bytes = fspec.flow_bytes;
        tcfg.ft = ft;
        tcfg.flow_id = static_cast<std::uint64_t>(handle);
        auto cc = transport::make_cc(fspec.cca, fspec.mss);
        const bool accecn = cc->uses_accecn();
        f->snd = std::make_unique<transport::tcp_sender>(loop_, tcfg, std::move(cc), dl_send);
        f->rcv = std::make_unique<transport::tcp_receiver>(loop_, tcfg, accecn, ul_send);
        transport::tcp_sender* snd = f->snd.get();
        loop_.schedule_at(fspec.start_time, [snd] { snd->start(); });
        if (fspec.stop_time >= 0)
            loop_.schedule_at(fspec.stop_time, [snd] { snd->stop(); });
    }

    flows_.push_back(std::move(f));
    return handle;
}

void cell_scenario::start_sampling()
{
    loop_.schedule_after(k_sample_period, [this] {
        for (int u = 0; u < spec_.num_ues; ++u) {
            const auto sdus = static_cast<double>(
                gnb_->rlc(rntis_[static_cast<std::size_t>(u)],
                          default_drb_[static_cast<std::size_t>(u)])
                    .queued_sdus());
            rlc_samples_[static_cast<std::size_t>(u)].add(sdus);
            rlc_series_[static_cast<std::size_t>(u)].add(loop_.now(), sdus);
        }
        start_sampling();
    });
}

void cell_scenario::run(sim::tick duration)
{
    duration_ = duration;
    gnb_->start();
    start_sampling();
    loop_.run_until(duration);
}

const stats::sample_set& cell_scenario::owd_ms(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? f.mrcv->owd_samples() : f.rcv->owd_samples();
}

const stats::sample_set& cell_scenario::rtt_ms(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? f.msnd->rtt_samples() : f.snd->rtt_samples();
}

std::uint64_t cell_scenario::delivered_bytes(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? static_cast<std::uint64_t>(f.mrcv->goodput().total_bytes())
                      : f.rcv->received_bytes();
}

double cell_scenario::goodput_mbps(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    sim::tick end = f.spec.stop_time >= 0 ? f.spec.stop_time : duration_;
    if (!f.is_media && f.snd->finished()) end = f.snd->finish_time();
    const sim::tick active = end - f.spec.start_time;
    if (active <= 0) return 0.0;
    return static_cast<double>(delivered_bytes(flow)) * 8.0 / sim::to_sec(active) / 1e6;
}

const stats::rate_series& cell_scenario::goodput_series(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? f.mrcv->goodput() : f.rcv->goodput();
}

std::uint64_t cell_scenario::flow_cwnd(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? 0 : f.snd->cwnd_bytes();
}

const transport::tcp_sender* cell_scenario::tcp_flow(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    return f.is_media ? nullptr : f.snd.get();
}

double cell_scenario::fct_ms(int flow) const
{
    const flow_rt& f = *flows_.at(static_cast<std::size_t>(flow));
    if (f.is_media || !f.snd->finished()) return -1.0;
    return sim::to_ms(f.snd->finish_time() - f.spec.start_time);
}

const stats::sample_set& cell_scenario::rlc_queue_sdus(int ue) const
{
    return rlc_samples_.at(static_cast<std::size_t>(ue));
}

const stats::value_series& cell_scenario::rlc_queue_series(int ue) const
{
    return rlc_series_.at(static_cast<std::size_t>(ue));
}

double cell_scenario::mean_queuing_ms() const
{
    return delay_reports_ ? queuing_sum_ms_ / static_cast<double>(delay_reports_) : 0.0;
}

double cell_scenario::mean_scheduling_ms() const
{
    return delay_reports_ ? sched_sum_ms_ / static_cast<double>(delay_reports_) : 0.0;
}

const std::vector<std::pair<sim::tick, std::uint32_t>>& cell_scenario::tx_log(int ue) const
{
    return tx_logs_.at(static_cast<std::size_t>(ue));
}

}  // namespace l4span::scenario
