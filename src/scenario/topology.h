// Multi-cell experiment harness: N scenario::cells, one per shard of a
// sim::shard_group, joined by a shared core/UPF routing stage, with X2/Xn
// handovers driven by a topo::mobility_model plan (or scheduled directly).
//
// Placement model
// ---------------
// Every UE has an immutable *home shard* — the shard of its initial cell —
// where its whole endpoint chain lives for the run: server-side sender,
// wired path, and UE receiver, plus the UPF routing entry. The *serving
// cell* (gNB actually carrying the bearers) starts out as the home cell and
// changes at handover. All routing decisions for a UE execute on its home
// shard, so no per-UE state is ever touched from two shards.
//
// Cross-shard hops and their latencies (each must be >= the sync quantum,
// which the constructor derives as the largest slot-aligned value not
// exceeding any of them):
//   downlink  sender --wired_owd--> UPF --core_hop--> serving gNB
//   delivery  serving gNB RLC --ue_stack--> receiver (modem -> app hop)
//   uplink    receiver --ue_stack--> serving gNB --wired_owd--> sender
//   handover  home --x2--> source (detach) --x2--> target (attach)
//                  --x2--> home (path switch)
// During the handover (3 x2 legs of interruption), downlink and uplink
// packets are held at the UPF / UE stack and flushed in order on path
// switch; in-flight RLC SDUs ride the forwarded handover context, so
// nothing the source cell admitted is dropped in RLC AM.
//
// Results are byte-identical for any `jobs` value (see sim::shard_group).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "scenario/cell.h"
#include "sim/fault_injector.h"
#include "sim/shard_group.h"
#include "topo/fault_plan.h"
#include "topo/mobility_model.h"
#include "topo/wired_link.h"

namespace l4span::scenario {

struct topology_spec {
    int num_cells = 2;
    int ues_per_cell = 1;
    // Per-cell template. num_ues is ignored (ues_per_cell governs) and the
    // seed is offset per cell so every cell draws independent randomness.
    cell_spec cell;
    // Worker threads for the shard group (1 = serial; results identical).
    int jobs = 1;
    sim::tick core_hop_latency = sim::from_ms(1);    // UPF -> gNB
    sim::tick ue_stack_latency = sim::from_us(500);  // modem <-> app
    sim::tick x2_latency = sim::from_ms(2);          // per X2/Xn leg

    // --- fault-injection knobs (consumed by apply_faults) ---
    // UE-side wait between losing service (RLF declared, or a handover's
    // context transfer lost) and the re-establishment attach attempt.
    sim::tick reestablish_backoff = sim::from_ms(100);
    // How long the source cell waits for the (lost) X2 transfer
    // acknowledgment before rolling the UE back.
    sim::tick ho_failure_timeout = sim::from_ms(20);
    // Line rate of the per-shard server->core wired hop. 0 (default)
    // models the hop as latency-only, exactly as before; > 0 mounts a
    // topo::wired_link with bounded FIFO buffering, which link_flap faults
    // stall (set_rate(0)) and recover.
    double wired_bps = 0.0;
};

class topology {
public:
    explicit topology(topology_spec spec);
    ~topology();

    int num_cells() const { return static_cast<int>(cells_.size()); }
    int num_ues() const { return static_cast<int>(ues_.size()); }
    scenario::cell& cell_at(int c) { return *cells_.at(static_cast<std::size_t>(c)); }
    sim::shard_group& shards() { return *shards_; }
    sim::tick quantum() const { return shards_->quantum(); }

    // `spec.ue` is a global UE index in [0, num_ues). Call before run().
    int add_flow(flow_spec spec);

    // Schedules one X2/Xn handover (skipped if the UE is mid-handover or
    // already served by `target_cell` when it fires). Call before run().
    void schedule_handover(sim::tick when, int ue, int target_cell);
    void apply(const std::vector<topo::handover_event>& plan);

    // Arms a deterministic chaos schedule (topo::fault_plan) through a
    // sim::fault_injector: every injection point is pre-armed on the loop
    // that owns the affected state, so runs stay byte-identical for any
    // `jobs`. Call once, before run(). Throws std::invalid_argument when
    // the plan does not fit this topology (shape mismatch, link_flap
    // without wired_bps, impairment_swap without a mounted stage).
    void apply_faults(const topo::fault_plan& plan);

    void run(sim::tick duration);

    // --- per-flow results (bounds-checked) ---
    const stats::sample_set& owd_ms(int flow) const;
    const stats::sample_set& rtt_ms(int flow) const;
    const stats::rate_series& goodput_series(int flow) const;
    double goodput_mbps(int flow) const;
    std::uint64_t delivered_bytes(int flow) const;
    std::uint64_t flow_retransmits(int flow) const;  // TCP/QUIC data re-sends
    // Interactive frame stats (nullptr unless the flow has fps > 0).
    const media::frame_source* frame_stats(int flow) const;
    // The QUIC engine behind a quic-* flow (nullptr otherwise).
    const transport::quic_sender* quic_flow(int flow) const;

    // --- topology-level introspection ---
    int home_cell(int ue) const;
    int serving_cell(int ue) const;
    ran::rnti_t ue_rnti(int ue) const;
    std::uint64_t handovers_started() const { return ho_started_.load(); }
    std::uint64_t handovers_completed() const { return ho_completed_.load(); }
    std::uint64_t processed_events() const { return shards_->processed(); }
    // Wired-path impairment stage of shard `c` (one pair per home shard, so
    // sharded runs stay race-free and byte-identical); nullptr when the
    // spec's knobs are all off. Read only after run().
    const topo::path_impairment* impair_dl_stage(int c) const;
    const topo::path_impairment* impair_ul_stage(int c) const;

    // --- fault introspection (read after run() unless noted) ---
    // Events of `cls` whose injection point actually fired (an armed event
    // can be skipped when its UE was mid-handover or its cell evacuated).
    std::uint64_t faults_injected(topo::fault_class cls) const;
    std::uint64_t faults_armed(topo::fault_class cls) const;
    std::uint64_t rlf_detected() const { return rlf_detected_.load(); }
    std::uint64_t reestablishments() const { return reestablished_.load(); }
    std::uint64_t ho_failures() const { return ho_failures_.load(); }
    std::uint64_t ho_rollbacks() const { return ho_rollbacks_.load(); }
    // Service-recovery times in ms (service lost -> path switched back in),
    // aggregated over UEs in index order, so the vector is deterministic.
    std::vector<double> recovery_ms() const;
    // The per-shard wired downlink hop (nullptr when wired_bps == 0).
    const topo::wired_link* wired_dl_link(int c) const;
    // Shard 0's view of the cell-down flag — exact in serial runs and
    // between runs; other shards flip their copies at the same tick.
    bool cell_is_down(int cell) const;

    // --- observability ---
    // The hub (nullptr unless spec.cell.obs.enabled): one tracer + registry
    // shard per cell, so per-shard buffers are single-writer and the merged
    // views are byte-identical for any `jobs`. run() takes the final
    // snapshots and writes the JSONL artifacts when obs.out_prefix is set.
    obs::hub* obs_hub() { return hub_.get(); }

private:
    struct ue_entry {
        int home = 0;     // immutable; also the home shard index
        int serving = 0;  // mutated only from the home shard
        ran::rnti_t rnti = 0;
        bool attached = true;  // false while a handover is in flight
        std::vector<net::packet> held_dl;  // UPF hold during handover
        std::vector<net::packet> held_ul;  // UE-stack hold during handover
        // --- fault state (home-shard owned) ---
        bool sabotage_next_ho = false;  // consumed by begin_handover
        topo::ho_failure_mode sabotage_mode = topo::ho_failure_mode::rollback;
        sim::tick outage_until = -1;    // injected radio-outage end
        sim::tick blackout_start = -1;  // service lost; cleared at recovery
        int evac_return = -1;           // cell to return to after an outage
        std::vector<double> recovery_samples;  // ms, blackout -> recovery
    };
    struct flow_rt {
        flow_spec spec;
        int home = 0;  // cached ues_[spec.ue].home
        ran::qfi_t qfi = 0;
        sim::tick wired_owd = 0;
        flow_endpoints ep;
    };

    // All of these run on the UE's home shard. route_downlink pushes the
    // packet through the home shard's impairment stage (when mounted)
    // before forward_downlink applies the UPF hold/routing; uplink_arrival
    // is the server-side return hop, after the uplink impairment stage.
    void route_downlink(std::size_t flow, net::packet pkt);
    void forward_downlink(net::packet pkt);
    void route_uplink(std::size_t flow, net::packet pkt);
    void uplink_arrival(net::packet pkt);
    void begin_handover(int ue, int target);
    // How a path switch came about — a completed handover, an RLF
    // re-establishment, or a failed handover rolled back to its source.
    enum class switch_kind : std::uint8_t { handover, reestablish, rollback };
    void finish_path_switch(int ue, int target, ran::rnti_t new_rnti,
                            switch_kind kind);

    // --- fault actions (each runs on the shard that owns its state) ---
    void inject_rlf(int ue, sim::tick duration);         // home shard
    void inject_ho_failure(int ue, topo::ho_failure_mode mode);  // home shard
    void on_rlf(int cell, ran::rnti_t rnti);             // serving shard
    // Home shard: backoff, then the attach attempt at a healthy cell.
    void schedule_reestablish(int ue, ran::ue_handover_context ctx,
                              int preferred);
    void do_reestablish(int ue, ran::ue_handover_context ctx, int preferred);
    // `cell`'s shard: re-admit the UE there and path-switch at home.
    void readmit(int ue, int cell, ran::ue_handover_context ctx,
                 switch_kind kind);
    void evacuate_cell(int shard, int cell);    // shard acting as home
    void repatriate_cell(int shard, int cell);  // shard acting as home
    // Lowest-indexed cell != avoid that `shard` believes is up (falls back
    // to `avoid` when everything is down).
    int pick_neighbor(int avoid, std::size_t shard) const;

    flow_rt& flow_at(int flow) const;
    const ue_entry& ue_at(int ue) const;
    // Shard `s`'s tracer, or nullptr with observability off — the one
    // branch every topology-level trace site pays.
    obs::tracer* shard_tr(std::size_t s)
    {
        return hub_ ? &hub_->shard_tracer(s) : nullptr;
    }

    topology_spec spec_;
    std::unique_ptr<obs::hub> hub_;
    std::unique_ptr<sim::shard_group> shards_;
    std::vector<std::unique_ptr<scenario::cell>> cells_;
    // One stage pair per home shard (empty vectors when the spec mounts
    // none); each stage lives entirely on its shard's loop.
    std::vector<std::unique_ptr<topo::path_impairment>> impair_dl_;
    std::vector<std::unique_ptr<topo::path_impairment>> impair_ul_;
    // Per-shard wired downlink hop (empty when wired_bps == 0); each link
    // lives entirely on its shard's loop, like the impairment stages.
    std::vector<std::unique_ptr<topo::wired_link>> wired_dl_;
    std::vector<std::unique_ptr<ue_entry>> ues_;
    std::vector<std::unique_ptr<flow_rt>> flows_;
    // cell_down_[shard][cell]: every shard's private copy of the cell-down
    // flags, flipped by pre-armed events at the same tick on every shard —
    // no cross-shard reads, so sharded runs stay byte-identical.
    std::vector<std::vector<std::uint8_t>> cell_down_;
    // rnti -> global UE index per cell, touched only on the owning shard
    // (the RLF handler gets an RNTI and needs the UE it belongs to).
    std::vector<std::unordered_map<ran::rnti_t, int>> cell_rnti_ue_;
    std::unique_ptr<sim::fault_injector> injector_;
    sim::tick duration_ = 0;
    bool ran_ = false;
    bool faults_applied_ = false;
    std::atomic<std::uint64_t> ho_started_{0};
    std::atomic<std::uint64_t> ho_completed_{0};
    std::atomic<std::uint64_t> rlf_detected_{0};
    std::atomic<std::uint64_t> reestablished_{0};
    std::atomic<std::uint64_t> ho_failures_{0};
    std::atomic<std::uint64_t> ho_rollbacks_{0};
};

}  // namespace l4span::scenario
