// Multi-cell experiment harness: N scenario::cells, one per shard of a
// sim::shard_group, joined by a shared core/UPF routing stage, with X2/Xn
// handovers driven by a topo::mobility_model plan (or scheduled directly).
//
// Placement model
// ---------------
// Every UE has an immutable *home shard* — the shard of its initial cell —
// where its whole endpoint chain lives for the run: server-side sender,
// wired path, and UE receiver, plus the UPF routing entry. The *serving
// cell* (gNB actually carrying the bearers) starts out as the home cell and
// changes at handover. All routing decisions for a UE execute on its home
// shard, so no per-UE state is ever touched from two shards.
//
// Cross-shard hops and their latencies (each must be >= the sync quantum,
// which the constructor derives as the largest slot-aligned value not
// exceeding any of them):
//   downlink  sender --wired_owd--> UPF --core_hop--> serving gNB
//   delivery  serving gNB RLC --ue_stack--> receiver (modem -> app hop)
//   uplink    receiver --ue_stack--> serving gNB --wired_owd--> sender
//   handover  home --x2--> source (detach) --x2--> target (attach)
//                  --x2--> home (path switch)
// During the handover (3 x2 legs of interruption), downlink and uplink
// packets are held at the UPF / UE stack and flushed in order on path
// switch; in-flight RLC SDUs ride the forwarded handover context, so
// nothing the source cell admitted is dropped in RLC AM.
//
// Results are byte-identical for any `jobs` value (see sim::shard_group).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "scenario/cell.h"
#include "sim/shard_group.h"
#include "topo/mobility_model.h"

namespace l4span::scenario {

struct topology_spec {
    int num_cells = 2;
    int ues_per_cell = 1;
    // Per-cell template. num_ues is ignored (ues_per_cell governs) and the
    // seed is offset per cell so every cell draws independent randomness.
    cell_spec cell;
    // Worker threads for the shard group (1 = serial; results identical).
    int jobs = 1;
    sim::tick core_hop_latency = sim::from_ms(1);    // UPF -> gNB
    sim::tick ue_stack_latency = sim::from_us(500);  // modem <-> app
    sim::tick x2_latency = sim::from_ms(2);          // per X2/Xn leg
};

class topology {
public:
    explicit topology(topology_spec spec);
    ~topology();

    int num_cells() const { return static_cast<int>(cells_.size()); }
    int num_ues() const { return static_cast<int>(ues_.size()); }
    scenario::cell& cell_at(int c) { return *cells_.at(static_cast<std::size_t>(c)); }
    sim::shard_group& shards() { return *shards_; }
    sim::tick quantum() const { return shards_->quantum(); }

    // `spec.ue` is a global UE index in [0, num_ues). Call before run().
    int add_flow(flow_spec spec);

    // Schedules one X2/Xn handover (skipped if the UE is mid-handover or
    // already served by `target_cell` when it fires). Call before run().
    void schedule_handover(sim::tick when, int ue, int target_cell);
    void apply(const std::vector<topo::handover_event>& plan);

    void run(sim::tick duration);

    // --- per-flow results (bounds-checked) ---
    const stats::sample_set& owd_ms(int flow) const;
    const stats::sample_set& rtt_ms(int flow) const;
    const stats::rate_series& goodput_series(int flow) const;
    double goodput_mbps(int flow) const;
    std::uint64_t delivered_bytes(int flow) const;
    std::uint64_t flow_retransmits(int flow) const;  // TCP/QUIC data re-sends
    // Interactive frame stats (nullptr unless the flow has fps > 0).
    const media::frame_source* frame_stats(int flow) const;
    // The QUIC engine behind a quic-* flow (nullptr otherwise).
    const transport::quic_sender* quic_flow(int flow) const;

    // --- topology-level introspection ---
    int home_cell(int ue) const;
    int serving_cell(int ue) const;
    ran::rnti_t ue_rnti(int ue) const;
    std::uint64_t handovers_started() const { return ho_started_.load(); }
    std::uint64_t handovers_completed() const { return ho_completed_.load(); }
    std::uint64_t processed_events() const { return shards_->processed(); }
    // Wired-path impairment stage of shard `c` (one pair per home shard, so
    // sharded runs stay race-free and byte-identical); nullptr when the
    // spec's knobs are all off. Read only after run().
    const topo::path_impairment* impair_dl_stage(int c) const;
    const topo::path_impairment* impair_ul_stage(int c) const;

private:
    struct ue_entry {
        int home = 0;     // immutable; also the home shard index
        int serving = 0;  // mutated only from the home shard
        ran::rnti_t rnti = 0;
        bool attached = true;  // false while a handover is in flight
        std::vector<net::packet> held_dl;  // UPF hold during handover
        std::vector<net::packet> held_ul;  // UE-stack hold during handover
    };
    struct flow_rt {
        flow_spec spec;
        int home = 0;  // cached ues_[spec.ue].home
        ran::qfi_t qfi = 0;
        sim::tick wired_owd = 0;
        flow_endpoints ep;
    };

    // All of these run on the UE's home shard. route_downlink pushes the
    // packet through the home shard's impairment stage (when mounted)
    // before forward_downlink applies the UPF hold/routing; uplink_arrival
    // is the server-side return hop, after the uplink impairment stage.
    void route_downlink(std::size_t flow, net::packet pkt);
    void forward_downlink(net::packet pkt);
    void route_uplink(std::size_t flow, net::packet pkt);
    void uplink_arrival(net::packet pkt);
    void begin_handover(int ue, int target);
    void finish_handover(int ue, int target, ran::rnti_t new_rnti);

    flow_rt& flow_at(int flow) const;
    const ue_entry& ue_at(int ue) const;

    topology_spec spec_;
    std::unique_ptr<sim::shard_group> shards_;
    std::vector<std::unique_ptr<scenario::cell>> cells_;
    // One stage pair per home shard (empty vectors when the spec mounts
    // none); each stage lives entirely on its shard's loop.
    std::vector<std::unique_ptr<topo::path_impairment>> impair_dl_;
    std::vector<std::unique_ptr<topo::path_impairment>> impair_ul_;
    std::vector<std::unique_ptr<ue_entry>> ues_;
    std::vector<std::unique_ptr<flow_rt>> flows_;
    sim::tick duration_ = 0;
    bool ran_ = false;
    std::atomic<std::uint64_t> ho_started_{0};
    std::atomic<std::uint64_t> ho_completed_{0};
};

}  // namespace l4span::scenario
