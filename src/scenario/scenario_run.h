// Executes a scenario_spec: one family runner per experiment family, each
// printing the exact banner/table/stderr output of the bench binary the
// family grew out of and emitting the same stats::json summary. The four
// representative benches (fig09, fig16, ecn_impairment, fault_chaos) are
// thin wrappers over builtin_scenario() + run_scenario(), so a bench, the
// same scenario exported to JSON and re-run through `l4span_run`, and the
// conformance tests all print through ONE code path — byte-identity for
// any --jobs value holds by construction and is pinned in
// tests/test_scenario_spec.cpp.
#pragma once

#include <string>

#include "scenario/grid_runner.h"
#include "scenario/scenario_spec.h"
#include "stats/json.h"

namespace l4span::scenario {

// The compiled-in scenario of a representative bench: "fig09" (tcp_grid),
// "fig16" (shared_drb), "ecn_impairment", "fault_chaos". `quick` bakes the
// bench's --quick slice into the returned document (grid axes and
// duration), exactly as the bench would run it. Throws scenario_error on
// an unknown name.
scenario_spec builtin_scenario(const std::string& name, bool quick);

// Runs the scenario: banner, grid fan-out (grid_runner with args.jobs),
// fixed-order tables on stdout, JSON summary behind args.json_path.
// args.quick is ignored — quickness is part of the document. When
// `summary_out` is non-null it receives the summary (tests capture it
// without temp files). Returns the process exit status (0, or 1 when
// --json was requested but could not be written).
int run_scenario(const scenario_spec& spec, const bench_args& args,
                 stats::json* summary_out = nullptr);

}  // namespace l4span::scenario
