// QUIC ACK-frame wire format (RFC 9000 §19.3) with variable-length integer
// encoding (§16).
//
// The structural simulation keeps QUIC frames as C++ structs riding in
// net::packet::app_data, but the ACK frames a QUIC receiver emits are also
// serialized through this codec so (a) ACK packets are charged their true
// wire size — range count and ECN counters change the bytes on the air the
// RAN schedules — and (b) the encoding L4Span would have to parse (and
// cannot, which is why QUIC flows use the downlink-marking fallback) is
// tested against genuine varint layouts.
#pragma once

#include <cstdint>
#include <vector>

namespace l4span::net::quic {

// --- variable-length integers (RFC 9000 §16) --------------------------------

// Largest value a QUIC varint can carry (2^62 - 1).
inline constexpr std::uint64_t k_varint_max = (1ull << 62) - 1;

// Encoded size in bytes (1, 2, 4 or 8) for `v`; v must be <= k_varint_max.
std::size_t varint_size(std::uint64_t v);

// Appends the varint encoding of `v` to `out`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

// Reads one varint at `p` (advancing it), bounded by `end`. Returns false
// on truncation.
bool get_varint(const std::uint8_t*& p, const std::uint8_t* end, std::uint64_t& v);

// --- ACK frame ---------------------------------------------------------------

// One contiguous run of acknowledged packet numbers, inclusive.
struct ack_range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;

    bool operator==(const ack_range&) const = default;
};

// Cumulative ECN counts (packets) echoed in ACK frames when the connection
// validates ECN — the AccECN analogue Prague-over-QUIC consumes.
struct ecn_counts {
    std::uint64_t ect0 = 0;
    std::uint64_t ect1 = 0;
    std::uint64_t ce = 0;

    bool operator==(const ecn_counts&) const = default;
};

// Structural ACK frame: descending, non-overlapping ranges with the newest
// (containing largest_acked) first. ack_delay is in microseconds on the wire
// (exponent 0 for simplicity; the engine feeds it ticks and converts).
struct ack_frame {
    std::uint64_t largest = 0;       // == ranges.front().last when non-empty
    std::uint64_t ack_delay_us = 0;
    std::vector<ack_range> ranges;   // descending by packet number
    bool ecn_present = false;        // type 0x03 (ACK_ECN) vs 0x02
    ecn_counts ecn;

    bool operator==(const ack_frame&) const = default;
};

// Encoded size of the frame in bytes without materializing it — what the
// per-packet hot path charges ACK packets (encode_ack is for the wire
// tests and any consumer that needs the actual bytes).
std::size_t encoded_ack_size(const ack_frame& f);

// Serializes the frame (type byte + varint fields, RFC 9000 §19.3 layout:
// largest, delay, range count, first range, then gap/length pairs, then the
// three ECN counts for type 0x03). `f.ranges` must be well-formed:
// non-empty, descending, non-adjacent (a gap of at least one packet number
// between consecutive ranges), with f.largest == f.ranges.front().last.
std::vector<std::uint8_t> encode_ack(const ack_frame& f);

// Parses bytes produced by encode_ack (or any spec-conformant ACK frame).
// Returns false on truncation, a non-ACK type byte, or malformed ranges
// (a range or gap underflowing below packet number 0).
bool decode_ack(const std::uint8_t* data, std::size_t len, ack_frame& out);

}  // namespace l4span::net::quic
