#include "net/quic_wire.h"

namespace l4span::net::quic {

std::size_t varint_size(std::uint64_t v)
{
    if (v < (1ull << 6)) return 1;
    if (v < (1ull << 14)) return 2;
    if (v < (1ull << 30)) return 4;
    return 8;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    const std::size_t n = varint_size(v);
    // 2-bit length prefix in the two most significant bits of the first byte.
    static constexpr std::uint8_t prefix[9] = {0, 0x00, 0x40, 0, 0x80, 0, 0, 0, 0xc0};
    for (std::size_t i = 0; i < n; ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(v >> (8 * (n - 1 - i)));
        if (i == 0) b = static_cast<std::uint8_t>((b & 0x3f) | prefix[n]);
        out.push_back(b);
    }
}

bool get_varint(const std::uint8_t*& p, const std::uint8_t* end, std::uint64_t& v)
{
    if (p >= end) return false;
    const std::size_t n = std::size_t{1} << (*p >> 6);
    if (static_cast<std::size_t>(end - p) < n) return false;
    v = *p++ & 0x3f;
    for (std::size_t i = 1; i < n; ++i) v = (v << 8) | *p++;
    return true;
}

std::size_t encoded_ack_size(const ack_frame& f)
{
    std::size_t n = varint_size(f.ecn_present ? 0x03 : 0x02) +
                    varint_size(f.largest) + varint_size(f.ack_delay_us);
    n += varint_size(f.ranges.empty() ? 0 : f.ranges.size() - 1);
    n += varint_size(f.ranges.empty() ? 0 : f.largest - f.ranges.front().first);
    for (std::size_t i = 1; i < f.ranges.size(); ++i) {
        n += varint_size(f.ranges[i - 1].first - f.ranges[i].last - 2);
        n += varint_size(f.ranges[i].last - f.ranges[i].first);
    }
    if (f.ecn_present)
        n += varint_size(f.ecn.ect0) + varint_size(f.ecn.ect1) + varint_size(f.ecn.ce);
    return n;
}

std::vector<std::uint8_t> encode_ack(const ack_frame& f)
{
    std::vector<std::uint8_t> out;
    put_varint(out, f.ecn_present ? 0x03 : 0x02);
    put_varint(out, f.largest);
    put_varint(out, f.ack_delay_us);
    const std::size_t extra = f.ranges.empty() ? 0 : f.ranges.size() - 1;
    put_varint(out, extra);
    // First ACK Range: how far below `largest` the newest run extends.
    put_varint(out, f.ranges.empty() ? 0 : f.largest - f.ranges.front().first);
    for (std::size_t i = 1; i < f.ranges.size(); ++i) {
        // Gap: unacked packet numbers between this range and the previous
        // one, minus 1 (ranges are non-adjacent, so this never underflows).
        put_varint(out, f.ranges[i - 1].first - f.ranges[i].last - 2);
        put_varint(out, f.ranges[i].last - f.ranges[i].first);
    }
    if (f.ecn_present) {
        put_varint(out, f.ecn.ect0);
        put_varint(out, f.ecn.ect1);
        put_varint(out, f.ecn.ce);
    }
    return out;
}

bool decode_ack(const std::uint8_t* data, std::size_t len, ack_frame& out)
{
    const std::uint8_t* p = data;
    const std::uint8_t* end = data + len;
    std::uint64_t type = 0;
    if (!get_varint(p, end, type)) return false;
    if (type != 0x02 && type != 0x03) return false;
    out = ack_frame{};
    out.ecn_present = type == 0x03;

    std::uint64_t range_count = 0, first_range = 0;
    if (!get_varint(p, end, out.largest)) return false;
    if (!get_varint(p, end, out.ack_delay_us)) return false;
    if (!get_varint(p, end, range_count)) return false;
    if (!get_varint(p, end, first_range)) return false;
    if (first_range > out.largest) return false;

    out.ranges.push_back({out.largest - first_range, out.largest});
    std::uint64_t smallest = out.ranges.front().first;
    for (std::uint64_t i = 0; i < range_count; ++i) {
        std::uint64_t gap = 0, length = 0;
        if (!get_varint(p, end, gap)) return false;
        if (!get_varint(p, end, length)) return false;
        if (smallest < gap + 2) return false;
        const std::uint64_t largest_i = smallest - gap - 2;
        if (length > largest_i) return false;
        out.ranges.push_back({largest_i - length, largest_i});
        smallest = largest_i - length;
    }
    if (out.ecn_present) {
        if (!get_varint(p, end, out.ecn.ect0)) return false;
        if (!get_varint(p, end, out.ecn.ect1)) return false;
        if (!get_varint(p, end, out.ecn.ce)) return false;
    }
    return p == end;
}

}  // namespace l4span::net::quic
