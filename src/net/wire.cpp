#include "net/wire.h"

#include <cstring>

namespace l4span::net::wire {

namespace {

void put16(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v)
{
    b[off] = static_cast<std::uint8_t>(v >> 8);
    b[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void put32(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v)
{
    b[off] = static_cast<std::uint8_t>(v >> 24);
    b[off + 1] = static_cast<std::uint8_t>(v >> 16);
    b[off + 2] = static_cast<std::uint8_t>(v >> 8);
    b[off + 3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t get16(const std::uint8_t* b) { return static_cast<std::uint16_t>(b[0] << 8 | b[1]); }
std::uint32_t get32(const std::uint8_t* b)
{
    return static_cast<std::uint32_t>(b[0]) << 24 | static_cast<std::uint32_t>(b[1]) << 16 |
           static_cast<std::uint32_t>(b[2]) << 8 | b[3];
}

// Pseudo-header sum for TCP/UDP checksums.
std::uint32_t pseudo_header_sum(const std::uint8_t* ip_hdr, std::uint16_t transport_len)
{
    std::uint32_t sum = 0;
    sum += get16(ip_hdr + 12);  // src ip hi
    sum += get16(ip_hdr + 14);  // src ip lo
    sum += get16(ip_hdr + 16);  // dst ip hi
    sum += get16(ip_hdr + 18);  // dst ip lo
    sum += ip_hdr[9];           // protocol
    sum += transport_len;
    return sum;
}

constexpr std::uint8_t k_accecn_option_kind = 0xAC;  // experimental AccECN option id

void finish_transport_checksum(std::vector<std::uint8_t>& b, std::size_t ip_off,
                               std::size_t transport_off, std::size_t checksum_off)
{
    const std::uint16_t transport_len =
        static_cast<std::uint16_t>(b.size() - transport_off);
    put16(b, checksum_off, 0);
    const std::uint32_t ph = pseudo_header_sum(b.data() + ip_off, transport_len);
    const std::uint16_t csum = internet_checksum(b.data() + transport_off, transport_len, ph);
    put16(b, checksum_off, csum);
}

}  // namespace

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len, std::uint32_t initial)
{
    std::uint32_t sum = initial;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2) sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
    if (i < len) sum += static_cast<std::uint32_t>(data[i] << 8);
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> serialize(const packet& p)
{
    const std::uint32_t transport_hdr =
        p.is_tcp() ? p.tcp->header_bytes() : (p.is_udp() ? k_udp_header_bytes : 0);
    const std::size_t total = k_ipv4_header_bytes + transport_hdr + p.payload_bytes;
    std::vector<std::uint8_t> b(total, 0);

    // --- IPv4 header ---
    b[0] = 0x45;  // version 4, IHL 5
    b[1] = static_cast<std::uint8_t>((p.dscp << 2) | static_cast<std::uint8_t>(p.ecn_field));
    put16(b, 2, static_cast<std::uint16_t>(total));
    b[8] = 64;  // TTL
    b[9] = static_cast<std::uint8_t>(p.ft.proto);
    put32(b, 12, p.ft.src_ip);
    put32(b, 16, p.ft.dst_ip);
    put16(b, 10, 0);
    put16(b, 10, internet_checksum(b.data(), k_ipv4_header_bytes));

    const std::size_t t = k_ipv4_header_bytes;
    if (p.is_tcp()) {
        const auto& h = *p.tcp;
        put16(b, t + 0, p.ft.src_port);
        put16(b, t + 2, p.ft.dst_port);
        put32(b, t + 4, h.seq);
        put32(b, t + 8, h.ack_seq);
        const std::uint8_t data_offset_words =
            static_cast<std::uint8_t>(h.header_bytes() / 4);
        b[t + 12] = static_cast<std::uint8_t>(data_offset_words << 4);
        std::uint8_t flags = 0;
        if (h.flags.fin) flags |= 0x01;
        if (h.flags.syn) flags |= 0x02;
        if (h.flags.ack) flags |= 0x10;
        if (h.flags.ece) flags |= 0x40;
        if (h.flags.cwr) flags |= 0x80;
        if (h.flags.ae) b[t + 12] |= 0x01;  // AE lives in the old NS bit position
        b[t + 13] = flags;
        put16(b, t + 14, h.window);
        if (h.accecn.present) {
            const std::size_t o = t + k_tcp_header_bytes;
            b[o] = k_accecn_option_kind;
            b[o + 1] = 11;  // kind + len + 3 x 24-bit counters; padded to 12 with a NOP
            b[o + 2] = static_cast<std::uint8_t>(h.accecn.ee0b >> 16);
            b[o + 3] = static_cast<std::uint8_t>(h.accecn.ee0b >> 8);
            b[o + 4] = static_cast<std::uint8_t>(h.accecn.ee0b);
            b[o + 5] = static_cast<std::uint8_t>(h.accecn.eceb >> 16);
            b[o + 6] = static_cast<std::uint8_t>(h.accecn.eceb >> 8);
            b[o + 7] = static_cast<std::uint8_t>(h.accecn.eceb);
            b[o + 8] = static_cast<std::uint8_t>(h.accecn.ee1b >> 16);
            b[o + 9] = static_cast<std::uint8_t>(h.accecn.ee1b >> 8);
            b[o + 10] = static_cast<std::uint8_t>(h.accecn.ee1b);
            b[o + 11] = 0x01;  // NOP pad
        }
        finish_transport_checksum(b, 0, t, t + 16);
    } else if (p.is_udp()) {
        put16(b, t + 0, p.ft.src_port);
        put16(b, t + 2, p.ft.dst_port);
        put16(b, t + 4, static_cast<std::uint16_t>(k_udp_header_bytes + p.payload_bytes));
        finish_transport_checksum(b, 0, t, t + 6);
    }
    return b;
}

bool parse(const std::uint8_t* data, std::size_t len, packet& out)
{
    if (len < k_ipv4_header_bytes) return false;
    if ((data[0] >> 4) != 4) return false;
    const std::size_t ihl = static_cast<std::size_t>(data[0] & 0x0f) * 4;
    if (ihl < k_ipv4_header_bytes || len < ihl) return false;
    const std::size_t total = get16(data + 2);
    if (total > len) return false;

    out = packet{};
    out.dscp = data[1] >> 2;
    out.ecn_field = static_cast<ecn>(data[1] & 0x03);
    out.ft.proto = static_cast<ip_proto>(data[9]);
    out.ft.src_ip = get32(data + 12);
    out.ft.dst_ip = get32(data + 16);

    const std::uint8_t* t = data + ihl;
    const std::size_t tlen = total - ihl;
    if (out.ft.proto == ip_proto::tcp) {
        if (tlen < k_tcp_header_bytes) return false;
        tcp_header h;
        out.ft.src_port = get16(t + 0);
        out.ft.dst_port = get16(t + 2);
        h.seq = get32(t + 4);
        h.ack_seq = get32(t + 8);
        const std::size_t doff = static_cast<std::size_t>(t[12] >> 4) * 4;
        if (doff < k_tcp_header_bytes || tlen < doff) return false;
        h.flags.ae = (t[12] & 0x01) != 0;
        h.flags.fin = (t[13] & 0x01) != 0;
        h.flags.syn = (t[13] & 0x02) != 0;
        h.flags.ack = (t[13] & 0x10) != 0;
        h.flags.ece = (t[13] & 0x40) != 0;
        h.flags.cwr = (t[13] & 0x80) != 0;
        h.window = get16(t + 14);
        // Scan options for AccECN.
        std::size_t o = k_tcp_header_bytes;
        while (o < doff) {
            const std::uint8_t kind = t[o];
            if (kind == 0) break;
            if (kind == 1) {
                ++o;
                continue;
            }
            if (o + 1 >= doff) break;
            const std::uint8_t olen = t[o + 1];
            if (olen < 2 || o + olen > doff) break;
            if (kind == k_accecn_option_kind && olen >= 11) {
                h.accecn.present = true;
                h.accecn.ee0b = static_cast<std::uint32_t>(t[o + 2]) << 16 |
                                static_cast<std::uint32_t>(t[o + 3]) << 8 | t[o + 4];
                h.accecn.eceb = static_cast<std::uint32_t>(t[o + 5]) << 16 |
                                static_cast<std::uint32_t>(t[o + 6]) << 8 | t[o + 7];
                h.accecn.ee1b = static_cast<std::uint32_t>(t[o + 8]) << 16 |
                                static_cast<std::uint32_t>(t[o + 9]) << 8 | t[o + 10];
            }
            o += olen;
        }
        out.tcp = h;
        out.payload_bytes = static_cast<std::uint32_t>(tlen - doff);
    } else if (out.ft.proto == ip_proto::udp) {
        if (tlen < k_udp_header_bytes) return false;
        out.ft.src_port = get16(t + 0);
        out.ft.dst_port = get16(t + 2);
        out.payload_bytes = static_cast<std::uint32_t>(get16(t + 4) - k_udp_header_bytes);
    } else {
        out.payload_bytes = static_cast<std::uint32_t>(tlen);
    }
    return true;
}

bool verify_checksums(const std::uint8_t* data, std::size_t len)
{
    if (len < k_ipv4_header_bytes) return false;
    const std::size_t ihl = static_cast<std::size_t>(data[0] & 0x0f) * 4;
    if (len < ihl) return false;
    if (internet_checksum(data, ihl) != 0) return false;

    const std::size_t total = get16(data + 2);
    if (total > len || total < ihl) return false;
    const std::uint8_t proto = data[9];
    if (proto != static_cast<std::uint8_t>(ip_proto::tcp) &&
        proto != static_cast<std::uint8_t>(ip_proto::udp))
        return true;
    const std::uint16_t tlen = static_cast<std::uint16_t>(total - ihl);
    const std::uint32_t ph = pseudo_header_sum(data, tlen);
    return internet_checksum(data + ihl, tlen, ph) == 0;
}

void remark_ecn(std::vector<std::uint8_t>& bytes, ecn new_ecn)
{
    if (bytes.size() < k_ipv4_header_bytes) return;
    bytes[1] = static_cast<std::uint8_t>((bytes[1] & 0xfc) | static_cast<std::uint8_t>(new_ecn));
    const std::size_t ihl = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
    put16(bytes, 10, 0);
    put16(bytes, 10, internet_checksum(bytes.data(), ihl));
}

void rewrite_tcp_ecn_feedback(std::vector<std::uint8_t>& bytes, std::uint8_t ace,
                              const accecn_option& opt)
{
    if (bytes.size() < k_ipv4_header_bytes + k_tcp_header_bytes) return;
    const std::size_t ihl = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
    const std::size_t t = ihl;
    // ACE bits: AE (NS position), CWR, ECE.
    bytes[t + 12] = static_cast<std::uint8_t>((bytes[t + 12] & 0xfe) | ((ace >> 2) & 1));
    bytes[t + 13] = static_cast<std::uint8_t>((bytes[t + 13] & 0x3f) | ((ace & 0b010) ? 0x80 : 0) |
                                              ((ace & 0b001) ? 0x40 : 0));
    if (opt.present) {
        const std::size_t doff = static_cast<std::size_t>(bytes[t + 12] >> 4) * 4;
        std::size_t o = t + k_tcp_header_bytes;
        const std::size_t end = t + doff;
        while (o < end && o + 1 < bytes.size()) {
            const std::uint8_t kind = bytes[o];
            if (kind == 0) break;
            if (kind == 1) {
                ++o;
                continue;
            }
            const std::uint8_t olen = bytes[o + 1];
            if (olen < 2) break;
            if (kind == k_accecn_option_kind && olen >= 11) {
                bytes[o + 2] = static_cast<std::uint8_t>(opt.ee0b >> 16);
                bytes[o + 3] = static_cast<std::uint8_t>(opt.ee0b >> 8);
                bytes[o + 4] = static_cast<std::uint8_t>(opt.ee0b);
                bytes[o + 5] = static_cast<std::uint8_t>(opt.eceb >> 16);
                bytes[o + 6] = static_cast<std::uint8_t>(opt.eceb >> 8);
                bytes[o + 7] = static_cast<std::uint8_t>(opt.eceb);
                bytes[o + 8] = static_cast<std::uint8_t>(opt.ee1b >> 16);
                bytes[o + 9] = static_cast<std::uint8_t>(opt.ee1b >> 8);
                bytes[o + 10] = static_cast<std::uint8_t>(opt.ee1b);
                break;
            }
            o += olen;
        }
    }
    // Recompute the TCP checksum over the whole segment.
    const std::size_t total = get16(bytes.data() + 2);
    const std::uint16_t tlen = static_cast<std::uint16_t>(total - ihl);
    put16(bytes, t + 16, 0);
    const std::uint32_t ph = pseudo_header_sum(bytes.data(), tlen);
    put16(bytes, t + 16, internet_checksum(bytes.data() + t, tlen, ph));
}

}  // namespace l4span::net::wire
