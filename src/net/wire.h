// Real-bytes serialization of the structural packet model.
//
// L4Span's deployment claim depends on rewriting live headers: ECN bits in
// the IP header (with IP checksum update) and ECE/CWR/ACE plus the AccECN
// option in TCP ACKs (with TCP checksum update). This module implements and
// tests those rewrites against genuine RFC 791/793/1071 encodings.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace l4span::net::wire {

// Internet checksum (RFC 1071) over `data`; returns the 16-bit one's
// complement sum ready to store in a header checksum field.
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len,
                                std::uint32_t initial = 0);

// Serializes IP + transport headers + zeroed payload into real bytes with
// valid checksums.
std::vector<std::uint8_t> serialize(const packet& p);

// Parses bytes produced by serialize() back into a structural packet
// (payload content ignored; length preserved). Returns false on malformed input.
bool parse(const std::uint8_t* data, std::size_t len, packet& out);

// Verifies the IPv4 header checksum and, for TCP/UDP, the transport checksum.
bool verify_checksums(const std::uint8_t* data, std::size_t len);

// In-place ECN remark on a serialized packet: rewrites the IP TOS ECN bits
// and incrementally updates the IPv4 header checksum (RFC 1624).
void remark_ecn(std::vector<std::uint8_t>& bytes, ecn new_ecn);

// In-place rewrite of TCP ECE/CWR/ACE bits and the AccECN option counters on
// a serialized ACK, recomputing the TCP checksum. Option layout must already
// be present when `opt.present`.
void rewrite_tcp_ecn_feedback(std::vector<std::uint8_t>& bytes, std::uint8_t ace,
                              const accecn_option& opt);

}  // namespace l4span::net::wire
