// Structural packet model used throughout the simulation.
//
// Payload bytes are not materialized (only their count); header fields are
// kept structurally so AQMs, the RAN and L4Span can read/rewrite them in O(1).
// `net/wire.h` can serialize any packet to real IPv4/TCP/UDP bytes with valid
// checksums — the serialization path is what L4Span's header-rewriting code
// is tested against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/ecn.h"
#include "net/five_tuple.h"
#include "sim/time.h"

namespace l4span::net {

inline constexpr std::uint32_t k_ipv4_header_bytes = 20;
inline constexpr std::uint32_t k_tcp_header_bytes = 20;
inline constexpr std::uint32_t k_udp_header_bytes = 8;
inline constexpr std::uint32_t k_accecn_option_bytes = 12;  // kind+len+3x24-bit counters

struct tcp_flags {
    bool syn = false;
    bool ack = false;
    bool fin = false;
    bool ece = false;  // ECN-Echo (RFC 3168)
    bool cwr = false;  // Congestion Window Reduced
    bool ae = false;   // Accurate-ECN bit (with CWR+ECE forms the 3-bit ACE field)
};

// AccECN option (draft-ietf-tcpm-accurate-ecn): cumulative byte counters the
// receiver echoes; L4Span rewrites these during feedback short-circuiting.
struct accecn_option {
    bool present = false;
    std::uint32_t ee0b = 0;  // bytes received with ECT(0)
    std::uint32_t eceb = 0;  // bytes received with CE
    std::uint32_t ee1b = 0;  // bytes received with ECT(1)
};

struct tcp_header {
    std::uint32_t seq = 0;
    std::uint32_t ack_seq = 0;
    tcp_flags flags;
    std::uint16_t window = 65535;
    accecn_option accecn;

    // 3-bit ACE counter (AE,CWR,ECE interpreted as a counter of CE packets
    // modulo 8) when the connection negotiated AccECN.
    std::uint8_t ace() const
    {
        return static_cast<std::uint8_t>((flags.ae << 2) | (flags.cwr << 1) |
                                         (flags.ece ? 1 : 0));
    }
    void set_ace(std::uint8_t v)
    {
        flags.ae = (v & 0b100) != 0;
        flags.cwr = (v & 0b010) != 0;
        flags.ece = (v & 0b001) != 0;
    }

    std::uint32_t header_bytes() const
    {
        return k_tcp_header_bytes + (accecn.present ? k_accecn_option_bytes : 0);
    }
};

struct packet {
    five_tuple ft;
    ecn ecn_field = ecn::not_ect;
    std::uint8_t dscp = 0;
    std::optional<tcp_header> tcp;
    std::uint32_t payload_bytes = 0;

    // --- simulation metadata (not on the wire) ---
    std::uint64_t flow_id = 0;   // scenario-level flow identity
    std::uint64_t pkt_id = 0;    // per-flow monotone id
    sim::tick sent_time = -1;    // stamped by the original sender (for OWD)
    sim::tick ran_ingress = -1;  // stamped when entering the CU (delay breakdown)
    // Opaque application payload (e.g., RTP feedback reports). Models bytes
    // inside the UDP payload, which middleboxes like L4Span cannot parse.
    std::shared_ptr<const void> app_data;

    bool is_tcp() const { return ft.proto == ip_proto::tcp && tcp.has_value(); }
    bool is_udp() const { return ft.proto == ip_proto::udp; }
    bool is_tcp_ack() const { return is_tcp() && tcp->flags.ack; }

    // Total wire size: IP header + transport header + payload.
    std::uint32_t size_bytes() const
    {
        std::uint32_t transport =
            is_tcp() ? tcp->header_bytes() : (is_udp() ? k_udp_header_bytes : 0);
        return k_ipv4_header_bytes + transport + payload_bytes;
    }
};

}  // namespace l4span::net
