// ECN codepoints (RFC 3168 / RFC 9331) and L4S-vs-classic identification.
#pragma once

#include <cstdint>
#include <string>

namespace l4span::net {

enum class ecn : std::uint8_t {
    not_ect = 0b00,  // not ECN-capable
    ect1 = 0b01,     // ECT(1): L4S identifier (RFC 9331)
    ect0 = 0b10,     // ECT(0): classic ECN
    ce = 0b11,       // congestion experienced
};

// Traffic class seen by the marker, derived from the ECN field of arriving
// downlink packets (§4.1 of the paper).
enum class flow_class : std::uint8_t {
    non_ecn,  // not ECN-capable: feedback only possible by dropping
    classic,  // ECT(0)
    l4s,      // ECT(1)
};

constexpr bool is_ect(ecn e) { return e == ecn::ect0 || e == ecn::ect1; }
constexpr bool is_ce(ecn e) { return e == ecn::ce; }

constexpr flow_class classify(ecn e)
{
    switch (e) {
    case ecn::ect1: return flow_class::l4s;
    case ecn::ect0: return flow_class::classic;
    case ecn::ce: return flow_class::classic;  // conservative: CE set upstream
    case ecn::not_ect:
    default: return flow_class::non_ecn;
    }
}

inline std::string to_string(ecn e)
{
    switch (e) {
    case ecn::not_ect: return "Not-ECT";
    case ecn::ect1: return "ECT(1)";
    case ecn::ect0: return "ECT(0)";
    case ecn::ce: return "CE";
    }
    return "?";
}

inline std::string to_string(flow_class c)
{
    switch (c) {
    case flow_class::non_ecn: return "non-ECN";
    case flow_class::classic: return "classic";
    case flow_class::l4s: return "L4S";
    }
    return "?";
}

}  // namespace l4span::net
