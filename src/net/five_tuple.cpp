#include "net/five_tuple.h"

#include <cstdio>

namespace l4span::net {

namespace {
std::string ip_str(std::uint32_t ip)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                  (ip >> 8) & 0xff, ip & 0xff);
    return buf;
}
}  // namespace

std::string five_tuple::to_string() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s:%u->%s:%u/%s", ip_str(src_ip).c_str(), src_port,
                  ip_str(dst_ip).c_str(), dst_port, proto == ip_proto::tcp ? "tcp" : "udp");
    return buf;
}

}  // namespace l4span::net
