// Pooled arena for net::packet.
//
// The RAN hot path used to copy whole packets per hop: rlc_tx retained a
// copy in awaiting_delivery_, the TB chunk carried a second copy over the
// air, and the map nodes themselves were a malloc/free pair per SDU. The
// pool replaces all of that with one slab slot per live SDU, shared by
// reference count and addressed through generation-checked handles (the
// same slab/free-list/generation scheme sim::event_loop uses for events).
//
// Ownership discipline: put() returns a handle owning one reference;
// add_ref()/release() adjust it; take() consumes one reference and yields
// the packet by move when it was the last, by copy otherwise. A stale
// handle (slot recycled, generation advanced) throws instead of aliasing
// another packet — cheap enough to keep on in release builds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace l4span::net {

class packet_pool {
public:
    static constexpr std::uint32_t k_npos = 0xffffffffu;

    struct handle {
        std::uint32_t slot = k_npos;
        std::uint32_t gen = 0;
        explicit operator bool() const { return slot != k_npos; }
    };

    // max_slots = 0: grow on demand (the simulator's default). A bounded
    // pool throws std::length_error on exhaustion instead of growing.
    explicit packet_pool(std::size_t max_slots = 0) : max_slots_(max_slots) {}

    handle put(packet&& pkt)
    {
        std::uint32_t idx;
        if (free_head_ != k_npos) {
            idx = free_head_;
            free_head_ = slots_[idx].next_free;
        } else {
            if (max_slots_ != 0 && slots_.size() >= max_slots_)
                throw std::length_error("packet_pool: exhausted");
            idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        slot& s = slots_[idx];
        s.pkt = std::move(pkt);
        s.refs = 1;
        ++live_;
        return handle{idx, s.gen};
    }

    void add_ref(handle h) { ++checked(h).refs; }

    void release(handle h)
    {
        slot& s = checked(h);
        if (--s.refs == 0) recycle(h.slot, s);
    }

    packet& at(handle h) { return checked(h).pkt; }
    const packet& at(handle h) const
    {
        return const_cast<packet_pool*>(this)->checked(h).pkt;
    }

    // Consumes one reference. Moves the packet out when this was the last
    // reference (slot recycled); copies when other holders remain.
    packet take(handle h)
    {
        slot& s = checked(h);
        if (s.refs == 1) {
            packet out = std::move(s.pkt);
            s.refs = 0;
            recycle(h.slot, s);
            return out;
        }
        --s.refs;
        return s.pkt;
    }

    std::size_t live() const { return live_; }
    std::size_t slots() const { return slots_.size(); }

private:
    struct slot {
        packet pkt;
        std::uint32_t gen = 0;
        std::uint32_t refs = 0;
        std::uint32_t next_free = k_npos;
    };

    slot& checked(handle h)
    {
        if (h.slot >= slots_.size())
            throw std::logic_error("packet_pool: invalid handle");
        slot& s = slots_[h.slot];
        if (s.gen != h.gen || s.refs == 0)
            throw std::logic_error("packet_pool: stale handle");
        return s;
    }

    void recycle(std::uint32_t idx, slot& s)
    {
        s.pkt = packet{};  // drop payload refs (app_data) eagerly
        ++s.gen;
        s.next_free = free_head_;
        free_head_ = idx;
        --live_;
    }

    std::size_t max_slots_;
    std::vector<slot> slots_;
    std::uint32_t free_head_ = k_npos;
    std::size_t live_ = 0;
};

}  // namespace l4span::net
