// The flow key L4Span uses to map packets to (UE, DRB) state (§4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace l4span::net {

enum class ip_proto : std::uint8_t {
    tcp = 6,
    udp = 17,
};

struct five_tuple {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    ip_proto proto = ip_proto::tcp;

    bool operator==(const five_tuple&) const = default;

    // Key of the flow in the reverse (uplink / ACK) direction.
    five_tuple reversed() const
    {
        return {dst_ip, src_ip, dst_port, src_port, proto};
    }

    std::string to_string() const;
};

struct five_tuple_hash {
    std::size_t operator()(const five_tuple& t) const
    {
        std::uint64_t h = t.src_ip;
        h = h * 0x100000001b3ull ^ t.dst_ip;
        h = h * 0x100000001b3ull ^ (static_cast<std::uint64_t>(t.src_port) << 16 | t.dst_port);
        h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(t.proto);
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

}  // namespace l4span::net
