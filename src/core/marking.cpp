#include "core/marking.h"

#include <algorithm>
#include <cmath>

namespace l4span::core::marking {

double aimd_constant(double beta)
{
    return (1.0 + beta) / 2.0 * std::sqrt(2.0 / (1.0 - beta * beta));
}

double phi(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double p_l4s(std::uint64_t n_queue_bytes, sim::tick tau_thr, double rate_hat_Bps,
             double rate_err_Bps)
{
    if (rate_hat_Bps <= 0.0) return 0.0;  // no estimate yet: do not mark
    const double required = static_cast<double>(n_queue_bytes) / sim::to_sec(tau_thr);
    if (rate_err_Bps <= 0.0) return required > rate_hat_Bps ? 1.0 : 0.0;  // DualPi2 step
    return phi((required - rate_hat_Bps) / rate_err_Bps);
}

double p_classic(std::uint32_t mss_bytes, double k_const, sim::tick rtt_hat,
                 double rate_hat_Bps)
{
    if (rate_hat_Bps <= 0.0 || rtt_hat <= 0) return 0.0;
    const double ratio =
        static_cast<double>(mss_bytes) * k_const / (sim::to_sec(rtt_hat) * rate_hat_Bps);
    return std::clamp(ratio * ratio, 0.0, 1.0);
}

double p_l4s_coupled(double p_classic_value, double k_const)
{
    const double alpha = 2.0 / k_const;
    return std::clamp(alpha * std::sqrt(std::max(0.0, p_classic_value)), 0.0, 1.0);
}

}  // namespace l4span::core::marking
