// Open-addressed flat hash table for the L4Span per-DRB / per-flow state.
//
// std::unordered_map costs a heap node per entry and a pointer chase per
// lookup; on the marking hot path (one drbs_/flows_ probe per packet and
// per feedback report) that is most of the lookup cost. This table keeps
// keys and values in two parallel arrays with linear probing, tombstoned
// erase, and power-of-two growth at 7/8 occupancy. Iteration order is
// unspecified (as it was for unordered_map) — every deterministic consumer
// in l4span sorts afterwards.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace l4span::core {

template <class K, class V, class Hash>
class flat_table {
public:
    flat_table() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    V* find(const K& key)
    {
        if (cap_ == 0) return nullptr;
        std::size_t i = Hash{}(key)&mask_;
        for (;;) {
            if (ctrl_[i] == k_empty) return nullptr;
            if (ctrl_[i] == k_full && keys_[i] == key) return &vals_[i];
            i = (i + 1) & mask_;
        }
    }
    const V* find(const K& key) const
    {
        return const_cast<flat_table*>(this)->find(key);
    }

    // Inserts a default-constructed value if absent; returns (value, inserted).
    std::pair<V*, bool> try_emplace(const K& key)
    {
        maybe_grow();
        std::size_t i = Hash{}(key)&mask_;
        std::size_t first_tomb = k_npos;
        for (;;) {
            if (ctrl_[i] == k_empty) {
                const std::size_t at = first_tomb != k_npos ? first_tomb : i;
                if (first_tomb != k_npos) --tombs_;
                ctrl_[at] = k_full;
                keys_[at] = key;
                vals_[at] = V{};
                ++size_;
                return {&vals_[at], true};
            }
            if (ctrl_[i] == k_tomb) {
                if (first_tomb == k_npos) first_tomb = i;
            } else if (keys_[i] == key) {
                return {&vals_[i], false};
            }
            i = (i + 1) & mask_;
        }
    }

    V& operator[](const K& key) { return *try_emplace(key).first; }

    bool erase(const K& key)
    {
        if (cap_ == 0) return false;
        std::size_t i = Hash{}(key)&mask_;
        for (;;) {
            if (ctrl_[i] == k_empty) return false;
            if (ctrl_[i] == k_full && keys_[i] == key) {
                ctrl_[i] = k_tomb;
                vals_[i] = V{};
                ++tombs_;
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    template <class Fn>
    void for_each(Fn&& fn)
    {
        for (std::size_t i = 0; i < cap_; ++i)
            if (ctrl_[i] == k_full) fn(keys_[i], vals_[i]);
    }
    template <class Fn>
    void for_each(Fn&& fn) const
    {
        for (std::size_t i = 0; i < cap_; ++i)
            if (ctrl_[i] == k_full) fn(keys_[i], vals_[i]);
    }

    void clear()
    {
        ctrl_.assign(ctrl_.size(), k_empty);
        for (auto& v : vals_) v = V{};
        size_ = 0;
        tombs_ = 0;
    }

private:
    static constexpr std::uint8_t k_empty = 0, k_full = 1, k_tomb = 2;
    static constexpr std::size_t k_npos = static_cast<std::size_t>(-1);

    void maybe_grow()
    {
        if (cap_ != 0 && (size_ + tombs_ + 1) * 8 <= cap_ * 7) return;
        // Double only when live entries need the room; under tombstone
        // pressure rehash at the same capacity instead. Erase-heavy users
        // (the event loop's timestamp map retires ~30k buckets per simulated
        // second) would otherwise double the table forever on dead slots.
        const std::size_t new_cap =
            cap_ == 0 ? 16 : ((size_ + 1) * 2 > cap_ ? cap_ * 2 : cap_);
        std::vector<std::uint8_t> ctrl(new_cap, k_empty);
        std::vector<K> keys(new_cap);
        std::vector<V> vals(new_cap);
        const std::size_t new_mask = new_cap - 1;
        for (std::size_t i = 0; i < cap_; ++i) {
            if (ctrl_[i] != k_full) continue;
            std::size_t j = Hash{}(keys_[i]) & new_mask;
            while (ctrl[j] == k_full) j = (j + 1) & new_mask;
            ctrl[j] = k_full;
            keys[j] = std::move(keys_[i]);
            vals[j] = std::move(vals_[i]);
        }
        ctrl_ = std::move(ctrl);
        keys_ = std::move(keys);
        vals_ = std::move(vals);
        cap_ = new_cap;
        mask_ = new_mask;
        tombs_ = 0;
    }

    std::vector<std::uint8_t> ctrl_;
    std::vector<K> keys_;
    std::vector<V> vals_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

// Mixer for small integer keys ((ue<<8)|drb): identity hashing would cluster
// sequential RNTIs into one probe run.
struct u32_mix_hash {
    std::size_t operator()(std::uint32_t x) const
    {
        std::uint64_t h = x;
        h *= 0x9e3779b97f4a7c15ull;
        h ^= h >> 32;
        return static_cast<std::size_t>(h);
    }
};

// Mixer for 64-bit integer keys (event timestamps: consecutive slot
// boundaries differ only in low bits, so both halves must diffuse).
struct u64_mix_hash {
    std::size_t operator()(std::uint64_t x) const
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }
};

}  // namespace l4span::core
