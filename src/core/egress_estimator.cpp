#include "core/egress_estimator.h"

#include <algorithm>
#include <cmath>

namespace l4span::core {

void egress_estimator::on_queue_empty(sim::tick ts)
{
    if (idle_since_ < 0) idle_since_ = ts;
}

sim::tick egress_estimator::idle_in_window(sim::tick now) const
{
    const sim::tick begin = now - window_;
    sim::tick idle = 0;
    for (std::size_t i = 0; i < idle_spans_.size(); ++i) {
        const auto& [b, e] = idle_spans_[i];
        const sim::tick lo = std::max(b, begin);
        const sim::tick hi = std::min(e, now);
        if (hi > lo) idle += hi - lo;
    }
    if (idle_since_ >= 0) {
        const sim::tick lo = std::max(idle_since_, begin);
        if (now > lo) idle += now - lo;
    }
    return std::min(idle, window_);
}

void egress_estimator::on_transmit(sim::tick ts, std::uint32_t bytes)
{
    // Close any open idle interval: the queue is being served again.
    if (idle_since_ >= 0) {
        if (ts > idle_since_) idle_spans_.push_back({idle_since_, ts});
        idle_since_ = -1;
    }
    while (!idle_spans_.empty() && idle_spans_.front().second <= ts - window_)
        idle_spans_.pop_front();

    tx_events_.push_back({ts, bytes});
    tx_window_bytes_ += bytes;
    while (!tx_events_.empty() && tx_events_.front().first <= ts - window_) {
        tx_window_bytes_ -= tx_events_.front().second;
        tx_events_.pop_front();
    }
    // Eq. (3) over the trailing tau_c window, counting busy time only.
    const sim::tick busy = std::max<sim::tick>(window_ - idle_in_window(ts),
                                               window_ / 16);
    last_instant_ = static_cast<double>(tx_window_bytes_) / sim::to_sec(busy);
    rate_samples_.push_back({ts, last_instant_});
    recompute(ts);
}

void egress_estimator::recompute(sim::tick now)
{
    while (!rate_samples_.empty() && rate_samples_.front().first <= now - window_)
        rate_samples_.pop_front();
    if (rate_samples_.empty()) {
        rate_hat_ = rate_err_ = 0.0;
        return;
    }
    // Eq. (4): mean over the window; e_hat: stddev over the same window.
    // Summed oldest-to-newest in full each call — an incremental running
    // sum would change the floating-point association and break the
    // bit-exact reproducibility contract.
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < rate_samples_.size(); ++i) {
        const double r = rate_samples_[i].second;
        sum += r;
        sum_sq += r * r;
    }
    const double n = static_cast<double>(rate_samples_.size());
    rate_hat_ = sum / n;
    const double var = sum_sq / n - rate_hat_ * rate_hat_;
    rate_err_ = var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace l4span::core
