// L4Span's marking strategies (§4.2).
//
//  * L4S-only DRB, Eq. (1): mark with the probability that the true egress
//    rate fails the sojourn threshold, under a Gaussian error model around
//    the estimate — p = Phi((N_queue/tau_thr - r_hat)/e_hat). With e_hat = 0
//    this degenerates to DualPi2's step.
//  * Classic-only DRB, Eq. (2): match the AIMD throughput model
//    r = MSS*K/(RTT*sqrt(p)) to the predicted egress rate.
//  * Shared DRB (§4.2.3): keep p_classic, couple p_l4s = alpha*sqrt(p_classic)
//    with alpha = 2/K, the solution of r_L4S = r_classic at equal RTT.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace l4span::core::marking {

// K = (1+beta)/2 * sqrt(2/(1-beta^2)) from the Padhye/Mathis AIMD model;
// beta = 0.5 (Reno) gives K = sqrt(3/2).
double aimd_constant(double beta);

// Standard normal CDF.
double phi(double x);

// Eq. (1). `n_queue_bytes` is the standing queue, `tau_thr` the sojourn
// threshold, rates in bytes/second. Returns a probability in [0, 1].
double p_l4s(std::uint64_t n_queue_bytes, sim::tick tau_thr, double rate_hat_Bps,
             double rate_err_Bps);

// Eq. (2). `rtt_hat` is RTT* + predicted sojourn (or 2*predicted sojourn for
// UDP). Returns a probability in [0, 1].
double p_classic(std::uint32_t mss_bytes, double k_const, sim::tick rtt_hat,
                 double rate_hat_Bps);

// §4.2.3 coupling for a DRB shared by both flow types.
double p_l4s_coupled(double p_classic_value, double k_const);

}  // namespace l4span::core::marking
