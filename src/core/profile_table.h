// Packet profile table (§4.3.2): tracks every admitted downlink packet's
// progress through the RLC with ingress / transmitted / delivered
// timestamps, keyed by PDCP sequence number.
//
// Feedback arrives as F1-U watermarks ("highest transmitted/delivered SN"),
// so transmit timestamps are applied to every not-yet-transmitted SN at or
// below the watermark — exactly the granularity a real CU observes.
//
// Storage is a struct-of-arrays ring: SNs are contiguous (entry i lives at
// logical index sn - first_sn_), so there is no per-SN key — each field
// (bytes, ingress/transmit/delivery timestamps, discard flag) sits in its
// own array and the watermark sweeps touch only the arrays they read.
// Both watermarks advance through monotone cursors, so a feedback report
// costs O(newly covered SNs), not O(table).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ran/types.h"
#include "sim/time.h"

namespace l4span::core {

// Materialized view of one tracked packet (find(); also the unit the
// Table 1 memory accounting charges per resident entry).
struct profile_entry {
    ran::pdcp_sn_t sn = 0;
    std::uint32_t bytes = 0;
    sim::tick t_ingress = -1;
    sim::tick t_transmitted = -1;
    sim::tick t_delivered = -1;
    bool discarded = false;
};

class profile_table {
public:
    // New admitted packet; SNs must arrive in increasing order.
    void on_ingress(ran::pdcp_sn_t sn, std::uint32_t bytes, sim::tick now);

    // F1-U transmit watermark. Invokes `txed` once per newly transmitted
    // packet (SN, bytes) — the estimator's Eq. (3) input.
    void on_transmitted(ran::pdcp_sn_t highest_sn, sim::tick ts,
                        const std::function<void(ran::pdcp_sn_t, std::uint32_t)>& txed);

    // F1-U delivery watermark (RLC AM only).
    void on_delivered(ran::pdcp_sn_t highest_sn, sim::tick ts);

    // The RAN discarded this SN before transmission completed.
    void on_discard(ran::pdcp_sn_t sn);

    // Bytes of the standing queue: admitted but not yet transmitted
    // (N_queue in Eq. (1) and Eq. (5)).
    std::uint64_t standing_bytes() const { return standing_bytes_; }
    std::size_t standing_packets() const { return standing_packets_; }

    // Queuing delay of the oldest standing packet (DualPi2-style sojourn).
    sim::tick head_age(sim::tick now) const;

    std::size_t size() const { return count_; }
    std::optional<profile_entry> find(ran::pdcp_sn_t sn) const;

    // Drops delivered/discarded entries older than `horizon` before `now`.
    void prune(sim::tick now, sim::tick horizon);

private:
    std::size_t phys(std::size_t i) const { return (head_ + i) & mask_; }
    void grow();

    // Parallel arrays, one slot per tracked SN; logical index i holds
    // sn = first_sn_ + i at physical slot (head_ + i) & mask_.
    std::vector<std::uint32_t> bytes_;
    std::vector<sim::tick> t_ingress_;
    std::vector<sim::tick> t_transmitted_;
    std::vector<sim::tick> t_delivered_;
    std::vector<std::uint8_t> discarded_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;  // capacity - 1; arrays are empty until first use

    ran::pdcp_sn_t first_sn_ = 0;
    bool has_entries_ = false;
    std::size_t tx_cursor_ = 0;  // logical index of first not-yet-transmitted entry
    std::size_t dl_cursor_ = 0;  // logical index of first entry above the
                                 // delivery watermark (watermarks are monotone)
    std::uint64_t standing_bytes_ = 0;
    std::size_t standing_packets_ = 0;
};

}  // namespace l4span::core
