// The L4Span layer (the paper's contribution, §4): one entity per cell in
// the CU-UP, holding per-(UE, DRB) queue-prediction state and per-flow
// feedback state. Implements ran::cu_hook, reacting to the three event
// classes of §4.1:
//   1. downlink datagram from the 5GC    -> classify, profile, (mark)
//   2. RAN F1-U delivery status feedback -> estimate egress, update marking
//   3. uplink ACK                        -> feedback short-circuiting
#pragma once

#include <cstdint>
#include <vector>

#include "core/egress_estimator.h"
#include "core/flat_table.h"
#include "core/marking.h"
#include "core/profile_table.h"
#include "net/packet.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "ran/cu_hook.h"
#include "sim/rng.h"

namespace l4span::core {

// Marking strategy used when L4S and classic flows share one DRB (§6.2.6
// evaluates all four; "coupled" is L4Span's design).
enum class shared_drb_policy : std::uint8_t {
    original,     // each flow keeps its class strategy, ignoring the sharing
    l4s_all,      // everything marked with the L4S strategy
    classic_all,  // everything marked with the classic strategy
    coupled,      // p_l4s = (2/K) * sqrt(p_classic)   <- L4Span §4.2.3
};

// Configuration of one L4Span entity. Every knob is tied to a paper
// section; the table is mirrored in docs/ARCHITECTURE.md.
struct l4span_config {
    // tau_s, the predicted-sojourn threshold the marking laws aim the RLC
    // queue at (§4.2, swept in §6.3.2 / Fig. 19). Default 10 ms: tighter
    // thresholds starve the MAC scheduler of backlog and cost throughput;
    // looser ones only add delay.
    sim::tick sojourn_threshold = sim::from_ms(10);

    // Channel coherence time (§4.3.3): the horizon over which the wireless
    // egress rate can be treated as stable, so estimation windows are
    // tau_c = coherence_time/2 (estimate from one half, apply in the other).
    // Default 24.9 ms: the vehicular (3.5 GHz, 70 km/h) measurement the
    // paper adopts from Wang et al. [78] — the worst case, so the estimator
    // is safe under any slower mobility.
    sim::tick coherence_time = sim::from_ms(24.9);

    // Feedback short-circuiting (§4.4): inject congestion feedback by
    // rewriting ECE/ACE in uplink TCP ACKs at the CU instead of marking CE
    // on downlink packets that must first traverse the very RLC queue being
    // signaled. Default on — it removes the downlink queueing delay from
    // the control loop (Fig. 15). UDP media flows always fall back to
    // downlink marking because their feedback lives in the payload.
    bool short_circuit = true;

    // Drop-based feedback for non-ECN-capable flows (§4.2 "fall back to
    // dropping"). Default off: the evaluation's flows are ECN-capable, and
    // dropping inside the RAN wastes the radio resources already spent.
    bool drop_non_ecn = false;

    // Error-aware L4S marking (§4.2.1, Eq. (1)): mark with the probability
    // that the true egress rate misses the threshold under a Gaussian error
    // model, p = Phi((N/tau_s - r_hat)/e_hat). Ablation knob: false forces
    // e_hat = 0, degenerating to a DualPi2-style step at the same
    // threshold (the §6.3.1 strawman).
    bool error_aware = true;

    // AIMD multiplicative-decrease factor assumed for classic flows in
    // Eq. (2)'s throughput model r = MSS*K/(RTT*sqrt(p)). Default 0.5
    // (Reno's halving), giving K = sqrt(3/2); CUBIC's 0.7 would bias the
    // model, but §4.2.2 follows the classical Padhye/Mathis constant.
    double classic_beta = 0.5;

    // MSS assumed by Eq. (2) before the entity has observed a flow's real
    // segment size. Default 1400: typical for 1500-byte-MTU paths once
    // IP/TCP headers and encapsulation overhead are subtracted.
    std::uint32_t mss = 1400;

    // Marking strategy when L4S and classic flows share one DRB (§4.2.3,
    // evaluated in §6.2.6 / Fig. 16). Default `coupled`, L4Span's design:
    // p_l4s = (2/K)*sqrt(p_classic) equalizes the two classes' steady-state
    // rates at equal RTT, as in RFC 9332's coupling.
    shared_drb_policy shared_policy = shared_drb_policy::coupled;

    // Seed of the entity's private RNG (probabilistic marking draws).
    // Arbitrary but fixed so simulations are reproducible bit-for-bit.
    std::uint64_t seed = 7;

    // Idle horizon after which per-flow and per-DRB state is pruned
    // (Table 1's bounded-memory claim). Default 1 s: two orders of
    // magnitude above the ~10 ms control loop, so live flows are never
    // pruned, yet memory tracks the active — not historical — flow count.
    sim::tick prune_horizon = sim::from_sec(1);
};

class l4span : public ran::cu_hook {
public:
    explicit l4span(l4span_config cfg);

    // --- ran::cu_hook ---
    bool on_dl_packet(net::packet& pkt, ran::rnti_t ue, ran::drb_id_t drb,
                      ran::pdcp_sn_t sn, sim::tick now) override;
    bool on_ul_packet(net::packet& pkt, ran::rnti_t ue, sim::tick now) override;
    void on_delivery_status(const ran::dl_delivery_status& st, sim::tick now) override;
    void on_dl_discard(ran::rnti_t ue, ran::drb_id_t drb, ran::pdcp_sn_t sn,
                       sim::tick now) override;

    // X2/Xn handover (§ deployment: one entity per cell): the UE's per-DRB
    // prediction state (profile table, egress estimate, marking
    // probabilities) and per-flow feedback state move to the target cell's
    // entity, re-keyed under the new RNTI. Carrying the state forward is
    // what prevents a post-handover marking glitch: a fresh entity would
    // first under-mark (no estimate) and then burst once it re-learned the
    // standing queue.
    std::unique_ptr<ran::cu_hook::ue_state> detach_ue(ran::rnti_t ue) override;
    void attach_ue(ran::rnti_t ue, std::unique_ptr<ran::cu_hook::ue_state> state) override;

    // --- introspection (tests, microbenchmarks) ---
    struct drb_view {
        double rate_hat_Bps = 0.0;
        double rate_err_Bps = 0.0;
        sim::tick predicted_sojourn = 0;
        std::uint64_t standing_bytes = 0;
        double p_l4s = 0.0;
        bool has_l4s = false;
        bool has_classic = false;
    };
    drb_view view(ran::rnti_t ue, ran::drb_id_t drb) const;

    // RNTIs holding any per-DRB or per-flow state, sorted — the chaos-soak
    // "no leaked flow-table entries" invariant compares this against the
    // gNB's active RNTIs (detached/invalidated UEs must not appear).
    std::vector<ran::rnti_t> tracked_ues() const;

    std::uint64_t marks() const { return marks_; }
    std::uint64_t drops() const { return drops_; }
    std::uint64_t dl_events() const { return dl_events_; }
    std::uint64_t ul_events() const { return ul_events_; }
    std::uint64_t feedback_events() const { return feedback_events_; }
    const l4span_config& config() const { return cfg_; }

    // Approximate resident state (Table 1 substitute).
    std::size_t resident_state_bytes() const;

    // --- observability ---
    // Reason-coded decision events at every mark/short-circuit branch of
    // on_dl_packet and the ACK-rewrite branches of on_ul_packet. The
    // marking draw happens unconditionally either way, so tracing cannot
    // perturb the RNG stream.
    void set_tracer(obs::tracer* t) { tracer_ = t; }
    // Predicted-sojourn distribution (ms), sampled on every marking refresh.
    void set_sojourn_histogram(obs::histogram* h) { sojourn_hist_ = h; }

private:
    struct flow_state {
        net::flow_class cls = net::flow_class::non_ecn;
        bool accecn = false;
        ran::rnti_t ue = 0;
        ran::drb_id_t drb = 0;
        // RTT* from the SYN -> handshake-ACK interval on the forward path.
        sim::tick syn_time = -1;
        sim::tick rtt_star = -1;
        // Classic ECN: ECE latched on uplink ACKs until a downlink CWR.
        bool ece_active = false;
        // AccECN short-circuit bookkeeping (tentative marks, §4.4).
        std::uint32_t ce_pkts = 5;  // ACE counter initial value
        std::uint32_t ce_bytes = 0;
        std::uint32_t ect0_bytes = 0;
        std::uint32_t ect1_bytes = 0;
    };

    struct drb_state {
        profile_table table;
        egress_estimator estimator;
        bool has_l4s = false;
        bool has_classic = false;
        sim::tick predicted_sojourn = 0;
        double p_l4s = 0.0;
        std::uint64_t prev_standing = 0;  // drain detection for the overload brake
        bool draining = false;

        // Default state is inert (zero-window estimator) — the flat table's
        // empty slots; live entries are assigned a windowed state on insert.
        drb_state() = default;
        explicit drb_state(sim::tick window) : estimator(window) {}
    };

    struct migrated;  // detach_ue/attach_ue container over the private state

    drb_state& drb(ran::rnti_t ue, ran::drb_id_t drb_id);
    const drb_state* find_drb(ran::rnti_t ue, ran::drb_id_t drb_id) const;
    void refresh_marking(drb_state& d);
    // Probability applicable to `flow` given the DRB's flow mix and policy.
    double mark_probability(const drb_state& d, const flow_state& flow) const;
    double flow_p_classic(const drb_state& d, const flow_state& flow) const;
    sim::tick rtt_hat(const drb_state& d, const flow_state& flow) const;

    l4span_config cfg_;
    double k_const_;
    sim::tick window_;  // tau_c = coherence_time / 2
    sim::rng rng_;

    // Open-addressed flat tables: one probe per packet on the marking hot
    // path instead of unordered_map's node chase.
    flat_table<std::uint32_t, drb_state, u32_mix_hash> drbs_;  // key: (ue << 8) | drb
    flat_table<net::five_tuple, flow_state, net::five_tuple_hash> flows_;

    obs::tracer* tracer_ = nullptr;
    obs::histogram* sojourn_hist_ = nullptr;

    std::uint64_t marks_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t dl_events_ = 0;
    std::uint64_t ul_events_ = 0;
    std::uint64_t feedback_events_ = 0;
};

}  // namespace l4span::core
