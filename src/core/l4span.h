// The L4Span layer (the paper's contribution, §4): one entity per cell in
// the CU-UP, holding per-(UE, DRB) queue-prediction state and per-flow
// feedback state. Implements ran::cu_hook, reacting to the three event
// classes of §4.1:
//   1. downlink datagram from the 5GC    -> classify, profile, (mark)
//   2. RAN F1-U delivery status feedback -> estimate egress, update marking
//   3. uplink ACK                        -> feedback short-circuiting
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/egress_estimator.h"
#include "core/marking.h"
#include "core/profile_table.h"
#include "net/packet.h"
#include "ran/cu_hook.h"
#include "sim/rng.h"

namespace l4span::core {

// Marking strategy used when L4S and classic flows share one DRB (§6.2.6
// evaluates all four; "coupled" is L4Span's design).
enum class shared_drb_policy : std::uint8_t {
    original,     // each flow keeps its class strategy, ignoring the sharing
    l4s_all,      // everything marked with the L4S strategy
    classic_all,  // everything marked with the classic strategy
    coupled,      // p_l4s = (2/K) * sqrt(p_classic)   <- L4Span §4.2.3
};

struct l4span_config {
    sim::tick sojourn_threshold = sim::from_ms(10);  // tau_s (§6.3.2 justifies 10 ms)
    sim::tick coherence_time = sim::from_ms(24.9);   // from [78]; window = /2
    bool short_circuit = true;       // rewrite uplink ACKs instead of DL marks (TCP)
    bool drop_non_ecn = false;       // drop-based feedback for non-ECN flows
    // Ablation knob: false forces e_hat = 0 in Eq. (1), reducing the L4S
    // marker to a DualPi2-style step at the same threshold.
    bool error_aware = true;
    double classic_beta = 0.5;       // AIMD MD parameter in Eq. (2)'s K
    std::uint32_t mss = 1400;
    shared_drb_policy shared_policy = shared_drb_policy::coupled;
    std::uint64_t seed = 7;
    sim::tick prune_horizon = sim::from_sec(1);
};

class l4span : public ran::cu_hook {
public:
    explicit l4span(l4span_config cfg);

    // --- ran::cu_hook ---
    bool on_dl_packet(net::packet& pkt, ran::rnti_t ue, ran::drb_id_t drb,
                      ran::pdcp_sn_t sn, sim::tick now) override;
    bool on_ul_packet(net::packet& pkt, ran::rnti_t ue, sim::tick now) override;
    void on_delivery_status(const ran::dl_delivery_status& st, sim::tick now) override;
    void on_dl_discard(ran::rnti_t ue, ran::drb_id_t drb, ran::pdcp_sn_t sn,
                       sim::tick now) override;

    // --- introspection (tests, microbenchmarks) ---
    struct drb_view {
        double rate_hat_Bps = 0.0;
        double rate_err_Bps = 0.0;
        sim::tick predicted_sojourn = 0;
        std::uint64_t standing_bytes = 0;
        double p_l4s = 0.0;
        bool has_l4s = false;
        bool has_classic = false;
    };
    drb_view view(ran::rnti_t ue, ran::drb_id_t drb) const;

    std::uint64_t marks() const { return marks_; }
    std::uint64_t drops() const { return drops_; }
    std::uint64_t dl_events() const { return dl_events_; }
    std::uint64_t ul_events() const { return ul_events_; }
    std::uint64_t feedback_events() const { return feedback_events_; }
    const l4span_config& config() const { return cfg_; }

    // Approximate resident state (Table 1 substitute).
    std::size_t resident_state_bytes() const;

private:
    struct flow_state {
        net::flow_class cls = net::flow_class::non_ecn;
        bool accecn = false;
        ran::rnti_t ue = 0;
        ran::drb_id_t drb = 0;
        // RTT* from the SYN -> handshake-ACK interval on the forward path.
        sim::tick syn_time = -1;
        sim::tick rtt_star = -1;
        // Classic ECN: ECE latched on uplink ACKs until a downlink CWR.
        bool ece_active = false;
        // AccECN short-circuit bookkeeping (tentative marks, §4.4).
        std::uint32_t ce_pkts = 5;  // ACE counter initial value
        std::uint32_t ce_bytes = 0;
        std::uint32_t ect0_bytes = 0;
        std::uint32_t ect1_bytes = 0;
    };

    struct drb_state {
        profile_table table;
        egress_estimator estimator;
        bool has_l4s = false;
        bool has_classic = false;
        sim::tick predicted_sojourn = 0;
        double p_l4s = 0.0;
        std::uint64_t prev_standing = 0;  // drain detection for the overload brake
        bool draining = false;

        explicit drb_state(sim::tick window) : estimator(window) {}
    };

    drb_state& drb(ran::rnti_t ue, ran::drb_id_t drb_id);
    const drb_state* find_drb(ran::rnti_t ue, ran::drb_id_t drb_id) const;
    void refresh_marking(drb_state& d);
    // Probability applicable to `flow` given the DRB's flow mix and policy.
    double mark_probability(const drb_state& d, const flow_state& flow) const;
    double flow_p_classic(const drb_state& d, const flow_state& flow) const;
    sim::tick rtt_hat(const drb_state& d, const flow_state& flow) const;

    l4span_config cfg_;
    double k_const_;
    sim::tick window_;  // tau_c = coherence_time / 2
    sim::rng rng_;

    std::unordered_map<std::uint32_t, drb_state> drbs_;  // key: (ue << 8) | drb
    std::unordered_map<net::five_tuple, flow_state, net::five_tuple_hash> flows_;

    std::uint64_t marks_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t dl_events_ = 0;
    std::uint64_t ul_events_ = 0;
    std::uint64_t feedback_events_ = 0;
};

}  // namespace l4span::core
