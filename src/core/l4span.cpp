#include "core/l4span.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

namespace l4span::core {

namespace {
std::uint32_t drb_key(ran::rnti_t ue, ran::drb_id_t drb)
{
    return (static_cast<std::uint32_t>(ue) << 8) | drb;
}
}  // namespace

l4span::l4span(l4span_config cfg)
    : cfg_(cfg),
      k_const_(marking::aimd_constant(cfg.classic_beta)),
      window_(cfg.coherence_time / 2),
      rng_(cfg.seed)
{
}

l4span::drb_state& l4span::drb(ran::rnti_t ue, ran::drb_id_t drb_id)
{
    auto [d, inserted] = drbs_.try_emplace(drb_key(ue, drb_id));
    if (inserted) *d = drb_state(window_);
    return *d;
}

const l4span::drb_state* l4span::find_drb(ran::rnti_t ue, ran::drb_id_t drb_id) const
{
    return drbs_.find(drb_key(ue, drb_id));
}

sim::tick l4span::rtt_hat(const drb_state& d, const flow_state& flow) const
{
    // RTT_hat = RTT* + predicted sojourn; 2 * predicted sojourn when the
    // handshake was not observable (UDP), §4.2.2. The sojourn term is capped
    // at the target: Eq. (2) describes the intended operating point, and an
    // uncapped bloated queue would deflate p quadratically — weakening the
    // marking exactly when the queue most needs draining.
    const sim::tick sojourn = std::min(d.predicted_sojourn, cfg_.sojourn_threshold);
    if (flow.rtt_star >= 0) return flow.rtt_star + sojourn;
    return 2 * std::max<sim::tick>(sojourn, sim::from_ms(1));
}

double l4span::flow_p_classic(const drb_state& d, const flow_state& flow) const
{
    // Overload brake: a queue far beyond target (slow-start overshoot, a
    // channel collapse) is marked unconditionally so the sender's once-per-
    // RTT reduction engages. Suspended while the backlog is already
    // shrinking — the signal has worked and repeating it over-cuts.
    if (d.predicted_sojourn > 3 * cfg_.sojourn_threshold && !d.draining) return 1.0;
    const double p = marking::p_classic(cfg_.mss, k_const_, rtt_hat(d, flow),
                                        d.estimator.rate_Bps());
    // Eq. (2) matches the sender's average ingress to the RAN egress, which
    // presumes a standing buffer (Fig. 4: the classic queue never drains to
    // zero). Scale by the queue's predicted sojourn relative to the target:
    // below target the flow is never suppressed before it builds its working
    // buffer; above target the extra marking drains the backlog. The stable
    // point sits at sojourn ~= tau_s with ingress matching egress.
    const double occupancy = static_cast<double>(d.predicted_sojourn) /
                             static_cast<double>(cfg_.sojourn_threshold);
    return std::min(1.0, p * occupancy);
}

double l4span::mark_probability(const drb_state& d, const flow_state& flow) const
{
    if (!d.estimator.has_estimate()) return 0.0;
    const bool mixed = d.has_l4s && d.has_classic;
    const bool is_l4s = flow.cls == net::flow_class::l4s;

    if (mixed) {
        switch (cfg_.shared_policy) {
        case shared_drb_policy::l4s_all: return d.p_l4s;
        case shared_drb_policy::classic_all: return flow_p_classic(d, flow);
        case shared_drb_policy::original:
            return is_l4s ? d.p_l4s : flow_p_classic(d, flow);
        case shared_drb_policy::coupled:
            return is_l4s ? marking::p_l4s_coupled(flow_p_classic(d, flow), k_const_)
                          : flow_p_classic(d, flow);
        }
    }
    return is_l4s ? d.p_l4s : flow_p_classic(d, flow);
}

bool l4span::on_dl_packet(net::packet& pkt, ran::rnti_t ue, ran::drb_id_t drb_id,
                          ran::pdcp_sn_t sn, sim::tick now)
{
    ++dl_events_;
    drb_state& d = drb(ue, drb_id);

    // --- five-tuple -> (UE, DRB) mapping and flow classification ---
    flow_state& flow = flows_[pkt.ft];
    flow.ue = ue;
    flow.drb = drb_id;
    if (net::is_ect(pkt.ecn_field)) {
        // CE packets keep the class learned from earlier ECT codepoints.
        flow.cls = net::classify(pkt.ecn_field);
    } else if (pkt.ecn_field == net::ecn::not_ect && flow.cls == net::flow_class::non_ecn) {
        flow.cls = net::flow_class::non_ecn;
    }
    if (flow.cls == net::flow_class::l4s) d.has_l4s = true;
    if (flow.cls == net::flow_class::classic) d.has_classic = true;

    // --- TCP bookkeeping: RTT*, AccECN negotiation, CWR observation ---
    if (pkt.is_tcp()) {
        const auto& h = *pkt.tcp;
        if (h.flags.syn && !h.flags.ack) {
            flow.syn_time = now;
            flow.accecn = h.flags.ae;  // AccECN offered in the SYN
        } else if (flow.syn_time >= 0 && flow.rtt_star < 0 && h.flags.ack &&
                   pkt.payload_bytes == 0 && !h.flags.syn) {
            // First forward packet after the SYN: the handshake-completing
            // ACK. Interval = RTT* (§4.2.2).
            flow.rtt_star = now - flow.syn_time;
        }
        if (h.flags.cwr) flow.ece_active = false;  // sender reacted (RFC 3168)
    }

    // --- profile the packet (§4.3.2) ---
    d.table.on_ingress(sn, pkt.size_bytes(), now);

    // --- marking decision ---
    // One reason-coded trace event per decision; the probability rides in
    // fixed-point (1e9) in `c`. Emission never touches the RNG or the
    // decision itself.
    const auto trace_dl = [&](obs::reason r, double prob) {
        if (tracer_)
            tracer_->emit(now, obs::point::l4span_dl, r, drb_key(ue, drb_id),
                          (pkt.flow_id << 32) | (pkt.pkt_id & 0xffffffffull),
                          static_cast<std::uint64_t>(prob * 1e9));
    };
    if (pkt.payload_bytes == 0) {
        trace_dl(obs::reason::control, 0.0);
        return true;  // control segments are not marked
    }
    const double p = mark_probability(d, flow);
    const bool hit = rng_.bernoulli(p);

    if (pkt.is_tcp() && cfg_.short_circuit) {
        // Drop-based fallback for flows the path declared non-ECN-capable
        // (§4.2 "fall back to dropping"): a stripped TCP flow gets no ACK
        // rewrite (no ECT bytes to count, no CE to invent), so without the
        // drop it would receive no congestion signal at all and sit in a
        // deep RLC queue. `hit` was drawn above either way, so runs with
        // the knob off are byte-identical.
        if (hit && pkt.ecn_field == net::ecn::not_ect && cfg_.drop_non_ecn) {
            ++drops_;
            trace_dl(obs::reason::drop_non_ecn, p);
            return false;
        }
        // Tentative mark: bookkeeping only; the signal is injected into the
        // uplink ACK stream (§4.4), skipping the RLC queue's sojourn. The
        // bookkeeping mirrors what an honest AccECN receiver would count, so
        // it keys off the codepoint that actually arrived: a CU mark needs
        // ECT (a path that stripped the field gets no CE invented for it,
        // and the sender's ECN validation can notice), and upstream CE — a
        // core AQM marked before the RAN — is passed through as CE feedback
        // rather than miscounted as ECT bytes.
        if (pkt.ecn_field == net::ecn::ce || (hit && net::is_ect(pkt.ecn_field))) {
            if (pkt.ecn_field != net::ecn::ce) {
                ++marks_;
                trace_dl(obs::reason::tentative_mark, p);
            } else {
                trace_dl(obs::reason::ce_upstream, p);
            }
            if (flow.accecn) {
                flow.ce_pkts += 1;
                flow.ce_bytes += pkt.payload_bytes;
            } else {
                flow.ece_active = true;
            }
            return true;
        }
        trace_dl(obs::reason::pass, p);
        if (flow.accecn) {
            if (pkt.ecn_field == net::ecn::ect1) flow.ect1_bytes += pkt.payload_bytes;
            else if (pkt.ecn_field == net::ecn::ect0) flow.ect0_bytes += pkt.payload_bytes;
            // Not-ECT bytes are not counted anywhere, exactly like the
            // receiver's own AccECN counters.
        }
        return true;
    }

    // Downlink marking path (UDP/QUIC flows, or TCP with short-circuiting
    // disabled): set CE on the IP header, or drop for non-ECN flows.
    if (hit) {
        if (net::is_ect(pkt.ecn_field)) {
            pkt.ecn_field = net::ecn::ce;
            ++marks_;
            trace_dl(obs::reason::ce_mark, p);
            return true;
        }
        if (pkt.ecn_field == net::ecn::not_ect && cfg_.drop_non_ecn) {
            ++drops_;
            trace_dl(obs::reason::drop_non_ecn, p);
            return false;
        }
    }
    trace_dl(obs::reason::pass, p);
    return true;
}

bool l4span::on_ul_packet(net::packet& pkt, ran::rnti_t ue, sim::tick now)
{
    (void)ue;
    ++ul_events_;
    if (!cfg_.short_circuit || !pkt.is_tcp_ack()) return true;

    // Reverse-map the ACK to its downlink flow (§4.1).
    const flow_state* fs = flows_.find(pkt.ft.reversed());
    if (!fs) return true;
    const flow_state& flow = *fs;

    if (tracer_)
        tracer_->emit(now, obs::point::l4span_ul,
                      flow.accecn ? obs::reason::ack_ace : obs::reason::ack_ece,
                      drb_key(flow.ue, flow.drb), pkt.flow_id,
                      flow.accecn ? flow.ce_pkts : (flow.ece_active ? 1 : 0));

    auto& h = *pkt.tcp;
    if (flow.accecn) {
        // Overwrite the receiver's AccECN feedback with the CU's bookkeeping:
        // the sender then reacts to RAN congestion one RLC sojourn earlier.
        h.set_ace(static_cast<std::uint8_t>(flow.ce_pkts & 0x7));
        h.accecn.present = true;
        h.accecn.ee0b = flow.ect0_bytes & 0xffffff;
        h.accecn.eceb = flow.ce_bytes & 0xffffff;
        h.accecn.ee1b = flow.ect1_bytes & 0xffffff;
    } else {
        h.flags.ece = flow.ece_active;
    }
    return true;
}

void l4span::on_delivery_status(const ran::dl_delivery_status& st, sim::tick now)
{
    ++feedback_events_;
    // Find-only: a status about an RNTI whose state was invalidated (RLF
    // re-establishment) or migrated away must not resurrect an empty entry
    // under the dead key — packets create state, feedback never does.
    drb_state* found = drbs_.find(drb_key(st.ue, st.drb));
    if (!found) return;
    drb_state& d = *found;
    if (st.has_transmitted) {
        d.table.on_transmitted(st.highest_transmitted_sn, st.timestamp,
                               [&](ran::pdcp_sn_t, std::uint32_t bytes) {
                                   d.estimator.on_transmit(st.timestamp, bytes);
                               });
        // Busy-period accounting: a drained queue means subsequent silence
        // is application-limited, not a capacity signal.
        if (d.table.standing_bytes() == 0) d.estimator.on_queue_empty(st.timestamp);
    }
    if (st.has_delivered) d.table.on_delivered(st.highest_delivered_sn, st.timestamp);
    refresh_marking(d);
    d.table.prune(now, cfg_.prune_horizon);
}

void l4span::on_dl_discard(ran::rnti_t ue, ran::drb_id_t drb_id, ran::pdcp_sn_t sn,
                           sim::tick /*now*/)
{
    // Find-only, like on_delivery_status: late discards for a dead RNTI
    // must not re-create state.
    if (drb_state* d = drbs_.find(drb_key(ue, drb_id))) d->table.on_discard(sn);
}

struct l4span::migrated : ran::cu_hook::ue_state {
    std::vector<std::pair<ran::drb_id_t, drb_state>> drbs;
    std::vector<std::pair<net::five_tuple, flow_state>> flows;
};

std::unique_ptr<ran::cu_hook::ue_state> l4span::detach_ue(ran::rnti_t ue)
{
    auto st = std::make_unique<migrated>();
    // Both tables are unordered; export in sorted key order so a sharded
    // multi-cell run stays byte-identical regardless of hash-table history.
    std::vector<std::uint32_t> keys;
    drbs_.for_each([&](std::uint32_t key, const drb_state&) {
        if ((key >> 8) == ue) keys.push_back(key);
    });
    std::sort(keys.begin(), keys.end());
    for (const auto key : keys) {
        st->drbs.emplace_back(static_cast<ran::drb_id_t>(key & 0xff),
                              std::move(*drbs_.find(key)));
        drbs_.erase(key);
    }
    std::vector<net::five_tuple> fts;
    flows_.for_each([&](const net::five_tuple& ft, const flow_state& fs) {
        if (fs.ue == ue) fts.push_back(ft);
    });
    std::sort(fts.begin(), fts.end(), [](const net::five_tuple& a, const net::five_tuple& b) {
        return std::tie(a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.proto) <
               std::tie(b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.proto);
    });
    for (const auto& ft : fts) {
        st->flows.emplace_back(ft, std::move(*flows_.find(ft)));
        flows_.erase(ft);
    }
    return st;
}

void l4span::attach_ue(ran::rnti_t ue, std::unique_ptr<ran::cu_hook::ue_state> state)
{
    auto* st = dynamic_cast<migrated*>(state.get());
    if (!st) return;  // foreign hook's state: nothing to adopt
    for (auto& [id, d] : st->drbs) drbs_[drb_key(ue, id)] = std::move(d);
    for (auto& [ft, fs] : st->flows) {
        fs.ue = ue;
        flows_[ft] = std::move(fs);
    }
}

void l4span::refresh_marking(drb_state& d)
{
    const std::uint64_t standing = d.table.standing_bytes();
    d.draining = standing < d.prev_standing;
    d.prev_standing = standing;
    const double r_hat = d.estimator.rate_Bps();
    // Eq. (5): predicted sojourn of the standing queue.
    d.predicted_sojourn =
        r_hat > 0.0
            ? static_cast<sim::tick>(static_cast<double>(d.table.standing_bytes()) /
                                     r_hat * sim::k_second)
            : 0;
    // Eq. (1).
    d.p_l4s = marking::p_l4s(d.table.standing_bytes(), cfg_.sojourn_threshold, r_hat,
                             cfg_.error_aware ? d.estimator.rate_err_Bps() : 0.0);
    if (sojourn_hist_) sojourn_hist_->sample(sim::to_ms(d.predicted_sojourn));
}

l4span::drb_view l4span::view(ran::rnti_t ue, ran::drb_id_t drb_id) const
{
    drb_view v;
    const drb_state* d = find_drb(ue, drb_id);
    if (!d) return v;
    v.rate_hat_Bps = d->estimator.rate_Bps();
    v.rate_err_Bps = d->estimator.rate_err_Bps();
    v.predicted_sojourn = d->predicted_sojourn;
    v.standing_bytes = d->table.standing_bytes();
    v.p_l4s = d->p_l4s;
    v.has_l4s = d->has_l4s;
    v.has_classic = d->has_classic;
    return v;
}

std::vector<ran::rnti_t> l4span::tracked_ues() const
{
    std::vector<ran::rnti_t> out;
    drbs_.for_each([&](std::uint32_t key, const drb_state&) {
        out.push_back(static_cast<ran::rnti_t>(key >> 8));
    });
    flows_.for_each([&](const net::five_tuple&, const flow_state& fs) {
        out.push_back(fs.ue);
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::size_t l4span::resident_state_bytes() const
{
    std::size_t total = sizeof(*this);
    drbs_.for_each([&](std::uint32_t, const drb_state& d) {
        total += sizeof(drb_state) + d.table.size() * sizeof(profile_entry);
    });
    total += flows_.size() * (sizeof(net::five_tuple) + sizeof(flow_state));
    return total;
}

}  // namespace l4span::core
