// Flat FIFO ring over one contiguous power-of-two array.
//
// The L4Span estimator windows (transmit events, idle spans, rate samples)
// are strict FIFOs: push at the tail, expire from the head, scan in order.
// std::deque serves that pattern through chunked storage and a map of
// chunk pointers; this ring keeps the window in one allocation so the
// per-transmit window scans walk contiguous memory. Indexing is logical:
// [0] is the oldest element, [size()-1] the newest.
#pragma once

#include <cstddef>
#include <vector>

namespace l4span::core {

template <class T>
class ring {
public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T& front() { return buf_[head_]; }
    const T& front() const { return buf_[head_]; }
    T& back() { return buf_[phys(count_ - 1)]; }
    const T& back() const { return buf_[phys(count_ - 1)]; }

    T& operator[](std::size_t i) { return buf_[phys(i)]; }
    const T& operator[](std::size_t i) const { return buf_[phys(i)]; }

    void push_back(const T& v)
    {
        if (count_ == buf_.size()) grow();
        buf_[phys(count_)] = v;
        ++count_;
    }

    void pop_front()
    {
        buf_[head_] = T{};  // drop any owned payload eagerly
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void clear()
    {
        for (std::size_t i = 0; i < count_; ++i) buf_[phys(i)] = T{};
        head_ = 0;
        count_ = 0;
    }

private:
    std::size_t phys(std::size_t i) const { return (head_ + i) & mask_; }

    void grow()
    {
        const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(buf_[phys(i)]);
        buf_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;
};

}  // namespace l4span::core
