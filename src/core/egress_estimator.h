// Egress-rate estimation (§4.3.3, Eqs. (3) and (4)).
//
// On each transmit event the instantaneous rate r^T_k is the byte volume
// transmitted in the trailing window tau_c divided by the *busy* portion of
// tau_c; the smoothed estimate r_hat is the mean of the instantaneous
// samples inside another tau_c window, and e_hat is their standard
// deviation. All packets involved were transmitted within 2*tau_c = one
// channel coherence time, during which the channel is assumed stable.
//
// Busy-time accounting: intervals during which the RLC queue stood empty
// are excluded from the denominator. Otherwise an application-limited lull
// (queue drained) would drag the rate estimate below the link's service
// capacity, inflating the predicted sojourn and over-marking — a positive
// feedback loop that traps classic senders at low rate. The paper's
// evaluation never hits this corner because its classic queues "rarely
// reach zero" (Fig. 17); the busy-period denominator makes the estimator
// well-defined on the whole state space.
#pragma once

#include <cstdint>

#include "core/ring.h"
#include "sim/time.h"

namespace l4span::core {

class egress_estimator {
public:
    // Default-constructed estimators (flat-table slots) are inert until
    // assigned a real one; a zero window never accumulates samples.
    egress_estimator() = default;

    // `window` is tau_c: half the configured channel coherence time.
    explicit egress_estimator(sim::tick window) : window_(window) {}

    // A packet of `bytes` was transmitted at `ts` (from the profile table).
    void on_transmit(sim::tick ts, std::uint32_t bytes);

    // The queue stood empty starting at `ts` (until the next transmit).
    void on_queue_empty(sim::tick ts);

    bool has_estimate() const { return !rate_samples_.empty(); }

    // Smoothed egress rate r_hat (bytes/second), Eq. (4).
    double rate_Bps() const { return rate_hat_; }

    // Standard deviation e_hat of the instantaneous rate over the latest
    // window (bytes/second).
    double rate_err_Bps() const { return rate_err_; }

    // Most recent instantaneous rate r^T_k, Eq. (3).
    double instantaneous_Bps() const { return last_instant_; }

    sim::tick window() const { return window_; }

private:
    void recompute(sim::tick now);
    sim::tick idle_in_window(sim::tick now) const;

    sim::tick window_ = 0;
    ring<std::pair<sim::tick, std::uint32_t>> tx_events_;  // (ts, bytes)
    std::uint64_t tx_window_bytes_ = 0;
    ring<std::pair<sim::tick, sim::tick>> idle_spans_;     // [begin, end)
    sim::tick idle_since_ = -1;  // open idle interval, -1 when busy
    ring<std::pair<sim::tick, double>> rate_samples_;      // (ts, r^T)
    double rate_hat_ = 0.0;
    double rate_err_ = 0.0;
    double last_instant_ = 0.0;
};

}  // namespace l4span::core
