#include "core/profile_table.h"

namespace l4span::core {

void profile_table::on_ingress(ran::pdcp_sn_t sn, std::uint32_t bytes, sim::tick now)
{
    if (!has_entries_) {
        first_sn_ = sn;
        has_entries_ = true;
    }
    profile_entry e;
    e.sn = sn;
    e.bytes = bytes;
    e.t_ingress = now;
    entries_.push_back(e);
    standing_bytes_ += bytes;
    standing_packets_ += 1;
}

void profile_table::on_transmitted(ran::pdcp_sn_t highest_sn, sim::tick ts,
                                   const std::function<void(ran::pdcp_sn_t, std::uint32_t)>& txed)
{
    if (!has_entries_) return;
    while (tx_cursor_ < entries_.size() && entries_[tx_cursor_].sn <= highest_sn) {
        profile_entry& e = entries_[tx_cursor_];
        if (!e.discarded) {
            e.t_transmitted = ts;
            standing_bytes_ -= e.bytes;
            standing_packets_ -= 1;
            if (txed) txed(e.sn, e.bytes);
        }
        ++tx_cursor_;
    }
}

void profile_table::on_delivered(ran::pdcp_sn_t highest_sn, sim::tick ts)
{
    for (auto& e : entries_) {
        if (e.sn > highest_sn) break;
        if (e.t_delivered < 0 && !e.discarded) e.t_delivered = ts;
    }
}

void profile_table::on_discard(ran::pdcp_sn_t sn)
{
    if (!has_entries_ || sn < first_sn_) return;
    const std::size_t idx = sn - first_sn_;
    if (idx >= entries_.size()) return;
    profile_entry& e = entries_[idx];
    if (e.discarded) return;
    if (e.t_transmitted < 0) {
        standing_bytes_ -= e.bytes;
        standing_packets_ -= 1;
    }
    e.discarded = true;
}

sim::tick profile_table::head_age(sim::tick now) const
{
    for (std::size_t i = tx_cursor_; i < entries_.size(); ++i) {
        if (!entries_[i].discarded) return now - entries_[i].t_ingress;
    }
    return 0;
}

const profile_entry* profile_table::find(ran::pdcp_sn_t sn) const
{
    if (!has_entries_ || sn < first_sn_) return nullptr;
    const std::size_t idx = sn - first_sn_;
    if (idx >= entries_.size()) return nullptr;
    return &entries_[idx];
}

void profile_table::prune(sim::tick now, sim::tick horizon)
{
    while (!entries_.empty() && tx_cursor_ > 0) {
        const profile_entry& e = entries_.front();
        const bool settled = e.discarded || e.t_transmitted >= 0;
        if (!settled) break;
        const sim::tick ref = e.t_delivered >= 0 ? e.t_delivered : e.t_transmitted;
        if (ref >= 0 && now - ref < horizon) break;
        entries_.pop_front();
        ++first_sn_;
        --tx_cursor_;
    }
}

}  // namespace l4span::core
