#include "core/profile_table.h"

namespace l4span::core {

void profile_table::grow()
{
    const std::size_t old_cap = bytes_.size();
    const std::size_t cap = old_cap == 0 ? 64 : old_cap * 2;
    std::vector<std::uint32_t> bytes(cap);
    std::vector<sim::tick> t_in(cap), t_tx(cap), t_dl(cap);
    std::vector<std::uint8_t> disc(cap);
    for (std::size_t i = 0; i < count_; ++i) {
        const std::size_t p = phys(i);
        bytes[i] = bytes_[p];
        t_in[i] = t_ingress_[p];
        t_tx[i] = t_transmitted_[p];
        t_dl[i] = t_delivered_[p];
        disc[i] = discarded_[p];
    }
    bytes_ = std::move(bytes);
    t_ingress_ = std::move(t_in);
    t_transmitted_ = std::move(t_tx);
    t_delivered_ = std::move(t_dl);
    discarded_ = std::move(disc);
    head_ = 0;
    mask_ = cap - 1;
}

void profile_table::on_ingress(ran::pdcp_sn_t sn, std::uint32_t bytes, sim::tick now)
{
    if (!has_entries_) {
        first_sn_ = sn;
        has_entries_ = true;
    }
    if (count_ == bytes_.size()) grow();
    const std::size_t p = phys(count_);
    bytes_[p] = bytes;
    t_ingress_[p] = now;
    t_transmitted_[p] = -1;
    t_delivered_[p] = -1;
    discarded_[p] = 0;
    ++count_;
    standing_bytes_ += bytes;
    standing_packets_ += 1;
}

void profile_table::on_transmitted(ran::pdcp_sn_t highest_sn, sim::tick ts,
                                   const std::function<void(ran::pdcp_sn_t, std::uint32_t)>& txed)
{
    if (!has_entries_) return;
    while (tx_cursor_ < count_ &&
           static_cast<ran::pdcp_sn_t>(first_sn_ + tx_cursor_) <= highest_sn) {
        const std::size_t p = phys(tx_cursor_);
        if (!discarded_[p]) {
            t_transmitted_[p] = ts;
            standing_bytes_ -= bytes_[p];
            standing_packets_ -= 1;
            if (txed) txed(static_cast<ran::pdcp_sn_t>(first_sn_ + tx_cursor_), bytes_[p]);
        }
        ++tx_cursor_;
    }
}

void profile_table::on_delivered(ran::pdcp_sn_t highest_sn, sim::tick ts)
{
    if (!has_entries_) return;
    while (dl_cursor_ < count_ &&
           static_cast<ran::pdcp_sn_t>(first_sn_ + dl_cursor_) <= highest_sn) {
        const std::size_t p = phys(dl_cursor_);
        if (t_delivered_[p] < 0 && !discarded_[p]) t_delivered_[p] = ts;
        ++dl_cursor_;
    }
}

void profile_table::on_discard(ran::pdcp_sn_t sn)
{
    if (!has_entries_ || sn < first_sn_) return;
    const std::size_t idx = sn - first_sn_;
    if (idx >= count_) return;
    const std::size_t p = phys(idx);
    if (discarded_[p]) return;
    if (t_transmitted_[p] < 0) {
        standing_bytes_ -= bytes_[p];
        standing_packets_ -= 1;
    }
    discarded_[p] = 1;
}

sim::tick profile_table::head_age(sim::tick now) const
{
    for (std::size_t i = tx_cursor_; i < count_; ++i) {
        const std::size_t p = phys(i);
        if (!discarded_[p]) return now - t_ingress_[p];
    }
    return 0;
}

std::optional<profile_entry> profile_table::find(ran::pdcp_sn_t sn) const
{
    if (!has_entries_ || sn < first_sn_) return std::nullopt;
    const std::size_t idx = sn - first_sn_;
    if (idx >= count_) return std::nullopt;
    const std::size_t p = phys(idx);
    profile_entry e;
    e.sn = sn;
    e.bytes = bytes_[p];
    e.t_ingress = t_ingress_[p];
    e.t_transmitted = t_transmitted_[p];
    e.t_delivered = t_delivered_[p];
    e.discarded = discarded_[p] != 0;
    return e;
}

void profile_table::prune(sim::tick now, sim::tick horizon)
{
    while (count_ > 0 && tx_cursor_ > 0) {
        const bool settled = discarded_[head_] || t_transmitted_[head_] >= 0;
        if (!settled) break;
        const sim::tick ref =
            t_delivered_[head_] >= 0 ? t_delivered_[head_] : t_transmitted_[head_];
        if (ref >= 0 && now - ref < horizon) break;
        head_ = (head_ + 1) & mask_;
        --count_;
        ++first_sn_;
        --tx_cursor_;
        if (dl_cursor_ > 0) --dl_cursor_;
    }
}

}  // namespace l4span::core
