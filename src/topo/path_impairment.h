// Composable wired-path impairment stage ("A Fresh Look at ECN Traversal in
// the Wild"): real Internet paths bleach CE marks, strip ECT, re-mark
// ECT(1) traffic, lose, reorder and duplicate packets. L4Span's premise is
// that ECN signaling survives end-to-end; this stage lets every scenario
// ask what happens when the path lies.
//
// A stage is inserted on one wired hop, one direction (the scenarios mount
// one between the core bottleneck and the RAN, and one on the server-side
// return path). Per packet, the transforms apply in a fixed, documented
// order:
//
//   1. re-mark   ECT(1) -> ECT(0)   (L4S identifier erased; flow now classic)
//   2. bleach    CE     -> ECT(0)   (congestion signal erased, ECT restored)
//   3. strip     any    -> Not-ECT  (field-zeroing middlebox: ECT and CE
//                both cleared — the path declares the flow non-ECN-capable,
//                and senders' ECN validation eventually falls back)
//   4. loss      Bernoulli, or Gilbert bursts when loss_burst > 1
//   5. reorder   hold the packet until `reorder_gap` later packets have
//                passed (delay-k-packets), bounded by reorder_hold_max
//   6. duplicate deliver the packet twice (reordered packets are never
//                also duplicated; the decision order above is normative)
//
// Determinism: each stage owns a private RNG seeded at construction
// (impairment_seed), draws only as a function of its own traffic, and runs
// entirely on one event loop — so sharded topologies stay byte-identical
// for any --jobs, and a stage with every knob off draws no randomness and
// schedules no events (the pass-through fast path is behavior-preserving).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace l4span::topo {

struct impairment_spec {
    // Marking transforms (independent per-packet probabilities in [0, 1],
    // applied in the normative order documented above).
    double remark_ect1 = 0.0;  // ECT(1) -> ECT(0)
    double bleach_ce = 0.0;    // CE -> ECT(0)
    double strip_ect = 0.0;    // ECT(0)/ECT(1)/CE -> Not-ECT (field zeroed)
    // Loss: stationary loss probability; loss_burst is the mean burst
    // length in packets (1 = independent Bernoulli, >1 = Gilbert bursts).
    double loss = 0.0;
    double loss_burst = 1.0;
    // Reordering: with probability `reorder`, hold the packet until
    // `reorder_gap` subsequent packets have passed, or `reorder_hold_max`
    // sim time elapses, whichever comes first (so tail packets cannot
    // vanish into the hold buffer).
    double reorder = 0.0;
    int reorder_gap = 3;
    sim::tick reorder_hold_max = sim::from_ms(20);
    // Duplication probability.
    double duplicate = 0.0;
    // Install the stage even when every knob is off — exercises the
    // pass-through fast path (used by the --impair-noop bench mode and the
    // behavior-preservation tests).
    bool force_stage = false;

    // Per-flow policies, five-tuple-hashed: when non-empty, each packet is
    // governed by flow_policies[hash(five_tuple) % size()] INSTEAD of the
    // base knobs — modelling per-flow ECMP, where different flows of one
    // host ride different transit paths through different middleboxes (the
    // measurement papers see exactly this: one flow bleached, its sibling
    // clean). Policies may not nest; Gilbert loss-burst state is tracked
    // per policy, while the reorder hold buffer (a shared queue) and the
    // RNG stay stage-wide.
    std::vector<impairment_spec> flow_policies;

    // True when any impairment can actually fire.
    bool any_active() const
    {
        if (remark_ect1 > 0.0 || bleach_ce > 0.0 || strip_ect > 0.0 ||
            loss > 0.0 || reorder > 0.0 || duplicate > 0.0)
            return true;
        for (const auto& p : flow_policies)
            if (p.any_active()) return true;
        return false;
    }
    // True when a scenario should mount a stage at all.
    bool wants_stage() const { return force_stage || any_active(); }

    // Throws std::invalid_argument naming `where` (e.g.
    // "cell_spec.impair_dl") with an actionable message on any
    // out-of-range knob.
    void validate(const std::string& where) const;
};

struct impairment_stats {
    std::uint64_t input = 0;      // packets entering the stage
    std::uint64_t delivered = 0;  // packets leaving (includes duplicates)
    std::uint64_t remarked = 0;   // ECT(1) -> ECT(0)
    std::uint64_t bleached = 0;   // CE -> ECT(0)
    std::uint64_t stripped = 0;   // ECT -> Not-ECT
    std::uint64_t lost = 0;
    std::uint64_t reordered = 0;  // packets that took the hold path
    std::uint64_t duplicated = 0;
};

// Deterministic per-stage seed derivation (splitmix64 finalizer): `lane`
// distinguishes stages of one scenario (shard index, flow handle, ...),
// `uplink` the direction, so every stage draws an independent stream.
inline std::uint64_t impairment_seed(std::uint64_t base, std::uint64_t lane,
                                     bool uplink)
{
    std::uint64_t x =
        base ^ (0x9e3779b97f4a7c15ull * (2 * lane + (uplink ? 1 : 0) + 1));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x | 1;
}

class path_impairment {
public:
    using deliver_fn = std::function<void(net::packet)>;

    // Validates `spec` (throws std::invalid_argument, see
    // impairment_spec::validate). The loop is used only for the reorder
    // hold timeout; an all-off stage never touches it.
    path_impairment(sim::event_loop& loop, impairment_spec spec, std::uint64_t seed);

    void set_deliver(deliver_fn f) { deliver_ = std::move(f); }

    // Pushes one packet through the stage. Deliveries happen synchronously
    // (zero, one or two calls into the deliver handler) except for held
    // (reordered) packets, which leave when enough traffic has passed or
    // their hold timer fires.
    void send(net::packet p);

    // Replaces the stage's spec mid-run (fault injection: a reroute onto a
    // different transit path). Validates like the constructor; the RNG and
    // the cumulative stats carry over, loss-burst state resets (a new path
    // has no memory of the old one's bursts), and already-held packets
    // release under their original gap counters and hold timers.
    void set_spec(impairment_spec spec);

    const impairment_spec& spec() const { return spec_; }
    const impairment_stats& stats() const { return st_; }
    // Reason-coded `impair` trace events at every transform that fires
    // (remark/bleach/strip/loss/reorder/duplicate). `stage` labels this
    // stage in the merged trace (the scenarios use (lane << 1) | uplink).
    void set_tracer(obs::tracer* t, std::uint32_t stage)
    {
        tracer_ = t;
        stage_id_ = stage;
    }
    // Packets currently in the reorder hold buffer (conservation:
    // input + duplicated == delivered + lost + held).
    std::size_t held_packets() const { return held_.size(); }

private:
    struct held_pkt {
        net::packet pkt;
        int remaining;        // passing packets until release
        std::uint64_t id;     // matches the hold-timeout event
    };

    bool lose_next(const impairment_spec& act, std::uint8_t& burst);
    void pass(net::packet p);            // deliver + advance the hold buffer
    void deliver(net::packet p);
    void release_by_id(std::uint64_t id);
    void trace(const net::packet& p, obs::reason r);

    sim::event_loop& loop_;
    impairment_spec spec_;
    sim::rng rng_;
    deliver_fn deliver_;
    impairment_stats st_;
    obs::tracer* tracer_ = nullptr;
    std::uint32_t stage_id_ = 0;
    std::uint8_t base_burst_ = 0;            // Gilbert state, base knobs
    std::vector<std::uint8_t> policy_burst_;  // Gilbert state per flow policy
    std::vector<held_pkt> held_;
    std::uint64_t next_hold_id_ = 0;
};

}  // namespace l4span::topo
