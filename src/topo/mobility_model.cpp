#include "topo/mobility_model.h"

#include <algorithm>

#include "sim/rng.h"

namespace l4span::topo {

mobility_model::mobility_model(mobility_config cfg) : cfg_(cfg)
{
    if (cfg_.num_cells < 2 || cfg_.handovers_per_ue_per_sec <= 0.0) return;
    const int num_ues = cfg_.num_cells * cfg_.ues_per_cell;
    const double mean_dwell_sec = 1.0 / cfg_.handovers_per_ue_per_sec;

    for (int ue = 0; ue < num_ues; ++ue) {
        // Independent per-UE stream so plans are stable when UEs are added.
        sim::rng rng(cfg_.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(ue));
        int current = cfg_.ues_per_cell > 0 ? ue / cfg_.ues_per_cell : 0;
        sim::tick t = cfg_.start;
        for (;;) {
            t += sim::from_sec(rng.exponential(mean_dwell_sec));
            if (t >= cfg_.end) break;
            // Uniform among the other cells: a walk, not a ping-pong.
            int target = static_cast<int>(
                rng.uniform_int(0, static_cast<std::int64_t>(cfg_.num_cells) - 2));
            if (target >= current) ++target;
            schedule_.push_back({t, ue, target});
            current = target;
        }
    }
    std::sort(schedule_.begin(), schedule_.end(),
              [](const handover_event& a, const handover_event& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.ue < b.ue;
              });
}

}  // namespace l4span::topo
