#include "topo/path_impairment.h"

#include <algorithm>
#include <stdexcept>

namespace l4span::topo {

namespace {

void check_prob(const std::string& where, const char* knob, double v)
{
    if (v < 0.0 || v > 1.0 || v != v)
        throw std::invalid_argument(
            where + ": " + knob + " = " + std::to_string(v) +
            " is not a probability — every impairment probability must lie "
            "within [0, 1] (0 disables the transform)");
}

}  // namespace

void impairment_spec::validate(const std::string& where) const
{
    check_prob(where, "remark_ect1", remark_ect1);
    check_prob(where, "bleach_ce", bleach_ce);
    check_prob(where, "strip_ect", strip_ect);
    check_prob(where, "loss", loss);
    check_prob(where, "reorder", reorder);
    check_prob(where, "duplicate", duplicate);
    if (loss_burst < 1.0 || loss_burst != loss_burst)
        throw std::invalid_argument(
            where + ": loss_burst = " + std::to_string(loss_burst) +
            " — the mean loss burst length is measured in packets and must "
            "be >= 1 (1 = independent Bernoulli losses, larger = Gilbert "
            "bursts)");
    if (reorder_gap < 1)
        throw std::invalid_argument(
            where + ": reorder_gap = " + std::to_string(reorder_gap) +
            " — a reordered packet is delayed behind at least one later "
            "packet, so the gap must be >= 1");
    if (reorder_hold_max <= 0)
        throw std::invalid_argument(
            where + ": reorder_hold_max must be a positive duration — it "
            "bounds how long a reordered packet can sit in the hold buffer "
            "(e.g. sim::from_ms(20))");
    for (std::size_t i = 0; i < flow_policies.size(); ++i) {
        const std::string pw = where + ".flow_policies[" + std::to_string(i) + "]";
        if (!flow_policies[i].flow_policies.empty())
            throw std::invalid_argument(
                pw + ": per-flow policies may not nest — a packet hashes to "
                     "exactly one policy");
        flow_policies[i].validate(pw);
    }
}

path_impairment::path_impairment(sim::event_loop& loop, impairment_spec spec,
                                 std::uint64_t seed)
    : loop_(loop), spec_(std::move(spec)), rng_(seed)
{
    spec_.validate("path_impairment");
    policy_burst_.assign(spec_.flow_policies.size(), 0);
}

void path_impairment::set_spec(impairment_spec spec)
{
    spec.validate("path_impairment::set_spec");
    spec_ = std::move(spec);
    base_burst_ = 0;
    policy_burst_.assign(spec_.flow_policies.size(), 0);
}

bool path_impairment::lose_next(const impairment_spec& act, std::uint8_t& burst)
{
    if (act.loss <= 0.0) return false;
    if (act.loss_burst <= 1.0) return rng_.bernoulli(act.loss);
    // Gilbert model: stationary loss == `loss`, mean burst == `loss_burst`.
    const double exit_p = 1.0 / act.loss_burst;
    if (burst) {
        if (rng_.bernoulli(exit_p)) burst = 0;
        return true;
    }
    const double enter_p =
        act.loss >= 1.0 ? 1.0 : exit_p * act.loss / (1.0 - act.loss);
    if (rng_.bernoulli(std::min(enter_p, 1.0))) {
        burst = 1;
        return true;
    }
    return false;
}

void path_impairment::send(net::packet p)
{
    ++st_.input;

    // Per-flow ECMP: with policies installed, the packet's five-tuple hash
    // picks the transit path (and its Gilbert state) that governs every
    // decision below; otherwise the base knobs do.
    const impairment_spec* act = &spec_;
    std::uint8_t* burst = &base_burst_;
    if (!spec_.flow_policies.empty()) {
        const std::size_t idx =
            net::five_tuple_hash{}(p.ft) % spec_.flow_policies.size();
        act = &spec_.flow_policies[idx];
        burst = &policy_burst_[idx];
    }

    // Marking transforms, in the normative order (see header). Each draw is
    // gated on both the knob and the packet's codepoint, so a stage draws
    // randomness only for packets a transform could actually touch.
    if (p.ecn_field == net::ecn::ect1 && act->remark_ect1 > 0.0 &&
        rng_.bernoulli(act->remark_ect1)) {
        p.ecn_field = net::ecn::ect0;
        ++st_.remarked;
        trace(p, obs::reason::remark);
    }
    if (p.ecn_field == net::ecn::ce && act->bleach_ce > 0.0 &&
        rng_.bernoulli(act->bleach_ce)) {
        p.ecn_field = net::ecn::ect0;
        ++st_.bleached;
        trace(p, obs::reason::bleach);
    }
    if (p.ecn_field != net::ecn::not_ect && act->strip_ect > 0.0 &&
        rng_.bernoulli(act->strip_ect)) {
        p.ecn_field = net::ecn::not_ect;
        ++st_.stripped;
        trace(p, obs::reason::strip);
    }

    if (lose_next(*act, *burst)) {
        ++st_.lost;
        trace(p, obs::reason::gilbert_loss);
        return;
    }

    if (act->reorder > 0.0 && rng_.bernoulli(act->reorder)) {
        ++st_.reordered;
        trace(p, obs::reason::reorder);
        const std::uint64_t id = ++next_hold_id_;
        held_.push_back({std::move(p), act->reorder_gap, id});
        loop_.schedule_after(act->reorder_hold_max,
                             [this, id] { release_by_id(id); });
        return;
    }

    const bool dup = act->duplicate > 0.0 && rng_.bernoulli(act->duplicate);
    if (dup) {
        ++st_.duplicated;
        trace(p, obs::reason::duplicate);
        net::packet copy = p;
        pass(std::move(p));
        pass(std::move(copy));
    } else {
        pass(std::move(p));
    }
}

void path_impairment::pass(net::packet p)
{
    deliver(std::move(p));
    if (held_.empty()) return;
    // One passing packet advances every held packet; releases fire in hold
    // order right behind the packet that unblocked them. Released packets do
    // not themselves advance the buffer (no cascades).
    std::vector<net::packet> due;
    for (auto it = held_.begin(); it != held_.end();) {
        if (--it->remaining <= 0) {
            due.push_back(std::move(it->pkt));
            it = held_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto& d : due) deliver(std::move(d));
}

void path_impairment::release_by_id(std::uint64_t id)
{
    for (auto it = held_.begin(); it != held_.end(); ++it) {
        if (it->id != id) continue;
        net::packet p = std::move(it->pkt);
        held_.erase(it);
        deliver(std::move(p));
        return;
    }
    // Already released by passing traffic — the timer is a no-op.
}

void path_impairment::deliver(net::packet p)
{
    ++st_.delivered;
    if (deliver_) deliver_(std::move(p));
}

void path_impairment::trace(const net::packet& p, obs::reason r)
{
    if (!tracer_) return;
    tracer_->emit(loop_.now(), obs::point::impair, r, stage_id_,
                  (p.flow_id << 32) | (p.pkt_id & 0xffffffffull),
                  p.payload_bytes);
}

}  // namespace l4span::topo
