#include "topo/cross_traffic.h"

#include <algorithm>
#include <stdexcept>

namespace l4span::topo {

void cross_traffic_spec::validate(const std::string& where) const
{
    if (model != "poisson" && model != "cbr")
        throw std::invalid_argument(where + ": unknown cross-traffic model \"" +
                                    model + "\" (valid: poisson, cbr)");
    if (!(rate_bps > 0.0))
        throw std::invalid_argument(
            where + ": rate_bps = " + std::to_string(rate_bps) +
            " — cross-traffic needs a positive offered load in bits per "
            "second (omit the entry to disable it)");
    if (pkt_bytes == 0)
        throw std::invalid_argument(
            where + ": pkt_bytes must be >= 1 — a cross-traffic packet needs "
            "at least one payload byte to occupy the bottleneck");
    if (start_time < 0)
        throw std::invalid_argument(
            where + ": start_time must be >= 0 (simulation time starts at 0)");
    if (stop_time >= 0 && stop_time <= start_time)
        throw std::invalid_argument(
            where + ": stop_time must be after start_time (or -1 to run to "
            "the end of the scenario)");
}

cross_traffic::cross_traffic(sim::event_loop& loop, cross_traffic_spec spec,
                             std::uint64_t seed, std::uint32_t index,
                             send_fn send)
    : loop_(loop),
      spec_(std::move(spec)),
      rng_(seed),
      index_(index),
      send_(std::move(send))
{
    spec_.validate("cross_traffic");
    const std::int64_t wire =
        static_cast<std::int64_t>(spec_.pkt_bytes) + net::k_ipv4_header_bytes +
        net::k_udp_header_bytes;
    mean_gap_ = std::max<sim::tick>(1, sim::tx_time(wire, spec_.rate_bps));
}

void cross_traffic::start()
{
    loop_.schedule_at(spec_.start_time, [this] { emit(); });
}

sim::tick cross_traffic::next_gap()
{
    if (spec_.model == "cbr") return mean_gap_;
    return std::max<sim::tick>(
        1, static_cast<sim::tick>(
               rng_.exponential(static_cast<double>(mean_gap_))));
}

void cross_traffic::emit()
{
    if (spec_.stop_time >= 0 && loop_.now() >= spec_.stop_time) return;

    net::packet p;
    p.ft.src_ip = 0x0a630001u + index_;  // 10.99.0.x: background senders
    p.ft.dst_ip = 0x0a630100u + index_;
    p.ft.src_port = static_cast<std::uint16_t>(40000 + index_);
    p.ft.dst_port = 9;  // discard
    p.ft.proto = net::ip_proto::udp;
    p.ecn_field = spec_.ecn_field;
    p.payload_bytes = spec_.pkt_bytes;
    p.flow_id = k_flow_id;
    p.pkt_id = packets_;
    p.sent_time = loop_.now();

    ++packets_;
    bytes_ += p.size_bytes();
    send_(std::move(p));

    loop_.schedule_after(next_gap(), [this] { emit(); });
}

}  // namespace l4span::topo
