#include "topo/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace l4span::topo {

const char* fault_class_name(fault_class cls)
{
    switch (cls) {
    case fault_class::rlf: return "rlf";
    case fault_class::handover_failure: return "handover_failure";
    case fault_class::cell_outage: return "cell_outage";
    case fault_class::link_flap: return "link_flap";
    case fault_class::impairment_swap: return "impairment_swap";
    }
    return "unknown";
}

void fault_plan_config::validate(const std::string& where) const
{
    auto bad = [&where](const std::string& what) {
        throw std::invalid_argument(where + ": " + what);
    };
    if (num_cells < 1) bad("need >= 1 cell");
    if (ues_per_cell < 1) bad("need >= 1 UE per cell");
    for (double r : {rlf_per_ue_per_sec, ho_failure_per_ue_per_sec,
                     outages_per_cell_per_sec, flaps_per_cell_per_sec,
                     swaps_per_cell_per_sec})
        if (r < 0.0) bad("fault rates must be >= 0");
    if (any_enabled() && end <= start)
        bad("planning horizon is empty (end <= start) but fault rates are set");
    if (rlf_outage_mean <= 0 || cell_outage_mean <= 0 || flap_mean <= 0)
        bad("outage/stall means must be > 0");
    if (ho_failure_reestablish_fraction < 0.0 || ho_failure_reestablish_fraction > 1.0)
        bad("ho_failure_reestablish_fraction must be in [0, 1]");
    if (swaps_per_cell_per_sec > 0.0 && swap_profiles.empty())
        bad("impairment swaps enabled but swap_profiles is empty — list the "
            "profiles to cycle through (e.g. a clean spec and a bleaching "
            "transit with force_stage)");
    for (std::size_t i = 0; i < swap_profiles.size(); ++i)
        swap_profiles[i].validate(where + ".swap_profiles[" + std::to_string(i) + "]");
    if (outages_per_cell_per_sec > 0.0 && num_cells < 2)
        bad("cell outages need >= 2 cells (somewhere to evacuate UEs to)");
}

namespace {

// Exponential duration with a floor, drawn from `rng`.
sim::tick draw_duration(sim::rng& rng, sim::tick mean, sim::tick floor)
{
    const sim::tick d =
        sim::from_sec(rng.exponential(sim::to_sec(mean)));
    return std::max(d, floor);
}

}  // namespace

fault_plan::fault_plan(fault_plan_config cfg) : cfg_(std::move(cfg))
{
    cfg_.validate("fault_plan_config");
    const int num_ues = cfg_.num_cells * cfg_.ues_per_cell;

    // Per-UE streams: radio link failures and handover sabotage. One RNG per
    // (class, UE) lane, so plans are stable as UEs or classes are added.
    if (cfg_.rlf_per_ue_per_sec > 0.0) {
        const double mean = 1.0 / cfg_.rlf_per_ue_per_sec;
        for (int ue = 0; ue < num_ues; ++ue) {
            sim::rng rng(fault_seed(cfg_.seed, fault_class::rlf,
                                    static_cast<std::uint64_t>(ue)));
            for (sim::tick t = cfg_.start;;) {
                t += sim::from_sec(rng.exponential(mean));
                if (t >= cfg_.end) break;
                fault_event ev;
                ev.when = t;
                ev.cls = fault_class::rlf;
                ev.ue = ue;
                ev.duration =
                    draw_duration(rng, cfg_.rlf_outage_mean, cfg_.rlf_outage_min);
                schedule_.push_back(std::move(ev));
            }
        }
    }
    if (cfg_.ho_failure_per_ue_per_sec > 0.0) {
        const double mean = 1.0 / cfg_.ho_failure_per_ue_per_sec;
        for (int ue = 0; ue < num_ues; ++ue) {
            sim::rng rng(fault_seed(cfg_.seed, fault_class::handover_failure,
                                    static_cast<std::uint64_t>(ue)));
            for (sim::tick t = cfg_.start;;) {
                t += sim::from_sec(rng.exponential(mean));
                if (t >= cfg_.end) break;
                fault_event ev;
                ev.when = t;
                ev.cls = fault_class::handover_failure;
                ev.ue = ue;
                ev.mode = rng.bernoulli(cfg_.ho_failure_reestablish_fraction)
                              ? ho_failure_mode::reestablish
                              : ho_failure_mode::rollback;
                schedule_.push_back(std::move(ev));
            }
        }
    }

    // Per-cell streams: outages (self-non-overlapping — a cell recovers
    // before it can fail again), link flaps and impairment swaps.
    if (cfg_.outages_per_cell_per_sec > 0.0) {
        const double mean = 1.0 / cfg_.outages_per_cell_per_sec;
        for (int c = 0; c < cfg_.num_cells; ++c) {
            sim::rng rng(fault_seed(cfg_.seed, fault_class::cell_outage,
                                    static_cast<std::uint64_t>(c)));
            for (sim::tick t = cfg_.start;;) {
                t += sim::from_sec(rng.exponential(mean));
                if (t >= cfg_.end) break;
                fault_event ev;
                ev.when = t;
                ev.cls = fault_class::cell_outage;
                ev.cell = c;
                ev.duration = draw_duration(rng, cfg_.cell_outage_mean,
                                            cfg_.cell_outage_min);
                schedule_.push_back(ev);
                t += ev.duration;  // next draw starts after recovery
            }
        }
    }
    if (cfg_.flaps_per_cell_per_sec > 0.0) {
        const double mean = 1.0 / cfg_.flaps_per_cell_per_sec;
        for (int c = 0; c < cfg_.num_cells; ++c) {
            sim::rng rng(fault_seed(cfg_.seed, fault_class::link_flap,
                                    static_cast<std::uint64_t>(c)));
            for (sim::tick t = cfg_.start;;) {
                t += sim::from_sec(rng.exponential(mean));
                if (t >= cfg_.end) break;
                fault_event ev;
                ev.when = t;
                ev.cls = fault_class::link_flap;
                ev.cell = c;
                ev.duration = draw_duration(rng, cfg_.flap_mean, cfg_.flap_min);
                schedule_.push_back(ev);
                t += ev.duration;  // a link cannot re-flap while down
            }
        }
    }
    if (cfg_.swaps_per_cell_per_sec > 0.0) {
        const double mean = 1.0 / cfg_.swaps_per_cell_per_sec;
        for (int c = 0; c < cfg_.num_cells; ++c) {
            sim::rng rng(fault_seed(cfg_.seed, fault_class::impairment_swap,
                                    static_cast<std::uint64_t>(c)));
            std::size_t next_profile = 0;
            for (sim::tick t = cfg_.start;;) {
                t += sim::from_sec(rng.exponential(mean));
                if (t >= cfg_.end) break;
                fault_event ev;
                ev.when = t;
                ev.cls = fault_class::impairment_swap;
                ev.cell = c;
                ev.uplink = cfg_.swap_uplink;
                ev.impair = cfg_.swap_profiles[next_profile];
                next_profile = (next_profile + 1) % cfg_.swap_profiles.size();
                schedule_.push_back(std::move(ev));
            }
        }
    }

    std::sort(schedule_.begin(), schedule_.end(),
              [](const fault_event& a, const fault_event& b) {
                  if (a.when != b.when) return a.when < b.when;
                  if (a.cls != b.cls) return a.cls < b.cls;
                  if (a.ue != b.ue) return a.ue < b.ue;
                  return a.cell < b.cell;
              });
}

std::size_t fault_plan::count(fault_class cls) const
{
    return static_cast<std::size_t>(
        std::count_if(schedule_.begin(), schedule_.end(),
                      [cls](const fault_event& ev) { return ev.cls == cls; }));
}

}  // namespace l4span::topo
