// Point-to-point wired link: serialization at a (possibly time-varying)
// line rate, a queue discipline, and propagation delay. Models the server->
// core path, including the middlebox bottleneck of the Fig. 2 experiments.
#pragma once

#include <functional>
#include <memory>

#include "aqm/fifo.h"
#include "aqm/queue_discipline.h"
#include "net/packet.h"
#include "sim/event_loop.h"

namespace l4span::topo {

class wired_link {
public:
    using deliver_fn = std::function<void(net::packet)>;

    wired_link(sim::event_loop& loop, double rate_bps, sim::tick prop_delay,
               std::unique_ptr<aqm::queue_discipline> queue = nullptr)
        : loop_(loop),
          rate_bps_(rate_bps),
          prop_(prop_delay),
          queue_(queue ? std::move(queue) : std::make_unique<aqm::fifo_queue>())
    {
    }

    void set_deliver(deliver_fn f) { deliver_ = std::move(f); }

    // Takes effect from the next packet's serialization. A rate of zero (or
    // below) stalls the link — packets queue in the discipline — until a
    // later set_rate() resumes draining; an in-flight serialization always
    // completes at the rate it started with.
    void set_rate(double bps)
    {
        rate_bps_ = bps;
        pump();  // resume after a stall (no-op while busy or still stalled)
    }
    double rate() const { return rate_bps_; }

    void send(net::packet p)
    {
        queue_->enqueue(std::move(p), loop_.now());
        pump();
    }

    aqm::queue_discipline& queue() { return *queue_; }

private:
    void pump()
    {
        if (busy_ || rate_bps_ <= 0.0) return;
        auto p = queue_->dequeue(loop_.now());
        if (!p) return;
        busy_ = true;
        const sim::tick serialize = sim::tx_time(p->size_bytes(), rate_bps_);
        loop_.schedule_after(serialize, [this, pkt = std::move(*p)]() mutable {
            busy_ = false;
            loop_.schedule_after(prop_, [this, pkt = std::move(pkt)]() mutable {
                if (deliver_) deliver_(std::move(pkt));
            });
            pump();
        });
    }

    sim::event_loop& loop_;
    double rate_bps_;
    sim::tick prop_;
    std::unique_ptr<aqm::queue_discipline> queue_;
    deliver_fn deliver_;
    bool busy_ = false;
};

}  // namespace l4span::topo
