// Time-scheduled UE mobility: a deterministic random-walk handover plan for
// a multi-cell topology. Each UE dwells in its current cell for an
// exponentially distributed interval, then hands over to a uniformly chosen
// other cell — the mobility pattern 5G-Advanced L4S evaluations use to
// stress marking-state migration.
//
// The model is pure planning: it emits a sorted schedule of handover events
// that scenario::topology replays. Same config, same schedule, bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace l4span::topo {

struct handover_event {
    sim::tick when = 0;
    int ue = 0;  // global UE index (scenario::topology numbering)
    int target_cell = 0;
};

struct mobility_config {
    int num_cells = 2;
    int ues_per_cell = 1;  // initial homing, cell-major (UE g starts in g / ues_per_cell)
    double handovers_per_ue_per_sec = 0.2;
    sim::tick start = sim::from_ms(500);  // let flows establish first
    sim::tick end = 0;                    // planning horizon (exclusive)
    std::uint64_t seed = 1;
};

class mobility_model {
public:
    explicit mobility_model(mobility_config cfg);

    // Sorted by (when, ue); deterministic for a given config.
    const std::vector<handover_event>& schedule() const { return schedule_; }
    const mobility_config& config() const { return cfg_; }

private:
    mobility_config cfg_;
    std::vector<handover_event> schedule_;
};

}  // namespace l4span::topo
