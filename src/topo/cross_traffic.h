// Wired cross-traffic: unresponsive Poisson or CBR senders sharing the core
// bottleneck queue/AQM with the measured flows. Cross packets consume
// bottleneck capacity (and AQM headroom) but are sunk after the bottleneck —
// they model aggregate Internet background load, not per-UE traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace l4span::topo {

struct cross_traffic_spec {
    // "poisson" (exponential inter-arrivals at the mean rate) or "cbr"
    // (fixed spacing).
    std::string model = "poisson";
    double rate_bps = 0.0;            // offered load (wire bits per second)
    std::uint32_t pkt_bytes = 1200;   // UDP payload per packet
    net::ecn ecn_field = net::ecn::not_ect;  // background is non-ECN by default
    sim::tick start_time = 0;
    sim::tick stop_time = -1;         // -1: run to scenario end
    // Compete for the uplink (server-side return) bottleneck instead of the
    // downlink core bottleneck: background load on the ACK path, which
    // delays and aggregates the measured flows' feedback. Requires
    // cell_spec.ul_bottleneck_bps > 0.
    bool uplink = false;

    // Throws std::invalid_argument naming `where` with an actionable
    // message on any invalid field.
    void validate(const std::string& where) const;
};

class cross_traffic {
public:
    using send_fn = std::function<void(net::packet)>;

    // Cross packets carry this flow_id; scenario routing tables treat any
    // unknown flow_id as a sink, so the packets vanish after the bottleneck.
    static constexpr std::uint64_t k_flow_id = ~0ull;

    // `index` differentiates the five-tuples (and seeds) of multiple
    // generators in one scenario.
    cross_traffic(sim::event_loop& loop, cross_traffic_spec spec,
                  std::uint64_t seed, std::uint32_t index, send_fn send);

    // Schedules the first emission at spec.start_time. Call once.
    void start();

    std::uint64_t packets_sent() const { return packets_; }
    std::uint64_t bytes_sent() const { return bytes_; }  // wire bytes

private:
    void emit();
    sim::tick next_gap();

    sim::event_loop& loop_;
    cross_traffic_spec spec_;
    sim::rng rng_;
    std::uint32_t index_;
    send_fn send_;
    sim::tick mean_gap_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
};

}  // namespace l4span::topo
