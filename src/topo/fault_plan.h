// Deterministic chaos schedules for a multi-cell topology: radio link
// failures, handover failures, whole-cell outages, wired-link flaps and
// mid-run impairment swaps. Real RANs fail constantly; L4Span's pitch is
// incremental deployability, so every scenario must be runnable with the
// infrastructure itself failing underneath it.
//
// Like topo::mobility_model, the plan is pure planning: it emits a sorted
// schedule of fault_events that scenario::topology replays through
// sim::fault_injector. Each fault class draws from its own splitmix64-forked
// RNG stream (fault_seed), so enabling one class never shifts another's
// draws, plans are stable when classes are added, and runs stay
// byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "topo/path_impairment.h"

namespace l4span::topo {

enum class fault_class : std::uint8_t {
    rlf = 0,           // UE radio link goes to outage; gNB detects + detaches
    handover_failure,  // X2 context transfer dropped mid-flight
    cell_outage,       // whole cell down; UEs evacuated to neighbors
    link_flap,         // wired downlink hop down/up (bounded buffering)
    impairment_swap,   // reroute onto a different impairment profile mid-run
};
inline constexpr std::size_t k_num_fault_classes = 5;

const char* fault_class_name(fault_class cls);

// How a failed handover recovers (drawn per event by the plan).
enum class ho_failure_mode : std::uint8_t {
    rollback = 0,   // context returns to the source cell after the timeout
    reestablish,    // treated as RLF: hook state invalidated, re-attach to
                    // the original target after the re-establishment backoff
};

struct fault_event {
    sim::tick when = 0;
    fault_class cls = fault_class::rlf;
    int ue = -1;    // rlf, handover_failure (global topology UE index)
    int cell = -1;  // cell_outage, link_flap, impairment_swap
    // rlf: radio outage length; cell_outage: downtime; link_flap: stall.
    sim::tick duration = 0;
    ho_failure_mode mode = ho_failure_mode::rollback;  // handover_failure
    bool uplink = false;          // impairment_swap: which direction's stage
    impairment_spec impair;       // impairment_swap: the new profile
};

struct fault_plan_config {
    int num_cells = 2;
    int ues_per_cell = 1;
    sim::tick start = sim::from_ms(500);  // let flows establish first
    sim::tick end = 0;                    // planning horizon (exclusive)
    std::uint64_t seed = 1;

    // Rate-driven event streams (Poisson; 0 disables a class).
    double rlf_per_ue_per_sec = 0.0;
    double ho_failure_per_ue_per_sec = 0.0;
    double outages_per_cell_per_sec = 0.0;
    double flaps_per_cell_per_sec = 0.0;
    double swaps_per_cell_per_sec = 0.0;

    // Mean outage/stall lengths (exponential, floored at the minimum so an
    // event is always observable at slot granularity).
    sim::tick rlf_outage_mean = sim::from_ms(300);
    sim::tick rlf_outage_min = sim::from_ms(50);
    sim::tick cell_outage_mean = sim::from_ms(800);
    sim::tick cell_outage_min = sim::from_ms(200);
    sim::tick flap_mean = sim::from_ms(400);
    sim::tick flap_min = sim::from_ms(100);

    // Fraction of handover failures that recover via RLF re-establishment
    // (the rest roll back to the source cell).
    double ho_failure_reestablish_fraction = 0.5;

    // Profiles the impairment_swap stream cycles through (e.g. a clean spec
    // and a bleaching transit). Required non-empty when swaps are enabled.
    std::vector<impairment_spec> swap_profiles;
    bool swap_uplink = false;  // swap the uplink stage instead of downlink

    bool any_enabled() const
    {
        return rlf_per_ue_per_sec > 0.0 || ho_failure_per_ue_per_sec > 0.0 ||
               outages_per_cell_per_sec > 0.0 || flaps_per_cell_per_sec > 0.0 ||
               swaps_per_cell_per_sec > 0.0;
    }

    // Throws std::invalid_argument naming `where` with an actionable
    // message on any out-of-range knob.
    void validate(const std::string& where) const;
};

// Per-(class, lane) seed derivation, same splitmix64 finalizer family as
// impairment_seed: every fault class and every UE/cell lane draws an
// independent stream.
inline std::uint64_t fault_seed(std::uint64_t base, fault_class cls,
                                std::uint64_t lane)
{
    std::uint64_t x = base ^
                      (0x9e3779b97f4a7c15ull *
                       (k_num_fault_classes * (lane + 1) +
                        static_cast<std::uint64_t>(cls) + 1));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x | 1;
}

class fault_plan {
public:
    // Validates the config (see fault_plan_config::validate) and builds the
    // schedule. Deterministic: same config, same schedule, bit for bit.
    explicit fault_plan(fault_plan_config cfg);

    // Sorted by (when, cls, ue, cell). Per-cell outage streams never
    // overlap themselves (a cell must recover before failing again); other
    // classes are free-running and the runtime guards make overlaps benign.
    const std::vector<fault_event>& schedule() const { return schedule_; }
    const fault_plan_config& config() const { return cfg_; }

    // Events of one class (bench/test introspection).
    std::size_t count(fault_class cls) const;

private:
    fault_plan_config cfg_;
    std::vector<fault_event> schedule_;
};

}  // namespace l4span::topo
