// Event loop: ordering, cancellation, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"

using namespace l4span::sim;

TEST(event_loop, fires_in_time_order)
{
    event_loop loop;
    std::vector<int> order;
    loop.schedule_at(from_ms(30), [&] { order.push_back(3); });
    loop.schedule_at(from_ms(10), [&] { order.push_back(1); });
    loop.schedule_at(from_ms(20), [&] { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), from_ms(30));
}

TEST(event_loop, equal_times_fire_in_schedule_order)
{
    event_loop loop;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) loop.schedule_at(from_ms(5), [&, i] { order.push_back(i); });
    loop.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(event_loop, run_until_stops_at_boundary)
{
    event_loop loop;
    int fired = 0;
    loop.schedule_at(from_ms(10), [&] { ++fired; });
    loop.schedule_at(from_ms(20), [&] { ++fired; });
    loop.schedule_at(from_ms(30), [&] { ++fired; });
    loop.run_until(from_ms(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(loop.now(), from_ms(20));
    loop.run_until(from_ms(40));
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(loop.now(), from_ms(40));
}

TEST(event_loop, cancel_prevents_firing)
{
    event_loop loop;
    int fired = 0;
    const auto id = loop.schedule_at(from_ms(10), [&] { ++fired; });
    loop.schedule_at(from_ms(20), [&] { ++fired; });
    loop.cancel(id);
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(loop.processed(), 1u);
}

TEST(event_loop, cancel_unknown_id_is_noop)
{
    event_loop loop;
    loop.cancel(12345);
    loop.schedule_after(from_ms(1), [] {});
    loop.run();
    SUCCEED();
}

TEST(event_loop, events_scheduled_during_run_execute)
{
    event_loop loop;
    int fired = 0;
    loop.schedule_at(from_ms(10), [&] {
        loop.schedule_after(from_ms(5), [&] { ++fired; });
    });
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(loop.now(), from_ms(15));
}

TEST(event_loop, past_times_clamp_to_now)
{
    event_loop loop;
    loop.schedule_at(from_ms(10), [&] {
        loop.schedule_at(from_ms(1), [&] { EXPECT_EQ(loop.now(), from_ms(10)); });
    });
    loop.run();
}

TEST(event_loop, schedule_after_negative_clamps_to_zero)
{
    event_loop loop;
    bool fired = false;
    loop.schedule_after(-5, [&] { fired = true; });
    loop.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(loop.now(), 0);
}

TEST(time, conversions_roundtrip)
{
    EXPECT_EQ(from_ms(1.5), 1'500'000);
    EXPECT_DOUBLE_EQ(to_ms(from_ms(123.25)), 123.25);
    EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
    EXPECT_EQ(from_us(3), 3'000);
}

TEST(time, tx_time_matches_rate)
{
    // 1500 bytes at 12 Mbit/s = 1 ms.
    EXPECT_EQ(tx_time(1500, 12e6), from_ms(1));
    // Zero rate is "never" but must not divide by zero.
    EXPECT_GT(tx_time(1, 0.0), from_sec(100));
}

TEST(rng, deterministic_for_seed)
{
    rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(rng, bernoulli_extremes)
{
    rng r(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(rng, normal_moments)
{
    rng r(3);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(5.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double stddev = std::sqrt(sq / n - mean * mean);
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(stddev, 2.0, 0.1);
}

TEST(rng, fork_decorrelates_streams)
{
    rng parent(9);
    rng child = parent.fork();
    // Streams should differ (probability of coincidence is negligible).
    bool any_diff = false;
    rng parent2(9);
    for (int i = 0; i < 10; ++i)
        if (parent2.uniform() != child.uniform()) any_diff = true;
    EXPECT_TRUE(any_diff);
}
