// Marking strategies (§4.2): Eq. (1) shape, Eq. (2) model, coupling.
// Includes parameterized property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/marking.h"

using namespace l4span;
using namespace l4span::core::marking;

TEST(aimd_constant, reno_value)
{
    // beta = 0.5 -> K = sqrt(3/2).
    EXPECT_NEAR(aimd_constant(0.5), std::sqrt(1.5), 1e-9);
}

TEST(aimd_constant, increases_with_gentler_backoff)
{
    EXPECT_GT(aimd_constant(0.7), aimd_constant(0.5));
    EXPECT_GT(aimd_constant(0.9), aimd_constant(0.7));
}

TEST(phi, standard_normal_cdf)
{
    EXPECT_NEAR(phi(0.0), 0.5, 1e-9);
    EXPECT_NEAR(phi(1.0), 0.8413, 1e-3);
    EXPECT_NEAR(phi(-1.0), 0.1587, 1e-3);
    EXPECT_NEAR(phi(5.0), 1.0, 1e-4);
}

TEST(p_l4s_law, half_at_threshold)
{
    // Queue sized exactly so predicted sojourn == tau_thr: p = 0.5.
    const double r = 5e6;  // B/s
    const std::uint64_t n = static_cast<std::uint64_t>(r * 0.010);
    EXPECT_NEAR(p_l4s(n, sim::from_ms(10), r, 0.5e6), 0.5, 1e-6);
}

TEST(p_l4s_law, monotone_in_queue)
{
    const double r = 5e6, err = 0.5e6;
    double prev = -1.0;
    for (std::uint64_t n = 0; n <= 200000; n += 5000) {
        const double p = p_l4s(n, sim::from_ms(10), r, err);
        EXPECT_GE(p, prev);
        prev = p;
    }
    EXPECT_LT(p_l4s(0, sim::from_ms(10), r, err), 0.01);
    EXPECT_GT(p_l4s(500000, sim::from_ms(10), r, err), 0.99);
}

TEST(p_l4s_law, zero_error_reduces_to_dualpi2_step)
{
    const double r = 5e6;
    const std::uint64_t at = static_cast<std::uint64_t>(r * 0.010);
    EXPECT_DOUBLE_EQ(p_l4s(at - 1000, sim::from_ms(10), r, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(p_l4s(at + 1000, sim::from_ms(10), r, 0.0), 1.0);
}

TEST(p_l4s_law, volatility_flattens_the_edge)
{
    // Same queue slightly below threshold: a volatile link marks more
    // (hedging), a stable link marks less.
    const double r = 5e6;
    const std::uint64_t n = static_cast<std::uint64_t>(r * 0.008);  // 8 ms worth
    const double p_stable = p_l4s(n, sim::from_ms(10), r, 0.1e6);
    const double p_volatile = p_l4s(n, sim::from_ms(10), r, 2.0e6);
    EXPECT_LT(p_stable, p_volatile);
    // And slightly above threshold the volatile link marks *less*.
    const std::uint64_t m = static_cast<std::uint64_t>(r * 0.012);
    EXPECT_GT(p_l4s(m, sim::from_ms(10), r, 0.1e6), p_l4s(m, sim::from_ms(10), r, 2.0e6));
}

TEST(p_l4s_law, no_estimate_means_no_marking)
{
    EXPECT_DOUBLE_EQ(p_l4s(100000, sim::from_ms(10), 0.0, 1e6), 0.0);
}

TEST(p_classic_law, matches_throughput_model)
{
    // At p = p_classic, the AIMD model rate MSS*K/(RTT*sqrt(p)) equals r_hat.
    const std::uint32_t mss = 1400;
    const double k = aimd_constant(0.5);
    const sim::tick rtt = sim::from_ms(50);
    const double r = 3e6;
    const double p = p_classic(mss, k, rtt, r);
    ASSERT_GT(p, 0.0);
    const double model_rate = mss * k / (sim::to_sec(rtt) * std::sqrt(p));
    EXPECT_NEAR(model_rate, r, r * 1e-6);
}

TEST(p_classic_law, decreases_with_rate_and_rtt)
{
    const double k = aimd_constant(0.5);
    EXPECT_GT(p_classic(1400, k, sim::from_ms(50), 1e6),
              p_classic(1400, k, sim::from_ms(50), 4e6));
    EXPECT_GT(p_classic(1400, k, sim::from_ms(20), 3e6),
              p_classic(1400, k, sim::from_ms(100), 3e6));
}

TEST(p_classic_law, clamps_to_one)
{
    EXPECT_DOUBLE_EQ(p_classic(1400, aimd_constant(0.5), sim::from_ms(1), 1000.0), 1.0);
    EXPECT_DOUBLE_EQ(p_classic(1400, aimd_constant(0.5), 0, 3e6), 0.0);
    EXPECT_DOUBLE_EQ(p_classic(1400, aimd_constant(0.5), sim::from_ms(50), 0.0), 0.0);
}

TEST(coupling, balances_response_functions)
{
    // p_l4s = (2/K) sqrt(p_classic) equalizes r_L4S = 2 MSS/(RTT p) with
    // r_classic = MSS K/(RTT sqrt(p)) at equal RTT.
    const double k = aimd_constant(0.5);
    for (double pc : {1e-4, 1e-3, 1e-2, 0.1}) {
        const double pl = p_l4s_coupled(pc, k);
        const double mss = 1400.0, rtt = 0.05;
        const double r_l4s = 2.0 * mss / (rtt * pl);
        const double r_classic = mss * k / (rtt * std::sqrt(pc));
        EXPECT_NEAR(r_l4s / r_classic, 1.0, 1e-9) << "pc=" << pc;
    }
}

TEST(coupling, clamped_to_probability_range)
{
    EXPECT_LE(p_l4s_coupled(1.0, aimd_constant(0.5)), 1.0);
    EXPECT_DOUBLE_EQ(p_l4s_coupled(0.0, aimd_constant(0.5)), 0.0);
}

// ---- parameterized property sweep: p_l4s continuity in every argument ----

class p_l4s_sweep : public ::testing::TestWithParam<double> {};

TEST_P(p_l4s_sweep, bounded_and_monotone_in_rate)
{
    const double err = GetParam();
    double prev = 2.0;
    for (double r = 0.5e6; r <= 20e6; r += 0.5e6) {
        const double p = p_l4s(60000, sim::from_ms(10), r, err);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        EXPECT_LE(p, prev + 1e-12) << "higher egress rate must not raise the probability";
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(error_levels, p_l4s_sweep,
                         ::testing::Values(0.0, 0.1e6, 0.5e6, 1e6, 3e6));

class p_classic_sweep : public ::testing::TestWithParam<double> {};

TEST_P(p_classic_sweep, bounded_in_all_regimes)
{
    const double beta = GetParam();
    const double k = aimd_constant(beta);
    for (double rtt_ms = 1; rtt_ms <= 400; rtt_ms *= 2) {
        for (double r = 1e5; r <= 1e8; r *= 10) {
            const double p = p_classic(1400, k, sim::from_ms(rtt_ms), r);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(betas, p_classic_sweep, ::testing::Values(0.5, 0.7, 0.8));
