// MCS tables and fading channel statistics.
#include <gtest/gtest.h>

#include "chan/fading.h"
#include "chan/mcs.h"

using namespace l4span;
using namespace l4span::chan;

TEST(mcs, monotone_in_snr)
{
    int prev = -1;
    for (double snr = -10.0; snr <= 30.0; snr += 0.5) {
        const int m = mcs_from_snr(snr);
        EXPECT_GE(m, prev) << "MCS must be non-decreasing in SNR";
        prev = m;
    }
    EXPECT_EQ(mcs_from_snr(-10.0), -1);
    EXPECT_EQ(mcs_from_snr(30.0), k_num_mcs - 1);
}

TEST(mcs, spectral_efficiency_monotone)
{
    for (int m = 1; m < k_num_mcs; ++m)
        EXPECT_GT(spectral_efficiency(m), spectral_efficiency(m - 1));
    EXPECT_DOUBLE_EQ(spectral_efficiency(-1), 0.0);
}

TEST(mcs, tbs_scales_with_prbs)
{
    const auto one = tbs_bytes(15, 1);
    const auto ten = tbs_bytes(15, 10);
    EXPECT_NEAR(static_cast<double>(ten), 10.0 * one, 10.0);
    EXPECT_EQ(tbs_bytes(-1, 10), 0u);
    EXPECT_EQ(tbs_bytes(10, 0), 0u);
}

TEST(mcs, cell_capacity_matches_paper_calibration)
{
    // 51 PRB, MCS ~15, DDDSU TDD: the paper's 20 MHz cell delivers ~40 Mbit/s.
    const double bytes_per_slot = tbs_bytes(15, 51);
    const double dl_slots_per_sec = 2000.0 * 3.5 / 5.0;  // 3 DL + half special
    const double mbps = bytes_per_slot * dl_slots_per_sec * 8.0 / 1e6;
    EXPECT_GT(mbps, 33.0);
    EXPECT_LT(mbps, 48.0);
}

TEST(fading, static_channel_is_tight)
{
    fading_channel ch(channel_profile::static_channel(15.0), sim::rng(1));
    double lo = 1e9, hi = -1e9;
    for (int i = 0; i < 2000; ++i) {
        const double s = ch.snr_db(sim::from_ms(i));
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    EXPECT_GT(lo, 15.0 - 5.0);
    EXPECT_LT(hi, 15.0 + 5.0);
}

TEST(fading, mean_reversion)
{
    fading_channel ch(channel_profile::vehicular(12.0), sim::rng(2));
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += ch.snr_db(sim::from_ms(i));
    EXPECT_NEAR(sum / n, 12.0, 0.5);
}

TEST(fading, vehicular_varies_faster_than_pedestrian)
{
    // Mean absolute one-step (1 ms) delta should be larger for the channel
    // with the shorter coherence time.
    auto roughness = [](channel_profile p, std::uint64_t seed) {
        fading_channel ch(std::move(p), sim::rng(seed));
        double prev = ch.snr_db(0), acc = 0.0;
        for (int i = 1; i <= 20000; ++i) {
            const double s = ch.snr_db(sim::from_ms(i));
            acc += std::abs(s - prev);
            prev = s;
        }
        return acc / 20000.0;
    };
    EXPECT_GT(roughness(channel_profile::vehicular(), 3),
              2.0 * roughness(channel_profile::pedestrian(), 3));
}

TEST(fading, time_must_not_rewind_state)
{
    fading_channel ch(channel_profile::vehicular(), sim::rng(4));
    const double a = ch.snr_db(sim::from_ms(100));
    // Same or earlier time returns the cached value without advancing.
    EXPECT_DOUBLE_EQ(ch.snr_db(sim::from_ms(100)), a);
    EXPECT_DOUBLE_EQ(ch.snr_db(sim::from_ms(50)), a);
}

TEST(fading, coherence_time_controls_autocorrelation)
{
    // Sampled at lag = coherence, autocorrelation ~ exp(-1); at lag >>
    // coherence it should be near zero.
    channel_profile p = channel_profile::vehicular(12.0);
    fading_channel ch(p, sim::rng(5));
    std::vector<double> xs;
    for (int i = 0; i < 40000; ++i) xs.push_back(ch.snr_db(i * sim::from_ms(1)));

    auto autocorr = [&](int lag_ms) {
        double m = 0;
        for (double v : xs) m += v;
        m /= static_cast<double>(xs.size());
        double num = 0, den = 0;
        for (std::size_t i = 0; i + static_cast<std::size_t>(lag_ms) < xs.size(); ++i)
            num += (xs[i] - m) * (xs[i + static_cast<std::size_t>(lag_ms)] - m);
        for (double v : xs) den += (v - m) * (v - m);
        return num / den;
    };
    EXPECT_NEAR(autocorr(25), std::exp(-1.0), 0.12);  // ~coherence (24.9 ms)
    EXPECT_LT(autocorr(250), 0.15);
}
