// topo::path_impairment property suite: marking transforms and their
// normative order, conservation, determinism (incl. sharded jobs-1-vs-4
// topology equality), the all-off pass-through fast path, and actionable
// config diagnostics. Scenario-level wiring (cell_scenario / topology spec
// fields, cross-traffic preconditions) is covered here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "scenario/cell_scenario.h"
#include "scenario/topology.h"
#include "topo/cross_traffic.h"
#include "topo/path_impairment.h"

using namespace l4span;
using namespace l4span::topo;

namespace {

net::packet mk(net::ecn e, std::uint64_t id = 0, std::uint32_t payload = 1400)
{
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.ecn_field = e;
    p.payload_bytes = payload;
    p.pkt_id = id;
    return p;
}

struct rigged_stage {
    sim::event_loop loop;
    path_impairment stage;
    std::vector<net::packet> out;

    explicit rigged_stage(const impairment_spec& s, std::uint64_t seed = 7)
        : stage(loop, s, seed)
    {
        stage.set_deliver([this](net::packet p) { out.push_back(std::move(p)); });
    }
};

// Conservation invariant every stage must uphold at any instant.
void expect_conservation(const path_impairment& st)
{
    const auto& s = st.stats();
    EXPECT_EQ(s.input + s.duplicated,
              s.delivered + s.lost + st.held_packets());
}

}  // namespace

// ---------------------------------------------------------------- config --

TEST(impairment_spec, rejects_out_of_range_probabilities)
{
    impairment_spec s;
    s.bleach_ce = 1.5;
    try {
        s.validate("cell_spec.impair_dl");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cell_spec.impair_dl"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bleach_ce"), std::string::npos) << msg;
        EXPECT_NE(msg.find("[0, 1]"), std::string::npos) << msg;
    }
    impairment_spec neg;
    neg.loss = -0.1;
    EXPECT_THROW(neg.validate("x"), std::invalid_argument);
    impairment_spec nan_spec;
    nan_spec.reorder = std::nan("");
    EXPECT_THROW(nan_spec.validate("x"), std::invalid_argument);
}

TEST(impairment_spec, rejects_degenerate_burst_and_reorder_knobs)
{
    impairment_spec burst;
    burst.loss = 0.1;
    burst.loss_burst = 0.5;
    try {
        burst.validate("spec");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("loss_burst"), std::string::npos);
    }
    impairment_spec gap;
    gap.reorder_gap = 0;
    EXPECT_THROW(gap.validate("spec"), std::invalid_argument);
    impairment_spec hold;
    hold.reorder_hold_max = 0;
    EXPECT_THROW(hold.validate("spec"), std::invalid_argument);
}

TEST(impairment_spec, wants_stage_logic)
{
    impairment_spec off;
    EXPECT_FALSE(off.any_active());
    EXPECT_FALSE(off.wants_stage());
    off.force_stage = true;
    EXPECT_FALSE(off.any_active());
    EXPECT_TRUE(off.wants_stage());
    impairment_spec on;
    on.reorder = 0.01;
    EXPECT_TRUE(on.any_active());
    EXPECT_TRUE(on.wants_stage());
}

TEST(impairment_seed_fn, distinct_per_lane_and_direction)
{
    const auto a = impairment_seed(42, 0, false);
    const auto b = impairment_seed(42, 0, true);
    const auto c = impairment_seed(42, 1, false);
    const auto d = impairment_seed(43, 0, false);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    EXPECT_NE(b, c);
    EXPECT_EQ(a, impairment_seed(42, 0, false)) << "must be a pure function";
    EXPECT_EQ(a & 1, 1u) << "seeds are forced odd";
}

// ------------------------------------------------------------ transforms --

TEST(path_impairment, all_off_stage_is_identity)
{
    impairment_spec s;
    s.force_stage = true;
    rigged_stage rig(s);
    for (int i = 0; i < 100; ++i)
        rig.stage.send(mk(i % 2 ? net::ecn::ect1 : net::ecn::ce,
                          static_cast<std::uint64_t>(i)));
    // Pass-through is synchronous: everything delivered already, in order,
    // codepoints untouched, no events pending.
    ASSERT_EQ(rig.out.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rig.out[static_cast<std::size_t>(i)].pkt_id,
                  static_cast<std::uint64_t>(i));
        EXPECT_EQ(rig.out[static_cast<std::size_t>(i)].ecn_field,
                  i % 2 ? net::ecn::ect1 : net::ecn::ce);
    }
    EXPECT_EQ(rig.loop.pending(), 0u) << "all-off stage must schedule nothing";
    const auto& st = rig.stage.stats();
    EXPECT_EQ(st.input, 100u);
    EXPECT_EQ(st.delivered, 100u);
    EXPECT_EQ(st.remarked + st.bleached + st.stripped + st.lost + st.reordered +
                  st.duplicated,
              0u);
}

TEST(path_impairment, marking_transforms_at_certainty)
{
    impairment_spec remark;
    remark.remark_ect1 = 1.0;
    rigged_stage r1(remark);
    r1.stage.send(mk(net::ecn::ect1));
    r1.stage.send(mk(net::ecn::ect0));
    r1.stage.send(mk(net::ecn::ce));
    ASSERT_EQ(r1.out.size(), 3u);
    EXPECT_EQ(r1.out[0].ecn_field, net::ecn::ect0) << "ECT(1) re-marked";
    EXPECT_EQ(r1.out[1].ecn_field, net::ecn::ect0) << "ECT(0) untouched";
    EXPECT_EQ(r1.out[2].ecn_field, net::ecn::ce) << "CE untouched by re-mark";
    EXPECT_EQ(r1.stage.stats().remarked, 1u);

    impairment_spec bleach;
    bleach.bleach_ce = 1.0;
    rigged_stage r2(bleach);
    r2.stage.send(mk(net::ecn::ce));
    r2.stage.send(mk(net::ecn::ect1));
    ASSERT_EQ(r2.out.size(), 2u);
    EXPECT_EQ(r2.out[0].ecn_field, net::ecn::ect0) << "CE bleached to ECT(0)";
    EXPECT_EQ(r2.out[1].ecn_field, net::ecn::ect1) << "ECT(1) untouched";
    EXPECT_EQ(r2.stage.stats().bleached, 1u);

    impairment_spec strip;
    strip.strip_ect = 1.0;
    rigged_stage r3(strip);
    r3.stage.send(mk(net::ecn::ect0));
    r3.stage.send(mk(net::ecn::ect1));
    r3.stage.send(mk(net::ecn::ce));
    r3.stage.send(mk(net::ecn::not_ect));
    ASSERT_EQ(r3.out.size(), 4u);
    for (const auto& p : r3.out)
        EXPECT_EQ(p.ecn_field, net::ecn::not_ect)
            << "a field-zeroing middlebox clears ECT and CE alike";
    EXPECT_EQ(r3.stage.stats().stripped, 3u) << "Not-ECT input is not counted";
}

TEST(path_impairment, normative_in_stage_order_remark_bleach_strip)
{
    // remark fires before bleach: an ECT(1) packet becomes ECT(0) and is
    // then not CE, so bleach cannot touch it; a CE packet skips remark and
    // is bleached; with strip also on, everything ends Not-ECT.
    impairment_spec all;
    all.remark_ect1 = 1.0;
    all.bleach_ce = 1.0;
    rigged_stage rig(all);
    rig.stage.send(mk(net::ecn::ect1));
    rig.stage.send(mk(net::ecn::ce));
    ASSERT_EQ(rig.out.size(), 2u);
    EXPECT_EQ(rig.out[0].ecn_field, net::ecn::ect0);
    EXPECT_EQ(rig.out[1].ecn_field, net::ecn::ect0);
    EXPECT_EQ(rig.stage.stats().remarked, 1u);
    EXPECT_EQ(rig.stage.stats().bleached, 1u);

    all.strip_ect = 1.0;
    rigged_stage rig2(all);
    rig2.stage.send(mk(net::ecn::ect1));
    rig2.stage.send(mk(net::ecn::ce));
    rig2.stage.send(mk(net::ecn::ect0));
    for (const auto& p : rig2.out) EXPECT_EQ(p.ecn_field, net::ecn::not_ect);
}

TEST(path_impairment, remark_and_bleach_commute_across_stages)
{
    // Composition order-invariance where it should hold: remark∘bleach and
    // bleach∘remark both map {ECT(1), CE} -> ECT(0) and fix the rest.
    // (strip does NOT commute with bleach on CE input — bleach-then-strip
    // yields Not-ECT via ECT(0), strip-then-bleach zeroes CE directly — so
    // only the commuting pair is asserted.)
    const std::vector<net::ecn> inputs{net::ecn::not_ect, net::ecn::ect0,
                                       net::ecn::ect1, net::ecn::ce};
    for (net::ecn in : inputs) {
        impairment_spec remark;
        remark.remark_ect1 = 1.0;
        impairment_spec bleach;
        bleach.bleach_ce = 1.0;

        rigged_stage a_first(remark);
        rigged_stage a_second(bleach);
        a_first.stage.set_deliver(
            [&](net::packet p) { a_second.stage.send(std::move(p)); });
        a_first.stage.send(mk(in));

        rigged_stage b_first(bleach);
        rigged_stage b_second(remark);
        b_first.stage.set_deliver(
            [&](net::packet p) { b_second.stage.send(std::move(p)); });
        b_first.stage.send(mk(in));

        ASSERT_EQ(a_second.out.size(), 1u);
        ASSERT_EQ(b_second.out.size(), 1u);
        EXPECT_EQ(a_second.out[0].ecn_field, b_second.out[0].ecn_field)
            << "input codepoint " << static_cast<int>(in);
    }
}

// ------------------------------------------------------- loss / reorder --

TEST(path_impairment, certain_loss_drops_everything)
{
    impairment_spec s;
    s.loss = 1.0;
    rigged_stage rig(s);
    for (int i = 0; i < 50; ++i) rig.stage.send(mk(net::ecn::ect0));
    EXPECT_TRUE(rig.out.empty());
    EXPECT_EQ(rig.stage.stats().lost, 50u);
    expect_conservation(rig.stage);
}

TEST(path_impairment, bernoulli_loss_hits_stationary_rate)
{
    impairment_spec s;
    s.loss = 0.1;
    rigged_stage rig(s, 1234);
    const int n = 20000;
    for (int i = 0; i < n; ++i) rig.stage.send(mk(net::ecn::not_ect));
    const double rate = static_cast<double>(rig.stage.stats().lost) / n;
    EXPECT_NEAR(rate, 0.1, 0.01);
    expect_conservation(rig.stage);
}

TEST(path_impairment, gilbert_loss_keeps_stationary_rate_but_bursts)
{
    impairment_spec s;
    s.loss = 0.1;
    s.loss_burst = 8.0;
    rigged_stage rig(s, 99);
    const int n = 50000;
    int bursts = 0;
    bool in_burst = false;
    for (int i = 0; i < n; ++i) {
        const auto lost_before = rig.stage.stats().lost;
        rig.stage.send(mk(net::ecn::not_ect));
        const bool lost = rig.stage.stats().lost > lost_before;
        if (lost && !in_burst) ++bursts;
        in_burst = lost;
    }
    const auto& st = rig.stage.stats();
    const double rate = static_cast<double>(st.lost) / n;
    EXPECT_NEAR(rate, 0.1, 0.02) << "Gilbert keeps the stationary loss rate";
    const double mean_burst = static_cast<double>(st.lost) / bursts;
    EXPECT_GT(mean_burst, 4.0) << "losses must clump (mean burst ~8)";
    EXPECT_LT(mean_burst, 16.0);
    expect_conservation(rig.stage);
}

TEST(path_impairment, reorder_delays_behind_gap_packets)
{
    // Deterministic single-hold check: victim held, then released right
    // after `reorder_gap` passing packets, in their wake.
    impairment_spec s;
    s.reorder = 1.0;
    s.reorder_gap = 2;
    rigged_stage rig(s);
    rig.stage.send(mk(net::ecn::ect0, 100));  // held (reorder = 1 hits all)
    EXPECT_EQ(rig.out.size(), 0u);
    EXPECT_EQ(rig.stage.held_packets(), 1u);
    expect_conservation(rig.stage);
    // Later packets are held too under p=1; release them via the hold timer
    // and check order: held packets flush in hold order.
    rig.loop.run();
    ASSERT_EQ(rig.out.size(), 1u);
    EXPECT_EQ(rig.out[0].pkt_id, 100u);
    EXPECT_EQ(rig.stage.held_packets(), 0u);
    expect_conservation(rig.stage);
}

TEST(path_impairment, reorder_releases_after_passing_traffic)
{
    // Probabilistic stream: conservation, permutation (nothing vanishes or
    // is invented), and actual out-of-order delivery.
    impairment_spec s;
    s.reorder = 0.2;
    s.reorder_gap = 3;
    rigged_stage rig(s, 4242);
    const std::uint64_t n = 500;
    for (std::uint64_t i = 0; i < n; ++i) rig.stage.send(mk(net::ecn::ect1, i));
    rig.loop.run();  // flush hold timers for any tail packets
    const auto& st = rig.stage.stats();
    EXPECT_EQ(rig.stage.held_packets(), 0u);
    EXPECT_EQ(st.delivered, n);
    EXPECT_GT(st.reordered, 0u);
    expect_conservation(rig.stage);
    std::vector<bool> seen(n, false);
    bool out_of_order = false;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < rig.out.size(); ++i) {
        const std::uint64_t id = rig.out[i].pkt_id;
        ASSERT_LT(id, n);
        EXPECT_FALSE(seen[id]) << "duplicate delivery without duplicate knob";
        seen[id] = true;
        if (i > 0 && id < prev) out_of_order = true;
        prev = id;
    }
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_TRUE(seen[i]) << i;
    EXPECT_TRUE(out_of_order) << "a reordering stage must actually reorder";
}

TEST(path_impairment, hold_timer_bounds_reorder_delay)
{
    // No passing traffic ever: the hold timeout must flush the packet so
    // tail packets cannot vanish into the buffer.
    impairment_spec s;
    s.reorder = 1.0;
    s.reorder_gap = 1000000;
    s.reorder_hold_max = sim::from_ms(5);
    rigged_stage rig(s);
    rig.stage.send(mk(net::ecn::ect0, 7));
    rig.loop.run_until(sim::from_ms(4));
    EXPECT_TRUE(rig.out.empty());
    rig.loop.run_until(sim::from_ms(6));
    ASSERT_EQ(rig.out.size(), 1u);
    EXPECT_EQ(rig.out[0].pkt_id, 7u);
    expect_conservation(rig.stage);
}

TEST(path_impairment, certain_duplication_doubles_delivery)
{
    impairment_spec s;
    s.duplicate = 1.0;
    rigged_stage rig(s);
    for (std::uint64_t i = 0; i < 10; ++i) rig.stage.send(mk(net::ecn::ect0, i));
    ASSERT_EQ(rig.out.size(), 20u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(rig.out[2 * i].pkt_id, i) << "copies are back-to-back";
        EXPECT_EQ(rig.out[2 * i + 1].pkt_id, i);
    }
    EXPECT_EQ(rig.stage.stats().duplicated, 10u);
    expect_conservation(rig.stage);
}

// ----------------------------------------------------------- determinism --

TEST(path_impairment, same_seed_same_event_stream)
{
    impairment_spec s;
    s.remark_ect1 = 0.3;
    s.bleach_ce = 0.4;
    s.loss = 0.05;
    s.loss_burst = 3.0;
    s.reorder = 0.1;
    s.duplicate = 0.02;

    auto run_once = [&](std::uint64_t seed) {
        rigged_stage rig(s, seed);
        for (std::uint64_t i = 0; i < 2000; ++i)
            rig.stage.send(mk(i % 3 == 0   ? net::ecn::ce
                              : i % 3 == 1 ? net::ecn::ect1
                                           : net::ecn::ect0,
                              i));
        rig.loop.run();
        std::vector<std::pair<std::uint64_t, net::ecn>> stream;
        for (const auto& p : rig.out) stream.emplace_back(p.pkt_id, p.ecn_field);
        return stream;
    };

    const auto a = run_once(77);
    const auto b = run_once(77);
    EXPECT_EQ(a, b) << "identical seed must give a byte-identical stream";
    const auto c = run_once(78);
    EXPECT_NE(a, c) << "different seed must actually change the draws";
}

// -------------------------------------------------------------- scenario --

TEST(impairment_scenario, forced_noop_stage_preserves_cell_scenario_results)
{
    auto run_cell = [](bool mount_noop) {
        scenario::cell_spec cell;
        cell.num_ues = 2;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.seed = 5;
        cell.impair_dl.force_stage = mount_noop;
        cell.impair_ul.force_stage = mount_noop;
        scenario::cell_scenario s(cell);
        std::vector<int> hs;
        for (int u = 0; u < 2; ++u) {
            scenario::flow_spec f;
            f.cca = u == 0 ? "prague" : "cubic";
            f.ue = u;
            hs.push_back(s.add_flow(f));
        }
        s.run(sim::from_ms(800));
        std::vector<double> out;
        for (int h : hs) {
            out.push_back(static_cast<double>(s.delivered_bytes(h)));
            out.push_back(static_cast<double>(s.flow_retransmits(h)));
            for (double v : s.owd_ms(h).raw()) out.push_back(v);
        }
        return out;
    };
    EXPECT_EQ(run_cell(false), run_cell(true))
        << "an installed-but-all-off stage must be behavior-preserving";
}

TEST(impairment_scenario, cell_scenario_validates_spec_fields)
{
    scenario::cell_spec bad_prob;
    bad_prob.impair_dl.loss = 2.0;
    EXPECT_THROW(scenario::cell_scenario{bad_prob}, std::invalid_argument);

    scenario::cell_spec bad_aqm;
    bad_aqm.bottleneck_bps = 50e6;
    bad_aqm.bottleneck_aqm = "red";
    try {
        scenario::cell_scenario s(bad_aqm);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("valid: fifo, dualpi2"),
                  std::string::npos)
            << e.what();
    }

    scenario::cell_spec cross_no_bn;
    cross_no_bn.cross_traffic.push_back({});
    cross_no_bn.cross_traffic.back().rate_bps = 10e6;
    try {
        scenario::cell_scenario s(cross_no_bn);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("bottleneck_bps"), std::string::npos)
            << e.what();
    }

    scenario::topology_spec topo_cross;
    topo_cross.cell.cross_traffic.push_back({});
    topo_cross.cell.cross_traffic.back().rate_bps = 10e6;
    EXPECT_THROW(scenario::topology{topo_cross}, std::invalid_argument);
}

TEST(impairment_scenario, cross_traffic_validates_and_loads_bottleneck)
{
    cross_traffic_spec bad_model;
    bad_model.model = "pareto";
    bad_model.rate_bps = 1e6;
    try {
        bad_model.validate("spec");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("valid: poisson, cbr"),
                  std::string::npos)
            << e.what();
    }
    cross_traffic_spec no_rate;
    EXPECT_THROW(no_rate.validate("spec"), std::invalid_argument);

    // CBR generator: deterministic spacing at the configured load.
    sim::event_loop loop;
    cross_traffic_spec cbr;
    cbr.model = "cbr";
    cbr.rate_bps = 10e6;
    cbr.pkt_bytes = 1222;  // 1250-byte wire packets -> 1 ms spacing
    std::vector<sim::tick> arrivals;
    cross_traffic gen(loop, cbr, 1, 0, [&](net::packet p) {
        EXPECT_EQ(p.flow_id, cross_traffic::k_flow_id);
        arrivals.push_back(loop.now());
    });
    gen.start();
    loop.run_until(sim::from_ms(10));
    ASSERT_GE(arrivals.size(), 10u);
    EXPECT_EQ(arrivals[1] - arrivals[0], sim::from_ms(1));
    EXPECT_EQ(gen.packets_sent(), arrivals.size());
}

TEST(impairment_scenario, sharded_topology_byte_identical_jobs_1_vs_4)
{
    auto run_topo = [](int jobs) {
        scenario::topology_spec spec;
        spec.num_cells = 2;
        spec.ues_per_cell = 2;
        spec.cell.channel = "static";
        spec.cell.cu = scenario::cu_mode::l4span;
        spec.cell.seed = 17;
        spec.cell.impair_dl.bleach_ce = 0.5;
        spec.cell.impair_dl.loss = 0.02;
        spec.cell.impair_dl.reorder = 0.05;
        spec.cell.impair_ul.loss = 0.01;
        spec.jobs = jobs;
        scenario::topology topo(spec);
        std::vector<int> hs;
        for (int ue = 0; ue < 4; ++ue) {
            scenario::flow_spec f;
            f.cca = ue % 2 ? "cubic" : "prague";
            f.ue = ue;
            hs.push_back(topo.add_flow(f));
        }
        topo.run(sim::from_ms(700));
        std::vector<double> out;
        for (int h : hs) {
            out.push_back(static_cast<double>(topo.delivered_bytes(h)));
            out.push_back(static_cast<double>(topo.flow_retransmits(h)));
            for (double v : topo.owd_ms(h).raw()) out.push_back(v);
        }
        for (int c = 0; c < 2; ++c) {
            const path_impairment* dl = topo.impair_dl_stage(c);
            const path_impairment* ul = topo.impair_ul_stage(c);
            EXPECT_NE(dl, nullptr);
            EXPECT_NE(ul, nullptr);
            out.push_back(static_cast<double>(dl->stats().input));
            out.push_back(static_cast<double>(dl->stats().bleached));
            out.push_back(static_cast<double>(dl->stats().lost));
            out.push_back(static_cast<double>(dl->stats().reordered));
            out.push_back(static_cast<double>(ul->stats().lost));
        }
        return out;
    };
    const auto serial = run_topo(1);
    const auto parallel = run_topo(4);
    EXPECT_EQ(serial, parallel)
        << "impaired sharded runs must stay byte-identical for any --jobs";
    // The impairment actually fired (the equality is not vacuous).
    double sum = 0.0;
    for (double v : serial) sum += v;
    EXPECT_GT(sum, 0.0);
}

// ------------------------------------------------- per-flow ECMP policies --

namespace {

// A five-tuple whose hash lands on policy index `want` (mod `n`): vary the
// source port until the stage's own hash function agrees.
net::five_tuple tuple_for_policy(std::size_t want, std::size_t n)
{
    net::five_tuple ft;
    ft.proto = net::ip_proto::udp;
    ft.src_ip = 0x0a000001;
    ft.dst_ip = 0x0a000002;
    ft.dst_port = 443;
    for (std::uint16_t port = 1000;; ++port) {
        ft.src_port = port;
        if (net::five_tuple_hash{}(ft) % n == want) return ft;
    }
}

}  // namespace

TEST(flow_policies, packets_route_to_their_hashed_policy)
{
    impairment_spec s;
    // Base knobs would drop everything — with policies installed they must
    // be ignored entirely (the hash picks the governing spec).
    s.loss = 1.0;
    impairment_spec dirty;
    dirty.strip_ect = 1.0;
    impairment_spec clean;
    s.flow_policies = {dirty, clean};
    rigged_stage rig(s);

    net::packet on_dirty = mk(net::ecn::ect1);
    on_dirty.ft = tuple_for_policy(0, 2);
    net::packet on_clean = mk(net::ecn::ect1);
    on_clean.ft = tuple_for_policy(1, 2);
    for (int i = 0; i < 20; ++i) {
        rig.stage.send(on_dirty);
        rig.stage.send(on_clean);
    }
    ASSERT_EQ(rig.out.size(), 40u);  // base loss=1.0 ignored
    EXPECT_EQ(rig.stage.stats().stripped, 20u);
    std::size_t clean_ect1 = 0, dirty_not_ect = 0;
    for (const auto& p : rig.out) {
        if (p.ft.src_port == on_clean.ft.src_port && p.ecn_field == net::ecn::ect1)
            ++clean_ect1;
        if (p.ft.src_port == on_dirty.ft.src_port && p.ecn_field == net::ecn::not_ect)
            ++dirty_not_ect;
    }
    // One flow rides the stripping transit, its sibling stays clean — the
    // per-flow ECMP picture the measurement papers report.
    EXPECT_EQ(clean_ect1, 20u);
    EXPECT_EQ(dirty_not_ect, 20u);
    expect_conservation(rig.stage);
}

TEST(flow_policies, per_policy_gilbert_state_and_certain_loss)
{
    impairment_spec s;
    impairment_spec lossy;
    lossy.loss = 1.0;
    impairment_spec clean;
    s.flow_policies = {lossy, clean};
    rigged_stage rig(s);
    net::packet victim = mk(net::ecn::ect0);
    victim.ft = tuple_for_policy(0, 2);
    net::packet bystander = mk(net::ecn::ect0);
    bystander.ft = tuple_for_policy(1, 2);
    for (int i = 0; i < 50; ++i) {
        rig.stage.send(victim);
        rig.stage.send(bystander);
    }
    EXPECT_EQ(rig.stage.stats().lost, 50u);
    EXPECT_EQ(rig.out.size(), 50u);  // every bystander packet survived
    expect_conservation(rig.stage);
}

TEST(flow_policies, nesting_is_rejected_with_an_indexed_message)
{
    impairment_spec s;
    s.flow_policies.emplace_back();
    s.flow_policies[0].flow_policies.emplace_back();
    try {
        s.validate("cell_spec.impair_dl");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("flow_policies[0]"), std::string::npos) << msg;
        EXPECT_NE(msg.find("nest"), std::string::npos) << msg;
    }
    // Per-policy knobs go through the same range validation.
    impairment_spec bad;
    bad.flow_policies.emplace_back();
    bad.flow_policies[0].loss = 1.5;
    EXPECT_THROW(bad.validate("x"), std::invalid_argument);
}

// ------------------------------------------------------- mid-run set_spec --

TEST(set_spec, swaps_profile_midstream_with_cumulative_stats)
{
    impairment_spec clean;
    clean.force_stage = true;
    rigged_stage rig(clean);
    for (int i = 0; i < 10; ++i) rig.stage.send(mk(net::ecn::ect1));
    EXPECT_EQ(rig.stage.stats().stripped, 0u);

    impairment_spec stripping;
    stripping.strip_ect = 1.0;
    rig.stage.set_spec(stripping);
    EXPECT_EQ(rig.stage.spec().strip_ect, 1.0);
    for (int i = 0; i < 10; ++i) rig.stage.send(mk(net::ecn::ect1));

    // Stats carry across the reroute: one stage, one cumulative history.
    EXPECT_EQ(rig.stage.stats().input, 20u);
    EXPECT_EQ(rig.stage.stats().stripped, 10u);
    EXPECT_EQ(rig.out.size(), 20u);
    expect_conservation(rig.stage);

    impairment_spec bad;
    bad.loss = 2.0;
    EXPECT_THROW(rig.stage.set_spec(bad), std::invalid_argument);
}

TEST(set_spec, held_packets_release_under_their_original_counters)
{
    impairment_spec reordering;
    reordering.reorder = 1.0;
    reordering.reorder_gap = 1;
    rigged_stage rig(reordering);
    rig.stage.send(mk(net::ecn::ect0, /*id=*/1));
    ASSERT_EQ(rig.stage.held_packets(), 1u);

    impairment_spec clean;
    clean.force_stage = true;
    rig.stage.set_spec(clean);
    EXPECT_EQ(rig.stage.held_packets(), 1u);  // the hold buffer survives
    // The next passing packet (no longer reordered under the new spec)
    // advances the held packet's gap counter and releases it behind itself.
    rig.stage.send(mk(net::ecn::ect0, /*id=*/2));
    ASSERT_EQ(rig.out.size(), 2u);
    EXPECT_EQ(rig.out[0].pkt_id, 2u);
    EXPECT_EQ(rig.out[1].pkt_id, 1u);
    EXPECT_EQ(rig.stage.held_packets(), 0u);
    expect_conservation(rig.stage);
}

TEST(impairment_scenario, stripped_tcp_with_drop_fallback_keeps_owd_bounded)
{
    // Regression for the ECN-impairment bench's tcp-prague strip rows: a
    // fully stripped flow under short-circuiting got no congestion signal
    // at all (the short-circuit branch ignored drop_non_ecn), so it sat in
    // a ~1.2 s deep RLC queue. With the drop fallback honored, the queue
    // stays in the normal operating regime.
    auto run_strip = [](bool drop_non_ecn) {
        scenario::cell_spec cell;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.seed = 5;
        cell.l4s.drop_non_ecn = drop_non_ecn;
        cell.impair_dl.strip_ect = 1.0;
        scenario::cell_scenario s(cell);
        scenario::flow_spec f;
        f.cca = "cubic";
        f.ue = 0;
        const int h = s.add_flow(f);
        s.run(sim::from_sec(3));
        return std::make_pair(s.owd_ms(h).percentile(90),
                              s.l4span_layer()->drops());
    };
    const auto [owd_with_drop, drops] = run_strip(true);
    EXPECT_GT(drops, 0u);
    EXPECT_LT(owd_with_drop, 300.0)
        << "drop feedback must keep the stripped flow out of the deep queue";
    const auto [owd_without, no_drops] = run_strip(false);
    EXPECT_EQ(no_drops, 0u);
    EXPECT_GT(owd_without, owd_with_drop)
        << "without any feedback the stripped flow queues strictly deeper";
}

// --------------------------------------------- uplink return-path loading --

TEST(impairment_scenario, uplink_cross_traffic_requires_ul_bottleneck)
{
    scenario::cell_spec cell;
    topo::cross_traffic_spec ct;
    ct.rate_bps = 1e6;
    ct.uplink = true;
    cell.cross_traffic.push_back(ct);
    try {
        scenario::cell_scenario s(cell);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("ul_bottleneck_bps"),
                  std::string::npos)
            << e.what();
    }
    scenario::cell_spec neg;
    neg.ul_bottleneck_bps = -1.0;
    EXPECT_THROW(scenario::cell_scenario{neg}, std::invalid_argument);
}

TEST(impairment_scenario, uplink_cross_traffic_congests_the_ack_path)
{
    // A loaded return hop delays the download's ACK clock: same radio, same
    // flow, but RTT inflates once background senders squeeze the uplink
    // bottleneck. The downlink data path is untouched in both runs.
    auto run_dl = [](double cross_bps) {
        scenario::cell_spec cell;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.seed = 5;
        cell.ul_bottleneck_bps = 3e6;  // ACK stream alone fits comfortably
        if (cross_bps > 0.0) {
            topo::cross_traffic_spec ct;
            ct.rate_bps = cross_bps;
            ct.pkt_bytes = 1200;
            ct.uplink = true;
            cell.cross_traffic.push_back(ct);
        }
        scenario::cell_scenario s(cell);
        scenario::flow_spec f;
        f.cca = "cubic";
        f.ue = 0;
        const int h = s.add_flow(f);
        s.run(sim::from_sec(3));
        return std::make_tuple(s.rtt_ms(h).percentile(50), s.delivered_bytes(h),
                               s.cross_traffic_packets());
    };
    const auto [rtt_clean, bytes_clean, pkts_clean] = run_dl(0.0);
    const auto [rtt_loaded, bytes_loaded, pkts_loaded] = run_dl(2.5e6);
    EXPECT_EQ(pkts_clean, 0u);
    EXPECT_GT(pkts_loaded, 100u);
    EXPECT_GT(rtt_loaded, rtt_clean + 1.0)
        << "a ~2.5 Mb/s background load on a 3 Mb/s return hop must visibly "
           "delay the ACK stream";
    // The flow survives the loaded feedback path.
    EXPECT_GT(bytes_loaded, 1u << 20);
    EXPECT_GT(bytes_clean, 1u << 20);
}

TEST(impairment_scenario, ul_bottleneck_composes_with_uplink_impairment)
{
    // Return path order: RAN -> bottleneck -> impairment stage -> sender.
    // An ACK-path bleacher after the bottleneck still sees every packet.
    scenario::cell_spec cell;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 5;
    cell.ul_bottleneck_bps = 10e6;
    cell.impair_ul.force_stage = true;
    scenario::cell_scenario s(cell);
    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    const int h = s.add_flow(f);
    s.run(sim::from_sec(1));
    ASSERT_NE(s.ul_bottleneck(), nullptr);
    ASSERT_NE(s.impair_ul(), nullptr);
    EXPECT_GT(s.impair_ul()->stats().input, 0u);
    EXPECT_GT(s.delivered_bytes(h), 100u << 10);
}
