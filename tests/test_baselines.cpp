// TC-RAN and DualPi2-in-RAN baselines against the full RAN substrate.
#include <gtest/gtest.h>

#include "scenario/cell_scenario.h"

using namespace l4span;
using scenario::cell_scenario;
using scenario::cell_spec;
using scenario::cu_mode;
using scenario::flow_spec;

TEST(tc_ran, keeps_rlc_queue_short)
{
    cell_spec c;
    c.cu = cu_mode::tcran;
    c.tcran.codel.ecn_mode = true;
    c.seed = 9;
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(5));
    EXPECT_LT(s.rlc_queue_sdus(0).percentile(90), 64.0)
        << "TC-RAN's flow control holds the standing queue at the CU";
    EXPECT_GT(s.goodput_mbps(h), 5.0);
}

TEST(tc_ran, codel_controls_cubic_delay)
{
    double owd_tcran = 0.0, owd_vanilla = 0.0;
    for (const bool use_tcran : {false, true}) {
        cell_spec c;
        c.cu = use_tcran ? cu_mode::tcran : cu_mode::none;
        c.tcran.codel.ecn_mode = false;  // plain CoDel drops for CUBIC
        c.seed = 9;
        cell_scenario s(c);
        flow_spec f;
        f.cca = "cubic";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(6));
        (use_tcran ? owd_tcran : owd_vanilla) = s.owd_ms(h).median();
    }
    EXPECT_LT(owd_tcran, owd_vanilla * 0.5);
}

TEST(tc_ran, underutilizes_variable_channel_vs_l4span)
{
    // The paper's §6.2.2 headline: fixed-threshold CoDel cannot track the
    // varying egress rate; L4Span utilizes more of the cell.
    double tput_tcran = 0.0, tput_l4span = 0.0;
    for (const bool use_tcran : {false, true}) {
        cell_spec c;
        c.channel = "static";
        c.cu = use_tcran ? cu_mode::tcran : cu_mode::l4span;
        c.tcran.codel.ecn_mode = true;
        c.seed = 11;
        cell_scenario s(c);
        flow_spec f;
        f.cca = "prague";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(8));
        (use_tcran ? tput_tcran : tput_l4span) = s.goodput_mbps(h);
    }
    EXPECT_GT(tput_l4span, tput_tcran);
}

TEST(dualpi2_ran, controls_delay_for_l4s_flow)
{
    cell_spec c;
    c.cu = cu_mode::dualpi2_ran;
    c.seed = 13;
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(5));
    EXPECT_LT(s.owd_ms(h).median(), 200.0);
}

TEST(dualpi2_ran, underutilizes_mobile_channel_vs_l4span)
{
    // §6.3.1: the wired DualPi2 strategy transplanted into the RAN loses
    // throughput on a volatile channel; L4Span's error-aware marking does not.
    double tput_dualpi2 = 0.0, tput_l4span = 0.0;
    for (const bool use_dualpi2 : {false, true}) {
        cell_spec c;
        c.channel = "vehicular";
        c.cu = use_dualpi2 ? cu_mode::dualpi2_ran : cu_mode::l4span;
        c.seed = 17;
        cell_scenario s(c);
        flow_spec f;
        f.cca = "prague";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(8));
        (use_dualpi2 ? tput_dualpi2 : tput_l4span) = s.goodput_mbps(h);
    }
    EXPECT_GT(tput_l4span, tput_dualpi2 * 1.1)
        << "L4Span should clearly out-utilize fixed-threshold DualPi2";
}
