// media::frame_source: frame cadence, keyframe sizing, completion
// accounting in both byte-stream (TCP) and frame-per-stream (QUIC) modes,
// and the interactive-over-TCP glue in a single cell.
#include <gtest/gtest.h>

#include <vector>

#include "media/frame_source.h"
#include "scenario/cell_scenario.h"

using namespace l4span;
using namespace l4span::media;

namespace {

struct recorded_frame {
    std::uint64_t id;
    std::uint32_t bytes;
};

}  // namespace

TEST(frame_source, paces_frames_at_fps_with_keyframe_bursts)
{
    sim::event_loop loop;
    frame_source_config cfg;
    cfg.fps = 30.0;
    cfg.bitrate_bps = 2.4e6;  // 10 kB/frame at 30 fps before keyframe scaling
    cfg.keyframe_interval_s = 1.0;
    cfg.keyframe_scale = 4.0;
    std::vector<recorded_frame> frames;
    frame_source src(loop, cfg,
                     [&](std::uint64_t id, std::uint32_t bytes) {
                         frames.push_back({id, bytes});
                     });
    src.start();
    loop.run_until(sim::from_ms(1990));  // frames at t = 0 .. 1966.7 ms

    ASSERT_EQ(frames.size(), 60u);  // 2 s of content at 30 fps
    EXPECT_EQ(src.frames_sent(), 60u);
    // Frames 1 and 31 are keyframes, scale x the delta size.
    EXPECT_EQ(frames[0].bytes, frames[30].bytes);
    EXPECT_EQ(frames[0].bytes, 4 * frames[1].bytes);
    for (std::size_t i = 1; i < 30; ++i) EXPECT_EQ(frames[i].bytes, frames[1].bytes);
    // Long-term average respects the bitrate target (integer rounding only).
    const double avg_bps = static_cast<double>(src.bytes_generated()) * 8.0 / 2.0;
    EXPECT_NEAR(avg_bps, 2.4e6, 2.4e4);
}

TEST(frame_source, byte_stream_completion_and_stall_accounting)
{
    sim::event_loop loop;
    frame_source_config cfg;
    cfg.fps = 10.0;
    cfg.bitrate_bps = 0.8e6;  // 10 kB per frame
    cfg.keyframe_interval_s = 0.0;
    cfg.deadline = sim::from_ms(50);
    frame_source src(loop, cfg, [](std::uint64_t, std::uint32_t) {});
    src.start();
    loop.run_until(sim::from_ms(450));  // frames at 0,100,...,400 generated
    EXPECT_EQ(src.frames_sent(), 5u);

    // Frames 1-2 complete 30 ms after generation; frame 3 limps in late.
    src.on_bytes_delivered(20000, sim::from_ms(130));
    EXPECT_EQ(src.frames_completed(), 2u);
    EXPECT_EQ(src.stalled_frames(), 1u);  // frame 1: 130 ms > 50 ms budget
    src.on_bytes_delivered(30000, sim::from_ms(230));
    EXPECT_EQ(src.frames_completed(), 3u);
    EXPECT_EQ(src.stalled_frames(), 1u);  // frame 3 made it at +30 ms
    EXPECT_NEAR(src.frame_owd_ms().max(), 130.0, 1e-9);
    EXPECT_NEAR(src.stall_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(frame_source, frame_mode_completes_out_of_order)
{
    sim::event_loop loop;
    frame_source_config cfg;
    cfg.fps = 20.0;
    cfg.bitrate_bps = 1.6e6;
    cfg.keyframe_interval_s = 0.0;
    frame_source src(loop, cfg, [](std::uint64_t, std::uint32_t) {});
    src.start();
    loop.run_until(sim::from_ms(160));
    ASSERT_GE(src.frames_sent(), 3u);

    src.on_frame_complete(2, sim::from_ms(80));   // frame 2 first (1 lost a pkt)
    src.on_frame_complete(1, sim::from_ms(120));
    src.on_frame_complete(99, sim::from_ms(130));  // unknown id: ignored
    EXPECT_EQ(src.frames_completed(), 2u);
    EXPECT_NEAR(src.frame_owd_ms().median(), (30.0 + 120.0) / 2.0, 1e-6);
}

TEST(frame_source, interactive_over_tcp_in_a_cell_records_frame_owd)
{
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 3;
    scenario::cell_scenario s(cell);
    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    f.fps = 60.0;
    f.frame_bitrate_bps = 4e6;
    f.frame_deadline_ms = 100.0;
    const int h = s.add_flow(f);
    s.run(sim::from_sec(2));

    const media::frame_source* fr = s.frame_stats(h);
    ASSERT_NE(fr, nullptr);
    EXPECT_GT(fr->frames_completed(), 100u);
    // A handful of frames stall while the handshake + slow start warm up;
    // steady state must stay clean.
    EXPECT_LT(fr->stall_fraction(), 0.10);
    // App-limited: delivery tracks the source rate, not the cell capacity.
    EXPECT_GT(s.delivered_bytes(h), 600'000u);
    EXPECT_LT(s.delivered_bytes(h), 1'500'000u);
}

TEST(frame_source, interactive_flow_is_long_lived_even_with_flow_bytes_set)
{
    // flow_bytes is a bulk-mode knob: an interactive (fps > 0) flow must
    // not freeze mid-stream once the acked bytes pass it.
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 3;
    scenario::cell_scenario s(cell);
    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    f.fps = 60.0;
    f.frame_bitrate_bps = 4e6;
    f.flow_bytes = 50'000;  // passed within the first few frames
    const int h = s.add_flow(f);
    s.run(sim::from_sec(2));
    EXPECT_LT(s.fct_ms(h), 0.0) << "interactive flows never report an FCT";
    EXPECT_GT(s.delivered_bytes(h), 600'000u) << "delivery continued past flow_bytes";
    const media::frame_source* fr = s.frame_stats(h);
    ASSERT_NE(fr, nullptr);
    EXPECT_GT(fr->frames_completed(), 100u);
}

TEST(frame_source, interactive_over_quic_in_a_cell)
{
    scenario::cell_spec cell;
    cell.num_ues = 1;
    cell.channel = "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 3;
    scenario::cell_scenario s(cell);
    scenario::flow_spec f;
    f.cca = "quic-prague";
    f.ue = 0;
    f.fps = 60.0;
    f.frame_bitrate_bps = 4e6;
    f.frame_deadline_ms = 100.0;
    const int h = s.add_flow(f);
    s.run(sim::from_sec(2));

    const media::frame_source* fr = s.frame_stats(h);
    ASSERT_NE(fr, nullptr);
    EXPECT_GT(fr->frames_completed(), 100u);
    EXPECT_LT(fr->stall_fraction(), 0.10);  // startup transient only
    EXPECT_EQ(s.flow_retransmits(h), 0u);
}
