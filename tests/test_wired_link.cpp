// topo::wired_link under the topology layer: mid-flight rate changes,
// zero-rate stall/resume, and FIFO ordering through the queue discipline.
#include <gtest/gtest.h>

#include <vector>

#include "aqm/fifo.h"
#include "sim/event_loop.h"
#include "topo/wired_link.h"

using namespace l4span;

namespace {

net::packet mk_pkt(std::uint64_t id, std::uint32_t payload = 1472)
{
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.payload_bytes = payload;  // 1500 B on the wire
    p.pkt_id = id;
    return p;
}

}  // namespace

TEST(wired_link_topo, rate_change_mid_flight_finishes_current_packet)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, 0);  // 1500 B = 1 ms
    std::vector<sim::tick> arrivals;
    link.set_deliver([&](net::packet) { arrivals.push_back(loop.now()); });
    link.send(mk_pkt(1));
    link.send(mk_pkt(2));
    // Mid-serialization of packet 1: must not affect its completion time,
    // only packet 2's.
    loop.schedule_at(sim::from_us(500), [&] { link.set_rate(1.2e6); });
    loop.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], sim::from_ms(1));        // still at the old rate
    EXPECT_EQ(arrivals[1], sim::from_ms(1) + sim::from_ms(10));  // new rate
}

TEST(wired_link_topo, zero_rate_stalls_and_resumes)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 0.0, 0);  // born stalled
    std::vector<std::uint64_t> ids;
    link.set_deliver([&](net::packet p) { ids.push_back(p.pkt_id); });
    for (std::uint64_t i = 1; i <= 4; ++i) link.send(mk_pkt(i));
    loop.run_until(sim::from_sec(1));
    EXPECT_TRUE(ids.empty());  // nothing drains at rate 0

    loop.schedule_at(sim::from_sec(2), [&] { link.set_rate(12e6); });
    loop.run_until(sim::from_sec(3));
    EXPECT_EQ(ids.size(), 4u);  // set_rate re-pumped the stalled queue
}

TEST(wired_link_topo, stall_mid_stream_preserves_backlog)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, 0);
    int delivered = 0;
    link.set_deliver([&](net::packet) { ++delivered; });
    for (int i = 0; i < 10; ++i) link.send(mk_pkt(static_cast<std::uint64_t>(i)));
    loop.schedule_at(sim::from_ms(3) + sim::from_us(1), [&] { link.set_rate(0.0); });
    loop.run_until(sim::from_ms(20));
    // 3 packets at 1 ms each before the stall; the 4th was already being
    // serialized when the rate dropped and completes (documented semantics).
    EXPECT_EQ(delivered, 4);
    loop.schedule_at(sim::from_ms(30), [&] { link.set_rate(12e6); });
    loop.run_until(sim::from_ms(50));
    EXPECT_EQ(delivered, 10);  // backlog survived the stall
}

TEST(wired_link_topo, fifo_ordering_across_rate_changes)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, sim::from_ms(2),
                          std::make_unique<aqm::fifo_queue>(1 << 20));
    std::vector<std::uint64_t> ids;
    link.set_deliver([&](net::packet p) { ids.push_back(p.pkt_id); });
    // Interleave sends with rate changes (including a stall window).
    for (std::uint64_t i = 0; i < 8; ++i)
        loop.schedule_at(sim::from_ms(i), [&link, i] { link.send(mk_pkt(100 + i)); });
    loop.schedule_at(sim::from_ms(2) + 1, [&] { link.set_rate(0.0); });
    loop.schedule_at(sim::from_ms(9), [&] { link.set_rate(24e6); });
    loop.run_until(sim::from_sec(1));
    ASSERT_EQ(ids.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(ids[i], 100 + i);
}

TEST(wired_link_topo, zero_rate_set_while_busy_is_safe)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, 0);
    int delivered = 0;
    link.set_deliver([&](net::packet) { ++delivered; });
    link.send(mk_pkt(1));
    // set_rate's internal pump must be a no-op while busy, not a re-entry.
    link.set_rate(0.0);
    link.set_rate(6e6);
    link.send(mk_pkt(2));
    loop.run();
    EXPECT_EQ(delivered, 2);
}
