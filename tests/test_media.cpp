// Media transport: sender pacing, receiver feedback, SCReAM / UDP Prague
// rate adaptation.
#include <gtest/gtest.h>

#include "media/media.h"

using namespace l4span;
using namespace l4span::media;

namespace {

struct media_rig {
    sim::event_loop loop;
    media_config cfg;
    std::unique_ptr<media_sender> snd;
    std::unique_ptr<media_receiver> rcv;
    sim::tick one_way = sim::from_ms(15);
    bool mark_ce = false;
    std::uint64_t data_packets = 0;

    explicit media_rig(const std::string& algo)
    {
        cfg.ft = {1, 2, 5004, 6004, net::ip_proto::udp};
        auto rc = algo == "scream" ? make_scream(cfg) : make_udp_prague(cfg);
        snd = std::make_unique<media_sender>(loop, cfg, std::move(rc),
                                             [this](net::packet p) {
                                                 ++data_packets;
                                                 if (mark_ce) p.ecn_field = net::ecn::ce;
                                                 loop.schedule_after(one_way, [this, p] {
                                                     rcv->on_packet(p);
                                                 });
                                             });
        rcv = std::make_unique<media_receiver>(loop, cfg, [this](net::packet p) {
            loop.schedule_after(one_way, [this, p] { snd->on_packet(p); });
        });
    }
};

}  // namespace

TEST(media, sender_paces_at_target_rate)
{
    media_rig rig("udp-prague");
    rig.snd->start();
    rig.loop.run_until(sim::from_ms(500));
    // start_rate 1 Mbit/s, 1200 B packets -> ~104 packets/s before ramping.
    EXPECT_GT(rig.data_packets, 20u);
}

TEST(media, receiver_reports_owd_and_goodput)
{
    media_rig rig("udp-prague");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(1));
    ASSERT_GT(rig.rcv->owd_samples().count(), 10u);
    EXPECT_NEAR(rig.rcv->owd_samples().median(), 15.0, 1.0);
    EXPECT_GT(rig.rcv->goodput().total_bytes(), 0);
}

TEST(media, udp_prague_ramps_without_congestion)
{
    media_rig rig("udp-prague");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(3));
    EXPECT_GT(rig.snd->current_rate_bps(), 5e6)
        << "clean feedback lets the rate climb well above the starting rate";
}

TEST(media, udp_prague_backs_off_on_ce)
{
    media_rig rig("udp-prague");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(2));
    const double before = rig.snd->current_rate_bps();
    rig.mark_ce = true;
    rig.loop.run_until(sim::from_sec(4));
    EXPECT_LT(rig.snd->current_rate_bps(), before * 0.7);
    EXPECT_GE(rig.snd->current_rate_bps(), rig.cfg.min_rate_bps);
}

TEST(media, scream_backs_off_on_ce)
{
    media_rig rig("scream");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(2));
    const double before = rig.snd->current_rate_bps();
    rig.mark_ce = true;
    rig.loop.run_until(sim::from_sec(4));
    EXPECT_LT(rig.snd->current_rate_bps(), before * 0.8);
}

TEST(media, scream_recovers_after_congestion_clears)
{
    media_rig rig("scream");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(2));
    rig.mark_ce = true;
    rig.loop.run_until(sim::from_sec(3));
    const double low = rig.snd->current_rate_bps();
    rig.mark_ce = false;
    rig.loop.run_until(sim::from_sec(6));
    EXPECT_GT(rig.snd->current_rate_bps(), low * 1.2);
}

TEST(media, rtt_samples_accumulate)
{
    media_rig rig("scream");
    rig.snd->start();
    rig.loop.run_until(sim::from_sec(1));
    EXPECT_GT(rig.snd->rtt_samples().count(), 5u);
    // RTT ~ 2 x 15 ms.
    EXPECT_NEAR(rig.snd->rtt_samples().median(), 30.0, 35.0);
}

TEST(media, stop_halts_emission)
{
    media_rig rig("udp-prague");
    rig.snd->start();
    rig.loop.run_until(sim::from_ms(500));
    rig.snd->stop();
    const auto frozen = rig.data_packets;
    rig.loop.run_until(sim::from_sec(1));
    EXPECT_LE(rig.data_packets, frozen + 1);
}
